#!/usr/bin/env python3
"""Docs link checker: fail on dead relative links in the repo's *.md files.

Scans every tracked-looking Markdown file (skipping build trees and VCS
metadata), extracts inline links and images, and verifies that each
relative target exists on disk. External links (http/https/mailto) and
pure in-page anchors are skipped; a `path#fragment` target is checked for
the path only. Exit 0 when all links resolve, 1 otherwise.
"""
import os
import re
import sys

SKIP_DIRS = {".git", "node_modules"}
SKIP_PREFIXES = ("build",)
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check(root):
    bad = []
    checked = 0
    for path in sorted(markdown_files(root)):
        text = open(path, encoding="utf-8").read()
        # Fenced code blocks routinely contain example-output brackets
        # that would misparse as links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                bad.append((os.path.relpath(path, root), match.group(1)))
    for path, target in bad:
        print(f"dead link: {path}: ({target})", file=sys.stderr)
    print(f"docs links: {checked} relative links checked, {len(bad)} dead")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else os.getcwd()))
