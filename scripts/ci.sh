#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, lint (when clang-tidy is
# installed), the full suite again under ASan+UBSan with internal invariant
# asserts compiled in, a ThreadSanitizer pass over the concurrency-sensitive
# binaries, and a `difctl generate | difctl check` round trip across seeds.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

echo "== lint: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$ROOT/build" --target lint
else
  echo "clang-tidy not installed; skipping lint"
fi

echo "== ASan+UBSan: full test suite =="
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DDIF_SANITIZE=address,undefined -DDIF_ASSERTS=ON
cmake --build "$ROOT/build-asan" -j "$JOBS"
(cd "$ROOT/build-asan" && ctest --output-on-failure -j "$JOBS")

echo "== ThreadSanitizer: portfolio + thread pool + txn effector =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DDIF_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target test_portfolio test_thread_pool_scaffold test_txn_redeploy
"$ROOT/build-tsan/tests/test_portfolio"
"$ROOT/build-tsan/tests/test_thread_pool_scaffold"
"$ROOT/build-tsan/tests/test_txn_redeploy"

echo "== static check round trip: generate | check =="
DIFCTL="$ROOT/build/tools/difctl"
for seed in 1 2 3 5 8 13; do
  "$DIFCTL" generate --hosts 6 --components 16 --seed "$seed" \
    --constraints 4 > "$ROOT/build/ci_gen_$seed.json"
  "$DIFCTL" check "$ROOT/build/ci_gen_$seed.json" > /dev/null
done

echo "== metrics smoke: simulate + schema/invariant check =="
if command -v python3 >/dev/null 2>&1; then
  "$DIFCTL" generate --hosts 6 --components 18 --seed 7 \
    > "$ROOT/build/ci_sim_system.json"
  # Exit 3 = the run finished but some redeployment round aborted or rolled
  # back — fine for a smoke test; only real failures (1/2) should stop CI.
  "$DIFCTL" simulate "$ROOT/build/ci_sim_system.json" \
    --duration-ms 60000 --interval-ms 3000 --seed 7 \
    --metrics-json "$ROOT/build/ci_sim_metrics.json" \
    --trace-json "$ROOT/build/ci_sim_trace.json" > /dev/null \
    || [ $? -eq 3 ]
  python3 - "$ROOT/build/ci_sim_metrics.json" "$ROOT/build/ci_sim_trace.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
trace = json.load(open(sys.argv[2]))
assert metrics["schema"] == "dif-metrics-v1", metrics.get("schema")
assert trace["schema"] == "dif-trace-v1", trace.get("schema")
for key in ("counters", "gauges", "histograms"):
    assert key in metrics, f"metrics missing {key!r}"
c = metrics["counters"]
assert c.get("net.sent", 0) > 0, "no traffic recorded"
assert c.get("net.delivered", 0) + c.get("net.dropped", 0) + \
    c.get("net.unroutable", 0) <= c["net.sent"], "conservation violated"
spans = [e for e in trace["events"] if e["name"] == "deploy.redeploy"]
assert spans, "no deploy.redeploy spans in trace"
for s in spans:
    for field in ("epoch", "moves_requested"):
        assert field in s["fields"], f"span missing {field!r}"
closed = [s for s in spans if "success" in s["fields"]]
assert closed, "no completed deploy.redeploy span"
for s in closed:
    assert "migrations" in s["fields"], "closed span missing migrations"
ticks = [e for e in trace["events"] if e["name"] == "loop.tick"]
assert len(ticks) == c.get("loop.ticks"), "tick spans != tick counter"
print(f"metrics smoke OK: {len(c)} counters, {len(spans)} redeploy "
      f"spans, {len(ticks)} ticks")
EOF
else
  echo "python3 not installed; skipping metrics smoke"
fi

echo "== campaign smoke: seeded fault injection, determinism + schema =="
"$DIFCTL" campaign --seeds 0..7 --scenario mixed \
  --json "$ROOT/build/ci_campaign_a.json" > /dev/null || [ $? -eq 3 ]
"$DIFCTL" campaign --seeds 0..7 --scenario mixed \
  --json "$ROOT/build/ci_campaign_b.json" > /dev/null || [ $? -eq 3 ]
cmp "$ROOT/build/ci_campaign_a.json" "$ROOT/build/ci_campaign_b.json" \
  || { echo "campaign report not deterministic"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_campaign_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dif-campaign-v1", report.get("schema")
assert report["ok"] is True, "campaign reported not-ok"
assert report["total_violations"] == 0, report["total_violations"]
assert report["total_runs"] == len(report["runs"]) == 16, report["total_runs"]
assert report["modes"] == ["centralized", "decentralized"]
for run in report["runs"]:
    assert run["violations"] == [], run["violations"]
    assert run["mode"] in ("centralized", "decentralized")
    net = run["net"]
    assert net["delivered"] + net["dropped"] + net["unroutable"] \
        <= net["sent"], "conservation violated"
    assert sum(l["dropped"] for l in net["dropped_links"]) == net["dropped"]
    assert run["availability"]["final"] > 0.0
    adapt = run["adaptation"]
    expect = {"redeployments", "final_epoch", "stale_acks", "txn"} \
        if run["mode"] == "centralized" else {"migrations"}
    assert set(adapt) == expect, adapt
    if run["mode"] == "centralized":
        outcomes = {"committed", "aborted", "rolled_back", "partial",
                    "rollback_failed", "crashed"}
        assert set(adapt["txn"]) == outcomes, adapt["txn"]
print(f"campaign smoke OK: {report['total_runs']} runs, 0 violations")
EOF
else
  echo "python3 not installed; skipping campaign schema check"
fi

echo "== chaos under redeploy: midmigration atomicity + determinism =="
# The midmigration scenario injects partitions and crashes squarely inside
# the redeployment window, forcing the two-phase effector through its
# abort/rollback paths. The atomicity invariant (and the other five) must
# hold on every seed, and each report must be byte-identical across runs.
"$DIFCTL" campaign --seeds 0..4 --scenario midmigration --centralized \
  --json "$ROOT/build/ci_midmig_a.json" > /dev/null || [ $? -eq 3 ]
"$DIFCTL" campaign --seeds 0..4 --scenario midmigration --centralized \
  --json "$ROOT/build/ci_midmig_b.json" > /dev/null || [ $? -eq 3 ]
cmp "$ROOT/build/ci_midmig_a.json" "$ROOT/build/ci_midmig_b.json" \
  || { echo "midmigration campaign report not deterministic"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_midmig_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["ok"] is True, "midmigration campaign reported not-ok"
assert report["total_runs"] == 5, report["total_runs"]
rounds = 0
for run in report["runs"]:
    assert run["violations"] == [], run["violations"]
    rounds += sum(run["adaptation"]["txn"].values())
assert rounds > 0, "no transactional rounds ran under midmigration chaos"
print(f"midmigration smoke OK: {rounds} rounds, atomicity held on "
      f"{report['total_runs']} seeds")
EOF
else
  echo "python3 not installed; skipping midmigration schema check"
fi

echo "== fuzz smoke: protocol fuzzer, determinism + invariant oracle =="
# A fixed seed block of fuzzed centralized campaigns: the interceptor
# drops/delays/duplicates/reorders redeployment and custody control-plane
# messages, and all seven campaign invariants must still hold. Reports must
# be byte-identical across runs (the shrinker depends on that replay).
# Seeds 0..4 are the pinned green corpus; seed 5 is a known-bad seed (a
# torn placement under rollback-phase drop+reorder, kept as the shrinker
# demonstration — see docs/fuzzing.md) and stays out of the smoke. It is
# asserted as an expected failure by FuzzRegression.
# KnownBadSeedFiveTornPlacementShrinksOnBug in tests/test_fuzz.cpp, which
# also pins the shrinker's same-invariant accept contract.
"$DIFCTL" fuzz --seed 0 --rounds 5 \
  --json "$ROOT/build/ci_fuzz_a.json" > /dev/null
"$DIFCTL" fuzz --seed 0 --rounds 5 \
  --json "$ROOT/build/ci_fuzz_b.json" > /dev/null
cmp "$ROOT/build/ci_fuzz_a.json" "$ROOT/build/ci_fuzz_b.json" \
  || { echo "fuzz report not deterministic"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_fuzz_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dif-fuzz-v1", report.get("schema")
assert report["ok"] is True, "fuzz campaign reported not-ok"
assert report["total_violations"] == 0, report["total_violations"]
assert len(report["runs"]) == 5, len(report["runs"])
assert report["total_mutations"] > 0, "fuzzer applied no mutations"
kinds, events = set(), set()
for run in report["runs"]:
    assert run["failed"] is False, run["seed"]
    assert run["report"]["violations"] == [], run["report"]["violations"]
    assert run["targeted"] > 0, "no control-plane messages intercepted"
    assert run["mutation_count"] == len(run["mutations"])
    net = run["report"]["net"]
    assert net["delivered"] + net["dropped"] + net["unroutable"] \
        <= net["sent"], "conservation violated under fuzzing"
    # Fuzz drops of locally-delivered messages are not link-charged, so
    # per-link shares may undershoot (never overshoot) the global count.
    assert sum(l["dropped"] for l in net["dropped_links"]) <= net["dropped"]
    for m in run["mutations"]:
        kinds.add(m["kind"])
        events.add(m["event"])
assert kinds == {"drop", "delay", "duplicate", "reorder"}, kinds
assert "__migration_ack" in events and "__component_transfer" in events, \
    sorted(events)
print(f"fuzz smoke OK: {len(report['runs'])} rounds, "
      f"{report['total_mutations']} mutations, 0 violations")
EOF
else
  echo "python3 not installed; skipping fuzz schema check"
fi

echo "== audit smoke: generate | portfolio | audit round trip + schema =="
# The artifact auditor must accept what the framework itself produces: a
# generated model's portfolio-improved placement audits clean (warnings
# are advisory), and the dif-audit-v1 report carries provable SPOF
# witnesses naming real model hosts.
"$DIFCTL" generate --hosts 6 --components 16 --seed 3 --constraints 4 \
  --regions 2 > "$ROOT/build/ci_audit_system.json"
"$DIFCTL" portfolio "$ROOT/build/ci_audit_system.json" \
  > "$ROOT/build/ci_audit_best.json" 2> /dev/null
"$DIFCTL" audit "$ROOT/build/ci_audit_best.json" > /dev/null \
  || { echo "audit rejected a portfolio-improved placement"; exit 1; }
"$DIFCTL" audit "$ROOT/build/ci_audit_system.json" --resilience-k 1 --json \
  > "$ROOT/build/ci_audit_report.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_audit_report.json" \
    "$ROOT/build/ci_audit_system.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
system = json.load(open(sys.argv[2]))
assert report["schema"] == "dif-audit-v1", report.get("schema")
assert report["ok"] is True and report["errors"] == 0, report
hosts = {h["name"] for h in system["hosts"]}
spofs = [d for d in report["resilience"]["diagnostics"]
         if d["rule"] == "resilience-spof"]
assert spofs, "no resilience-spof finding on an unreplicated model"
for d in spofs:
    assert d["witness"], f"spof without witness: {d}"
    assert set(d["witness"]) <= hosts, d["witness"]
regions = [d for d in report["resilience"]["diagnostics"]
           if d["rule"] == "resilience-region"]
assert regions, "no resilience-region finding on a 2-region model"
print(f"audit smoke OK: {len(spofs)} spof witnesses, "
      f"{len(regions)} region findings, 0 errors")
EOF
else
  echo "python3 not installed; skipping audit schema check"
fi

echo "== traffic smoke: pinned-seed determinism + schema =="
# `difctl traffic` must emit a byte-identical dif-traffic-v1 report across
# same-seed runs (the report is the determinism contract; the raw metrics
# registry is not byte-stable because it includes wall-clock histograms).
# Exit 3 = the run finished but the SLO was breached or a round rolled
# back — fine for a smoke test; only real failures (1/2) should stop CI.
"$DIFCTL" traffic --hosts 6 --components 18 --seed 7 --duration-ms 30000 \
  --json "$ROOT/build/ci_traffic_a.json" > /dev/null || [ $? -eq 3 ]
"$DIFCTL" traffic --hosts 6 --components 18 --seed 7 --duration-ms 30000 \
  --json "$ROOT/build/ci_traffic_b.json" > /dev/null || [ $? -eq 3 ]
cmp "$ROOT/build/ci_traffic_a.json" "$ROOT/build/ci_traffic_b.json" \
  || { echo "traffic report not deterministic"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_traffic_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dif-traffic-v1", report.get("schema")
totals = report["totals"]
assert totals["offered"] > 0, "no requests offered"
assert totals["offered"] == totals["completed"] + totals["failed"] + \
    totals["shed"], "request conservation violated"
assert 0.0 <= totals["availability"] <= 1.0, totals["availability"]
tenants = report["tenants"]
assert set(tenants) == {"t0", "t1"}, sorted(tenants)
for tag, t in tenants.items():
    assert t["offered"] == t["completed"] + t["failed"] + t["shed"], tag
failures = report["failures"]
assert sum(failures.values()) == totals["failed"], failures
assert set(failures) == {"no_path", "partitioned", "host_down",
                         "migrating", "timeout"}, sorted(failures)
rk = report["ratekeeper"]
for key in ("slo_violation_ms", "max_level_reached", "shed_actions"):
    assert key in rk, f"ratekeeper missing {key!r}"
assert report["deployer"]["rounds"] > 0, "no redeployment rounds ran"
print(f"traffic smoke OK: {totals['offered']} offered, "
      f"availability {totals['availability']:.4f}, "
      f"{report['deployer']['committed']} rounds committed")
EOF
else
  echo "python3 not installed; skipping traffic schema check"
fi

echo "== bench gate: analyzer/auditor throughput regression =="
# BENCH_check.json is the committed baseline (bench/bench_check.cpp).
# analyzer.runs_per_s is a whole-analyzer-run metric, and whole-run
# throughput on this single-core container swings with sustained load: the
# same binary that measures 91% of baseline on a quiet machine measured
# 59-78% when the gate ran after the ~25 min ASan/TSan build sequence
# (verified against an unmodified checkout, which failed its own gate at
# 59%). Gate it collapse-only at 0.5x like the other whole-run benches;
# everything else pinned here stays at the 0.9 microbenchmark bar.
if command -v python3 >/dev/null 2>&1 && [ -f "$ROOT/BENCH_check.json" ]; then
  "$ROOT/build/bench/bench_check" --iters 5 \
    --json "$ROOT/build/ci_bench_check.json" > /dev/null
  python3 - "$ROOT/BENCH_check.json" "$ROOT/build/ci_bench_check.json" <<'EOF'
import json, sys
baseline = json.load(open(sys.argv[1]))
current = json.load(open(sys.argv[2]))
assert current["schema"] == "dif-bench-v1", current.get("schema")
WHOLE_RUN = {"analyzer.runs_per_s"}
failed = []
for name in baseline["pinned"]:
    old = baseline["metrics"][name]["value"]
    new = current["metrics"][name]["value"]
    floor = 0.5 if name in WHOLE_RUN else 0.9
    print(f"{name}: baseline {old:.2f}, current {new:.2f} "
          f"({100 * new / old:.0f}%, floor {floor})")
    if new < floor * old:
        failed.append(name)
assert not failed, f"throughput regressed below floor on: {failed}"
print("bench gate OK")
EOF
else
  echo "python3 or BENCH_check.json missing; skipping bench gate"
fi

echo "== bench gate: fleet-scale scalability scorecard =="
# BENCH_scalability.json is the committed baseline (bench/bench_scalability.cpp).
# The smoke run covers the full sweep including the 1024x10240 frontier point.
# Pinned throughput gates collapse-only at 0.5x: on this container identical
# binaries measure 60-97% of their committed baselines depending on machine
# load (see the analyzer gate's control experiment), so a 0.9 bar flakes on
# environment, not code. The deterministic assertion — warm re-optimization
# beating the cold rerun on evaluations spent — carries the regression gate.
if command -v python3 >/dev/null 2>&1 && [ -f "$ROOT/BENCH_scalability.json" ]; then
  "$ROOT/build/bench/bench_scalability" --iters 3 \
    --json "$ROOT/build/ci_bench_scalability.json" > /dev/null 2>&1
  python3 - "$ROOT/BENCH_scalability.json" \
    "$ROOT/build/ci_bench_scalability.json" <<'EOF'
import json, sys
baseline = json.load(open(sys.argv[1]))
current = json.load(open(sys.argv[2]))
assert current["schema"] == "dif-bench-v1", current.get("schema")
failed = []
for name in baseline["pinned"]:
    old = baseline["metrics"][name]["value"]
    new = current["metrics"][name]["value"]
    print(f"{name}: baseline {old:.2f}, current {new:.2f} "
          f"({100 * new / old:.0f}%, floor 0.5)")
    if new < 0.5 * old:
        failed.append(name)
assert not failed, f"throughput collapsed below 0.5x baseline on: {failed}"
warm = current["metrics"]["reopt.warm_evaluations"]["value"]
cold = current["metrics"]["reopt.cold_evaluations"]["value"]
print(f"reopt: warm {warm:.0f} evals vs cold {cold:.0f} evals")
assert warm < cold, "warm re-optimization no cheaper than cold rerun"
print("scalability gate OK")
EOF
else
  echo "python3 or BENCH_scalability.json missing; skipping scalability gate"
fi

echo "== bench gate: ratekeeper availability under load =="
# BENCH_traffic.json is the committed baseline (bench/bench_traffic.cpp).
# Whole-session throughput is allocation-heavy and swings ~±30% run to run,
# so this gate only catches collapses (>40% regression), unlike the tight
# microbenchmark gates above. The functional assertion is the strict one:
# the ratekeeper must still earn its keep — fewer SLO-violation seconds with
# the controller on than off, on the same seeded flash-crowd scenario.
if command -v python3 >/dev/null 2>&1 && [ -f "$ROOT/BENCH_traffic.json" ]; then
  "$ROOT/build/bench/bench_traffic" --iters 3 \
    --json "$ROOT/build/ci_bench_traffic.json" > /dev/null
  python3 - "$ROOT/BENCH_traffic.json" "$ROOT/build/ci_bench_traffic.json" <<'EOF'
import json, sys
baseline = json.load(open(sys.argv[1]))
current = json.load(open(sys.argv[2]))
assert current["schema"] == "dif-bench-v1", current.get("schema")
failed = []
for name in baseline["pinned"]:
    old = baseline["metrics"][name]["value"]
    new = current["metrics"][name]["value"]
    print(f"{name}: baseline {old:.2f}, current {new:.2f} "
          f"({100 * new / old:.0f}%, floor 0.5)")
    if new < 0.5 * old:
        failed.append(name)
assert not failed, f"throughput collapsed below 0.5x baseline on: {failed}"
on = current["metrics"]["traffic.slo_violation_ms.ratekeeper_on"]["value"]
off = current["metrics"]["traffic.slo_violation_ms.ratekeeper_off"]["value"]
print(f"slo violation: ratekeeper on {on:.0f} ms vs off {off:.0f} ms")
assert on <= off, "ratekeeper made SLO violations worse"
print("traffic gate OK")
EOF
else
  echo "python3 or BENCH_traffic.json missing; skipping traffic gate"
fi

echo "== bench gate: campaign engine throughput =="
# BENCH_campaign.json is the committed baseline (bench/bench_campaign.cpp):
# mixed and midmigration campaign throughput plus the post-run invariant
# judge in isolation. Campaign iterations are whole sim runs and swing
# ~±30% run to run, so — like the traffic gate — this only catches
# collapses (>40% regression). The strict assertion is functional: zero
# invariant violations across every timed campaign.
if command -v python3 >/dev/null 2>&1 && [ -f "$ROOT/BENCH_campaign.json" ]; then
  "$ROOT/build/bench/bench_campaign" --iters 3 \
    --json "$ROOT/build/ci_bench_campaign.json" > /dev/null 2>&1
  python3 - "$ROOT/BENCH_campaign.json" \
    "$ROOT/build/ci_bench_campaign.json" <<'EOF'
import json, sys
baseline = json.load(open(sys.argv[1]))
current = json.load(open(sys.argv[2]))
assert current["schema"] == "dif-bench-v1", current.get("schema")
assert current["metrics"]["campaign.violations"]["value"] == 0, \
    "campaign bench saw invariant violations"
failed = []
for name in baseline["pinned"]:
    old = baseline["metrics"][name]["value"]
    new = current["metrics"][name]["value"]
    print(f"{name}: baseline {old:.2f}, current {new:.2f} "
          f"({100 * new / old:.0f}%, floor 0.5)")
    if new < 0.5 * old:
        failed.append(name)
assert not failed, f"throughput collapsed below 0.5x baseline on: {failed}"
print("campaign gate OK")
EOF
else
  echo "python3 or BENCH_campaign.json missing; skipping campaign gate"
fi

echo "== recovery smoke: self-healing killhost, determinism + convergence =="
# The recovery reference campaign (`difctl heal`): a killhost outage under
# capacity pressure, phi-accrual detection, automatic re-placement. Pinned
# seeds 0 and 2 are the repair-committing corpus (seed 1's crash races an
# in-flight redeployment off the host — nothing left to repair). Reports
# must be byte-identical across runs, every run must satisfy the eighth
# (convergence) invariant, and the mean MTTR must beat the scenario's
# 20 s minimum outage — the recovery-off unavailability floor.
"$DIFCTL" heal --seeds 0,2 \
  --json "$ROOT/build/ci_heal_a.json" > /dev/null 2>&1 || [ $? -eq 3 ]
"$DIFCTL" heal --seeds 0,2 \
  --json "$ROOT/build/ci_heal_b.json" > /dev/null 2>&1 || [ $? -eq 3 ]
cmp "$ROOT/build/ci_heal_a.json" "$ROOT/build/ci_heal_b.json" \
  || { echo "recovery campaign report not deterministic"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ROOT/build/ci_heal_a.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "dif-campaign-v1", report.get("schema")
assert report["ok"] is True, "recovery campaign reported not-ok"
assert report["total_runs"] == 2, report["total_runs"]
mttrs = []
for run in report["runs"]:
    assert run["violations"] == [], run["violations"]
    rec = run["adaptation"]["recovery"]
    assert rec["enabled"] is True
    assert rec["condemnations"] >= 1, rec
    assert rec["recoveries_committed"] >= 1, rec
    assert rec["converged_at_ms"] >= 0, "never re-converged"
    mttrs.append(rec["mean_mttr_ms"])
mean_mttr = sum(mttrs) / len(mttrs)
assert mean_mttr < 20000, \
    f"mean MTTR {mean_mttr:.0f} ms not below the 20 s minimum outage"
print(f"recovery smoke OK: {report['total_runs']} runs repaired and "
      f"converged, mean MTTR {mean_mttr:.0f} ms < 20000 ms outage floor")
EOF
else
  echo "python3 not installed; skipping recovery schema check"
fi

echo "== bench gate: self-healing MTTR and availability during repair =="
# BENCH_recovery.json is the committed baseline (bench/bench_recovery.cpp).
# Beyond the 10% throughput pin, the functional claims are strict: the
# recovery-enabled replay must keep availability at least as high as the
# recovery-off replay (campaign and live-traffic legs both), mean MTTR must
# beat the 20 s minimum outage, and the SLO-violation seconds attributable
# to repair traffic — the paired-run excess over the recovery-off session —
# must be exactly zero (repair rides the ratekeeper throttle).
if command -v python3 >/dev/null 2>&1 && [ -f "$ROOT/BENCH_recovery.json" ]; then
  "$ROOT/build/bench/bench_recovery" --iters 3 \
    --json "$ROOT/build/ci_bench_recovery.json" > /dev/null 2>&1
  python3 - "$ROOT/BENCH_recovery.json" \
    "$ROOT/build/ci_bench_recovery.json" <<'EOF'
import json, sys
baseline = json.load(open(sys.argv[1]))
current = json.load(open(sys.argv[2]))
assert current["schema"] == "dif-bench-v1", current.get("schema")
failed = []
for name in baseline["pinned"]:
    old = baseline["metrics"][name]["value"]
    new = current["metrics"][name]["value"]
    print(f"{name}: baseline {old:.2f}, current {new:.2f} "
          f"({100 * new / old:.0f}%, floor 0.5)")
    if new < 0.5 * old:
        failed.append(name)
assert not failed, f"throughput collapsed below 0.5x baseline on: {failed}"
m = {k: v["value"] for k, v in current["metrics"].items()}
assert m["recovery.violations.recovery_on"] == 0, "invariant violations"
assert m["recovery.repairs_committed"] >= 1, "no repairs committed"
assert m["recovery.mean_mttr_ms"] < 20000, m["recovery.mean_mttr_ms"]
assert m["recovery.availability.recovery_on"] >= \
    m["recovery.availability.recovery_off"], \
    "recovery-on availability below recovery-off (campaign)"
assert m["recovery.traffic.availability.recovery_on"] >= \
    m["recovery.traffic.availability.recovery_off"], \
    "recovery-on availability below recovery-off (traffic)"
assert m["recovery.traffic.slo_excess_ms"] == 0, \
    f"repair traffic added {m['recovery.traffic.slo_excess_ms']:.0f} ms of SLO violation"
print(f"recovery gate OK: MTTR {m['recovery.mean_mttr_ms']:.0f} ms, "
      f"availability {m['recovery.availability.recovery_on']:.4f} on vs "
      f"{m['recovery.availability.recovery_off']:.4f} off, 0 ms repair excess")
EOF
else
  echo "python3 or BENCH_recovery.json missing; skipping recovery gate"
fi

echo "== docs: relative-link check =="
if command -v python3 >/dev/null 2>&1; then
  python3 "$ROOT/scripts/check_docs.py" "$ROOT"
else
  echo "python3 not installed; skipping docs link check"
fi

echo "CI OK"
