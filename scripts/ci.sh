#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, then a ThreadSanitizer
# pass over the concurrency-sensitive binaries (portfolio runner, thread
# pool scaffold).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

echo "== ThreadSanitizer: portfolio + thread pool =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DDIF_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target test_portfolio test_thread_pool_scaffold
"$ROOT/build-tsan/tests/test_portfolio"
"$ROOT/build-tsan/tests/test_thread_pool_scaffold"

echo "CI OK"
