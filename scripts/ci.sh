#!/usr/bin/env bash
# CI entry point: tier-1 build + full test suite, lint (when clang-tidy is
# installed), the full suite again under ASan+UBSan with internal invariant
# asserts compiled in, a ThreadSanitizer pass over the concurrency-sensitive
# binaries, and a `difctl generate | difctl check` round trip across seeds.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + ctest =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

echo "== lint: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build "$ROOT/build" --target lint
else
  echo "clang-tidy not installed; skipping lint"
fi

echo "== ASan+UBSan: full test suite =="
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DDIF_SANITIZE=address,undefined -DDIF_ASSERTS=ON
cmake --build "$ROOT/build-asan" -j "$JOBS"
(cd "$ROOT/build-asan" && ctest --output-on-failure -j "$JOBS")

echo "== ThreadSanitizer: portfolio + thread pool =="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DDIF_SANITIZE=thread
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target test_portfolio test_thread_pool_scaffold
"$ROOT/build-tsan/tests/test_portfolio"
"$ROOT/build-tsan/tests/test_thread_pool_scaffold"

echo "== static check round trip: generate | check =="
DIFCTL="$ROOT/build/tools/difctl"
for seed in 1 2 3 5 8 13; do
  "$DIFCTL" generate --hosts 6 --components 16 --seed "$seed" \
    --constraints 4 > "$ROOT/build/ci_gen_$seed.json"
  "$DIFCTL" check "$ROOT/build/ci_gen_$seed.json" > /dev/null
done

echo "CI OK"
