#!/usr/bin/env python3
"""Append the current committed bench baselines to BENCH_history.jsonl.

The BENCH_<area>.json files at the repo root only record the *latest*
accepted baseline; this script records the *trajectory*. Each invocation
appends one JSON line per baseline file:

    {"label": ..., "commit": ..., "area": ...,
     "pinned": {metric: value, ...}, "peak_rss_kb": ...}

Run it whenever a baseline is refreshed (typically in the same commit):

    python3 scripts/bench_history.py --label "pr9 ratekeeper"

The history file is append-only JSONL so that plots and regression
archaeology (`git log -p BENCH_history.jsonl`) stay trivial; nothing ever
rewrites old lines. See EXPERIMENTS.md ("Recording a perf trajectory").
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys

SCHEMA = "dif-bench-history-v1"


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def head_commit(root: str) -> str:
    try:
        out = subprocess.run(
            ["git", "-C", root, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def history_line(path: str, label: str, commit: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != "dif-bench-v1":
        raise SystemExit(f"{path}: not a dif-bench-v1 report "
                         f"(schema={report.get('schema')!r})")
    pinned = {name: report["metrics"][name]["value"]
              for name in report.get("pinned", [])}
    return {
        "schema": SCHEMA,
        "label": label,
        "commit": commit,
        "area": report.get("area", "unknown"),
        "pinned": pinned,
        "peak_rss_kb": report.get("peak_rss_kb"),
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="append committed BENCH_*.json baselines to "
                    "BENCH_history.jsonl")
    parser.add_argument("--label", required=True,
                        help="what this point on the trajectory is "
                             "(e.g. 'pr9 ratekeeper baseline')")
    parser.add_argument("--root", default=repo_root(),
                        help="repo root (default: inferred from this file)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the lines instead of appending")
    args = parser.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.root, "BENCH_*.json")))
    if not baselines:
        print("no BENCH_*.json baselines found", file=sys.stderr)
        return 1

    commit = head_commit(args.root)
    lines = [history_line(p, args.label, commit) for p in baselines]

    if args.dry_run:
        for line in lines:
            print(json.dumps(line, sort_keys=True))
        return 0

    history_path = os.path.join(args.root, "BENCH_history.jsonl")
    with open(history_path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"appended {len(lines)} baseline(s) to "
          f"{os.path.relpath(history_path, args.root)} @ {commit}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
