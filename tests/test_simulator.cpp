// Unit tests for the discrete-event kernel (sim/simulator.h).
#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace dif::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(7.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(100.0, [&] {
    sim.schedule_after(25.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 125.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(50.0, [] {});
  sim.run();
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 50.0);
  sim.schedule_after(-5.0, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 50.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.schedule_at(20.0, [&] { ++fired; });
  sim.schedule_at(30.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20.0), 2u);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run_until(25.0), 0u);  // no event, clock still advances
  EXPECT_DOUBLE_EQ(sim.now(), 25.0);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunWithEventCap) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(sim.pending(), 6u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

// --- batched same-timestamp dispatch ---------------------------------------

TEST(Simulator, BatchesDispatchedCountsTimestampRuns) {
  Simulator sim;
  for (int i = 0; i < 3; ++i) sim.schedule_at(1.0, [] {});
  for (int i = 0; i < 2; ++i) sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
  // One heap drain per distinct timestamp, not per event.
  EXPECT_EQ(sim.batches_dispatched(), 2u);
}

TEST(Simulator, SameTimeCascadeKeepsSchedulingOrder) {
  // An event scheduled *during* a same-timestamp batch carries a larger
  // sequence number, so it must fire after everything already queued at that
  // time — batching may not let it jump the line.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    order.push_back(0);
    sim.schedule_at(5.0, [&] { order.push_back(2); });
  });
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, EventCapSplitsSameTimestampBatch) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(3.0, [&order, i] { order.push_back(i); });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClearInsideHandlerDropsRestOfBatch) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.clear();
  });
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, BatchedDispatchIsDeterministic) {
  // Two identical schedules — including mid-batch cascades — must replay in
  // exactly the same order.
  const auto record = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
      sim.schedule_at(1.0, [&sim, &order, i] {
        order.push_back(i);
        if (i % 2 == 0)
          sim.schedule_at(1.0, [&order, i] { order.push_back(100 + i); });
        sim.schedule_after(1.0, [&order, i] { order.push_back(200 + i); });
      });
    sim.run();
    return order;
  };
  EXPECT_EQ(record(), record());
}

}  // namespace
}  // namespace dif::sim
