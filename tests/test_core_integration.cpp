// End-to-end tests of the framework instantiations: monitored workloads on
// the simulated middleware, the autonomic improvement loop, and the
// decentralized auction runtime (core/*).
#include <gtest/gtest.h>

#include "core/decentralized_instantiation.h"
#include "desi/modifier.h"
#include "core/improvement_loop.h"
#include "desi/generator.h"

namespace dif::core {
namespace {

std::unique_ptr<desi::SystemData> crisis_like_system(std::uint64_t seed) {
  return desi::Generator::generate(
      {.hosts = 4,
       .components = 10,
       .reliability = {0.5, 0.95},
       .bandwidth = {200.0, 800.0},
       .frequency = {1.0, 4.0},
       .event_size = {0.1, 0.5},
       .link_density = 1.0,
       .interaction_density = 0.3},
      seed);
}

TEST(Centralized, WorkloadsGenerateModeledTraffic) {
  auto system = crisis_like_system(1);
  FrameworkConfig config;
  config.enable_monitoring = true;
  config.enable_admin_reporting = false;  // poll monitors directly
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(10'000.0);

  const auto stats = inst.workload_stats();
  // Expected events over 10 s: sum of interaction frequencies * 10.
  const double expected =
      system->model().total_interaction_frequency() * 10.0;
  EXPECT_NEAR(static_cast<double>(stats.sent), expected, expected * 0.2);
  EXPECT_GT(stats.received, 0u);
  // Losses only from link reliability: received <= sent.
  EXPECT_LE(stats.received, stats.sent);
}

TEST(Centralized, MonitoringPopulatesTheModel) {
  auto system = crisis_like_system(2);
  // Blank out the runtime-monitored parameters; design time does not know
  // them (paper Section 4.3: frequencies/reliability come from monitors).
  const model::DeploymentModel snapshot_model_check = [&] {
    model::DeploymentModel m;  // placeholder; we just keep frequencies
    return m;
  }();
  (void)snapshot_model_check;
  std::vector<double> true_freqs;
  for (const model::Interaction& ix : system->model().interactions())
    true_freqs.push_back(ix.frequency);

  FrameworkConfig config;
  config.admin.report_interval_ms = 1000.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 1.0;  // lenient: report quickly
  config.reliability.interval_ms = 200.0;
  config.reliability.pings_per_round = 8;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(30'000.0);

  EXPECT_GT(inst.adapter().reports_received(), 0u);
  // Monitored frequencies should be close to the modelled ones.
  std::size_t close = 0, counted = 0;
  const auto interactions = system->model().interactions();
  for (std::size_t i = 0; i < interactions.size(); ++i) {
    ++counted;
    if (std::abs(interactions[i].frequency - true_freqs[i]) <
        0.35 * true_freqs[i] + 0.5)
      ++close;
  }
  EXPECT_GT(counted, 0u);
  EXPECT_GE(static_cast<double>(close) / counted, 0.7);
}

TEST(Centralized, RuntimeDeploymentMatchesInitial) {
  auto system = crisis_like_system(3);
  FrameworkConfig config;
  CentralizedInstantiation inst(*system, config);
  EXPECT_EQ(inst.runtime_deployment(), system->deployment());
}

TEST(Centralized, EffectorMovesRunningComponents) {
  auto system = crisis_like_system(4);
  FrameworkConfig config;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(1000.0);

  // Ask the adapter to move every component to host 0 (it fits: generator
  // memories are generous; if not, the test still checks the protocol on
  // the movable subset — feasibility is not the effector's concern).
  model::Deployment target(system->model().component_count());
  for (std::size_t c = 0; c < target.size(); ++c)
    target.assign(static_cast<model::ComponentId>(c), 0);
  bool done = false;
  ASSERT_TRUE(inst.adapter().effect(
      target, [&](bool success, std::size_t) { done = success; }));
  inst.simulator().run_until(120'000.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(inst.runtime_deployment(), target);
  // Workloads keep running after migration.
  const auto before = inst.workload_stats();
  inst.simulator().run_until(130'000.0);
  EXPECT_GT(inst.workload_stats().sent, before.sent);
}

TEST(ImprovementLoop, RaisesAvailabilityOnTheRunningSystem) {
  auto system = crisis_like_system(5);
  const model::AvailabilityObjective availability;
  const double initial =
      availability.evaluate(system->model(), system->deployment());

  FrameworkConfig config;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_epsilon = 2.0;  // effectively always stable
  config.admin.stability_window = 2;
  CentralizedInstantiation inst(*system, config);
  inst.start();

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = 0.005;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  loop.start();
  inst.simulator().run_until(120'000.0);

  EXPECT_GE(loop.history().size(), 10u);
  EXPECT_GE(loop.redeployments_applied(), 1u);
  const double final_value =
      availability.evaluate(system->model(), system->deployment());
  EXPECT_GT(final_value, initial);
  // The runtime ground truth agrees with the model's deployment.
  EXPECT_EQ(inst.runtime_deployment(), system->deployment());
}

TEST(ImprovementLoop, TickSkipsWhileRedeploying) {
  auto system = crisis_like_system(6);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  ImprovementLoop::Config loop_config;
  loop_config.policy.min_improvement = 0.0001;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  const analyzer::Decision first = loop.tick();
  if (first.action == analyzer::Decision::Action::kRedeploy) {
    const analyzer::Decision second = loop.tick();  // still in flight
    EXPECT_NE(second.reason.find("in flight"), std::string::npos);
  }
}

TEST(Decentralized, LocalModelsLearnOnlyAdjacentLinks) {
  auto system = desi::Generator::generate(
      {.hosts = 4,
       .components = 8,
       .reliability = {0.6, 0.9},
       .link_density = 0.0,  // spanning tree only: sparse
       .interaction_density = 0.4},
      7);
  // Perturb the design-time reliabilities so monitoring has something to
  // correct: set every link's modelled reliability to 0.5 in local copies.
  DecentralizedInstantiation::Config config;
  config.base.reliability.interval_ms = 100.0;
  config.base.reliability.pings_per_round = 16;
  DecentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(60'000.0);
  inst.refresh_local_models();

  const model::DeploymentModel& truth = system->model();
  for (std::size_t h = 0; h < 4; ++h) {
    const auto host = static_cast<model::HostId>(h);
    const model::DeploymentModel& local = inst.local_model(host).model();
    for (std::size_t g = 0; g < 4; ++g) {
      const auto peer = static_cast<model::HostId>(g);
      if (g == h || !truth.connected(host, peer)) continue;
      // Adjacent link: measured reliability near the true value.
      EXPECT_NEAR(local.physical_link(host, peer).reliability,
                  truth.physical_link(host, peer).reliability, 0.12)
          << "host " << h << " peer " << g;
    }
  }
}

TEST(Decentralized, AuctionSweepImprovesAvailability) {
  auto system = desi::Generator::generate(
      {.hosts = 5,
       .components = 14,
       .reliability = {0.4, 0.95},
       .link_density = 0.6,
       .interaction_density = 0.35},
      8);
  const model::AvailabilityObjective availability;
  const double initial =
      availability.evaluate(system->model(), system->deployment());

  DecentralizedInstantiation::Config config;
  DecentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(2'000.0);

  std::size_t total_moves = 0;
  for (int round = 0; round < 6; ++round) {
    inst.refresh_local_models();
    total_moves += inst.auction_sweep(100 + round);
    inst.simulator().run_until(inst.simulator().now() + 20'000.0);
  }
  const model::Deployment final_deployment = inst.runtime_deployment();
  ASSERT_TRUE(final_deployment.complete()) << "a component was lost";
  const double final_value =
      availability.evaluate(system->model(), final_deployment);
  EXPECT_GE(final_value + 1e-9, initial);
  if (total_moves > 0) EXPECT_GT(final_value, initial);
  EXPECT_GT(inst.stats().auctions, 0u);
}

TEST(Decentralized, ConstraintsSurviveAuctions) {
  auto system = desi::Generator::generate(
      {.hosts = 4,
       .components = 10,
       .link_density = 1.0,
       .location_constraints = 3,
       .anti_colocation_pairs = 2},
      9);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  DecentralizedInstantiation::Config config;
  DecentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(2'000.0);
  for (int round = 0; round < 4; ++round) {
    inst.refresh_local_models();
    inst.auction_sweep(50 + round);
    inst.simulator().run_until(inst.simulator().now() + 20'000.0);
  }
  const model::Deployment final_deployment = inst.runtime_deployment();
  ASSERT_TRUE(final_deployment.complete());
  EXPECT_TRUE(checker.feasible(final_deployment));
}

}  // namespace
}  // namespace dif::core

// ---- appended scenarios ------------------------------------------------

namespace dif::core {
namespace {

TEST(Centralized, DeterministicEndToEnd) {
  const auto run_once = [](std::uint64_t seed) {
    auto system = crisis_like_system(seed);
    FrameworkConfig config;
    config.seed = seed;
    CentralizedInstantiation inst(*system, config);
    inst.start();
    inst.simulator().run_until(20'000.0);
    const auto stats = inst.workload_stats();
    return std::pair{stats.sent, stats.received};
  };
  const auto a = run_once(31);
  const auto b = run_once(31);
  EXPECT_EQ(a, b);
  const auto c = run_once(32);
  EXPECT_NE(a, c);  // different seed, different drop pattern
}

TEST(ImprovementLoop, MonitorsTrackPartitionAndRecovery) {
  // Three hosts in a line; the a--b link dies and heals. Both interacting
  // components are pinned (x on a, y on b), so no redeployment can dodge
  // the outage: the test verifies the monitoring path — the ping monitors
  // must drive the modelled availability down during the outage and back
  // up after the heal, while the analyzer correctly keeps the deployment.
  auto system = std::make_unique<desi::SystemData>();
  model::DeploymentModel& m = system->model();
  const model::HostId a = m.add_host({.name = "a", .memory_capacity = 256});
  const model::HostId b = m.add_host({.name = "b", .memory_capacity = 256});
  const model::HostId c = m.add_host({.name = "c", .memory_capacity = 256});
  m.set_physical_link(a, b, {.reliability = 0.95, .bandwidth = 500,
                             .delay_ms = 5});
  m.set_physical_link(b, c, {.reliability = 0.90, .bandwidth = 300,
                             .delay_ms = 10});
  const model::ComponentId x = m.add_component({.name = "x", .memory_size = 8});
  const model::ComponentId y = m.add_component({.name = "y", .memory_size = 8});
  m.set_logical_link(x, y, {.frequency = 5.0, .avg_event_size = 0.5});
  system->constraints().pin(x, a);
  system->constraints().pin(y, b);
  (void)c;
  system->sync_deployment_size();
  model::Deployment initial(2);
  initial.assign(x, a);
  initial.assign(y, b);
  system->set_deployment(initial);

  FrameworkConfig config;
  // The deployer's host mediates transfers between non-adjacent hosts, so
  // in a line topology it must sit in the middle.
  config.master_host = b;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 0.5;
  config.reliability.interval_ms = 250.0;
  CentralizedInstantiation inst(*system, config);
  sim::PartitionSchedule partitions(inst.network());
  partitions.add_outage(a, b, 30'000.0, 60'000.0);

  const model::AvailabilityObjective availability;
  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = 0.01;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  inst.simulator().run_until(120'000.0);

  // During the outage the monitored a--b reliability collapsed...
  bool saw_collapse = false;
  for (const ImprovementLoop::TickRecord& tick : loop.history())
    if (tick.time_ms > 35'000.0 && tick.time_ms < 60'000.0 &&
        tick.objective_value < 0.5)
      saw_collapse = true;
  EXPECT_TRUE(saw_collapse);
  // ...and after the heal the monitored availability recovered.
  const double final_value =
      availability.evaluate(system->model(), system->deployment());
  EXPECT_GT(final_value, 0.8);
  // With both components pinned, the analyzer could never usefully
  // redeploy anything.
  EXPECT_EQ(loop.redeployments_applied(), 0u);
  EXPECT_EQ(system->deployment(), initial);
}

TEST(Centralized, StoreAndForwardPreservesTrafficAcrossOutage) {
  auto system = crisis_like_system(44);
  FrameworkConfig with_queue;
  with_queue.enable_monitoring = false;
  with_queue.enable_store_and_forward = true;
  with_queue.store_and_forward_retry_ms = 250.0;
  CentralizedInstantiation queued(*system, with_queue);
  sim::PartitionSchedule outage(queued.network());
  outage.add_outage(0, 1, 2'000.0, 6'000.0);
  queued.start();
  queued.simulator().run_until(20'000.0);
  const auto q = queued.workload_stats();

  auto system2 = crisis_like_system(44);
  FrameworkConfig without_queue;
  without_queue.enable_monitoring = false;
  CentralizedInstantiation plain(*system2, without_queue);
  sim::PartitionSchedule outage2(plain.network());
  outage2.add_outage(0, 1, 2'000.0, 6'000.0);
  plain.start();
  plain.simulator().run_until(20'000.0);
  const auto p = plain.workload_stats();

  // Same workload, same outage: the queued variant delivers at least as
  // many events (those held during the outage arrive after the heal).
  EXPECT_GE(q.received, p.received);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(Decentralized, RatificationCanVetoEveryMove) {
  auto system = desi::Generator::generate(
      {.hosts = 5, .components = 14, .link_density = 0.8,
       .interaction_density = 0.3},
      55);
  DecentralizedInstantiation::Config config;
  config.ratify_moves = true;
  config.vote_tolerance = -1e9;  // nobody ever accepts
  DecentralizedInstantiation fleet(*system, config);
  fleet.start();
  fleet.simulator().run_until(2'000.0);
  fleet.refresh_local_models();
  const std::size_t moves = fleet.auction_sweep(1);
  EXPECT_EQ(moves, 0u);
  EXPECT_GT(fleet.votes_held(), 0u);
  EXPECT_EQ(fleet.votes_rejected(), fleet.votes_held());
  EXPECT_EQ(fleet.runtime_deployment(), system->deployment());
}

TEST(Decentralized, RatifiedSweepStillImproves) {
  auto system = desi::Generator::generate(
      {.hosts = 5, .components = 14, .link_density = 0.8,
       .interaction_density = 0.3},
      56);
  const model::AvailabilityObjective availability;
  const double initial =
      availability.evaluate(system->model(), system->deployment());

  DecentralizedInstantiation::Config config;
  config.ratify_moves = true;
  config.vote_tolerance = 0.5;  // accept mild local losses
  DecentralizedInstantiation fleet(*system, config);
  fleet.start();
  fleet.simulator().run_until(2'000.0);
  std::size_t moves = 0;
  for (int round = 0; round < 5; ++round) {
    fleet.refresh_local_models();
    moves += fleet.auction_sweep(10 + round);
    fleet.simulator().run_until(fleet.simulator().now() + 20'000.0);
  }
  const model::Deployment final_deployment = fleet.runtime_deployment();
  ASSERT_TRUE(final_deployment.complete());
  const double final_value =
      availability.evaluate(system->model(), final_deployment);
  EXPECT_GE(final_value + 1e-9, initial);
  EXPECT_GT(fleet.votes_held(), 0u);
  // Votes that passed actually became migrations.
  if (moves > 0) EXPECT_LT(fleet.votes_rejected(), fleet.votes_held());
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

/// The crisis topology on which Avala's greedy stalls (it keeps the
/// planners at the best-connected host) but hill-climbing improves —
/// exactly the situation the escalation ladder exists for.
std::unique_ptr<desi::SystemData> avala_stall_system() {
  auto system = std::make_unique<desi::SystemData>();
  model::DeploymentModel& m = system->model();
  const model::HostId hq = m.add_host({.name = "hq", .memory_capacity = 1024});
  const model::HostId cmd1 =
      m.add_host({.name = "cmd1", .memory_capacity = 96});
  const model::HostId cmd2 =
      m.add_host({.name = "cmd2", .memory_capacity = 96});
  std::vector<model::HostId> troops;
  for (int i = 0; i < 4; ++i)
    troops.push_back(m.add_host(
        {.name = "troop" + std::to_string(i), .memory_capacity = 48}));
  const auto link = [&](model::HostId a, model::HostId b, double rel) {
    m.set_physical_link(a, b, {.reliability = rel, .bandwidth = 500,
                               .delay_ms = 10});
  };
  link(hq, cmd1, 0.95);
  link(hq, cmd2, 0.90);
  link(cmd1, cmd2, 0.75);
  link(cmd1, troops[0], 0.65);
  link(cmd1, troops[1], 0.60);
  link(cmd2, troops[2], 0.70);
  link(cmd2, troops[3], 0.55);
  const model::ComponentId map =
      m.add_component({.name = "map", .memory_size = 64});
  const model::ComponentId p1 =
      m.add_component({.name = "planner1", .memory_size = 24});
  const model::ComponentId p2 =
      m.add_component({.name = "planner2", .memory_size = 24});
  std::vector<model::ComponentId> trackers;
  for (int i = 0; i < 4; ++i)
    trackers.push_back(m.add_component(
        {.name = "tracker" + std::to_string(i), .memory_size = 12}));
  const auto interact = [&](model::ComponentId a, model::ComponentId b,
                            double freq) {
    m.set_logical_link(a, b, {.frequency = freq, .avg_event_size = 0.5});
  };
  interact(map, p1, 5.0);
  interact(map, p2, 5.0);
  for (std::size_t i = 0; i < trackers.size(); ++i)
    interact(trackers[i], i < 2 ? p1 : p2, 8.0);
  system->constraints().pin(map, hq);
  for (std::size_t i = 0; i < trackers.size(); ++i)
    system->constraints().pin(trackers[i], troops[i]);
  system->sync_deployment_size();
  model::Deployment initial(m.component_count());
  initial.assign(map, hq);
  initial.assign(p1, hq);
  initial.assign(p2, hq);
  for (std::size_t i = 0; i < trackers.size(); ++i)
    initial.assign(trackers[i], troops[i]);
  system->set_deployment(initial);
  return system;
}

TEST(ImprovementLoop, EscalationRescuesAStalledGreedy) {
  auto system = avala_stall_system();
  const model::AvailabilityObjective availability;
  const double initial =
      availability.evaluate(system->model(), system->deployment());

  FrameworkConfig config;
  config.admin.stability_epsilon = 2.0;
  config.admin.stability_window = 2;
  CentralizedInstantiation inst(*system, config);

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.exact_max_components = 0;  // force the large-system path
  loop_config.policy.stability_epsilon = 2.0;   // always "stable"
  loop_config.policy.stable_algorithm = "avala";
  loop_config.policy.unstable_algorithm = "avala";
  loop_config.policy.min_improvement = 0.01;
  loop_config.policy.enable_latency_guard = false;
  loop_config.enable_escalation = true;
  loop_config.escalation = {.ladder = {"avala", "hillclimb"},
                            .stall_threshold = 2};
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  inst.simulator().run_until(120'000.0);

  EXPECT_GE(loop.escalation().escalations(), 1u);
  EXPECT_GE(loop.redeployments_applied(), 1u);
  const double final_value =
      availability.evaluate(system->model(), system->deployment());
  EXPECT_GT(final_value, initial + 0.05);
  // At least one applied redeployment came from the escalated algorithm.
  bool hillclimb_redeployed = false;
  for (const ImprovementLoop::TickRecord& tick : loop.history())
    if (tick.action == analyzer::Decision::Action::kRedeploy &&
        tick.algorithm == "hillclimb")
      hillclimb_redeployed = true;
  EXPECT_TRUE(hillclimb_redeployed);
}

TEST(Modifier, DrainHostForcesEvacuationThroughTheLoop) {
  auto system = crisis_like_system(66);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  config.admin.stability_epsilon = 2.0;
  config.admin.stability_window = 2;
  CentralizedInstantiation inst(*system, config);
  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = -1.0;  // any feasible change allowed
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  inst.simulator().run_until(20'000.0);

  // The device at host 3 reports a dying battery: drain it.
  desi::Modifier modifier(*system);
  const auto unmovable = modifier.drain_host(3);
  EXPECT_TRUE(unmovable.empty());
  inst.simulator().run_until(150'000.0);

  const model::Deployment final_runtime = inst.runtime_deployment();
  ASSERT_TRUE(final_runtime.complete());
  EXPECT_TRUE(final_runtime.components_on(3).empty())
      << "host 3 should have been evacuated";
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  EXPECT_TRUE(checker.feasible(final_runtime));
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(Centralized, HostRadioFailureIsObservedAndSurvived) {
  auto system = crisis_like_system(77);
  FrameworkConfig config;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 0.5;
  config.reliability.interval_ms = 250.0;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(10'000.0);

  // Host 2 goes dark (radio/battery death) for 20 simulated seconds.
  inst.network().fail_host(2);
  inst.simulator().run_until(30'000.0);
  // The ping monitors have reported the links to host 2 as dead.
  for (std::size_t h = 0; h < system->model().host_count(); ++h) {
    const auto host = static_cast<model::HostId>(h);
    if (host == 2 || !system->model().connected(host, 2)) continue;
    EXPECT_LT(system->model().physical_link(host, 2).reliability, 0.1)
        << "monitors should see host 2 as unreachable from " << h;
  }

  inst.network().recover_host(2);
  inst.simulator().run_until(60'000.0);
  // Traffic flows again and the monitored reliabilities recover.
  bool some_link_recovered = false;
  for (std::size_t h = 0; h < system->model().host_count(); ++h) {
    const auto host = static_cast<model::HostId>(h);
    if (host == 2 || !system->model().connected(host, 2)) continue;
    if (system->model().physical_link(host, 2).reliability > 0.4)
      some_link_recovered = true;
  }
  EXPECT_TRUE(some_link_recovered);
  const auto stats = inst.workload_stats();
  EXPECT_GT(stats.received, 0u);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(ImprovementLoop, AdaptiveIntervalBacksOffWhenQuiescent) {
  auto system = crisis_like_system(88);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  config.enable_monitoring = false;
  CentralizedInstantiation inst(*system, config);

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 1'000.0;
  loop_config.adaptive_interval = true;
  loop_config.backoff_factor = 2.0;
  loop_config.max_interval_ms = 8'000.0;
  loop_config.policy.min_improvement = 10.0;  // nothing ever redeploys
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  inst.simulator().run_until(60'000.0);

  // Quiescent: 1s, 2s, 4s, 8s, 8s, ... -> interval capped at the max.
  EXPECT_DOUBLE_EQ(loop.current_interval_ms(), 8'000.0);
  // Tick spacing in the history grows monotonically until the cap.
  const auto& history = loop.history();
  ASSERT_GE(history.size(), 4u);
  EXPECT_NEAR(history[1].time_ms - history[0].time_ms, 2'000.0, 1.0);
  EXPECT_NEAR(history[2].time_ms - history[1].time_ms, 4'000.0, 1.0);
  // Far fewer ticks than a fixed 1 s cadence would have produced.
  EXPECT_LT(history.size(), 15u);
}

TEST(ImprovementLoop, AdaptiveIntervalResetsOnRedeployment) {
  auto system = crisis_like_system(89);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  // Monitoring must stay on: it is what feeds effected redeployments back
  // into the model, letting the loop reach quiescence.
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 1.0;
  CentralizedInstantiation inst(*system, config);

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 1'000.0;
  loop_config.adaptive_interval = true;
  loop_config.backoff_factor = 4.0;
  loop_config.max_interval_ms = 16'000.0;
  loop_config.policy.min_improvement = 0.001;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  // The first tick redeploys (scattered initial deployment is improvable):
  inst.simulator().run_until(1'100.0);
  ASSERT_FALSE(loop.history().empty());
  if (loop.history().front().action == analyzer::Decision::Action::kRedeploy)
    EXPECT_DOUBLE_EQ(loop.current_interval_ms(), 1'000.0);
  // Eventually quiescent: the interval climbs.
  inst.simulator().run_until(120'000.0);
  EXPECT_GT(loop.current_interval_ms(), 1'000.0);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(Decentralized, GossipDiffusesMeasurementsHopByHop) {
  // Line topology a--b--c. Component x on a sends to y on b; the sender's
  // host (a) measures the frequency. Gossip round 1 teaches b; round 2
  // teaches c (via b, which owns an endpoint of the interaction). Host-
  // scoped link data must NOT leak: c never learns the a--b reliability,
  // since it is not aware of host a.
  auto system = std::make_unique<desi::SystemData>();
  model::DeploymentModel& m = system->model();
  const model::HostId a = m.add_host({.name = "a", .memory_capacity = 256});
  const model::HostId b = m.add_host({.name = "b", .memory_capacity = 256});
  const model::HostId c = m.add_host({.name = "c", .memory_capacity = 256});
  m.set_physical_link(a, b, {.reliability = 0.9, .bandwidth = 1000,
                             .delay_ms = 1});
  m.set_physical_link(b, c, {.reliability = 0.9, .bandwidth = 1000,
                             .delay_ms = 1});
  const model::ComponentId x = m.add_component({.name = "x", .memory_size = 4});
  const model::ComponentId y = m.add_component({.name = "y", .memory_size = 4});
  // Design-time estimate is wrong (1.0); truth will be monitored as ~6.0.
  m.set_logical_link(x, y, {.frequency = 6.0, .avg_event_size = 0.2});
  system->sync_deployment_size();
  model::Deployment initial(2);
  initial.assign(x, a);
  initial.assign(y, b);
  system->set_deployment(initial);

  DecentralizedInstantiation::Config config;
  DecentralizedInstantiation fleet(*system, config);
  // Corrupt every local model's belief about the frequency so gossip has
  // something observable to fix.
  for (model::HostId h = 0; h < 3; ++h) {
    model::DeploymentModel& lm =
        const_cast<desi::SystemData&>(fleet.local_model(h)).model();
    model::LogicalLink link = lm.logical_link(x, y);
    link.frequency = 0.001;
    lm.set_logical_link(x, y, std::move(link));
  }

  fleet.start();
  fleet.simulator().run_until(20'000.0);
  fleet.refresh_local_models();
  // The sender's host measured the real frequency; b and c still believe
  // the corrupted value.
  EXPECT_NEAR(fleet.local_model(a).model().logical_link(x, y).frequency, 6.0,
              1.5);
  EXPECT_LT(fleet.local_model(b).model().logical_link(x, y).frequency, 1.0);
  EXPECT_LT(fleet.local_model(c).model().logical_link(x, y).frequency, 1.0);

  // Round 1: a's gossip reaches its neighbor b.
  const std::size_t sent = fleet.gossip_sync();
  EXPECT_GT(sent, 0u);
  fleet.simulator().run_until(fleet.simulator().now() + 5'000.0);
  EXPECT_NEAR(fleet.local_model(b).model().logical_link(x, y).frequency, 6.0,
              1.5);
  EXPECT_LT(fleet.local_model(c).model().logical_link(x, y).frequency, 1.0)
      << "c is not a's neighbor and must not have learned yet";

  // Round 2: b owns an endpoint (y), so its gossip carries the frequency
  // on to c — knowledge diffuses hop by hop.
  fleet.gossip_sync();
  fleet.simulator().run_until(fleet.simulator().now() + 5'000.0);
  EXPECT_NEAR(fleet.local_model(c).model().logical_link(x, y).frequency, 6.0,
              1.5);
  // ...but c must not have merged the a--b link reliability: it is not
  // aware of host a. Poison c's belief and verify gossip leaves it alone.
  model::DeploymentModel& cm =
      const_cast<desi::SystemData&>(fleet.local_model(c)).model();
  cm.set_link_reliability(a, b, 0.123);
  fleet.gossip_sync();
  fleet.simulator().run_until(fleet.simulator().now() + 5'000.0);
  EXPECT_DOUBLE_EQ(cm.physical_link(a, b).reliability, 0.123);
}

TEST(Decentralized, GossipImprovesAuctionQuality) {
  // With badly wrong local frequency beliefs, auctions misfire; gossip
  // repairs the models and the sweeps then do at least as well.
  auto build = [](bool with_gossip) {
    auto system = desi::Generator::generate(
        {.hosts = 5, .components = 14, .link_density = 0.7,
         .interaction_density = 0.3},
        91);
    const model::AvailabilityObjective availability;
    DecentralizedInstantiation::Config config;
    DecentralizedInstantiation fleet(*system, config);
    fleet.start();
    fleet.simulator().run_until(5'000.0);
    for (int round = 0; round < 4; ++round) {
      fleet.refresh_local_models();
      if (with_gossip) {
        fleet.gossip_sync();
        fleet.simulator().run_until(fleet.simulator().now() + 2'000.0);
      }
      fleet.auction_sweep(70 + round);
      fleet.simulator().run_until(fleet.simulator().now() + 20'000.0);
    }
    return availability.evaluate(system->model(),
                                 fleet.runtime_deployment());
  };
  const double with = build(true);
  const double without = build(false);
  // Gossip never hurts; on this seed the models start from the truthful
  // design description, so parity is acceptable.
  EXPECT_GE(with + 0.05, without);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(Centralized, ScalesToTwentyHostsSixtyComponents) {
  // Sanity/scale: the full middleware stack with monitoring on a larger
  // system runs a minute of simulated time and stays consistent.
  auto system = desi::Generator::generate(
      {.hosts = 20,
       .components = 60,
       .link_density = 0.4,
       .interaction_density = 0.1},
      123);
  FrameworkConfig config;
  config.admin.report_interval_ms = 2'000.0;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(60'000.0);
  const auto stats = inst.workload_stats();
  EXPECT_GT(stats.sent, 1000u);
  EXPECT_GT(stats.received, 0u);
  EXPECT_LE(stats.received, stats.sent);
  EXPECT_TRUE(inst.runtime_deployment().complete());
  EXPECT_GT(inst.adapter().reports_received(), 0u);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(ImprovementLoop, TracksRealizedRedeploymentResults) {
  auto system = crisis_like_system(97);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 1.0;
  CentralizedInstantiation inst(*system, config);
  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = 0.01;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  inst.start();
  loop.start();
  inst.simulator().run_until(90'000.0);

  ASSERT_GE(loop.redeployments_applied(), 1u);
  bool some_realized = false;
  for (const analyzer::RedeploymentRecord& record :
       loop.profile().redeployments()) {
    if (record.applied && record.has_realized) {
      some_realized = true;
      // Prediction and reality should roughly agree: the model's estimate
      // is based on monitored parameters of the same system.
      EXPECT_NEAR(record.realized, record.value_after, 0.25);
    }
  }
  EXPECT_TRUE(some_realized);
  EXPECT_LT(loop.profile().mean_prediction_error(), 0.25);
}

}  // namespace
}  // namespace dif::core

namespace dif::core {
namespace {

TEST(Centralized, ConstructorValidatesConfiguration) {
  auto system = crisis_like_system(99);
  {
    FrameworkConfig config;
    config.master_host = 99;  // out of range
    EXPECT_THROW(CentralizedInstantiation inst(*system, config),
                 std::invalid_argument);
  }
  {
    // Incomplete deployment is rejected.
    auto incomplete = crisis_like_system(99);
    model::Deployment d(incomplete->model().component_count());
    incomplete->set_deployment(d);
    FrameworkConfig config;
    EXPECT_THROW(CentralizedInstantiation inst(*incomplete, config),
                 std::invalid_argument);
  }
}

TEST(Centralized, MonitoringDisabledStillRunsWorkloads) {
  auto system = crisis_like_system(101);
  FrameworkConfig config;
  config.enable_monitoring = false;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(5'000.0);
  EXPECT_GT(inst.workload_stats().sent, 0u);
  EXPECT_EQ(inst.adapter().reports_received(), 0u);
  EXPECT_EQ(inst.freq_monitor(0), nullptr);
  EXPECT_EQ(inst.reliability_monitor(0), nullptr);
}

}  // namespace
}  // namespace dif::core
