// Chaos layer: scenario presets, deterministic fault-schedule compilation,
// the injector's inject/heal lifecycle, per-link drop accounting, and the
// end-to-end campaign runner's invariant checking (chaos/scenario.h,
// chaos/fault_schedule.h, chaos/campaign.h).
#include "chaos/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "chaos/fault_schedule.h"
#include "chaos/scenario.h"
#include "desi/generator.h"
#include "util/json.h"

namespace dif::chaos {
namespace {

TEST(Scenario, PresetsResolveByName) {
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec spec = scenario_by_name(name);
    EXPECT_EQ(spec.name, name);
  }
  EXPECT_THROW(scenario_by_name("no-such-scenario"), std::invalid_argument);
}

TEST(Scenario, QuietHasNoFaults) {
  const ScenarioSpec quiet = scenario_by_name("quiet");
  EXPECT_EQ(quiet.partitions + quiet.loss_bursts + quiet.degradations +
                quiet.crashes + quiet.noise_bursts,
            0u);
}

desi::GeneratorSpec small_system() {
  desi::GeneratorSpec spec;
  spec.hosts = 5;
  spec.components = 10;
  spec.link_density = 0.5;
  spec.interaction_density = 0.3;
  return spec;
}

TEST(FaultSchedule, CompilationIsDeterministic) {
  const auto system = desi::Generator::generate(small_system(), 11);
  const ScenarioSpec spec = scenario_by_name("mixed");
  const FaultSchedule one = FaultSchedule::compile(spec, system->model(), 0, 3);
  const FaultSchedule two = FaultSchedule::compile(spec, system->model(), 0, 3);
  ASSERT_EQ(one.actions().size(), two.actions().size());
  for (std::size_t i = 0; i < one.actions().size(); ++i) {
    EXPECT_EQ(one.actions()[i].kind, two.actions()[i].kind);
    EXPECT_EQ(one.actions()[i].at_ms, two.actions()[i].at_ms);
    EXPECT_EQ(one.actions()[i].duration_ms, two.actions()[i].duration_ms);
    EXPECT_EQ(one.actions()[i].a, two.actions()[i].a);
    EXPECT_EQ(one.actions()[i].b, two.actions()[i].b);
  }
  // A different seed draws a different concrete schedule.
  const FaultSchedule other =
      FaultSchedule::compile(spec, system->model(), 0, 4);
  bool differs = other.actions().size() != one.actions().size();
  for (std::size_t i = 0; !differs && i < one.actions().size(); ++i)
    differs = one.actions()[i].at_ms != other.actions()[i].at_ms ||
              one.actions()[i].a != other.actions()[i].a ||
              one.actions()[i].b != other.actions()[i].b;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, ActionsRespectWindowTopologyAndMaster) {
  const auto system = desi::Generator::generate(small_system(), 11);
  const model::DeploymentModel& m = system->model();
  const ScenarioSpec spec = scenario_by_name("mixed");
  const FaultSchedule schedule = FaultSchedule::compile(spec, m, 0, 3);
  EXPECT_FALSE(schedule.actions().empty());
  for (const FaultAction& action : schedule.actions()) {
    EXPECT_GE(action.at_ms, spec.fault_from_ms);
    EXPECT_LE(action.at_ms + action.duration_ms, spec.fault_until_ms);
    if (action.kind == FaultKind::kCrash) {
      EXPECT_NE(action.a, 0u);  // crash_master defaults to false
    } else {
      EXPECT_LT(action.a, action.b);  // canonical link endpoints
      EXPECT_TRUE(m.connected(action.a, action.b));
    }
  }
  EXPECT_TRUE(std::is_sorted(
      schedule.actions().begin(), schedule.actions().end(),
      [](const FaultAction& x, const FaultAction& y) {
        return x.at_ms < y.at_ms;
      }));
}

TEST(FaultInjector, PartitionInjectsAndHeals) {
  auto system = desi::Generator::generate(small_system(), 11);
  core::CentralizedInstantiation inst(*system, {});
  ScenarioSpec spec = scenario_by_name("partitions");
  const FaultSchedule schedule =
      FaultSchedule::compile(spec, system->model(), 0, 3);
  ASSERT_FALSE(schedule.actions().empty());
  FaultInjector injector(inst, {});
  injector.arm(schedule);

  const FaultAction& first = schedule.actions().front();
  // Mid-fault: the link is severed; after the heal it carries traffic again.
  inst.simulator().run_until(first.at_ms + 1.0);
  EXPECT_TRUE(inst.network().link(first.a, first.b).severed);
  inst.simulator().run_until(spec.fault_until_ms + 1.0);
  EXPECT_FALSE(inst.network().link(first.a, first.b).severed);
  EXPECT_GT(injector.injected().at("partition"), 0u);
}

TEST(FaultInjector, CrashedHostRestarts) {
  auto system = desi::Generator::generate(small_system(), 11);
  core::CentralizedInstantiation inst(*system, {});
  ScenarioSpec spec = scenario_by_name("crashes");
  const FaultSchedule schedule =
      FaultSchedule::compile(spec, system->model(), 0, 3);
  ASSERT_FALSE(schedule.actions().empty());
  FaultInjector injector(inst, {});
  injector.arm(schedule);

  const FaultAction& crash = schedule.actions().front();
  ASSERT_EQ(crash.kind, FaultKind::kCrash);
  inst.simulator().run_until(crash.at_ms + 1.0);
  EXPECT_TRUE(inst.admin(crash.a).crashed());
  inst.simulator().run_until(spec.fault_until_ms + 1.0);
  EXPECT_FALSE(inst.admin(crash.a).crashed());
  EXPECT_EQ(injector.injected().at("crash"), schedule.actions().size());
}

TEST(Network, PerLinkDropSharesMatchTotal) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, 3, /*seed=*/1);
  net.set_link(0, 1, {.reliability = 0.5, .bandwidth = 1000.0,
                      .delay_ms = 1.0});
  net.set_link(1, 2, {.reliability = 0.9, .bandwidth = 1000.0,
                      .delay_ms = 1.0});
  for (int i = 0; i < 400; ++i) {
    net.send({.from = 0, .to = 1, .channel = "t", .payload = {},
              .size_kb = 0.1});
    net.send({.from = 1, .to = 2, .channel = "t", .payload = {},
              .size_kb = 0.1});
  }
  sim.run_until(10'000.0);
  std::uint64_t per_link = 0;
  for (const sim::LinkDrops& link : net.dropped_links())
    per_link += link.dropped;
  EXPECT_EQ(per_link, net.stats().dropped);
  // The lossier link accounts for visibly more of the total.
  EXPECT_GT(net.link_dropped(0, 1), net.link_dropped(1, 2));
  EXPECT_GT(net.link_dropped(1, 2), 0u);
}

TEST(Campaign, RunIsCleanAndReportsDeterministically) {
  CampaignConfig config;
  config.seeds = {3};
  CampaignRunner runner(config);
  const CampaignReport report = runner.run();
  ASSERT_EQ(report.runs.size(), 2u);  // centralized + decentralized
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs[0].mode, "centralized");
  EXPECT_EQ(report.runs[1].mode, "decentralized");
  for (const RunReport& run : report.runs) {
    EXPECT_EQ(run.seed, 3u);
    EXPECT_GT(run.actions_scheduled, 0u);
    EXPECT_GT(run.net_sent, 0u);
    EXPECT_GT(run.initial_availability, 0.0);
  }

  // Same config, fresh runner: the serialized report is byte-identical.
  CampaignRunner again(config);
  EXPECT_EQ(report.to_json().dump(2), again.run().to_json().dump(2));

  const util::json::Value doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "dif-campaign-v1");
  EXPECT_EQ(doc.at("total_runs").as_number(), 2.0);
}

}  // namespace
}  // namespace dif::chaos
