// Tests for the store-and-forward extension (paper §6 future work:
// "queuing of remote calls" during disconnection).
#include <gtest/gtest.h>

#include "prism/architecture.h"
#include "prism/distribution.h"

namespace dif::prism {
namespace {

class Probe final : public Component {
 public:
  explicit Probe(std::string name) : Component(std::move(name)) {}
  void handle(const Event& event) override { received.push_back(event); }
  [[nodiscard]] std::string type_name() const override { return "probe"; }
  std::vector<Event> received;
};

struct Bed {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 2, 1};
  SimScaffold scaffold{sim};
  Architecture arch0{"a0", scaffold, 0};
  Architecture arch1{"a1", scaffold, 1};
  DistributionConnector* d0 = nullptr;
  DistributionConnector* d1 = nullptr;
  Probe* sender = nullptr;
  Probe* sink = nullptr;

  Bed() {
    net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1000.0,
                        .delay_ms = 2.0});
    d0 = &static_cast<DistributionConnector&>(arch0.add_connector(
        std::make_unique<DistributionConnector>("d0", net, 0)));
    d1 = &static_cast<DistributionConnector&>(arch1.add_connector(
        std::make_unique<DistributionConnector>("d1", net, 1)));
    d0->add_peer(1);
    d1->add_peer(0);
    sender = &static_cast<Probe&>(
        arch0.add_component(std::make_unique<Probe>("sender")));
    sink = &static_cast<Probe&>(
        arch1.add_component(std::make_unique<Probe>("sink")));
    arch0.weld(*sender, *d0);
    arch1.weld(*sink, *d1);
    d0->set_location("sink", 1);
    d1->set_location("sender", 0);
  }

  void send_directed(const std::string& name) {
    Event e(name);
    e.set_to("sink");
    sender->send(std::move(e));
  }
};

TEST(StoreAndForward, DisabledMeansLossDuringPartition) {
  Bed bed;
  bed.net.sever(0, 1);
  bed.send_directed("m1");
  bed.send_directed("m2");
  bed.sim.run_until(10'000.0);
  EXPECT_TRUE(bed.sink->received.empty());
  EXPECT_EQ(bed.d0->undeliverable_remote(), 2u);
  bed.net.restore(0, 1);
  bed.sim.run_until(20'000.0);
  EXPECT_TRUE(bed.sink->received.empty());  // gone for good
}

TEST(StoreAndForward, QueuesAndFlushesInOrderAfterHeal) {
  Bed bed;
  bed.d0->enable_store_and_forward(/*retry_interval_ms=*/500.0);
  bed.net.sever(0, 1);
  bed.send_directed("m1");
  bed.send_directed("m2");
  bed.send_directed("m3");
  bed.sim.run_until(5'000.0);
  EXPECT_TRUE(bed.sink->received.empty());
  EXPECT_EQ(bed.d0->queued_messages(), 3u);
  EXPECT_EQ(bed.d0->undeliverable_remote(), 0u);

  bed.net.restore(0, 1);
  bed.sim.run_until(10'000.0);
  ASSERT_EQ(bed.sink->received.size(), 3u);
  EXPECT_EQ(bed.sink->received[0].name(), "m1");
  EXPECT_EQ(bed.sink->received[1].name(), "m2");
  EXPECT_EQ(bed.sink->received[2].name(), "m3");
  EXPECT_EQ(bed.d0->queued_messages(), 0u);
  EXPECT_EQ(bed.d0->flushed_messages(), 3u);
}

TEST(StoreAndForward, BoundedQueueDropsOldest) {
  Bed bed;
  bed.d0->enable_store_and_forward(500.0, /*max_queued=*/2);
  bed.net.sever(0, 1);
  bed.send_directed("old");
  bed.send_directed("mid");
  bed.send_directed("new");
  bed.sim.run_until(2'000.0);
  EXPECT_EQ(bed.d0->queued_messages(), 2u);
  bed.net.restore(0, 1);
  bed.sim.run_until(5'000.0);
  ASSERT_EQ(bed.sink->received.size(), 2u);
  EXPECT_EQ(bed.sink->received[0].name(), "mid");
  EXPECT_EQ(bed.sink->received[1].name(), "new");
}

TEST(StoreAndForward, ConnectedTrafficBypassesQueue) {
  Bed bed;
  bed.d0->enable_store_and_forward();
  bed.send_directed("direct");
  bed.sim.run_until(1'000.0);
  ASSERT_EQ(bed.sink->received.size(), 1u);
  EXPECT_EQ(bed.d0->queued_messages(), 0u);
  EXPECT_EQ(bed.d0->flushed_messages(), 0u);
}

TEST(StoreAndForward, RepeatedOutagesKeepQueueConsistent) {
  Bed bed;
  bed.d0->enable_store_and_forward(250.0);
  for (int cycle = 0; cycle < 3; ++cycle) {
    bed.net.sever(0, 1);
    bed.send_directed("burst" + std::to_string(cycle));
    bed.sim.run_until(bed.sim.now() + 2'000.0);
    bed.net.restore(0, 1);
    bed.sim.run_until(bed.sim.now() + 2'000.0);
  }
  EXPECT_EQ(bed.sink->received.size(), 3u);
  EXPECT_EQ(bed.d0->queued_messages(), 0u);
}

}  // namespace
}  // namespace dif::prism
