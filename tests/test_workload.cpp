// Unit tests for WorkloadComponent (core/workload.h): traffic generation,
// state serialization, and schedule survival across migration.
#include "core/workload.h"

#include <gtest/gtest.h>

#include "prism/architecture.h"
#include "prism/distribution.h"
#include "sim/network.h"

namespace dif::core {
namespace {

struct Bed {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 2, 1};
  prism::SimScaffold scaffold{sim};
  prism::Architecture arch0{"a0", scaffold, 0};
  prism::Architecture arch1{"a1", scaffold, 1};
  prism::DistributionConnector* d0 = nullptr;
  prism::DistributionConnector* d1 = nullptr;

  Bed() {
    net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1e6,
                        .delay_ms = 1.0});
    d0 = &static_cast<prism::DistributionConnector&>(arch0.add_connector(
        std::make_unique<prism::DistributionConnector>("d0", net, 0)));
    d1 = &static_cast<prism::DistributionConnector&>(arch1.add_connector(
        std::make_unique<prism::DistributionConnector>("d1", net, 1)));
    d0->add_peer(1);
    d1->add_peer(0);
  }
};

TEST(Workload, SendsAtConfiguredFrequency) {
  Bed bed;
  auto& producer = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "producer", 4.0,
          std::vector<WorkloadComponent::Link>{{"consumer", 5.0, 0.5}})));
  bed.arch0.weld(producer, *bed.d0);
  auto& consumer = static_cast<WorkloadComponent&>(
      bed.arch1.add_component(std::make_unique<WorkloadComponent>(
          "consumer", 4.0, std::vector<WorkloadComponent::Link>{})));
  bed.arch1.weld(consumer, *bed.d1);
  bed.d0->set_location("consumer", 1);

  producer.start();
  bed.sim.run_until(10'000.0);  // 10 s at 5 evt/s
  EXPECT_NEAR(static_cast<double>(producer.events_sent()), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(consumer.events_received()), 50.0, 2.0);
}

TEST(Workload, ZeroFrequencyLinkSendsNothing) {
  Bed bed;
  auto& quiet = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "quiet", 1.0,
          std::vector<WorkloadComponent::Link>{{"peer", 0.0, 1.0}})));
  bed.arch0.weld(quiet, *bed.d0);
  quiet.start();
  bed.sim.run_until(5'000.0);
  EXPECT_EQ(quiet.events_sent(), 0u);
}

TEST(Workload, StateSerializationRoundTrips) {
  WorkloadComponent original(
      "w", 7.5,
      {{"a", 2.0, 0.25}, {"b", 3.5, 1.0}});
  prism::ByteWriter writer;
  original.serialize_state(writer);

  WorkloadComponent restored("w");
  const auto bytes = writer.take();
  prism::ByteReader reader(bytes);
  restored.restore_state(reader);
  EXPECT_DOUBLE_EQ(restored.memory_kb(), 7.5);

  // Round-trip again and compare byte-for-byte (stable encoding).
  prism::ByteWriter writer2;
  restored.serialize_state(writer2);
  EXPECT_EQ(bytes, writer2.take());
}

TEST(Workload, MemoryReportedToMonitoring) {
  const WorkloadComponent w("w", 12.5, {});
  EXPECT_DOUBLE_EQ(w.memory_kb(), 12.5);
  EXPECT_EQ(w.type_name(), "workload");
}

TEST(Workload, FactoryRegistrationCreatesBlankInstance) {
  prism::ComponentFactory factory;
  WorkloadComponent::register_with(factory);
  ASSERT_TRUE(factory.contains("workload"));
  const auto component = factory.create("workload", "fresh");
  EXPECT_EQ(component->name(), "fresh");
  EXPECT_EQ(component->type_name(), "workload");
}

TEST(Workload, NoDuplicateScheduleAfterRestart) {
  Bed bed;
  auto& producer = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "producer", 1.0,
          std::vector<WorkloadComponent::Link>{{"consumer", 10.0, 0.1}})));
  bed.arch0.weld(producer, *bed.d0);
  auto& consumer = static_cast<WorkloadComponent&>(
      bed.arch1.add_component(std::make_unique<WorkloadComponent>(
          "consumer", 1.0, std::vector<WorkloadComponent::Link>{})));
  bed.arch1.weld(consumer, *bed.d1);
  bed.d0->set_location("consumer", 1);

  producer.start();
  producer.start();  // double-start must not double the rate
  bed.sim.run_until(10'000.0);
  EXPECT_NEAR(static_cast<double>(producer.events_sent()), 100.0, 5.0);
}

}  // namespace
}  // namespace dif::core
