// Unit tests for WorkloadComponent (core/workload.h): traffic generation,
// state serialization, and schedule survival across migration.
#include "core/workload.h"

#include <gtest/gtest.h>

#include "prism/architecture.h"
#include "prism/distribution.h"
#include "sim/network.h"

namespace dif::core {
namespace {

struct Bed {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 2, 1};
  prism::SimScaffold scaffold{sim};
  prism::Architecture arch0{"a0", scaffold, 0};
  prism::Architecture arch1{"a1", scaffold, 1};
  prism::DistributionConnector* d0 = nullptr;
  prism::DistributionConnector* d1 = nullptr;

  Bed() {
    net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1e6,
                        .delay_ms = 1.0});
    d0 = &static_cast<prism::DistributionConnector&>(arch0.add_connector(
        std::make_unique<prism::DistributionConnector>("d0", net, 0)));
    d1 = &static_cast<prism::DistributionConnector&>(arch1.add_connector(
        std::make_unique<prism::DistributionConnector>("d1", net, 1)));
    d0->add_peer(1);
    d1->add_peer(0);
  }
};

TEST(Workload, SendsAtConfiguredFrequency) {
  Bed bed;
  auto& producer = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "producer", 4.0,
          std::vector<WorkloadComponent::Link>{{"consumer", 5.0, 0.5}})));
  bed.arch0.weld(producer, *bed.d0);
  auto& consumer = static_cast<WorkloadComponent&>(
      bed.arch1.add_component(std::make_unique<WorkloadComponent>(
          "consumer", 4.0, std::vector<WorkloadComponent::Link>{})));
  bed.arch1.weld(consumer, *bed.d1);
  bed.d0->set_location("consumer", 1);

  producer.start();
  bed.sim.run_until(10'000.0);  // 10 s at 5 evt/s
  EXPECT_NEAR(static_cast<double>(producer.events_sent()), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(consumer.events_received()), 50.0, 2.0);
}

TEST(Workload, ZeroFrequencyLinkSendsNothing) {
  Bed bed;
  auto& quiet = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "quiet", 1.0,
          std::vector<WorkloadComponent::Link>{{"peer", 0.0, 1.0}})));
  bed.arch0.weld(quiet, *bed.d0);
  quiet.start();
  bed.sim.run_until(5'000.0);
  EXPECT_EQ(quiet.events_sent(), 0u);
}

TEST(Workload, StateSerializationRoundTrips) {
  WorkloadComponent original(
      "w", 7.5,
      {{"a", 2.0, 0.25}, {"b", 3.5, 1.0}});
  prism::ByteWriter writer;
  original.serialize_state(writer);

  WorkloadComponent restored("w");
  const auto bytes = writer.take();
  prism::ByteReader reader(bytes);
  restored.restore_state(reader);
  EXPECT_DOUBLE_EQ(restored.memory_kb(), 7.5);

  // Round-trip again and compare byte-for-byte (stable encoding).
  prism::ByteWriter writer2;
  restored.serialize_state(writer2);
  EXPECT_EQ(bytes, writer2.take());
}

TEST(Workload, MemoryReportedToMonitoring) {
  const WorkloadComponent w("w", 12.5, {});
  EXPECT_DOUBLE_EQ(w.memory_kb(), 12.5);
  EXPECT_EQ(w.type_name(), "workload");
}

TEST(Workload, FactoryRegistrationCreatesBlankInstance) {
  prism::ComponentFactory factory;
  WorkloadComponent::register_with(factory);
  ASSERT_TRUE(factory.contains("workload"));
  const auto component = factory.create("workload", "fresh");
  EXPECT_EQ(component->name(), "fresh");
  EXPECT_EQ(component->type_name(), "workload");
}

TEST(Workload, NoDuplicateScheduleAfterRestart) {
  Bed bed;
  auto& producer = static_cast<WorkloadComponent&>(
      bed.arch0.add_component(std::make_unique<WorkloadComponent>(
          "producer", 1.0,
          std::vector<WorkloadComponent::Link>{{"consumer", 10.0, 0.1}})));
  bed.arch0.weld(producer, *bed.d0);
  auto& consumer = static_cast<WorkloadComponent&>(
      bed.arch1.add_component(std::make_unique<WorkloadComponent>(
          "consumer", 1.0, std::vector<WorkloadComponent::Link>{})));
  bed.arch1.weld(consumer, *bed.d1);
  bed.d0->set_location("consumer", 1);

  producer.start();
  producer.start();  // double-start must not double the rate
  bed.sim.run_until(10'000.0);
  EXPECT_NEAR(static_cast<double>(producer.events_sent()), 100.0, 5.0);
}

}  // namespace
}  // namespace dif::core

// ---------------------------------------------------------------------------
// Composable adversarial workloads (chaos/workload.h): region-aware layers,
// suspend semantics, and deterministic stacking.
// ---------------------------------------------------------------------------

#include <map>
#include <set>

#include "chaos/workload.h"
#include "core/improvement_loop.h"
#include "desi/generator.h"

namespace dif::chaos {
namespace {

desi::GeneratorSpec regional_spec(std::size_t hosts, std::size_t regions) {
  desi::GeneratorSpec spec;
  spec.hosts = hosts;
  spec.components = hosts * 2;
  spec.link_density = 1.0;
  spec.regions = regions;
  return spec;
}

bool same_action(const FaultAction& x, const FaultAction& y) {
  return x.kind == y.kind && x.at_ms == y.at_ms &&
         x.duration_ms == y.duration_ms && x.a == y.a && x.b == y.b;
}

TEST(Workload, KillRegionIsCorrelatedAndHonorsRegionTopology) {
  const auto system = desi::Generator::generate(regional_spec(6, 3), 9);
  const model::DeploymentModel& m = system->model();
  ASSERT_EQ(m.region_count(), 3u);

  WorkloadSpec ws("region-kill");
  ws.kill_region();
  const FaultSchedule schedule = ws.compile(m, /*master=*/0, /*seed=*/4);
  ASSERT_FALSE(schedule.actions().empty());

  // All crashes share one window (correlated zone failure), target exactly
  // one region, and never the master.
  const std::size_t region = m.host_region(schedule.actions().front().a);
  std::set<model::HostId> hit;
  for (const FaultAction& action : schedule.actions()) {
    EXPECT_EQ(action.kind, FaultKind::kCrash);
    EXPECT_EQ(action.at_ms, schedule.actions().front().at_ms);
    EXPECT_EQ(action.duration_ms, schedule.actions().front().duration_ms);
    EXPECT_EQ(m.host_region(action.a), region);
    EXPECT_NE(action.a, 0u);
    hit.insert(action.a);
  }
  // Every killable host of the chosen region goes down with it.
  for (std::size_t h = 1; h < m.host_count(); ++h)
    if (m.host_region(static_cast<model::HostId>(h)) == region)
      EXPECT_TRUE(hit.count(static_cast<model::HostId>(h)));
}

TEST(Workload, PinnedKillRegionRespectsThePin) {
  const auto system = desi::Generator::generate(regional_spec(6, 3), 9);
  WorkloadSpec ws;
  ws.kill_region(2);
  const FaultSchedule schedule =
      ws.compile(system->model(), /*master=*/0, /*seed=*/4);
  ASSERT_FALSE(schedule.actions().empty());
  for (const FaultAction& action : schedule.actions())
    EXPECT_EQ(system->model().host_region(action.a), 2u);
}

TEST(Workload, RollingRestartIsStaggeredAndSkipsMaster) {
  const auto system = desi::Generator::generate(regional_spec(5, 1), 9);
  WorkloadSpec ws;
  ws.rolling_restart(/*down_ms=*/5'000.0, /*stagger_ms=*/1'000.0);
  const FaultSchedule schedule =
      ws.compile(system->model(), /*master=*/0, /*seed=*/1);
  ASSERT_EQ(schedule.actions().size(), 4u);  // hosts 1..4, not the master
  std::set<model::HostId> hit;
  double last_heal = 0.0;
  for (const FaultAction& action : schedule.actions()) {
    EXPECT_EQ(action.kind, FaultKind::kCrash);
    EXPECT_NE(action.a, 0u);
    EXPECT_TRUE(hit.insert(action.a).second);  // one outage per host
    EXPECT_GE(action.at_ms, last_heal);        // never two hosts down at once
    last_heal = action.at_ms + action.duration_ms;
  }
}

TEST(Workload, SuspendPreservesComponentStateAcrossResume) {
  const auto system = desi::Generator::generate(regional_spec(4, 1), 3);
  const std::size_t hosts = system->model().host_count();
  core::FrameworkConfig fc;
  fc.seed = 3;
  core::CentralizedInstantiation inst(*system, fc);

  WorkloadSpec ws("suspend");
  ws.suspend_processes(2);
  const FaultSchedule schedule = ws.compile(system->model(), 0, 7);
  ASSERT_EQ(schedule.actions().size(), 2u);
  for (const FaultAction& action : schedule.actions())
    EXPECT_EQ(action.kind, FaultKind::kSuspend);

  FaultInjector injector(inst, {});
  injector.arm(schedule);

  // Snapshot each host's component census before any fault fires.
  std::map<model::HostId, std::vector<std::string>> before;
  inst.simulator().schedule_at(schedule.actions().front().at_ms - 1.0, [&] {
    for (std::size_t h = 0; h < hosts; ++h)
      before[static_cast<model::HostId>(h)] =
          inst.architecture(static_cast<model::HostId>(h)).component_names();
  });
  // Mid-suspension the host is off the wire...
  const FaultAction& first = schedule.actions().front();
  bool was_down = false;
  inst.simulator().schedule_at(first.at_ms + first.duration_ms / 2, [&] {
    was_down = !inst.network().host_up(first.a);
  });

  inst.start();
  inst.simulator().run_until(schedule.spec().duration_ms);
  EXPECT_TRUE(was_down);

  // ...but unlike a crash, nothing is lost: every host still runs exactly
  // the components it ran before (no restart, no state reset, no
  // re-deployment needed).
  for (std::size_t h = 0; h < hosts; ++h) {
    EXPECT_TRUE(inst.network().host_up(static_cast<model::HostId>(h)));
    EXPECT_EQ(
        inst.architecture(static_cast<model::HostId>(h)).component_names(),
        before[static_cast<model::HostId>(h)])
        << "host " << h;
  }
}

TEST(Workload, StackedLayersComposeDeterministicallyAndPrefixStable) {
  const auto system = desi::Generator::generate(regional_spec(6, 3), 9);
  ScenarioSpec mixed = scenario_by_name("mixed");

  WorkloadSpec shallow("stacked");
  shallow.add_scenario(mixed);

  WorkloadSpec deep("stacked");
  deep.add_scenario(mixed);
  deep.suspend_processes(2);
  deep.kill_region();
  deep.rolling_restart();

  const FaultSchedule a = deep.compile(system->model(), 0, 11);
  const FaultSchedule b = deep.compile(system->model(), 0, 11);
  ASSERT_EQ(a.actions().size(), b.actions().size());
  for (std::size_t i = 0; i < a.actions().size(); ++i)
    EXPECT_TRUE(same_action(a.actions()[i], b.actions()[i])) << "action " << i;

  // Prefix stability: stacking more layers never changes what the earlier
  // layers drew — every shallow action survives verbatim in the deep
  // schedule.
  const FaultSchedule prefix = shallow.compile(system->model(), 0, 11);
  ASSERT_FALSE(prefix.actions().empty());
  EXPECT_GT(a.actions().size(), prefix.actions().size());
  for (const FaultAction& want : prefix.actions()) {
    bool found = false;
    for (const FaultAction& got : a.actions())
      if (same_action(want, got)) {
        found = true;
        break;
      }
    EXPECT_TRUE(found) << "layer-0 action at " << want.at_ms
                       << "ms vanished when layers were stacked";
  }
}

}  // namespace
}  // namespace dif::chaos
