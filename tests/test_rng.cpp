// Unit tests for the deterministic RNG (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dif::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GE(differing, 15);
}

TEST(Xoshiro, SameSeedSameSequence) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformIsInUnitInterval) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256ss rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(Xoshiro, UniformMeanIsCentered) {
  Xoshiro256ss rng(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformIntCoversInclusiveRange) {
  Xoshiro256ss rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit
}

TEST(Xoshiro, UniformIntSingleton) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9u);
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256ss rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Xoshiro, ChanceFrequencyTracksProbability) {
  Xoshiro256ss rng(9);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Xoshiro, NormalMomentsRoughlyCorrect) {
  Xoshiro256ss rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Xoshiro, ForkProducesIndependentStreams) {
  Xoshiro256ss parent(11);
  Xoshiro256ss a = parent.fork(1);
  Xoshiro256ss b = parent.fork(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a() != b()) ++differing;
  EXPECT_GE(differing, 31);
}

TEST(Xoshiro, ForkIsDeterministic) {
  Xoshiro256ss p1(12), p2(12);
  Xoshiro256ss a = p1.fork(99);
  Xoshiro256ss b = p2.fork(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ShuffleIsPermutation) {
  Xoshiro256ss rng(13);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(Xoshiro, IndexStaysInBounds) {
  Xoshiro256ss rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

class UniformIntRangeTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(UniformIntRangeTest, AlwaysWithinBounds) {
  const auto [lo, hi] = GetParam();
  Xoshiro256ss rng(lo * 31 + hi);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRangeTest,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{0, 2},
                      std::pair<std::uint64_t, std::uint64_t>{5, 100},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 1003},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1'000'000}));

}  // namespace
}  // namespace dif::util
