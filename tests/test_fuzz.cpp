// Protocol fuzzer (chaos/fuzz.h): SimNetwork interception semantics,
// fixed-draw masking, seed determinism of whole fuzz reports, and the
// pinned regression corpus over the transactional-redeployment and
// custody-transfer protocols.
#include "chaos/fuzz.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "prism/distribution.h"
#include "prism/event.h"
#include "sim/network.h"

namespace dif::chaos {
namespace {

// --- raw SimNetwork fuzz-hook semantics ------------------------------------

struct NetFixture {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 2, /*seed=*/1};
  std::vector<sim::NetMessage> received;
  std::vector<double> arrival_ms;

  NetFixture() {
    net.set_link(0, 1,
                 {.reliability = 1.0, .bandwidth = 1e9, .delay_ms = 5.0});
    for (model::HostId h = 0; h < 2; ++h)
      net.set_receiver(h, [this](const sim::NetMessage& m) {
        received.push_back(m);
        arrival_ms.push_back(sim.now());
      });
  }

  sim::NetMessage msg(const std::string& tag) {
    sim::NetMessage m;
    m.from = 0;
    m.to = 1;
    m.channel = tag;
    m.size_kb = 0.0;
    return m;
  }
};

TEST(FuzzHook, DropSuppressesDeliveryAndIsCharged) {
  NetFixture f;
  f.net.set_fuzz_hook([](const sim::NetMessage&) {
    sim::FuzzDecision d;
    d.drop = true;
    return d;
  });
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(f.net.send(f.msg("test")));
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().sent, 10u);
  EXPECT_EQ(f.net.stats().dropped, 10u);
  // Fuzz drops are charged to the link like reliability losses.
  ASSERT_EQ(f.net.dropped_links().size(), 1u);
  EXPECT_EQ(f.net.dropped_links()[0].dropped, 10u);
}

TEST(FuzzHook, DuplicateDeliversExtraCopies) {
  NetFixture f;
  bool fuzzed = false;  // mutate only the first message
  f.net.set_fuzz_hook(
      [&fuzzed](const sim::NetMessage&) -> std::optional<sim::FuzzDecision> {
        if (fuzzed) return std::nullopt;
        fuzzed = true;
        sim::FuzzDecision d;
        d.duplicates = 2;
        d.duplicate_gap_ms = 50.0;
        return d;
      });
  EXPECT_TRUE(f.net.send(f.msg("test")));
  f.sim.run();
  // Original + 2 copies, each a full send of its own.
  EXPECT_EQ(f.received.size(), 3u);
  EXPECT_EQ(f.net.stats().sent, 3u);
  EXPECT_EQ(f.net.stats().delivered, 3u);
}

TEST(FuzzHook, ReorderOvertakesInterveningTraffic) {
  NetFixture f;
  int seen = 0;
  f.net.set_fuzz_hook(
      [&seen](const sim::NetMessage&) -> std::optional<sim::FuzzDecision> {
        if (seen++ != 0) return std::nullopt;
        // Drop the original, redeliver one copy 100ms later: the first
        // message must arrive after the second.
        sim::FuzzDecision d;
        d.drop = true;
        d.duplicates = 1;
        d.duplicate_gap_ms = 100.0;
        return d;
      });
  EXPECT_TRUE(f.net.send(f.msg("first")));
  EXPECT_TRUE(f.net.send(f.msg("second")));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0].channel, "second");
  EXPECT_EQ(f.received[1].channel, "first");
  EXPECT_LT(f.arrival_ms[0], f.arrival_ms[1]);
}

TEST(FuzzHook, DelayPostponesDelivery) {
  NetFixture f;
  f.net.set_fuzz_hook([](const sim::NetMessage&) {
    sim::FuzzDecision d;
    d.delay_ms = 500.0;
    return d;
  });
  EXPECT_TRUE(f.net.send(f.msg("test")));
  f.sim.run();
  ASSERT_EQ(f.arrival_ms.size(), 1u);
  EXPECT_GE(f.arrival_ms[0], 505.0);  // fuzz delay + link delay
}

// --- ProtocolFuzzer decision stream ----------------------------------------

sim::NetMessage protocol_msg(const std::string& event_name) {
  sim::NetMessage m;
  m.from = 0;
  m.to = 1;
  m.channel = prism::kEventChannel;
  m.payload = prism::Event(event_name).serialize();
  return m;
}

FuzzPolicy always_fire() {
  FuzzPolicy policy;
  policy.mutation_rate = 1.0;
  return policy;
}

TEST(ProtocolFuzzer, IgnoresNonEventChannelsAndUntargetedEvents) {
  ProtocolFuzzer fuzzer(always_fire(), /*seed=*/5);
  sim::NetMessage raw;
  raw.channel = "monitor";
  EXPECT_FALSE(fuzzer.decide(raw).has_value());
  EXPECT_FALSE(fuzzer.decide(protocol_msg("app_event")).has_value());
  EXPECT_EQ(fuzzer.targeted(), 0u);
  EXPECT_TRUE(fuzzer.decide(protocol_msg("__prepare_ack")).has_value());
  EXPECT_EQ(fuzzer.targeted(), 1u);
}

TEST(ProtocolFuzzer, MaskingSuppressesWithoutShiftingLaterDecisions) {
  // Reference stream: every targeted message mutates.
  ProtocolFuzzer reference(always_fire(), /*seed=*/5);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(reference.decide(protocol_msg("__migration_ack")).has_value());
  ASSERT_EQ(reference.applied().size(), 4u);

  // Masking ordinal 1 suppresses exactly that mutation; every other
  // decision (kind, magnitude) is unchanged — the fixed-draw discipline.
  ProtocolFuzzer masked(always_fire(), /*seed=*/5);
  masked.set_disabled({1});
  std::vector<bool> fired;
  for (int i = 0; i < 4; ++i)
    fired.push_back(masked.decide(protocol_msg("__migration_ack")).has_value());
  EXPECT_EQ(fired, (std::vector<bool>{true, false, true, true}));
  ASSERT_EQ(masked.applied().size(), 3u);
  for (const MutationRecord& m : masked.applied())
    EXPECT_NE(m.ordinal, 1u);
  EXPECT_EQ(masked.applied()[1].kind, reference.applied()[2].kind);
  EXPECT_EQ(masked.applied()[1].magnitude_ms,
            reference.applied()[2].magnitude_ms);
}

// --- whole-run determinism and the pinned regression corpus -----------------

FuzzConfig quick_config(std::uint64_t seed, std::size_t rounds) {
  FuzzConfig config;
  config.seed = seed;
  config.rounds = rounds;
  return config;
}

TEST(FuzzRunner, SameSeedYieldsByteIdenticalReports) {
  FuzzRunner one(quick_config(7, 2));
  FuzzRunner two(quick_config(7, 2));
  EXPECT_EQ(one.run().to_json().dump(2), two.run().to_json().dump(2));
}

// Pinned regression corpus: seeds 0..2 exercise drop/delay/duplicate/
// reorder across the txn (__prepare, __prepare_ack, __migration_ack,
// __new_config) and custody (__request_component, __component_transfer,
// __transfer_ack, __location_update) protocols, and every campaign
// invariant must hold under them. A change that breaks one of these seeds
// has changed protocol behavior under adversarial scheduling.
TEST(FuzzRegression, PinnedSeedsHoldAllInvariants) {
  const FuzzReport report = FuzzRunner(quick_config(0, 3)).run();
  ASSERT_EQ(report.rounds.size(), 3u);
  std::set<std::string> kinds;
  std::set<std::string> events;
  for (const FuzzRound& round : report.rounds) {
    EXPECT_FALSE(round.failed) << "seed " << round.seed;
    for (const InvariantViolation& v : round.report.violations)
      ADD_FAILURE() << "seed " << round.seed << ": " << v.invariant << ": "
                    << v.detail;
    EXPECT_GT(round.mutations.size(), 0u);
    for (const auto& [kind, n] : round.mutation_counts)
      if (n > 0) kinds.insert(kind);
    for (const MutationRecord& m : round.mutations) events.insert(m.event);
  }
  // The corpus must keep covering the duplicate/reorder edges of both
  // protocols — that is what pins the stale-ack and custody fixes.
  EXPECT_TRUE(kinds.count("duplicate"));
  EXPECT_TRUE(kinds.count("reorder"));
  EXPECT_TRUE(kinds.count("drop"));
  EXPECT_TRUE(kinds.count("delay"));
  EXPECT_TRUE(events.count("__migration_ack"));
  EXPECT_TRUE(events.count("__prepare_ack"));
  EXPECT_TRUE(events.count("__component_transfer"));
  EXPECT_TRUE(events.count("__transfer_ack"));
  EXPECT_TRUE(events.count("__location_update"));
}

// Known-bad seed 5 — the standing shrinker demonstration, asserted as an
// EXPECTED failure (xfail): drop+reorder of rollback-phase messages makes
// the epoch-5 rollback time out with compensations unconfirmed, leaving a
// component at its commit target while the `rollback_failed` round
// declares it back at the checkpoint without listing it unresolved — a
// torn placement the atomicity invariant flags. This is a genuine
// weakness of the two-phase effector under adversarial scheduling (the
// rollback path has no second-level compensation retry), documented here
// and in docs/fuzzing.md rather than hidden; the day the protocol is
// hardened, this test flips to the green corpus above. The shrinker
// assertions pin the ddmin-lite contract: the minimal trace must be
// non-growing AND must reproduce the *original* invariant — an earlier
// shrinker accepted any failing replay, so the "minimal" trace could
// drift onto a different bug than the one it was shrinking.
TEST(FuzzRegression, KnownBadSeedFiveTornPlacementShrinksOnBug) {
  FuzzConfig config = quick_config(5, 1);
  config.shrink_budget = 16;  // enough to shrink, cheap enough for a test
  const FuzzReport report = FuzzRunner(config).run();
  ASSERT_EQ(report.rounds.size(), 1u);
  const FuzzRound& round = report.rounds[0];
  ASSERT_TRUE(round.failed) << "seed 5 no longer violates atomicity: the "
                               "torn-placement defect appears fixed — move "
                               "this seed to the pinned green corpus";
  // The torn placement is the root violation; the stranded component also
  // leaves the converged placement worse than the initial one, so the
  // availability invariant fires as collateral on the same round.
  bool torn = false;
  for (const InvariantViolation& v : round.report.violations)
    torn = torn || v.invariant == "atomicity";
  EXPECT_TRUE(torn) << "seed 5 still fails, but no longer by atomicity — "
                       "re-triage the root cause before re-pinning";
  // ddmin-lite contract: non-growing, budget-bounded, and still failing on
  // the original invariant (round.minimal is by construction the applied
  // trace of the last accepted failing replay).
  EXPECT_LE(round.minimal.size(), round.mutations.size());
  EXPECT_LT(round.minimal.size(), round.mutations.size())
      << "shrinker made no progress within budget";
  EXPECT_LE(round.shrink_runs, config.shrink_budget);
}

}  // namespace
}  // namespace dif::chaos
