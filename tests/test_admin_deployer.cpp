// Integration tests for the monitoring + redeployment protocol:
// AdminComponent, DeployerComponent, ComponentFactory, event buffering,
// transfer retransmission, and deployer mediation (prism/admin.h,
// prism/deployer.h).
#include "prism/deployer.h"

#include <gtest/gtest.h>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prism/architecture.h"

namespace dif::prism {
namespace {

/// Migratable test component with observable state.
class Counter final : public Component {
 public:
  explicit Counter(std::string name) : Component(std::move(name)) {}
  void handle(const Event& event) override {
    if (event.name() == "app.tick") ++count;
  }
  [[nodiscard]] std::string type_name() const override { return "counter"; }
  void serialize_state(ByteWriter& w) const override { w.u64(count); }
  void restore_state(ByteReader& r) override { count = r.u64(); }
  [[nodiscard]] double memory_kb() const override { return 4.0; }
  std::uint64_t count = 0;
};

/// A small distributed testbed: `k` hosts in a line or a star around host 0.
struct Testbed {
  sim::Simulator sim;
  sim::SimNetwork net;
  SimScaffold scaffold{sim};
  ComponentFactory factory;
  std::vector<std::unique_ptr<Architecture>> archs;
  std::vector<DistributionConnector*> connectors;
  std::vector<AdminComponent*> admins;
  DeployerComponent* deployer = nullptr;

  explicit Testbed(std::size_t k, double reliability = 1.0,
                   bool star = false, AdminComponent::Params admin_params = {},
                   double redeploy_timeout_ms = 20'000.0,
                   double renotify_interval_ms = 4'000.0)
      : net(sim, k, 1) {
    factory.register_type("counter", [](std::string name) {
      return std::make_unique<Counter>(std::move(name));
    });
    for (std::size_t h = 0; h < k; ++h) {
      archs.push_back(std::make_unique<Architecture>(
          "arch" + std::to_string(h), scaffold,
          static_cast<model::HostId>(h)));
      connectors.push_back(&static_cast<DistributionConnector&>(
          archs[h]->add_connector(std::make_unique<DistributionConnector>(
              "dist" + std::to_string(h), net,
              static_cast<model::HostId>(h)))));
    }
    // Topology: star around host 0, or a full mesh.
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        if (star && a != 0) continue;
        net.set_link(static_cast<model::HostId>(a),
                     static_cast<model::HostId>(b),
                     {.reliability = reliability, .bandwidth = 1000.0,
                      .delay_ms = 1.0});
        connectors[a]->add_peer(static_cast<model::HostId>(b));
        connectors[b]->add_peer(static_cast<model::HostId>(a));
      }
    }
    std::vector<model::HostId> all_hosts;
    for (std::size_t h = 0; h < k; ++h)
      all_hosts.push_back(static_cast<model::HostId>(h));
    for (std::size_t h = 0; h < k; ++h) {
      connectors[h]->set_mediator(0);
      for (std::size_t g = 0; g < k; ++g)
        connectors[h]->set_location(admin_name(static_cast<model::HostId>(g)),
                                    static_cast<model::HostId>(g));
      connectors[h]->set_location(deployer_name(), 0);
      auto admin = std::make_unique<AdminComponent>(
          static_cast<model::HostId>(h), *connectors[h], factory, nullptr,
          nullptr, admin_params);
      admins.push_back(&static_cast<AdminComponent&>(
          archs[h]->add_component(std::move(admin))));
      archs[h]->weld(*admins[h], *connectors[h]);
    }
    DeployerComponent::DeployerParams params;
    params.admin_hosts = all_hosts;
    params.redeploy_timeout_ms = redeploy_timeout_ms;
    params.renotify_interval_ms = renotify_interval_ms;
    auto dep = std::make_unique<DeployerComponent>(
        0, *connectors[0], factory, nullptr, nullptr, admin_params, params);
    deployer = &static_cast<DeployerComponent&>(
        archs[0]->add_component(std::move(dep)));
    archs[0]->weld(*deployer, *connectors[0]);
  }

  Counter& place_counter(std::size_t host, const std::string& name) {
    auto& counter = static_cast<Counter&>(
        archs[host]->add_component(std::make_unique<Counter>(name)));
    archs[host]->weld(counter, *connectors[host]);
    for (auto* connector : connectors)
      connector->set_location(name, static_cast<model::HostId>(host));
    return counter;
  }
};

TEST(Migration, MovesComponentWithState) {
  Testbed bed(2);
  Counter& counter = bed.place_counter(0, "worker");
  counter.count = 123;

  bool done = false;
  std::size_t moved = 0;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool success, std::size_t migrations) {
        done = success;
        moved = migrations;
      }));
  bed.sim.run_until(5000.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(moved, 1u);
  EXPECT_EQ(bed.archs[0]->find_component("worker"), nullptr);
  auto* migrated =
      dynamic_cast<Counter*>(bed.archs[1]->find_component("worker"));
  ASSERT_NE(migrated, nullptr);
  EXPECT_EQ(migrated->count, 123u);  // state travelled with the component
  EXPECT_EQ(bed.admins[0]->components_shipped(), 1u);
  EXPECT_EQ(bed.admins[1]->components_received(), 1u);
}

TEST(Migration, NoOpWhenAlreadyInPlace) {
  Testbed bed(2);
  bed.place_counter(0, "worker");
  bool done = false;
  std::size_t moved = 99;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 0}}, [&](bool success, std::size_t migrations) {
        done = success;
        moved = migrations;
      }));
  EXPECT_TRUE(done);  // completes synchronously
  EXPECT_EQ(moved, 0u);
}

TEST(Migration, RejectsConcurrentRedeployments) {
  Testbed bed(2);
  bed.place_counter(0, "worker");
  ASSERT_TRUE(bed.deployer->effect_deployment({{"worker", 1}},
                                              [](bool, std::size_t) {}));
  EXPECT_TRUE(bed.deployer->redeployment_in_flight());
  EXPECT_FALSE(bed.deployer->effect_deployment({{"worker", 0}},
                                               [](bool, std::size_t) {}));
  bed.sim.run_until(5000.0);
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
}

TEST(Migration, MultipleComponentsAcrossHosts) {
  Testbed bed(3);
  bed.place_counter(0, "a");
  bed.place_counter(0, "b");
  bed.place_counter(1, "c");

  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"a", 1}, {"b", 2}, {"c", 0}},
      [&](bool success, std::size_t) { done = success; }));
  bed.sim.run_until(10'000.0);
  EXPECT_TRUE(done);
  EXPECT_NE(bed.archs[1]->find_component("a"), nullptr);
  EXPECT_NE(bed.archs[2]->find_component("b"), nullptr);
  EXPECT_NE(bed.archs[0]->find_component("c"), nullptr);
  EXPECT_EQ(bed.deployer->redeployments_completed(), 1u);
}

TEST(Migration, MediatedTransferBetweenUnconnectedHosts) {
  // Star around host 0: hosts 1 and 2 are not directly connected; the
  // transfer must ride through the deployer's host (paper Section 4.3).
  Testbed bed(3, 1.0, /*star=*/true);
  bed.place_counter(1, "edge");
  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"edge", 2}}, [&](bool success, std::size_t) { done = success; }));
  bed.sim.run_until(30'000.0);
  EXPECT_TRUE(done);
  EXPECT_NE(bed.archs[2]->find_component("edge"), nullptr);
  EXPECT_EQ(bed.archs[1]->find_component("edge"), nullptr);
}

TEST(Migration, RetransmissionSurvivesLossyLink) {
  // 60% reliability: some transfers/acks drop; retries must finish the job.
  AdminComponent::Params params;
  params.transfer_retry_interval_ms = 500.0;
  params.transfer_max_attempts = 10;
  Testbed bed(2, 0.6, false, params);
  Counter& counter = bed.place_counter(0, "fragile");
  counter.count = 7;
  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"fragile", 1}}, [&](bool success, std::size_t) { done = success; }));
  bed.sim.run_until(60'000.0);
  // Either the migration completed or timed out, but the component must
  // exist exactly once either way.
  const bool on0 = bed.archs[0]->find_component("fragile") != nullptr;
  const bool on1 = bed.archs[1]->find_component("fragile") != nullptr;
  EXPECT_NE(on0, on1) << "component lost or duplicated";
  if (done) {
    EXPECT_TRUE(on1);
    auto* migrated =
        dynamic_cast<Counter*>(bed.archs[1]->find_component("fragile"));
    ASSERT_NE(migrated, nullptr);
    EXPECT_EQ(migrated->count, 7u);
  }
}

TEST(Migration, EventsBufferedDuringFlightAreDelivered) {
  Testbed bed(2);
  Counter& counter = bed.place_counter(0, "sink");
  auto& sender = static_cast<Counter&>(bed.archs[1]->add_component(
      std::make_unique<Counter>("source")));
  bed.archs[1]->weld(sender, *bed.connectors[1]);
  for (auto* connector : bed.connectors)
    connector->set_location("source", 1);
  (void)counter;

  // Start the migration, and while it is in flight keep sending ticks at
  // the (stale) location.
  bed.deployer->effect_deployment({{"sink", 1}}, [](bool, std::size_t) {});
  for (int i = 0; i < 10; ++i) {
    bed.sim.schedule_at(i * 2.0, [&sender] {
      Event tick("app.tick");
      tick.set_to("sink");
      sender.send(std::move(tick));
    });
  }
  bed.sim.run_until(30'000.0);
  auto* migrated = dynamic_cast<Counter*>(bed.archs[1]->find_component("sink"));
  ASSERT_NE(migrated, nullptr);
  // Every tick eventually reached the component (re-routed or buffered).
  EXPECT_EQ(migrated->count, 10u);
}

TEST(Monitoring, ReportsReachDeployerAndCarryInventory) {
  AdminComponent::Params params;
  params.report_interval_ms = 500.0;
  Testbed bed(2, 1.0, false, params);
  bed.place_counter(1, "w1");
  bed.place_counter(1, "w2");

  std::vector<HostReport> reports;
  bed.deployer->set_report_handler(
      [&](const HostReport& r) { reports.push_back(r); });
  bed.admins[1]->start_reporting();
  bed.sim.run_until(2000.0);
  ASSERT_FALSE(reports.empty());
  const HostReport& latest = reports.back();
  EXPECT_EQ(latest.host, 1u);
  ASSERT_EQ(latest.components.size(), 2u);
  EXPECT_EQ(latest.components[0].name, "w1");
  EXPECT_DOUBLE_EQ(latest.components[0].memory_kb, 4.0);
  EXPECT_DOUBLE_EQ(latest.memory_kb, bed.archs[1]->total_memory_kb());
}

TEST(Monitoring, StopReportingHalts) {
  AdminComponent::Params params;
  params.report_interval_ms = 100.0;
  Testbed bed(2, 1.0, false, params);
  std::size_t count = 0;
  bed.deployer->set_report_handler([&](const HostReport&) { ++count; });
  bed.admins[1]->start_reporting();
  bed.sim.run_until(1000.0);
  const std::size_t before = count;
  EXPECT_GT(before, 0u);
  bed.admins[1]->stop_reporting();
  bed.sim.run_until(5000.0);
  EXPECT_LE(count, before + 1);
}

TEST(ComponentFactory, RegisterCreateAndErrors) {
  ComponentFactory factory;
  EXPECT_FALSE(factory.contains("counter"));
  EXPECT_THROW(factory.create("counter", "x"), std::out_of_range);
  factory.register_type("counter", [](std::string name) {
    return std::make_unique<Counter>(std::move(name));
  });
  EXPECT_TRUE(factory.contains("counter"));
  const auto component = factory.create("counter", "c1");
  EXPECT_EQ(component->name(), "c1");
  EXPECT_EQ(component->type_name(), "counter");
}

TEST(Migration, TimeoutReportsFailure) {
  AdminComponent::Params params;
  params.transfer_retry_interval_ms = 1e9;  // effectively no retries
  Testbed bed(2, 1.0, false, params);
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);  // nothing can get through

  bool completed = false;
  bool success = true;
  bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      });
  bed.sim.run_until(60'000.0);  // past the 20 s deployer timeout
  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
}

}  // namespace
}  // namespace dif::prism

namespace dif::prism {
namespace {

TEST(Migration, DuplicateFromLostAcksIsResolvedByReclaimProtocol) {
  // Deterministic construction of the nasty case: the transfer arrives at
  // the target, but the source crashes before any confirmation can reach
  // it. On recovery the source has restored a provisional copy -> two
  // copies exist. The reclaim protocol must converge back to exactly one.
  AdminComponent::Params params;
  params.transfer_retry_interval_ms = 500.0;
  params.transfer_max_attempts = 3;
  Testbed bed(2, 1.0, false, params);
  // Slow the link so there is a window between delivery and confirmation.
  bed.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1000.0,
                          .delay_ms = 500.0});
  Counter& counter = bed.place_counter(0, "dup");
  counter.count = 42;

  bed.deployer->effect_deployment({{"dup", 1}}, [](bool, std::size_t) {});
  // Two-phase timeline: prepare (0.5 s) + ack (0.5 s) + commit config
  // (0.5 s) + request (0.5 s) + transfer (0.5 s) => arrives ~2.5 s. Crash
  // the source at 2.7 s: the component is at host 1 but every ack/update
  // toward host 0 is lost.
  bed.sim.schedule_at(2'700.0, [&] { bed.net.fail_host(0); });
  // Source (still "up" CPU-wise, network-dead) exhausts its 3 retries and
  // restores a provisional copy around 2.7s + 3*0.5s.
  bed.sim.run_until(6'000.0);
  EXPECT_NE(bed.archs[0]->find_component("dup"), nullptr)
      << "source should have provisionally restored";
  EXPECT_NE(bed.archs[1]->find_component("dup"), nullptr);

  // Heal: reclaims (backed off, capped) eventually cross; the target
  // re-asserts; the provisional copy yields.
  bed.net.recover_host(0);
  bed.sim.run_until(120'000.0);
  const bool on0 = bed.archs[0]->find_component("dup") != nullptr;
  const bool on1 = bed.archs[1]->find_component("dup") != nullptr;
  EXPECT_FALSE(on0) << "provisional copy must yield";
  EXPECT_TRUE(on1);
  auto* survivor = dynamic_cast<Counter*>(bed.archs[1]->find_component("dup"));
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->count, 42u);
}

}  // namespace
}  // namespace dif::prism

// ---- fault-path + epoch-bookkeeping scenarios --------------------------

namespace dif::prism {
namespace {

TEST(Migration, TimeoutWithPartitionedAdminRecordsFailureSpan) {
  // Host 1's admin is unreachable for the whole round: the deployer must
  // time out, report failure, and leave a trace span that says so.
  AdminComponent::Params admin_params;
  admin_params.transfer_retry_interval_ms = 1e9;
  Testbed bed(2, 1.0, false, admin_params,
              /*redeploy_timeout_ms=*/5'000.0);
  obs::Registry metrics;
  obs::TraceLog trace;
  bed.deployer->set_instruments({&metrics, &trace});
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);

  bool completed = false;
  bool success = true;
  bed.deployer->effect_deployment({{"worker", 1}},
                                  [&](bool ok, std::size_t) {
                                    completed = true;
                                    success = ok;
                                  });
  bed.sim.run_until(30'000.0);
  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  ASSERT_NE(metrics.find_counter("deploy.timeouts"), nullptr);
  EXPECT_EQ(metrics.find_counter("deploy.timeouts")->value(), 1u);
  ASSERT_NE(metrics.find_counter("deploy.redeployments_failed"), nullptr);
  EXPECT_EQ(metrics.find_counter("deploy.redeployments_failed")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("deploy.redeployments_succeeded"), nullptr);

  const auto spans = trace.find("deploy.redeploy");
  ASSERT_EQ(spans.size(), 1u);
  const obs::FieldValue* span_success = spans[0]->field("success");
  ASSERT_NE(span_success, nullptr);
  EXPECT_FALSE(std::get<bool>(*span_success));
  const obs::FieldValue* epoch = spans[0]->field("epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*epoch), 1);
  // The span's duration is the timeout the deployer sat through.
  EXPECT_DOUBLE_EQ(spans[0]->dur_ms, 5'000.0);
}

TEST(Migration, RenotifyResumesAfterPartitionHeals) {
  // The initial __new_config dies on a severed link; once the link heals,
  // the renotify rebroadcasts must carry the round to completion well
  // before the (generous) timeout.
  Testbed bed(2, 1.0, false, {}, /*redeploy_timeout_ms=*/60'000.0,
              /*renotify_interval_ms=*/1'000.0);
  obs::Registry metrics;
  bed.deployer->set_instruments({&metrics, nullptr});
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);

  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool ok, std::size_t) { done = ok; }));
  bed.sim.run_until(4'000.0);
  EXPECT_FALSE(done);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight());

  bed.net.restore(0, 1);
  bed.sim.run_until(30'000.0);
  EXPECT_TRUE(done);
  EXPECT_NE(bed.archs[1]->find_component("worker"), nullptr);
  ASSERT_NE(metrics.find_counter("deploy.renotify_total"), nullptr);
  EXPECT_GE(metrics.find_counter("deploy.renotify_total")->value(), 3u);
  ASSERT_NE(metrics.find_counter("deploy.redeployments_succeeded"), nullptr);
  EXPECT_EQ(metrics.find_counter("deploy.redeployments_succeeded")->value(),
            1u);
}

TEST(Migration, StaleEpochAckIsIgnored) {
  // A late __migration_ack from an abandoned epoch must not complete the
  // current round's bookkeeping; a matching-epoch ack must.
  Testbed bed(2);
  obs::Registry metrics;
  bed.deployer->set_instruments({&metrics, nullptr});
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);  // keep the round pending while we inject acks

  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool ok, std::size_t) { done = ok; }));
  ASSERT_TRUE(bed.deployer->redeployment_in_flight());
  EXPECT_EQ(bed.deployer->current_epoch(), 1u);

  // Ack stamped with a previous epoch: ignored, counted.
  Event stale("__migration_ack");
  stale.set("component", std::string("worker"));
  stale.set("host", 1.0);
  stale.set("epoch", 0.0);
  bed.deployer->handle(stale);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight());
  EXPECT_FALSE(done);
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), 1u);

  // Ack with no epoch at all (pre-protocol peer / replayed message):
  // equally stale.
  Event unstamped("__migration_ack");
  unstamped.set("component", std::string("worker"));
  unstamped.set("host", 1.0);
  bed.deployer->handle(unstamped);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight());
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), 2u);
  ASSERT_NE(metrics.find_counter("deploy.stale_acks_ignored"), nullptr);
  EXPECT_EQ(metrics.find_counter("deploy.stale_acks_ignored")->value(), 2u);

  // The current epoch's ack completes the round.
  Event fresh("__migration_ack");
  fresh.set("component", std::string("worker"));
  fresh.set("host", 1.0);
  fresh.set("epoch", 1.0);
  bed.deployer->handle(fresh);
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), 2u);
}

TEST(Migration, StaleLocationUpdateDoesNotAck) {
  // __location_update doubles as an implicit ack — but only for the
  // current epoch. A replay from an earlier round must be ignored.
  Testbed bed(2);
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);
  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool ok, std::size_t) { done = ok; }));

  Event replay("__location_update");
  replay.set("component", std::string("worker"));
  replay.set("host", 1.0);
  replay.set("restored", false);
  replay.set("epoch", 0.0);
  bed.deployer->handle(replay);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight());
  EXPECT_FALSE(done);
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), 1u);

  Event current("__location_update");
  current.set("component", std::string("worker"));
  current.set("host", 1.0);
  current.set("restored", false);
  current.set("epoch", 1.0);
  bed.deployer->handle(current);
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
  EXPECT_TRUE(done);
}

TEST(CrashRestart, TargetRestartMidRedeploymentDoesNotStrandComponent) {
  // The migration target dies while the component is in flight toward it.
  // After restart + re-registration the source's retransmit loop must
  // still land the component: exactly one copy, on the intended host.
  AdminComponent::Params params;
  params.transfer_retry_interval_ms = 500.0;
  params.transfer_max_attempts = 20;
  Testbed bed(3, 1.0, false, params);
  // Slow links: the transfer is reliably in flight when the crash hits.
  for (int a = 0; a < 3; ++a)
    for (int b = a + 1; b < 3; ++b)
      bed.net.set_link(a, b, {.reliability = 1.0, .bandwidth = 1000.0,
                              .delay_ms = 500.0});
  Counter& counter = bed.place_counter(1, "mover");
  counter.count = 7;

  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 2}}, [&](bool ok, std::size_t) { done = ok; }));
  // Request reaches host 1 ~0.5s in, the transfer lands ~1s in. Kill the
  // target at 1.2s wall: the in-flight delivery is dropped, acks are dead.
  bed.sim.schedule_at(1'200.0, [&] {
    bed.net.fail_host(2);
    bed.admins[2]->crash();
  });
  bed.sim.run_until(5'000.0);
  EXPECT_TRUE(bed.admins[2]->crashed());
  EXPECT_EQ(bed.archs[2]->find_component("mover"), nullptr);

  bed.net.recover_host(2);
  bed.admins[2]->restart(/*resume_reporting=*/false);
  bed.sim.run_until(40'000.0);

  int copies = 0;
  for (int h = 0; h < 3; ++h)
    if (bed.archs[h]->find_component("mover")) ++copies;
  EXPECT_EQ(copies, 1) << "component stranded or duplicated";
  auto* landed = dynamic_cast<Counter*>(bed.archs[2]->find_component("mover"));
  ASSERT_NE(landed, nullptr) << "migration never completed after restart";
  EXPECT_EQ(landed->count, 7u);
  EXPECT_TRUE(done);
}

TEST(CrashRestart, ForkedAuthoritativeCopiesResolveAcrossHops) {
  // Two *authoritative* copies on hosts that are not directly connected
  // (star topology, hub host 0): arbitration claims must relay through the
  // hub, the junior (higher id) copy demotes itself to provisional, and the
  // reclaim cycle destroys it — exactly one copy survives, on the senior.
  AdminComponent::Params params;
  params.transfer_retry_interval_ms = 500.0;
  params.fleet = {0, 1, 2};
  Testbed bed(3, 1.0, /*star=*/true, params);
  bed.place_counter(1, "twin");
  bed.place_counter(2, "twin");  // the fork; location tables now say host 2

  bed.sim.run_until(100.0);
  // A restart's re-registration broadcast is what surfaces the conflict.
  bed.admins[1]->crash();
  bed.admins[1]->restart(/*resume_reporting=*/false);
  bed.sim.run_until(60'000.0);

  EXPECT_NE(bed.archs[1]->find_component("twin"), nullptr)
      << "senior authoritative copy must survive";
  EXPECT_EQ(bed.archs[2]->find_component("twin"), nullptr)
      << "junior copy must demote and yield";
  int copies = 0;
  for (int h = 0; h < 3; ++h)
    if (bed.archs[h]->find_component("twin")) ++copies;
  EXPECT_EQ(copies, 1);
}

}  // namespace
}  // namespace dif::prism
