// Unit tests for the extensible parameter map (model/property_map.h).
#include "model/property_map.h"

#include <gtest/gtest.h>

namespace dif::model {
namespace {

TEST(PropertyMap, SetGetOverwrite) {
  PropertyMap map;
  EXPECT_TRUE(map.empty());
  map.set("battery", 0.8);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_DOUBLE_EQ(map.at("battery"), 0.8);
  map.set("battery", 0.5);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_DOUBLE_EQ(map.at("battery"), 0.5);
}

TEST(PropertyMap, GetReturnsNulloptWhenAbsent) {
  PropertyMap map;
  EXPECT_FALSE(map.get("missing").has_value());
  EXPECT_DOUBLE_EQ(map.get_or("missing", 7.0), 7.0);
  EXPECT_THROW(map.at("missing"), std::out_of_range);
}

TEST(PropertyMap, ContainsAndErase) {
  PropertyMap map;
  map.set("security", 3.0);
  EXPECT_TRUE(map.contains("security"));
  EXPECT_TRUE(map.erase("security"));
  EXPECT_FALSE(map.contains("security"));
  EXPECT_FALSE(map.erase("security"));
}

TEST(PropertyMap, IterationIsOrderedByName) {
  PropertyMap map;
  map.set("zeta", 1.0);
  map.set("alpha", 2.0);
  map.set("mid", 3.0);
  std::vector<std::string> names;
  for (const auto& [name, value] : map) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(PropertyMap, JsonRoundTrip) {
  PropertyMap map;
  map.set("a", 1.5);
  map.set("b", -2.0);
  const PropertyMap back = PropertyMap::from_json(map.to_json());
  EXPECT_EQ(map, back);
}

TEST(PropertyMap, EqualityComparesContents) {
  PropertyMap a, b;
  a.set("x", 1.0);
  b.set("x", 1.0);
  EXPECT_EQ(a, b);
  b.set("x", 2.0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dif::model
