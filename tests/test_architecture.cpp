// Unit tests for Brick/Component/Connector/Architecture (prism/brick.h,
// prism/architecture.h) and local event routing.
#include "prism/architecture.h"

#include <gtest/gtest.h>

#include "prism/monitors.h"

namespace dif::prism {
namespace {

/// Test component that records everything it handles.
class Probe final : public Component {
 public:
  explicit Probe(std::string name) : Component(std::move(name)) {}
  void handle(const Event& event) override { handled.push_back(event); }
  [[nodiscard]] std::string type_name() const override { return "probe"; }
  std::vector<Event> handled;
};

struct Fixture {
  sim::Simulator sim;
  SimScaffold scaffold{sim};
  Architecture arch{"test-arch", scaffold, 0};
  Probe* a = nullptr;
  Probe* b = nullptr;
  Probe* c = nullptr;
  Connector* bus = nullptr;

  Fixture() {
    a = &static_cast<Probe&>(arch.add_component(std::make_unique<Probe>("a")));
    b = &static_cast<Probe&>(arch.add_component(std::make_unique<Probe>("b")));
    c = &static_cast<Probe&>(arch.add_component(std::make_unique<Probe>("c")));
    bus = &arch.add_connector(std::make_unique<Connector>("bus"));
    arch.weld(*a, *bus);
    arch.weld(*b, *bus);
    arch.weld(*c, *bus);
  }
};

TEST(Architecture, RejectsDuplicatesAndNulls) {
  Fixture f;
  EXPECT_THROW(f.arch.add_component(std::make_unique<Probe>("a")),
               std::invalid_argument);
  EXPECT_THROW(f.arch.add_component(nullptr), std::invalid_argument);
  EXPECT_THROW(f.arch.add_connector(std::make_unique<Connector>("bus")),
               std::invalid_argument);
}

TEST(Architecture, FindAndNames) {
  Fixture f;
  EXPECT_EQ(f.arch.find_component("b"), f.b);
  EXPECT_EQ(f.arch.find_component("zzz"), nullptr);
  EXPECT_EQ(f.arch.find_connector("bus"), f.bus);
  EXPECT_EQ(f.arch.component_names().size(), 3u);
  EXPECT_EQ(f.arch.component_count(), 3u);
}

TEST(Routing, BroadcastReachesAllButSender) {
  Fixture f;
  f.a->send(Event("ping"));
  f.sim.run();
  EXPECT_TRUE(f.a->handled.empty());
  ASSERT_EQ(f.b->handled.size(), 1u);
  ASSERT_EQ(f.c->handled.size(), 1u);
  EXPECT_EQ(f.b->handled[0].name(), "ping");
  EXPECT_EQ(f.b->handled[0].from(), "a");  // provenance stamped by send()
}

TEST(Routing, DirectedEventReachesOnlyDestination) {
  Fixture f;
  Event e("direct");
  e.set_to("c");
  f.a->send(std::move(e));
  f.sim.run();
  EXPECT_TRUE(f.b->handled.empty());
  ASSERT_EQ(f.c->handled.size(), 1u);
}

TEST(Routing, DirectedToUnknownGoesToUndeliverableHandler) {
  Fixture f;
  std::vector<Event> undelivered;
  f.arch.set_undeliverable_handler(
      [&](const Event& e) { undelivered.push_back(e); });
  Event e("lost");
  e.set_to("ghost");
  // Inject through the connector as if from outside.
  f.arch.post_to("ghost", e);
  f.sim.run();
  ASSERT_EQ(undelivered.size(), 1u);
  EXPECT_EQ(undelivered[0].name(), "lost");
}

TEST(Routing, DeliveryIsDeferredThroughScaffold) {
  Fixture f;
  f.a->send(Event("ping"));
  // Nothing handled until the simulator runs the dispatch.
  EXPECT_TRUE(f.b->handled.empty());
  f.sim.run();
  EXPECT_EQ(f.b->handled.size(), 1u);
}

TEST(Routing, ComponentDetachedBeforeDispatchIsBuffered) {
  Fixture f;
  std::vector<Event> undelivered;
  f.arch.set_undeliverable_handler(
      [&](const Event& e) { undelivered.push_back(e); });
  Event e("inflight");
  e.set_to("b");
  f.a->send(std::move(e));
  // Detach b while its delivery sits in the scaffold queue.
  auto detached = f.arch.detach_component("b");
  ASSERT_NE(detached, nullptr);
  f.sim.run();
  ASSERT_EQ(undelivered.size(), 1u);
  EXPECT_EQ(undelivered[0].name(), "inflight");
}

TEST(Architecture, DetachRemovesWeldsAndOwnership) {
  Fixture f;
  auto detached = f.arch.detach_component("a");
  ASSERT_NE(detached, nullptr);
  EXPECT_EQ(detached->architecture(), nullptr);
  EXPECT_EQ(f.arch.find_component("a"), nullptr);
  EXPECT_EQ(f.arch.component_count(), 2u);
  EXPECT_EQ(f.bus->welded().size(), 2u);
  EXPECT_EQ(f.arch.detach_component("a"), nullptr);  // already gone

  // The detached component can join another architecture.
  Architecture other("other", f.scaffold, 1);
  Component& readded = other.add_component(std::move(detached));
  EXPECT_EQ(readded.architecture(), &other);
}

TEST(Architecture, UnweldStopsDelivery) {
  Fixture f;
  f.arch.unweld(*f.b, *f.bus);
  f.a->send(Event("ping"));
  f.sim.run();
  EXPECT_TRUE(f.b->handled.empty());
  EXPECT_EQ(f.c->handled.size(), 1u);
}

TEST(Architecture, WeldIsIdempotent) {
  Fixture f;
  f.arch.weld(*f.a, *f.bus);  // already welded
  EXPECT_EQ(f.bus->welded().size(), 3u);
  f.b->send(Event("ping"));
  f.sim.run();
  EXPECT_EQ(f.a->handled.size(), 1u);  // no duplicate delivery
}

TEST(Architecture, WeldForeignBrickThrows) {
  Fixture f;
  Architecture other("other", f.scaffold, 1);
  Probe& foreign =
      static_cast<Probe&>(other.add_component(std::make_unique<Probe>("f")));
  EXPECT_THROW(f.arch.weld(foreign, *f.bus), std::invalid_argument);
}

TEST(Architecture, RemoveConnectorRequiresNoWelds) {
  Fixture f;
  EXPECT_THROW(f.arch.remove_connector("bus"), std::logic_error);
  f.arch.unweld(*f.a, *f.bus);
  f.arch.unweld(*f.b, *f.bus);
  f.arch.unweld(*f.c, *f.bus);
  f.arch.remove_connector("bus");
  EXPECT_EQ(f.arch.find_connector("bus"), nullptr);
}

TEST(Architecture, TotalMemorySumsComponents) {
  Fixture f;
  // Probe uses the default 1 KB footprint.
  EXPECT_DOUBLE_EQ(f.arch.total_memory_kb(), 3.0);
}

TEST(Monitors, AttachedMonitorSeesTraffic) {
  Fixture f;
  auto monitor = std::make_shared<EvtFrequencyMonitor>(f.scaffold);
  f.b->add_monitor(monitor);
  f.a->send(Event("app.data"));
  f.sim.run();
  EXPECT_EQ(monitor->events_observed(), 1u);
  f.b->remove_monitor(monitor.get());
  f.a->send(Event("app.data"));
  f.sim.run();
  EXPECT_EQ(monitor->events_observed(), 1u);
}

TEST(Scaffold, InlineScaffoldDispatchesImmediately) {
  InlineScaffold scaffold;
  int fired = 0;
  scaffold.dispatch([&] { ++fired; });
  EXPECT_EQ(fired, 1);
  scaffold.schedule(10.0, [&] { ++fired; });  // timers unsupported: dropped
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace dif::prism
