// Unit tests for the leveled logger (util/logging.h).
#include "util/logging.h"

#include <gtest/gtest.h>

namespace dif::util {
namespace {

struct SinkCapture {
  std::vector<std::string> lines;
  Logger::Sink sink() {
    return [this](LogLevel level, std::string_view component,
                  std::string_view message) {
      lines.push_back(std::string(to_string(level)) + "|" +
                      std::string(component) + "|" + std::string(message));
    };
  }
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(previous_level_);
  }
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelFiltersMessages) {
  SinkCapture capture;
  Logger::instance().set_sink(capture.sink());
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("t", "dropped");
  log_info("t", "dropped");
  log_warn("t", "kept");
  log_error("t", "kept too");
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0], "WARN|t|kept");
  EXPECT_EQ(capture.lines[1], "ERROR|t|kept too");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SinkCapture capture;
  Logger::instance().set_sink(capture.sink());
  Logger::instance().set_level(LogLevel::kOff);
  log_error("t", "gone");
  EXPECT_TRUE(capture.lines.empty());
}

TEST_F(LoggingTest, ArgumentsConcatenate) {
  SinkCapture capture;
  Logger::instance().set_sink(capture.sink());
  Logger::instance().set_level(LogLevel::kDebug);
  log_info("comp", "x=", 42, " y=", 1.5, " z=", "s");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0], "INFO|comp|x=42 y=1.5 z=s");
}

TEST_F(LoggingTest, ResettingSinkPreservesLevel) {
  Logger::instance().set_level(LogLevel::kError);
  SinkCapture capture;
  Logger::instance().set_sink(capture.sink());
  Logger::instance().set_sink(nullptr);  // back to stderr
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
}

TEST(LogLevelNames, AllNamed) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dif::util
