// Tests for ExactAlgorithm: optimality, pruning equivalence, constraint
// handling, and budget behaviour.
#include "algo/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algo/stochastic.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

/// Brute-force optimum by plain enumeration (test oracle, no pruning, no
/// grouping — the most literal possible implementation).
double brute_force_best(const model::DeploymentModel& m,
                        const model::Objective& objective,
                        const model::ConstraintChecker& checker) {
  const std::size_t n = m.component_count();
  const std::size_t k = m.host_count();
  double best = objective.worst();
  std::vector<model::HostId> assignment(n, 0);
  while (true) {
    const model::Deployment d(assignment);
    if (checker.feasible(d)) {
      const double value = objective.evaluate(m, d);
      if (objective.improves(value, best) || std::isinf(best)) best = value;
    }
    // Odometer increment.
    std::size_t i = 0;
    for (; i < n; ++i) {
      if (++assignment[i] < k) break;
      assignment[i] = 0;
    }
    if (i == n) break;
  }
  return best;
}

class ExactOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactOptimalityTest, MatchesBruteForceOracle) {
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 6, .interaction_density = 0.5,
       .location_constraints = 1},
      GetParam());
  const model::DeploymentModel& m = system->model();
  const model::ConstraintChecker checker(m, system->constraints());
  const model::AvailabilityObjective objective;

  const double oracle = brute_force_best(m, objective, checker);
  ExactAlgorithm exact(true);
  const AlgoResult result = exact.run(m, objective, checker, AlgoOptions());
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.value, oracle, 1e-9);
  EXPECT_TRUE(checker.feasible(result.deployment));
}

TEST_P(ExactOptimalityTest, PrunedEqualsUnpruned) {
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 7, .anti_colocation_pairs = 1}, GetParam());
  const model::DeploymentModel& m = system->model();
  const model::ConstraintChecker checker(m, system->constraints());
  const model::AvailabilityObjective objective;

  ExactAlgorithm pruned(true), plain(false);
  const AlgoResult a = pruned.run(m, objective, checker, AlgoOptions());
  const AlgoResult b = plain.run(m, objective, checker, AlgoOptions());
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_NEAR(a.value, b.value, 1e-9);
  // Pruning must never evaluate more leaves than plain enumeration.
  EXPECT_LE(a.evaluations, b.evaluations);
}

TEST_P(ExactOptimalityTest, PrunedEqualsUnprunedOnLatency) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 6}, GetParam());
  const model::DeploymentModel& m = system->model();
  const model::ConstraintChecker checker(m, system->constraints());
  const model::LatencyObjective objective;

  ExactAlgorithm pruned(true), plain(false);
  const AlgoResult a = pruned.run(m, objective, checker, AlgoOptions());
  const AlgoResult b = plain.run(m, objective, checker, AlgoOptions());
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.value, b.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactOptimalityTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Exact, NeverWorseThanStochastic) {
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const auto system =
        desi::Generator::generate({.hosts = 4, .components = 8}, seed);
    const model::ConstraintChecker checker(system->model(),
                                           system->constraints());
    const model::AvailabilityObjective objective;
    ExactAlgorithm exact;
    StochasticAlgorithm stochastic(50);
    AlgoOptions options;
    options.seed = seed;
    const double exact_value =
        exact.run(system->model(), objective, checker, options).value;
    const double stochastic_value =
        stochastic.run(system->model(), objective, checker, options).value;
    EXPECT_GE(exact_value + 1e-12, stochastic_value);
  }
}

TEST(Exact, HonorsColocationConstraints) {
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 6, .colocation_pairs = 2,
       .anti_colocation_pairs = 1},
      77);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  ExactAlgorithm exact;
  const AlgoResult result =
      exact.run(system->model(), objective, checker, AlgoOptions());
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(checker.feasible(result.deployment));
}

TEST(Exact, ContradictoryConstraintsReportInfeasible) {
  const auto system =
      desi::Generator::generate({.hosts = 2, .components = 3}, 1);
  model::ConstraintSet constraints;
  constraints.require_colocation(0, 1);
  constraints.forbid_colocation(0, 1);
  const model::ConstraintChecker checker(system->model(), constraints);
  const model::AvailabilityObjective objective;
  ExactAlgorithm exact;
  const AlgoResult result =
      exact.run(system->model(), objective, checker, AlgoOptions());
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(std::isnan(result.value));
}

TEST(Exact, PinnedComponentsReduceSearch) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 6}, 3);
  const model::AvailabilityObjective objective;

  ExactAlgorithm exact(false);  // unpruned: evaluation count == leaves
  model::ConstraintSet unconstrained;
  const model::ConstraintChecker free_checker(system->model(), unconstrained);
  const std::uint64_t free_evals =
      exact.run(system->model(), objective, free_checker, AlgoOptions())
          .evaluations;

  model::ConstraintSet pinned;
  pinned.pin(0, 0);
  pinned.pin(1, 1);
  const model::ConstraintChecker pinned_checker(system->model(), pinned);
  const std::uint64_t pinned_evals =
      exact.run(system->model(), objective, pinned_checker, AlgoOptions())
          .evaluations;
  // O(k^(n-m)): two pins on 3 hosts shrink the leaf count ~9x (modulo
  // memory-infeasible branches).
  EXPECT_LT(pinned_evals, free_evals / 4);
}

TEST(Exact, EvaluationBudgetStopsSearch) {
  const auto system =
      desi::Generator::generate({.hosts = 4, .components = 10}, 4);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  ExactAlgorithm exact(false);
  AlgoOptions options;
  options.max_evaluations = 100;
  const AlgoResult result =
      exact.run(system->model(), objective, checker, options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.evaluations, 100u);
  EXPECT_TRUE(result.feasible);  // best-so-far is still returned
}

TEST(Exact, ReportsMigrationsAgainstInitial) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 5}, 8);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  ExactAlgorithm exact;
  AlgoOptions options;
  options.initial = system->deployment();
  const AlgoResult result =
      exact.run(system->model(), objective, checker, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.migrations,
            model::Deployment::diff_count(system->deployment(),
                                          result.deployment));
}

}  // namespace
}  // namespace dif::algo

namespace dif::algo {
namespace {

TEST(Exact, NonDecomposableObjectiveFallsBackToLeafEvaluation) {
  // WeightedObjective cannot be pairwise-decomposed, so the pruned Exact
  // must transparently fall back to full enumeration — and still match the
  // brute-force oracle.
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 6, .interaction_density = 0.5}, 66);
  const model::DeploymentModel& m = system->model();
  const model::ConstraintChecker checker(m, system->constraints());
  auto availability = std::make_shared<model::AvailabilityObjective>();
  auto latency = std::make_shared<model::LatencyObjective>();
  const model::WeightedObjective weighted(
      {{availability, 1.0}, {latency, 1.0}});

  ExactAlgorithm exact(true);
  const AlgoResult result = exact.run(m, weighted, checker, AlgoOptions());
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.value, brute_force_best(m, weighted, checker), 1e-9);
  // Pruning had nothing to prune: every feasible leaf was evaluated, so the
  // pruned and unpruned runs cost the same.
  ExactAlgorithm plain(false);
  const AlgoResult unpruned = plain.run(m, weighted, checker, AlgoOptions());
  EXPECT_EQ(result.evaluations, unpruned.evaluations);
}

}  // namespace
}  // namespace dif::algo
