// Unit tests for Prism-MW events and binary serialization (prism/event.h,
// prism/bytes.h).
#include "prism/event.h"

#include <gtest/gtest.h>

namespace dif::prism {
namespace {

TEST(ByteWriterReader, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-3.14159);
  w.str("hello");
  w.bytes(std::vector<std::uint8_t>{1, 2, 3});
  const auto buffer = w.take();

  ByteReader r(buffer);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(7);
  const auto buffer = w.take();
  ByteReader r(buffer);
  (void)r.u32();
  EXPECT_THROW(r.u8(), DecodeError);

  ByteReader r2(buffer);
  EXPECT_THROW(r2.u64(), DecodeError);
}

TEST(ByteReader, BogusLengthPrefixThrows) {
  ByteWriter w;
  w.u32(1'000'000);  // claims a huge string follows
  const auto buffer = w.take();
  ByteReader r(buffer);
  EXPECT_THROW(r.str(), DecodeError);
}

TEST(ByteWriter, RawAppendsWithoutPrefix) {
  ByteWriter inner;
  inner.u8(1);
  inner.u8(2);
  ByteWriter outer;
  const auto tail = inner.take();
  outer.raw(tail);
  EXPECT_EQ(outer.size(), 2u);
}

TEST(Event, ParameterAccessors) {
  Event e("app.msg");
  e.set("count", 4.0);
  e.set("label", std::string("xyz"));
  e.set("flag", true);
  e.set("blob", std::vector<std::uint8_t>{9, 8});
  EXPECT_TRUE(e.has("count"));
  EXPECT_FALSE(e.has("missing"));
  EXPECT_DOUBLE_EQ(*e.get_double("count"), 4.0);
  EXPECT_EQ(*e.get_string("label"), "xyz");
  EXPECT_TRUE(*e.get_bool("flag"));
  EXPECT_EQ(e.get_bytes("blob")->size(), 2u);
  // Type-mismatched access returns empty, not garbage.
  EXPECT_FALSE(e.get_double("label").has_value());
  EXPECT_EQ(e.get_string("count"), nullptr);
}

TEST(Event, SetOverwritesInPlace) {
  Event e("x");
  e.set("k", 1.0);
  e.set("k", 2.0);
  EXPECT_EQ(e.params().size(), 1u);
  EXPECT_DOUBLE_EQ(*e.get_double("k"), 2.0);
}

TEST(Event, SerializationRoundTripsAllTypes) {
  Event e("migrate");
  e.set_to("__admin@3");
  e.set_from("__deployer");
  e.set("flag", false);
  e.set("weight", 2.75);
  e.set("name", std::string("component-x"));
  e.set("state", std::vector<std::uint8_t>{0, 255, 127, 1});

  const Event back = Event::deserialize(e.serialize());
  EXPECT_EQ(back.name(), "migrate");
  EXPECT_EQ(back.to(), "__admin@3");
  EXPECT_EQ(back.from(), "__deployer");
  EXPECT_EQ(back.params().size(), 4u);
  EXPECT_FALSE(*back.get_bool("flag"));
  EXPECT_DOUBLE_EQ(*back.get_double("weight"), 2.75);
  EXPECT_EQ(*back.get_string("name"), "component-x");
  EXPECT_EQ(*back.get_bytes("state"),
            (std::vector<std::uint8_t>{0, 255, 127, 1}));
}

TEST(Event, SerializationPreservesParamOrder) {
  Event e("x");
  e.set("z", 1.0);
  e.set("a", 2.0);
  const Event back = Event::deserialize(e.serialize());
  EXPECT_EQ(back.params()[0].first, "z");
  EXPECT_EQ(back.params()[1].first, "a");
}

TEST(Event, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage{1, 2, 3};
  EXPECT_THROW(Event::deserialize(garbage), DecodeError);
}

TEST(Event, SizeGrowsWithPayload) {
  Event small("m");
  Event large("m");
  large.set("payload", std::vector<std::uint8_t>(10 * 1024));
  EXPECT_GT(large.size_kb(), small.size_kb() + 9.0);
}

TEST(Event, EmptyEventSerializes) {
  const Event back = Event::deserialize(Event("").serialize());
  EXPECT_EQ(back.name(), "");
  EXPECT_TRUE(back.params().empty());
}

}  // namespace
}  // namespace dif::prism
