// Transactional-redeployment tests: the two-phase effector protocol in
// DeployerComponent/TxnRound — prepare votes and capacity vetoes, forced
// rollback with compensating migrations, graceful degradation to a partial
// commit, timeout paths (abort with unresolved names, rollback_failed), and
// the improvement loop recording a rolled-back round as an effector
// rejection.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/improvement_loop.h"
#include "desi/generator.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "prism/architecture.h"
#include "prism/deployer.h"

namespace dif::prism {
namespace {

/// Migratable test component with observable state.
class Counter final : public Component {
 public:
  explicit Counter(std::string name) : Component(std::move(name)) {}
  void handle(const Event& event) override {
    if (event.name() == "app.tick") ++count;
  }
  [[nodiscard]] std::string type_name() const override { return "counter"; }
  void serialize_state(ByteWriter& w) const override { w.u64(count); }
  void restore_state(ByteReader& r) override { count = r.u64(); }
  [[nodiscard]] double memory_kb() const override { return 4.0; }
  std::uint64_t count = 0;
};

/// Full-mesh testbed with complete control over the deployer's
/// transactional parameters. Slow links (500 ms) make the protocol's
/// phases land at predictable times so faults can be injected between them.
struct TxnBed {
  sim::Simulator sim;
  sim::SimNetwork net;
  SimScaffold scaffold{sim};
  ComponentFactory factory;
  std::vector<std::unique_ptr<Architecture>> archs;
  std::vector<DistributionConnector*> connectors;
  std::vector<AdminComponent*> admins;
  DeployerComponent* deployer = nullptr;
  obs::Registry metrics;

  TxnBed(std::size_t k, AdminComponent::Params admin_params,
         DeployerComponent::DeployerParams deployer_params,
         double link_delay_ms = 500.0)
      : net(sim, k, 1) {
    factory.register_type("counter", [](std::string name) {
      return std::make_unique<Counter>(std::move(name));
    });
    for (std::size_t h = 0; h < k; ++h) {
      archs.push_back(std::make_unique<Architecture>(
          "arch" + std::to_string(h), scaffold,
          static_cast<model::HostId>(h)));
      connectors.push_back(&static_cast<DistributionConnector&>(
          archs[h]->add_connector(std::make_unique<DistributionConnector>(
              "dist" + std::to_string(h), net,
              static_cast<model::HostId>(h)))));
    }
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = a + 1; b < k; ++b) {
        net.set_link(static_cast<model::HostId>(a),
                     static_cast<model::HostId>(b),
                     {.reliability = 1.0, .bandwidth = 1000.0,
                      .delay_ms = link_delay_ms});
        connectors[a]->add_peer(static_cast<model::HostId>(b));
        connectors[b]->add_peer(static_cast<model::HostId>(a));
      }
    std::vector<model::HostId> all_hosts;
    for (std::size_t h = 0; h < k; ++h)
      all_hosts.push_back(static_cast<model::HostId>(h));
    admin_params.fleet = all_hosts;
    deployer_params.admin_hosts = all_hosts;
    for (std::size_t h = 0; h < k; ++h) {
      connectors[h]->set_mediator(0);
      for (std::size_t g = 0; g < k; ++g)
        connectors[h]->set_location(admin_name(static_cast<model::HostId>(g)),
                                    static_cast<model::HostId>(g));
      connectors[h]->set_location(deployer_name(), 0);
      auto admin = std::make_unique<AdminComponent>(
          static_cast<model::HostId>(h), *connectors[h], factory, nullptr,
          nullptr, admin_params);
      admins.push_back(&static_cast<AdminComponent&>(
          archs[h]->add_component(std::move(admin))));
      archs[h]->weld(*admins[h], *connectors[h]);
    }
    auto dep = std::make_unique<DeployerComponent>(
        0, *connectors[0], factory, nullptr, nullptr, admin_params,
        deployer_params);
    deployer = &static_cast<DeployerComponent&>(
        archs[0]->add_component(std::move(dep)));
    archs[0]->weld(*deployer, *connectors[0]);
    deployer->set_instruments({&metrics, nullptr});
  }

  Counter& place_counter(std::size_t host, const std::string& name) {
    auto& counter = static_cast<Counter&>(
        archs[host]->add_component(std::make_unique<Counter>(name)));
    archs[host]->weld(counter, *connectors[host]);
    for (auto* connector : connectors)
      connector->set_location(name, static_cast<model::HostId>(host));
    return counter;
  }

  [[nodiscard]] std::uint64_t counter_value(const char* name) const {
    const obs::Counter* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  }
};

TEST(TxnRedeploy, CapacityVetoAbortsRoundAndNothingMoves) {
  // Host 1 already holds 8 KB against a 6 KB capacity: its prepare vote is
  // a veto, the round aborts, and the component never leaves host 0.
  AdminComponent::Params admin_params;
  admin_params.memory_capacity_kb = 6.0;
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 20'000.0;
  TxnBed bed(2, admin_params, params);
  bed.place_counter(0, "mover");
  bed.place_counter(1, "resident_a");
  bed.place_counter(1, "resident_b");

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 1}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  bed.sim.run_until(10'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);
  EXPECT_EQ(bed.deployer->rounds_rolled_back(), 1u);
  EXPECT_NE(bed.archs[0]->find_component("mover"), nullptr);
  EXPECT_EQ(bed.archs[1]->find_component("mover"), nullptr);
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kAborted);
  EXPECT_EQ(record.moves_completed, 0u);
  ASSERT_TRUE(record.declared.count("mover"));
  EXPECT_EQ(record.declared.at("mover"), 0u);  // declared = checkpoint
  EXPECT_EQ(bed.counter_value("deploy.txn.votes_no"), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.aborted"), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.committed"), 0u);
}

TEST(TxnRedeploy, VetoedRoundDoesNotPoisonTheNextOne) {
  // After an abort the protocol must be reusable immediately: drop the
  // oversubscription and the same target then commits cleanly.
  AdminComponent::Params admin_params;
  admin_params.memory_capacity_kb = 6.0;
  TxnBed bed(2, admin_params, {});
  Counter& mover = bed.place_counter(0, "mover");
  mover.count = 9;
  bed.place_counter(1, "resident_a");
  bed.place_counter(1, "resident_b");

  ASSERT_TRUE(
      bed.deployer->effect_deployment({{"mover", 1}}, [](bool, std::size_t) {}));
  bed.sim.run_until(10'000.0);
  ASSERT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);

  // Free capacity on host 1, then retry the same plan.
  (void)bed.archs[1]->detach_component("resident_b");
  bool success = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 1}}, [&](bool ok, std::size_t) { success = ok; }));
  bed.sim.run_until(25'000.0);
  EXPECT_TRUE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kCommitted);
  auto* landed = dynamic_cast<Counter*>(bed.archs[1]->find_component("mover"));
  ASSERT_NE(landed, nullptr);
  EXPECT_EQ(landed->count, 9u);
  EXPECT_EQ(bed.counter_value("deploy.txn.aborted"), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.committed"), 1u);
}

TEST(TxnRedeploy, SeveredCommitRollsBackBeforeAnythingMoves) {
  // Host 2 votes yes, then drops off the network before the commit-phase
  // configuration can reach it: the migration starves, the round rolls
  // back, and — since nothing ever moved — the rollback confirms the
  // checkpoint in place.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 6'000.0;
  params.rollback_timeout_ms = 10'000.0;
  params.renotify_interval_ms = 1'000.0;
  params.migration_max_attempts = 3;
  TxnBed bed(3, {}, params);
  bed.place_counter(1, "pinned");

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"pinned", 2}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  // __prepare lands at 0.5 s, the vote is back at 1.0 s, commit config is
  // in flight at ~1.0 s. Kill host 2 at 1.2 s: the config dies on the wire.
  bed.sim.schedule_at(1'200.0, [&] { bed.net.fail_host(2); });
  bed.sim.run_until(30'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kRolledBack);
  EXPECT_EQ(bed.deployer->rounds_rolled_back(), 1u);
  EXPECT_NE(bed.archs[1]->find_component("pinned"), nullptr);
  EXPECT_EQ(bed.archs[2]->find_component("pinned"), nullptr);
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kRolledBack);
  ASSERT_TRUE(record.declared.count("pinned"));
  EXPECT_EQ(record.declared.at("pinned"), 1u);
  ASSERT_TRUE(record.proposed.count("pinned"));
  EXPECT_EQ(record.proposed.at("pinned"), 2u);
  EXPECT_TRUE(record.unresolved.empty());
  EXPECT_GE(bed.counter_value("deploy.txn.rollbacks"), 1u);
  EXPECT_GE(bed.counter_value("deploy.txn.compensations"), 1u);
}

TEST(TxnRedeploy, ForcedRollbackRestoresCheckpointExactly) {
  // Two migrations: "lucky" completes, then its sibling's target dies and
  // the round rolls back. The compensation must physically move "lucky"
  // back — same host, same state — leaving the checkpoint restored
  // exactly.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 8'000.0;
  params.rollback_timeout_ms = 20'000.0;
  params.renotify_interval_ms = 1'000.0;
  params.migration_max_attempts = 3;
  TxnBed bed(4, {}, params);
  Counter& lucky = bed.place_counter(1, "lucky");
  lucky.count = 42;
  bed.place_counter(1, "doomed");

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"lucky", 2}, {"doomed", 3}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  // Votes are in at ~1.0 s; "lucky"'s transfer 1->2 lands ~2.5 s and its
  // ack reaches the deployer ~3.0 s. Kill host 3 at 1.2 s so "doomed"
  // never moves and the deadline forces the rollback.
  bed.sim.schedule_at(1'200.0, [&] { bed.net.fail_host(3); });
  bed.sim.run_until(60'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kRolledBack);
  // Checkpoint restored exactly: both components back on host 1, state
  // preserved through the round trip.
  auto* restored =
      dynamic_cast<Counter*>(bed.archs[1]->find_component("lucky"));
  ASSERT_NE(restored, nullptr) << "compensation must move 'lucky' back";
  EXPECT_EQ(restored->count, 42u);
  EXPECT_NE(bed.archs[1]->find_component("doomed"), nullptr);
  EXPECT_EQ(bed.archs[2]->find_component("lucky"), nullptr);
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kRolledBack);
  EXPECT_GE(record.moves_completed, 1u);  // "lucky" did commit first
  EXPECT_GE(record.compensations, 1u);
  EXPECT_EQ(record.declared.at("lucky"), 1u);
  EXPECT_EQ(record.declared.at("doomed"), 1u);
}

TEST(TxnRedeploy, AllowPartialKeepsCompletedMigrations) {
  // Same forced rollback, but with allow_partial the round degrades
  // gracefully: "lucky" stays at its new host, only "doomed" is declared
  // back at the checkpoint, and the round closes as partial.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 8'000.0;
  params.rollback_timeout_ms = 20'000.0;
  params.renotify_interval_ms = 1'000.0;
  params.migration_max_attempts = 3;
  params.allow_partial = true;
  TxnBed bed(4, {}, params);
  Counter& lucky = bed.place_counter(1, "lucky");
  lucky.count = 7;
  bed.place_counter(1, "doomed");

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"lucky", 2}, {"doomed", 3}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  bed.sim.schedule_at(1'200.0, [&] { bed.net.fail_host(3); });
  bed.sim.run_until(60'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);  // a partial commit is still not a success
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kPartial);
  EXPECT_EQ(bed.deployer->rounds_rolled_back(), 1u);
  auto* kept = dynamic_cast<Counter*>(bed.archs[2]->find_component("lucky"));
  ASSERT_NE(kept, nullptr) << "allow_partial must keep the completed move";
  EXPECT_EQ(kept->count, 7u);
  EXPECT_EQ(bed.archs[1]->find_component("lucky"), nullptr);
  EXPECT_NE(bed.archs[1]->find_component("doomed"), nullptr);
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kPartial);
  // Declared = checkpoint overlaid with the kept sub-plan.
  EXPECT_EQ(record.declared.at("lucky"), 2u);
  EXPECT_EQ(record.declared.at("doomed"), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.partial"), 1u);
}

// ---- timeout paths ------------------------------------------------------

TEST(TxnRedeploy, PrepareTimeoutAbortsWithUnresolvedNames) {
  // The lone participant is unreachable from the start: no vote ever
  // arrives, the round aborts at the deadline, and the record names the
  // components whose placement the round could not confirm.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 5'000.0;
  params.renotify_interval_ms = 1'000.0;
  params.prepare_max_attempts = 3;
  TxnBed bed(2, {}, params);
  bed.place_counter(0, "stuck");
  bed.net.sever(0, 1);

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"stuck", 1}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  bed.sim.run_until(30'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  ASSERT_EQ(record.unresolved.size(), 1u);
  EXPECT_EQ(record.unresolved.front(), "stuck");
  EXPECT_EQ(record.declared.at("stuck"), 0u);
  // Nothing moved: the component is still exactly where it was.
  EXPECT_NE(bed.archs[0]->find_component("stuck"), nullptr);
  EXPECT_EQ(bed.archs[1]->find_component("stuck"), nullptr);
}

TEST(TxnRedeploy, RollbackTimeoutClosesAsRollbackFailed) {
  // "lucky" commits to host 2, then host 2 *and* host 3 die: the rollback
  // cannot confirm lucky's compensation and the round must give up as
  // rollback_failed, naming lucky unresolved — with `proposed` recording
  // where it was last confirmed so the atomicity invariant can reason
  // about the wreckage.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 6'000.0;
  params.rollback_timeout_ms = 6'000.0;
  params.renotify_interval_ms = 1'000.0;
  params.migration_max_attempts = 3;
  TxnBed bed(4, {}, params);
  Counter& lucky = bed.place_counter(1, "lucky");
  lucky.count = 5;
  bed.place_counter(1, "doomed");

  bool completed = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"lucky", 2}, {"doomed", 3}},
      [&](bool ok, std::size_t) { completed = !ok; }));
  bed.sim.schedule_at(1'200.0, [&] { bed.net.fail_host(3); });
  // lucky's commit ack reaches the deployer ~3.0 s; kill its host before
  // the rollback (deadline at 6 s) can pull it back.
  bed.sim.schedule_at(4'000.0, [&] { bed.net.fail_host(2); });
  bed.sim.run_until(60'000.0);

  EXPECT_TRUE(completed);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kRollbackFailed);
  EXPECT_EQ(bed.deployer->rounds_rolled_back(), 1u);
  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kRollbackFailed);
  EXPECT_FALSE(record.unresolved.empty());
  EXPECT_NE(std::find(record.unresolved.begin(), record.unresolved.end(),
                      std::string("lucky")),
            record.unresolved.end());
  EXPECT_EQ(record.declared.at("lucky"), 1u);   // where it *should* be
  EXPECT_EQ(record.proposed.at("lucky"), 2u);   // where it last was
  EXPECT_EQ(bed.counter_value("deploy.txn.rollback_failed"), 1u);
}

TEST(TxnRedeploy, StaleAcksFromAbandonedRoundDoNotCorruptTheNext) {
  // A round aborts; later its epoch-1 acks straggle in while epoch 2 is in
  // flight. They must be counted as stale and must not complete epoch 2's
  // tasks.
  DeployerComponent::DeployerParams params;
  params.redeploy_timeout_ms = 5'000.0;
  params.prepare_max_attempts = 2;
  TxnBed bed(2, {}, params);
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);

  bool first_done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool, std::size_t) { first_done = true; }));
  bed.sim.run_until(20'000.0);
  ASSERT_TRUE(first_done);
  ASSERT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);

  // Epoch 2, still severed so it stays in flight while we inject.
  ASSERT_TRUE(bed.deployer->effect_deployment({{"worker", 1}},
                                              [](bool, std::size_t) {}));
  ASSERT_TRUE(bed.deployer->redeployment_in_flight());
  ASSERT_EQ(bed.deployer->current_epoch(), 2u);
  const std::uint64_t stale_before = bed.deployer->stale_acks_ignored();

  Event straggler("__migration_ack");
  straggler.set("component", std::string("worker"));
  straggler.set("host", 1.0);
  straggler.set("epoch", 1.0);
  bed.deployer->handle(straggler);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight())
      << "an abandoned epoch's ack must not complete the current round";
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), stale_before + 1);

  Event stale_vote("__prepare_ack");
  stale_vote.set("host", 1.0);
  stale_vote.set("epoch", 1.0);
  stale_vote.set("ok", true);
  bed.deployer->handle(stale_vote);
  EXPECT_TRUE(bed.deployer->redeployment_in_flight())
      << "an abandoned epoch's vote must not advance the current prepare";
}

TEST(TxnRedeploy, LocationUpdateRecoversLostAck) {
  // The explicit __migration_ack is injected as lost; the target's
  // epoch-stamped ownership announcement must complete the round instead,
  // and the recovery is counted.
  TxnBed bed(2, {}, {});
  bed.place_counter(0, "worker");
  bed.net.sever(0, 1);
  bool done = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"worker", 1}}, [&](bool ok, std::size_t) { done = ok; }));

  Event update("__location_update");
  update.set("component", std::string("worker"));
  update.set("host", 1.0);
  update.set("restored", false);
  update.set("epoch", 1.0);
  bed.deployer->handle(update);
  EXPECT_TRUE(done);
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
  EXPECT_EQ(bed.counter_value("deploy.acks_recovered_via_location"), 1u);
}

}  // namespace
}  // namespace dif::prism

// ---- improvement-loop integration ---------------------------------------

namespace dif::core {
namespace {

TEST(TxnRedeploy, RolledBackRoundIsRecordedAsEffectorRejection) {
  // Every host's capacity is far below any component's footprint, so every
  // prepare phase vetoes and every analyzer-launched round aborts. The
  // improvement loop must record those as effector rejections — the tick's
  // history entry flips to effected=false with the round outcome in its
  // reason — and the deployment must stay exactly where it started.
  auto system = desi::Generator::generate(
      {.hosts = 4, .components = 10, .link_density = 0.8,
       .interaction_density = 0.3},
      7);
  const model::AvailabilityObjective availability;

  FrameworkConfig config;
  config.seed = 7;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 1.0;
  config.admin.memory_capacity_kb = 0.001;  // every inbound move vetoes
  config.deployer.redeploy_timeout_ms = 5'000.0;
  config.deployer.rollback_timeout_ms = 5'000.0;
  CentralizedInstantiation inst(*system, config);

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = 0.01;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);

  const auto placement_before = inst.runtime_deployment();
  inst.start();
  loop.start();
  inst.simulator().run_until(120'000.0);
  loop.stop();
  inst.simulator().run_until(140'000.0);

  ASSERT_GT(inst.deployer().rounds_rolled_back(), 0u)
      << "the scenario must actually force aborted rounds";
  EXPECT_GT(loop.effector_rejections(), 0u);
  bool recorded = false;
  for (const ImprovementLoop::TickRecord& tick : loop.history())
    if (!tick.effected && tick.reason.find("(effector:") != std::string::npos)
      recorded = true;
  EXPECT_TRUE(recorded)
      << "a rolled-back round must amend its tick record with the outcome";
  EXPECT_EQ(inst.runtime_deployment(), placement_before)
      << "aborted rounds must leave the placement untouched";
}

}  // namespace
}  // namespace dif::core

namespace dif::prism {
namespace {

TEST(TxnRedeploy, DuplicateAckAfterCustodyRetirementIsCountedAndInert) {
  // The custody edge the protocol fuzzer keeps hitting: a __migration_ack
  // duplicated by the network arrives *after* the round committed and the
  // transferred copy's custody was retired. It matches the current epoch —
  // the epoch filter cannot reject it — yet re-applying it would re-point
  // the location table at whatever stale host value the duplicate carries,
  // poisoning routing until the next round.
  TxnBed bed(2, {}, {});
  bed.place_counter(0, "mover");

  bool success = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 1}}, [&](bool ok, std::size_t) { success = ok; }));
  bed.sim.run_until(30'000.0);
  ASSERT_TRUE(success);
  ASSERT_EQ(bed.deployer->last_outcome(), TxnOutcome::kCommitted);
  ASSERT_EQ(bed.connectors[0]->location("mover"),
            std::optional<model::HostId>(1));

  // A clean commit may itself retire one redundant confirmation (the
  // __location_update recovery can close the round before the explicit
  // __migration_ack lands), so judge deltas from the post-commit baseline.
  const std::uint64_t base = bed.deployer->stale_acks_total();
  const std::uint64_t base_counter =
      bed.counter_value("deploy.stale_acks_total");

  Event dup("__migration_ack");
  dup.set("component", std::string("mover"));
  dup.set("host", 0.0);  // poisonous: the retired source copy's host
  dup.set("epoch", static_cast<double>(bed.deployer->current_epoch()));
  bed.deployer->handle(dup);

  // Counted as a duplicate, never re-applied: the location table still
  // points at the committed placement, no round re-opened, the component
  // itself untouched.
  EXPECT_EQ(bed.deployer->stale_acks_total(), base + 1);
  EXPECT_EQ(bed.counter_value("deploy.stale_acks_total"), base_counter + 1);
  // The wrong-epoch path stayed untouched — this is the same-epoch edge.
  EXPECT_EQ(bed.deployer->stale_acks_ignored(), 0u);
  EXPECT_EQ(bed.connectors[0]->location("mover"),
            std::optional<model::HostId>(1));
  EXPECT_FALSE(bed.deployer->redeployment_in_flight());
  EXPECT_NE(bed.archs[1]->find_component("mover"), nullptr);
  EXPECT_EQ(bed.archs[0]->find_component("mover"), nullptr);

  // And it stays inert under repetition (every copy of a duplicated burst).
  bed.deployer->handle(dup);
  bed.deployer->handle(dup);
  EXPECT_EQ(bed.deployer->stale_acks_total(), base + 3);
  EXPECT_EQ(bed.connectors[0]->location("mover"),
            std::optional<model::HostId>(1));
}

}  // namespace
}  // namespace dif::prism
