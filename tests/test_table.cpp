// Unit tests for ASCII table rendering and number formatting (util/table.h).
#include "util/table.h"

#include <gtest/gtest.h>

namespace dif::util {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // 2 header lines + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"h", "v"});
  t.add_row({"a", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.render();
  // Every line has the same length (padded).
  std::size_t expected = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(Table, FirstColumnLeftRestRight) {
  Table t({"aaa", "bbb"});
  t.add_row({"x", "1"});
  const std::string out = t.render();
  // Row line: "x  " (left-aligned) then "  1" (right-aligned, width 3).
  EXPECT_NE(out.find("x    "), std::string::npos);
  EXPECT_NE(out.find("  1"), std::string::npos);
}

TEST(Table, AlignOverride) {
  Table t({"a", "b"});
  t.set_align(1, Align::kLeft);
  t.add_row({"x", "y"});
  EXPECT_NO_THROW(t.render());
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtPct, ScalesFraction) {
  EXPECT_EQ(fmt_pct(0.123), "12.3%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(FmtDuration, PicksUnits) {
  EXPECT_EQ(fmt_duration_ns(500), "500 ns");
  EXPECT_EQ(fmt_duration_ns(1500), "1.50 us");
  EXPECT_EQ(fmt_duration_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(fmt_duration_ns(3.2e9), "3.200 s");
}

}  // namespace
}  // namespace dif::util
