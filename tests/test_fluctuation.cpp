// Unit tests for fluctuation and partition scheduling (sim/fluctuation.h).
#include "sim/fluctuation.h"

#include <gtest/gtest.h>

namespace dif::sim {
namespace {

struct Fixture {
  Simulator sim;
  SimNetwork net{sim, 3, 1};
  Fixture() {
    net.set_link(0, 1, {.reliability = 0.8, .bandwidth = 100.0});
    net.set_link(1, 2, {.reliability = 0.5, .bandwidth = 50.0});
  }
};

TEST(Fluctuation, StepsAtConfiguredInterval) {
  Fixture f;
  FluctuationModel fluct(f.net, {.interval_ms = 100.0}, 2);
  fluct.start();
  f.sim.run_until(1000.0);
  EXPECT_EQ(fluct.steps(), 10u);
  fluct.stop();
  f.sim.run_until(2000.0);
  EXPECT_EQ(fluct.steps(), 10u);
}

TEST(Fluctuation, ReliabilityStaysClamped) {
  Fixture f;
  FluctuationModel::Params params;
  params.interval_ms = 10.0;
  params.reliability_step = 0.5;  // violent walk
  params.reliability_floor = 0.1;
  params.reliability_ceil = 0.9;
  FluctuationModel fluct(f.net, params, 3);
  fluct.start();
  for (int i = 0; i < 100; ++i) {
    f.sim.run_until(f.sim.now() + 10.0);
    for (const auto [a, b] : {std::pair{0, 1}, std::pair{1, 2}}) {
      const double r = f.net.link(a, b).reliability;
      EXPECT_GE(r, 0.1);
      EXPECT_LE(r, 0.9);
    }
  }
}

TEST(Fluctuation, BandwidthStaysWithinFactorOfBase) {
  Fixture f;
  FluctuationModel::Params params;
  params.interval_ms = 10.0;
  params.bandwidth_step_fraction = 0.5;
  params.bandwidth_floor_fraction = 0.5;
  params.bandwidth_ceil_fraction = 1.5;
  FluctuationModel fluct(f.net, params, 4);
  fluct.start();
  f.sim.run_until(5000.0);
  EXPECT_GE(f.net.link(0, 1).bandwidth, 50.0);
  EXPECT_LE(f.net.link(0, 1).bandwidth, 150.0);
  EXPECT_GE(f.net.link(1, 2).bandwidth, 25.0);
  EXPECT_LE(f.net.link(1, 2).bandwidth, 75.0);
}

TEST(Fluctuation, NeverCreatesLinks) {
  Fixture f;
  FluctuationModel fluct(f.net, {.interval_ms = 10.0}, 5);
  fluct.start();
  f.sim.run_until(1000.0);
  EXPECT_FALSE(f.net.reachable(0, 2));
}

TEST(Fluctuation, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Fixture f;
    FluctuationModel fluct(f.net, {.interval_ms = 10.0}, seed);
    fluct.start();
    f.sim.run_until(500.0);
    return f.net.link(0, 1).reliability;
  };
  EXPECT_DOUBLE_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(Fluctuation, StepOnceChangesParameters) {
  Fixture f;
  FluctuationModel fluct(f.net, {}, 6);
  const double before = f.net.link(0, 1).reliability;
  fluct.step_once();
  EXPECT_NE(f.net.link(0, 1).reliability, before);
}

TEST(Fluctuation, RejectsNonPositiveInterval) {
  Fixture f;
  EXPECT_THROW(FluctuationModel(f.net, {.interval_ms = 0.0}, 1),
               std::invalid_argument);
}

TEST(PartitionSchedule, OutageWindowSeversAndRestores) {
  Fixture f;
  PartitionSchedule schedule(f.net);
  schedule.add_outage(0, 1, 100.0, 200.0);
  f.sim.run_until(50.0);
  EXPECT_TRUE(f.net.reachable(0, 1));
  f.sim.run_until(150.0);
  EXPECT_FALSE(f.net.reachable(0, 1));
  f.sim.run_until(250.0);
  EXPECT_TRUE(f.net.reachable(0, 1));
}

TEST(PartitionSchedule, RejectsInvertedWindow) {
  Fixture f;
  PartitionSchedule schedule(f.net);
  EXPECT_THROW(schedule.add_outage(0, 1, 200.0, 100.0),
               std::invalid_argument);
}

TEST(PartitionSchedule, FluctuationPreservesSeveredState) {
  Fixture f;
  FluctuationModel fluct(f.net, {.interval_ms = 10.0}, 7);
  fluct.start();
  f.net.sever(0, 1);
  f.sim.run_until(100.0);
  EXPECT_FALSE(f.net.reachable(0, 1));
}

}  // namespace
}  // namespace dif::sim
