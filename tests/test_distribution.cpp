// Dedicated unit tests for DistributionConnector routing semantics
// (prism/distribution.h): directed forwarding via the location table,
// mediation for non-peers, broadcast flooding, remote-mark handling, and
// undeliverable accounting.
#include "prism/distribution.h"

#include <gtest/gtest.h>

#include "prism/architecture.h"

namespace dif::prism {
namespace {

class Probe final : public Component {
 public:
  explicit Probe(std::string name) : Component(std::move(name)) {}
  void handle(const Event& event) override { received.push_back(event); }
  [[nodiscard]] std::string type_name() const override { return "probe"; }
  std::vector<Event> received;
};

/// Three hosts in a star around host 1 (0 and 2 are not connected).
struct Star {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 3, 1};
  SimScaffold scaffold{sim};
  std::vector<std::unique_ptr<Architecture>> archs;
  std::vector<DistributionConnector*> d;
  std::vector<Probe*> probes;

  Star() {
    net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1e6, .delay_ms = 1});
    net.set_link(1, 2, {.reliability = 1.0, .bandwidth = 1e6, .delay_ms = 1});
    for (model::HostId h = 0; h < 3; ++h) {
      archs.push_back(std::make_unique<Architecture>(
          "arch" + std::to_string(h), scaffold, h));
      d.push_back(&static_cast<DistributionConnector&>(
          archs[h]->add_connector(std::make_unique<DistributionConnector>(
              "d" + std::to_string(h), net, h))));
      probes.push_back(&static_cast<Probe&>(archs[h]->add_component(
          std::make_unique<Probe>("p" + std::to_string(h)))));
      archs[h]->weld(*probes[h], *d[h]);
    }
    d[0]->add_peer(1);
    d[1]->add_peer(0);
    d[1]->add_peer(2);
    d[2]->add_peer(1);
    for (auto* connector : d)
      for (model::HostId h = 0; h < 3; ++h)
        connector->set_location("p" + std::to_string(h), h);
  }
};

TEST(Distribution, DirectedEventFollowsLocationTable) {
  Star star;
  Event e("msg");
  e.set_to("p1");
  star.probes[0]->send(std::move(e));
  star.sim.run();
  ASSERT_EQ(star.probes[1]->received.size(), 1u);
  EXPECT_TRUE(star.probes[0]->received.empty());
  EXPECT_TRUE(star.probes[2]->received.empty());
}

TEST(Distribution, NonPeerDestinationRidesTheMediator) {
  Star star;
  star.d[0]->set_mediator(1);
  // Host 2 is not a peer of host 0; mediation via host 1. At host 1 the
  // destination is absent, so the admin-less architecture drops it unless
  // an undeliverable handler re-routes — install one that resends.
  star.archs[1]->set_undeliverable_handler([&](const Event& event) {
    star.d[1]->resend(event);
  });
  Event e("msg");
  e.set_to("p2");
  star.probes[0]->send(std::move(e));
  star.sim.run();
  ASSERT_EQ(star.probes[2]->received.size(), 1u);
  EXPECT_EQ(star.probes[2]->received[0].name(), "msg");
}

TEST(Distribution, NoMediatorMeansUndeliverable) {
  Star star;
  // No mediator set on d0; p2 is not reachable as a peer.
  Event e("msg");
  e.set_to("p2");
  star.probes[0]->send(std::move(e));
  star.sim.run();
  EXPECT_TRUE(star.probes[2]->received.empty());
  EXPECT_EQ(star.d[0]->undeliverable_remote(), 1u);
}

TEST(Distribution, UnknownLocationCountsUndeliverable) {
  Star star;
  Event e("msg");
  e.set_to("ghost");
  star.probes[0]->send(std::move(e));
  star.sim.run();
  EXPECT_EQ(star.d[0]->undeliverable_remote(), 1u);
}

TEST(Distribution, BroadcastFloodsPeersExactlyOnce) {
  Star star;
  star.probes[1]->send(Event("announce"));  // host 1 peers: 0 and 2
  star.sim.run();
  EXPECT_EQ(star.probes[0]->received.size(), 1u);
  EXPECT_EQ(star.probes[2]->received.size(), 1u);
  // No re-flooding: the remote mark stops hosts 0/2 from forwarding back.
  EXPECT_TRUE(star.probes[1]->received.empty());
}

TEST(Distribution, RemoteEventsAreNotReforwarded) {
  Star star;
  // An event arriving at host 1 addressed to a component host 1 believes is
  // on host 0 must not bounce: route() skips forwarding for remote-marked
  // events, and only an explicit resend() re-enables it.
  star.d[1]->set_location("p0", 0);
  Event e("msg");
  e.set_to("p0");
  star.probes[2]->send(std::move(e));  // 2 -> (location) 0, not a peer; no mediator on d2
  star.sim.run();
  EXPECT_EQ(star.d[2]->undeliverable_remote(), 1u);
  EXPECT_TRUE(star.probes[0]->received.empty());
}

TEST(Distribution, LocalDestinationNotForwarded) {
  Star star;
  const auto sent_before = star.net.stats().sent;
  Event e("msg");
  e.set_to("p0");
  star.probes[0]->send(std::move(e));  // p0 is local to host 0... sender==dest
  star.sim.run();
  // Destination == sender: deliver_locally skips the sender, and the event
  // must not leak onto the network either.
  EXPECT_EQ(star.net.stats().sent, sent_before);
}

TEST(Distribution, PeerManagement) {
  Star star;
  EXPECT_EQ(star.d[1]->peers().size(), 2u);
  star.d[1]->remove_peer(2);
  EXPECT_EQ(star.d[1]->peers().size(), 1u);
  star.d[1]->add_peer(2);
  star.d[1]->add_peer(2);  // idempotent
  EXPECT_EQ(star.d[1]->peers().size(), 2u);
  star.d[1]->add_peer(1);  // self: ignored
  EXPECT_EQ(star.d[1]->peers().size(), 2u);
}

TEST(Distribution, LocationTableUpdates) {
  Star star;
  EXPECT_EQ(star.d[0]->location("p2"), 2u);
  star.d[0]->set_location("p2", 1);
  EXPECT_EQ(star.d[0]->location("p2"), 1u);
  EXPECT_FALSE(star.d[0]->location("ghost").has_value());
}

}  // namespace
}  // namespace dif::prism
