// Traffic engine + ratekeeper tests: report determinism (byte-identical
// JSON across same-seed runs), the closed-loop concurrency invariant,
// prepare-throttling actually slowing migration fan-outs, and tag-budget
// shedding hitting only the over-budget tenant.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/centralized_instantiation.h"
#include "desi/generator.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "prism/deployer.h"
#include "traffic/engine.h"
#include "traffic/ratekeeper.h"
#include "traffic/runner.h"

namespace dif::traffic {
namespace {

TEST(TrafficRunner, SameSeedYieldsByteIdenticalReports) {
  RunOptions opts;
  opts.generator.hosts = 5;
  opts.generator.components = 12;
  opts.seed = 11;
  opts.duration_ms = 8'000.0;
  opts.engine.rps = 120.0;
  opts.engine.shape = IntensityShape::kFlash;
  opts.engine.flash_at_ms = 3'000.0;
  opts.engine.flash_duration_ms = 2'000.0;
  opts.engine.tenants = {{"t0", 2.0, 0.6}, {"t1", 1.0, 0.6}};
  opts.loop_interval_ms = 2'000.0;
  opts.redeploy_at_ms = 2'500.0;
  opts.redeploy_every_ms = 3'000.0;
  opts.redeploy_moves = 2;

  const RunResult a = run_traffic(opts);
  const RunResult b = run_traffic(opts);
  EXPECT_GT(a.offered, 0u);
  // The report is the determinism contract. (The raw metrics registry is
  // NOT byte-stable: analyzer.algo_wall_ms records real wall-clock time.)
  EXPECT_EQ(a.report.dump(2), b.report.dump(2));

  opts.seed = 12;
  const RunResult c = run_traffic(opts);
  EXPECT_NE(a.report.dump(2), c.report.dump(2));
}

TEST(TrafficEngine, ClosedLoopBoundsOutstandingAndConservesRequests) {
  desi::GeneratorSpec spec = traffic_generator_spec();
  spec.hosts = 4;
  spec.components = 10;
  const auto system = desi::Generator::generate(spec, 5);
  core::FrameworkConfig fc;
  fc.seed = 5;
  core::CentralizedInstantiation inst(*system, fc);

  EngineConfig config;
  config.arrival = ArrivalModel::kClosed;
  config.closed_users = 16;
  config.think_ms = 50.0;
  config.seed = 5;
  config.tenants = {{"heavy", 2.0, 1.0}, {"light", 1.0, 1.0}};
  TrafficEngine engine(inst, config, obs::Instruments{});

  inst.start();
  engine.start();
  inst.simulator().run_until(5'000.0);

  EXPECT_GT(engine.ticks(), 0u);
  EXPECT_LE(engine.max_outstanding(), config.closed_users);
  std::uint64_t offered = 0;
  for (const TenantStats& s : engine.tenants()) {
    EXPECT_GT(s.offered, 0u);  // both tenants got users
    EXPECT_EQ(s.offered, s.completed + s.failed + s.shed);
    EXPECT_EQ(s.latencies_ms.size(), s.completed + s.failed);
    offered += s.offered;
  }
  EXPECT_GT(offered, 0u);
}

/// Testbed for the prepare-throttle: a generated system whose deployer reads
/// the given throttle cell, with a multi-participant plan built from the
/// live placement.
struct ThrottleBed {
  std::unique_ptr<desi::SystemData> system;
  std::shared_ptr<prism::PrepareThrottle> cell =
      std::make_shared<prism::PrepareThrottle>();
  obs::Registry metrics;
  std::unique_ptr<core::CentralizedInstantiation> inst;

  ThrottleBed() {
    desi::GeneratorSpec spec = traffic_generator_spec();
    spec.hosts = 6;
    spec.components = 18;
    system = desi::Generator::generate(spec, 7);
    core::FrameworkConfig fc;
    fc.seed = 7;
    fc.deployer.throttle = [cell = cell] { return *cell; };
    inst = std::make_unique<core::CentralizedInstantiation>(*system, fc);
    inst->set_instruments({&metrics, nullptr});
    inst->start();
    inst->simulator().run_until(500.0);  // let admins/monitors settle
  }

  /// Moves `moves` components, each to a distinct new host, so the round
  /// spans several participants.
  bool effect(std::size_t moves) {
    const model::DeploymentModel& m = system->model();
    const model::Deployment placement = inst->runtime_deployment();
    prism::DeployerComponent::TargetDeployment target;
    for (model::ComponentId c = 0; c < m.component_count() &&
                                   target.size() < moves; ++c) {
      const model::HostId cur = placement.host_of(c);
      if (cur == model::kNoHost) continue;
      const auto next = static_cast<model::HostId>(
          (cur + 1 + target.size()) % m.host_count());
      if (next == cur) continue;
      target.emplace_back(m.component(c).name, next);
    }
    return inst->deployer().effect_deployment(target,
                                              [](bool, std::size_t) {});
  }

  [[nodiscard]] std::uint64_t counter(const char* name) const {
    const obs::Counter* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  }
};

TEST(Ratekeeper, PrepareThrottleSlowsMigrationFanout) {
  // Unthrottled: the whole prepare fan-out leaves inside effect_deployment.
  ThrottleBed free_bed;
  ASSERT_TRUE(free_bed.effect(3));
  const std::uint64_t unthrottled_sent =
      free_bed.counter("deploy.txn.prepare_sent");
  ASSERT_GE(unthrottled_sent, 2u);
  EXPECT_EQ(free_bed.counter("deploy.txn.prepare_batches"), 1u);
  EXPECT_EQ(free_bed.counter("deploy.txn.prepare_throttled"), 0u);

  // Throttled to one prepare per batch: strictly fewer leave up front, the
  // rest trickle out on the inter-batch delay, and the round still commits.
  ThrottleBed slow_bed;
  slow_bed.cell->max_batch = 1;
  slow_bed.cell->inter_batch_delay_ms = 400.0;
  ASSERT_TRUE(slow_bed.effect(3));
  const std::uint64_t throttled_sent =
      slow_bed.counter("deploy.txn.prepare_sent");
  EXPECT_LT(throttled_sent, unthrottled_sent);
  EXPECT_EQ(throttled_sent, 1u);
  EXPECT_EQ(slow_bed.counter("deploy.txn.prepare_throttled"), 1u);

  slow_bed.inst->simulator().run_until(30'000.0);
  // >= rather than ==: the deployer's renotify path may legitimately
  // re-send prepares to slow participants on top of the batched fan-out.
  EXPECT_GE(slow_bed.counter("deploy.txn.prepare_sent"), unthrottled_sent);
  EXPECT_GT(slow_bed.counter("deploy.txn.prepare_batches"), 1u);
  EXPECT_EQ(slow_bed.inst->deployer().last_outcome(),
            prism::TxnOutcome::kCommitted);
}

TEST(Ratekeeper, ShedsOnlyTheOverBudgetTenantUnderSaturation) {
  desi::GeneratorSpec spec = traffic_generator_spec();
  spec.hosts = 4;
  spec.components = 10;
  const auto system = desi::Generator::generate(spec, 3);
  auto cell = std::make_shared<prism::PrepareThrottle>();
  core::FrameworkConfig fc;
  fc.seed = 3;
  fc.deployer.throttle = [cell] { return *cell; };
  core::CentralizedInstantiation inst(*system, fc);
  obs::Registry metrics;
  obs::Instruments instruments{&metrics, nullptr};
  inst.set_instruments(instruments);

  EngineConfig config;
  config.rps = 200.0;
  config.host_capacity_rps = 20.0;  // saturated from the first tick
  config.seed = 3;
  // heavy holds ~2/3 of the load against a 0.5 budget; light stays within.
  config.tenants = {{"heavy", 2.0, 0.5}, {"light", 1.0, 0.9}};
  TrafficEngine engine(inst, config, instruments);

  RatekeeperConfig rk_config;
  rk_config.slo_p99_ms = 1.0;  // any served sample breaches
  Ratekeeper ratekeeper(engine, inst, instruments, cell, rk_config);

  inst.start();
  engine.start();
  ratekeeper.start();
  inst.simulator().run_until(10'000.0);

  EXPECT_GT(ratekeeper.shed_actions(), 0u);
  EXPECT_GT(engine.shed_level(0), 0.0);
  EXPECT_EQ(engine.shed_level(1), 0.0);
  EXPECT_GT(engine.tenants()[0].shed, 0u);
  EXPECT_EQ(engine.tenants()[1].shed, 0u);
  // Breach accounting ran too, and the throttle ladder escalated.
  EXPECT_GT(ratekeeper.slo_violation_ms(), 0.0);
  EXPECT_GT(ratekeeper.max_level_reached(), 0);
  EXPECT_GE(cell->inter_batch_delay_ms, 0.0);
}

}  // namespace
}  // namespace dif::traffic
