// Unit tests for constraint specification and checking (model/constraints.h).
#include "model/constraints.h"

#include <gtest/gtest.h>

#include "model/deployment_model.h"

namespace dif::model {
namespace {

DeploymentModel make_model(std::size_t hosts, std::size_t comps,
                           double host_mem = 100.0, double comp_mem = 10.0) {
  DeploymentModel m;
  for (std::size_t h = 0; h < hosts; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = host_mem});
  for (std::size_t c = 0; c < comps; ++c)
    m.add_component(
        {.name = "c" + std::to_string(c), .memory_size = comp_mem});
  return m;
}

TEST(ConstraintSet, DefaultAllowsEverything) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.empty());
  EXPECT_TRUE(cs.host_allowed(0, 0));
  EXPECT_TRUE(cs.host_allowed(3, 7));
}

TEST(ConstraintSet, AllowOnlyRestricts) {
  ConstraintSet cs;
  cs.allow_only(1, {0, 2});
  EXPECT_TRUE(cs.host_allowed(1, 0));
  EXPECT_FALSE(cs.host_allowed(1, 1));
  EXPECT_TRUE(cs.host_allowed(1, 2));
  EXPECT_TRUE(cs.host_allowed(0, 1));  // other components unaffected
  EXPECT_THROW(cs.allow_only(2, {}), std::invalid_argument);
}

TEST(ConstraintSet, AllowOnlyReplacesPriorList) {
  ConstraintSet cs;
  cs.allow_only(0, {0});
  cs.allow_only(0, {1});
  EXPECT_FALSE(cs.host_allowed(0, 0));
  EXPECT_TRUE(cs.host_allowed(0, 1));
}

TEST(ConstraintSet, ForbidHostOverridesAllowList) {
  ConstraintSet cs;
  cs.allow_only(0, {0, 1});
  cs.forbid_host(0, 1);
  EXPECT_TRUE(cs.host_allowed(0, 0));
  EXPECT_FALSE(cs.host_allowed(0, 1));
}

TEST(ConstraintSet, PinIsSingletonAllowList) {
  ConstraintSet cs;
  cs.pin(2, 3);
  EXPECT_TRUE(cs.host_allowed(2, 3));
  EXPECT_FALSE(cs.host_allowed(2, 0));
}

TEST(ConstraintSet, SelfColocationRejected) {
  ConstraintSet cs;
  EXPECT_THROW(cs.require_colocation(1, 1), std::invalid_argument);
  EXPECT_THROW(cs.forbid_colocation(2, 2), std::invalid_argument);
}

TEST(ConstraintChecker, RequiresAtLeastOneHost) {
  DeploymentModel m;
  m.add_component({.name = "c"});
  ConstraintSet cs;
  EXPECT_THROW(ConstraintChecker(m, cs), std::invalid_argument);
}

TEST(ConstraintChecker, FeasibleWhenEverythingFits) {
  DeploymentModel m = make_model(2, 3);
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  const Deployment d(std::vector<HostId>{0, 0, 1});
  EXPECT_TRUE(checker.feasible(d));
  EXPECT_TRUE(checker.violations(d).empty());
}

TEST(ConstraintChecker, DetectsUnassigned) {
  DeploymentModel m = make_model(2, 2);
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  Deployment d(2);
  d.assign(0, 0);
  EXPECT_FALSE(checker.feasible(d));
  const auto violations = checker.violations(d);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kUnassigned);
}

TEST(ConstraintChecker, DetectsMemoryOverflow) {
  DeploymentModel m = make_model(2, 3, /*host_mem=*/25.0, /*comp_mem=*/10.0);
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  const Deployment d(std::vector<HostId>{0, 0, 0});  // 30 KB on a 25 KB host
  EXPECT_FALSE(checker.feasible(d));
  const auto violations = checker.violations(d);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kMemory);
  EXPECT_NE(violations[0].detail.find("h0"), std::string::npos);
}

TEST(ConstraintChecker, MemoryCheckCanBeDisabled) {
  DeploymentModel m = make_model(1, 3, 5.0, 10.0);
  ConstraintSet cs;
  ConstraintChecker::Options options;
  options.check_memory = false;
  ConstraintChecker checker(m, cs, options);
  EXPECT_TRUE(checker.feasible(Deployment(std::vector<HostId>{0, 0, 0})));
}

TEST(ConstraintChecker, DetectsCpuOverload) {
  DeploymentModel m;
  m.add_host({.name = "h0", .memory_capacity = 100.0, .cpu_capacity = 1.0});
  m.add_component({.name = "c0", .memory_size = 1.0, .cpu_load = 0.7});
  m.add_component({.name = "c1", .memory_size = 1.0, .cpu_load = 0.7});
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  const auto violations =
      checker.violations(Deployment(std::vector<HostId>{0, 0}));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kCpu);
}

TEST(ConstraintChecker, CpuIgnoredWhenHostDoesNotModelIt) {
  DeploymentModel m;
  m.add_host({.name = "h0", .memory_capacity = 100.0, .cpu_capacity = 0.0});
  m.add_component({.name = "c0", .memory_size = 1.0, .cpu_load = 99.0});
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  EXPECT_TRUE(checker.feasible(Deployment(std::vector<HostId>{0})));
}

TEST(ConstraintChecker, DetectsLocationViolation) {
  DeploymentModel m = make_model(3, 1);
  ConstraintSet cs;
  cs.allow_only(0, {1, 2});
  ConstraintChecker checker(m, cs);
  EXPECT_FALSE(checker.feasible(Deployment(std::vector<HostId>{0})));
  EXPECT_TRUE(checker.feasible(Deployment(std::vector<HostId>{2})));
  EXPECT_TRUE(checker.host_allowed(0, 1));
  EXPECT_FALSE(checker.host_allowed(0, 0));
}

TEST(ConstraintChecker, DetectsColocationViolations) {
  DeploymentModel m = make_model(2, 3);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.forbid_colocation(1, 2);
  ConstraintChecker checker(m, cs);
  // 0 and 1 apart: violation; 1 and 2 together: violation.
  const auto violations =
      checker.violations(Deployment(std::vector<HostId>{0, 1, 1}));
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kColocationRequired);
  EXPECT_EQ(violations[1].kind, Violation::Kind::kColocationForbidden);
  EXPECT_TRUE(checker.feasible(Deployment(std::vector<HostId>{0, 0, 1})));
}

TEST(ConstraintChecker, BandwidthConstraintOptIn) {
  DeploymentModel m = make_model(2, 2);
  m.set_physical_link(0, 1, {.reliability = 1.0, .bandwidth = 5.0});
  // 4 evt/s * 2 KB = 8 KB/s of traffic over a 5 KB/s link.
  m.set_logical_link(0, 1, {.frequency = 4.0, .avg_event_size = 2.0});
  ConstraintSet cs;
  const Deployment split(std::vector<HostId>{0, 1});

  ConstraintChecker lax(m, cs);
  EXPECT_TRUE(lax.feasible(split));

  ConstraintChecker::Options options;
  options.check_bandwidth = true;
  ConstraintChecker strict(m, cs, options);
  EXPECT_FALSE(strict.feasible(split));
  const auto violations = strict.violations(split);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kBandwidth);
  // Local placement has no bandwidth footprint.
  EXPECT_TRUE(strict.feasible(Deployment(std::vector<HostId>{0, 0})));
}

TEST(ConstraintChecker, PlacementOkChecksBandwidthHeadroom) {
  DeploymentModel m = make_model(3, 3);
  for (HostId a = 0; a < 3; ++a)
    for (HostId b = a + 1; b < 3; ++b)
      m.set_physical_link(a, b, {.reliability = 1.0, .bandwidth = 10.0});
  // c0--c1 consumes 6 KB/s, c2--c0 another 6 KB/s: each fits alone, but
  // both over the same h0--h1 link (12 KB/s) would exceed 10 KB/s.
  m.set_logical_link(0, 1, {.frequency = 3.0, .avg_event_size = 2.0});
  m.set_logical_link(0, 2, {.frequency = 3.0, .avg_event_size = 2.0});
  ConstraintSet cs;
  ConstraintChecker::Options options;
  options.check_bandwidth = true;
  ConstraintChecker checker(m, cs, options);

  Deployment d(3);
  d.assign(1, 1);
  d.assign(2, 1);
  // c0 on h1 is local to both partners: no traffic, fine.
  EXPECT_TRUE(checker.placement_ok(d, 0, 1));
  // c0 on h0 aggregates both interactions onto h0--h1: 12 > 10.
  EXPECT_FALSE(checker.placement_ok(d, 0, 0));

  // Split the partners: 6 KB/s per link fits on each.
  d.unassign(2);
  d.assign(2, 2);
  EXPECT_TRUE(checker.placement_ok(d, 0, 0));
}

TEST(ConstraintChecker, PlacementOkBandwidthCountsExistingTraffic) {
  DeploymentModel m = make_model(2, 3);
  m.set_physical_link(0, 1, {.reliability = 1.0, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 4.0, .avg_event_size = 2.0});  // 8
  m.set_logical_link(1, 2, {.frequency = 2.0, .avg_event_size = 2.0});  // 4
  ConstraintSet cs;
  ConstraintChecker::Options options;
  options.check_bandwidth = true;
  ConstraintChecker checker(m, cs, options);

  Deployment d(3);
  d.assign(0, 0);
  d.assign(1, 1);  // existing c0--c1 cross traffic: 8 KB/s of 10
  // c2 on h0 adds the 4 KB/s c1--c2 flow to the already-loaded link.
  EXPECT_FALSE(checker.placement_ok(d, 2, 0));
  // Local to its partner, c2 adds nothing.
  EXPECT_TRUE(checker.placement_ok(d, 2, 1));
  // Without the opt-in the same placement is accepted.
  EXPECT_TRUE(ConstraintChecker(m, cs).placement_ok(d, 2, 0));
}

TEST(ConstraintChecker, PlacementOkChecksIncrementalState) {
  DeploymentModel m = make_model(2, 3, 25.0, 10.0);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.forbid_colocation(0, 2);
  ConstraintChecker checker(m, cs);

  Deployment d(3);
  EXPECT_TRUE(checker.placement_ok(d, 0, 0));
  d.assign(0, 0);
  // Memory: a second 10 KB component fits (20 <= 25), a third would not.
  EXPECT_TRUE(checker.placement_ok(d, 1, 0));
  d.assign(1, 0);
  EXPECT_FALSE(checker.placement_ok(d, 2, 0));  // anti-pair with 0 + memory
  EXPECT_TRUE(checker.placement_ok(d, 2, 1));
  // Must-pair: moving 1 away from 0's host is not placement-ok.
  d.unassign(1);
  EXPECT_FALSE(checker.placement_ok(d, 1, 1));
}

TEST(ConstraintChecker, ViolationKindNames) {
  EXPECT_EQ(to_string(Violation::Kind::kMemory), "memory");
  EXPECT_EQ(to_string(Violation::Kind::kLocation), "location");
  EXPECT_EQ(to_string(Violation::Kind::kBandwidth), "bandwidth");
}

TEST(ConstraintChecker, HostFreeMemory) {
  DeploymentModel m = make_model(2, 2, 30.0, 10.0);
  ConstraintSet cs;
  ConstraintChecker checker(m, cs);
  Deployment d(std::vector<HostId>{0, 0});
  EXPECT_DOUBLE_EQ(checker.host_free_memory(d, 0), 10.0);
  EXPECT_DOUBLE_EQ(checker.host_free_memory(d, 1), 30.0);
}

/// Property sweep: with many hosts, the compiled bitmask path (>64 hosts
/// forces multi-word rows) must agree with the rule-level implementation.
class CompiledMaskTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompiledMaskTest, MatchesRuleLevelAnswer) {
  const std::size_t hosts = GetParam();
  DeploymentModel m = make_model(hosts, 4);
  ConstraintSet cs;
  cs.allow_only(0, {0, static_cast<HostId>(hosts - 1)});
  cs.forbid_host(1, static_cast<HostId>(hosts / 2));
  ConstraintChecker checker(m, cs);
  for (std::size_t c = 0; c < 4; ++c)
    for (std::size_t h = 0; h < hosts; ++h)
      EXPECT_EQ(checker.host_allowed(static_cast<ComponentId>(c),
                                     static_cast<HostId>(h)),
                cs.host_allowed(static_cast<ComponentId>(c),
                                static_cast<HostId>(h)))
          << "c=" << c << " h=" << h;
}

INSTANTIATE_TEST_SUITE_P(HostCounts, CompiledMaskTest,
                         ::testing::Values(1, 2, 63, 64, 65, 130));

}  // namespace
}  // namespace dif::model
