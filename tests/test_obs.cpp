// Tests for the observability layer (obs/metrics.h, obs/trace.h) and its
// integration with the running framework: every applied redeployment must
// leave a trace span carrying its epoch, migration count, and duration, and
// the network counters must satisfy the conservation invariant
// delivered + dropped + unroutable <= sent.
#include <gtest/gtest.h>

#include "core/improvement_loop.h"
#include "desi/generator.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace dif::obs {
namespace {

TEST(Metrics, CounterAndGaugeBasics) {
  Registry registry;
  Counter& c = registry.counter("net.sent");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same object: hot paths may cache the reference.
  EXPECT_EQ(&registry.counter("net.sent"), &c);

  Gauge& g = registry.gauge("loop.objective");
  g.set(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);

  EXPECT_EQ(registry.find_counter("net.sent"), &c);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("loop.objective"), &g);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  Registry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);  // beyond the last bound: +inf overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 105.5 / 3.0, 1e-12);
  ASSERT_EQ(h.bucket_counts().size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(Metrics, JsonDocumentShape) {
  Registry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.level").set(1.5);
  registry.histogram("c.ms", {10.0}).observe(4.0);

  const util::json::Value doc = registry.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "dif-metrics-v1");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.level").as_number(), 1.5);
  const util::json::Value& hist = doc.at("histograms").at("c.ms");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 4.0);
  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(buckets[0].at("count").as_number(), 1.0);
  EXPECT_TRUE(buckets[1].at("le").is_null());  // +inf overflow

  // The document round-trips through the writer/parser.
  EXPECT_EQ(util::json::parse(doc.dump()), doc);
}

TEST(Trace, SpansRecordDurationAndLateFields) {
  TraceLog log;
  const TraceLog::SpanId span =
      log.begin_span(10.0, "deploy.redeploy",
                     {{"epoch", static_cast<std::int64_t>(1)}});
  ASSERT_NE(span, TraceLog::kInvalidSpan);
  log.span_field(span, "success", true);
  log.end_span(span, 25.0);
  log.add_event(30.0, "note", {{"text", std::string("hi")}});

  ASSERT_EQ(log.events().size(), 2u);
  const TraceEvent& e = log.events()[0];
  EXPECT_TRUE(e.span);
  EXPECT_DOUBLE_EQ(e.t_ms, 10.0);
  EXPECT_DOUBLE_EQ(e.dur_ms, 15.0);
  ASSERT_NE(e.field("epoch"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*e.field("epoch")), 1);
  ASSERT_NE(e.field("success"), nullptr);
  EXPECT_TRUE(std::get<bool>(*e.field("success")));
  EXPECT_EQ(e.field("absent"), nullptr);
  EXPECT_FALSE(log.events()[1].span);

  ASSERT_EQ(log.find("deploy.redeploy").size(), 1u);
  EXPECT_TRUE(log.find("nothing").empty());

  const util::json::Value doc = log.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "dif-trace-v1");
  EXPECT_DOUBLE_EQ(doc.at("dropped").as_number(), 0.0);
  const auto& events = doc.at("events").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "deploy.redeploy");
  EXPECT_TRUE(events[0].at("fields").at("success").as_bool());
  EXPECT_EQ(util::json::parse(doc.dump()), doc);
}

TEST(Trace, BoundedCapacityCountsDrops) {
  TraceLog log(2);
  log.add_event(1.0, "a");
  log.add_event(2.0, "b");
  log.add_event(3.0, "c");  // over capacity: dropped, not grown
  EXPECT_EQ(log.begin_span(4.0, "d"), TraceLog::kInvalidSpan);
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_DOUBLE_EQ(log.to_json().at("dropped").as_number(), 2.0);
}

}  // namespace
}  // namespace dif::obs

// ---- the instrumented framework end-to-end -----------------------------

namespace dif::core {
namespace {

std::unique_ptr<desi::SystemData> crisis_like_system(std::uint64_t seed) {
  return desi::Generator::generate(
      {.hosts = 4,
       .components = 10,
       .reliability = {0.5, 0.95},
       .bandwidth = {200.0, 800.0},
       .frequency = {1.0, 4.0},
       .event_size = {0.1, 0.5},
       .link_density = 1.0,
       .interaction_density = 0.3},
      seed);
}

TEST(Observability, EveryAppliedRedeploymentLeavesASpan) {
  auto system = crisis_like_system(5);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_epsilon = 2.0;
  config.admin.stability_window = 2;
  CentralizedInstantiation inst(*system, config);

  obs::Registry metrics;
  obs::TraceLog trace;
  inst.set_instruments({&metrics, &trace});
  inst.start();

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 5'000.0;
  loop_config.policy.min_improvement = 0.005;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  loop.set_instruments({&metrics, &trace});
  loop.start();
  inst.simulator().run_until(120'000.0);

  ASSERT_GE(loop.redeployments_applied(), 1u);

  // Acceptance: every applied redeployment appears as a trace span with
  // its epoch, migration count, and duration.
  const auto spans = trace.find("deploy.redeploy");
  ASSERT_GE(spans.size(), loop.redeployments_applied());
  std::int64_t last_epoch = 0;
  for (const obs::TraceEvent* span : spans) {
    EXPECT_TRUE(span->span);
    const obs::FieldValue* epoch = span->field("epoch");
    ASSERT_NE(epoch, nullptr);
    EXPECT_GT(std::get<std::int64_t>(*epoch), last_epoch);  // monotone
    last_epoch = std::get<std::int64_t>(*epoch);
    ASSERT_NE(span->field("moves_requested"), nullptr);
    EXPECT_GE(span->dur_ms, 0.0);
    if (span->field("success") != nullptr) {  // span was closed
      ASSERT_NE(span->field("migrations"), nullptr);
      if (std::get<bool>(*span->field("success"))) {
        EXPECT_GT(std::get<std::int64_t>(*span->field("migrations")), 0);
      }
    }
  }

  // Network conservation: everything sent is delivered, dropped, or
  // unroutable (in-flight remainder makes the inequality strict).
  const auto counter = [&](const char* name) -> std::uint64_t {
    const obs::Counter* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  };
  EXPECT_GT(counter("net.sent"), 0u);
  EXPECT_LE(counter("net.delivered") + counter("net.dropped") +
                counter("net.unroutable"),
            counter("net.sent"));
  // The registry counts match the layers' own bookkeeping.
  EXPECT_EQ(counter("net.sent"), inst.network().stats().sent);
  EXPECT_EQ(counter("loop.ticks"), loop.history().size());
  EXPECT_EQ(counter("deploy.redeployments"), spans.size());
  EXPECT_GT(counter("monitor.freq.collections"), 0u);
  EXPECT_GT(counter("admin.reports"), 0u);
  EXPECT_GT(counter("analyzer.analyses"), 0u);

  // Every tick left a loop.tick span with its action.
  const auto ticks = trace.find("loop.tick");
  ASSERT_EQ(ticks.size(), loop.history().size());
  for (const obs::TraceEvent* tick : ticks)
    ASSERT_NE(tick->field("action"), nullptr);
}

TEST(Observability, ExternalRedeploymentSurfacesAsEffectorRejection) {
  // A redeployment started behind the loop's back (operator intervention)
  // must not be silently absorbed: the loop's own kRedeploy decision is
  // recorded as an explicit effector rejection.
  auto system = crisis_like_system(6);
  const model::AvailabilityObjective availability;
  FrameworkConfig config;
  CentralizedInstantiation inst(*system, config);
  inst.start();
  inst.simulator().run_until(1'000.0);

  // Externally move everything to host 0; completion is asynchronous, so
  // the deployer stays busy while the loop ticks.
  model::Deployment target(system->model().component_count());
  for (std::size_t c = 0; c < target.size(); ++c)
    target.assign(static_cast<model::ComponentId>(c), 0);
  ASSERT_TRUE(inst.adapter().effect(target, [](bool, std::size_t) {}));
  ASSERT_TRUE(inst.deployer().redeployment_in_flight());

  ImprovementLoop::Config loop_config;
  loop_config.policy.min_improvement = -1.0;  // any feasible change passes
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);
  obs::Registry metrics;
  obs::TraceLog trace;
  loop.set_instruments({&metrics, &trace});

  const analyzer::Decision decision = loop.tick();
  ASSERT_EQ(decision.action, analyzer::Decision::Action::kRedeploy);
  EXPECT_NE(decision.reason.find("effector rejected"), std::string::npos);
  EXPECT_EQ(loop.effector_rejections(), 1u);
  EXPECT_EQ(loop.redeployments_applied(), 0u);
  ASSERT_FALSE(loop.history().empty());
  EXPECT_FALSE(loop.history().back().effected);

  ASSERT_NE(metrics.find_counter("loop.effector_rejected"), nullptr);
  EXPECT_EQ(metrics.find_counter("loop.effector_rejected")->value(), 1u);
  const auto ticks = trace.find("loop.tick");
  ASSERT_EQ(ticks.size(), 1u);
  const obs::FieldValue* action = ticks[0]->field("action");
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(std::get<std::string>(*action), "redeploy_rejected");
}

}  // namespace
}  // namespace dif::core
