// Tests for xADL-lite serialization round trips (desi/xadl.h).
#include "desi/xadl.h"

#include <gtest/gtest.h>

#include "desi/generator.h"

namespace dif::desi {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, FullSystemRoundTrips) {
  const auto original = Generator::generate(
      {.hosts = 5,
       .components = 12,
       .location_constraints = 2,
       .colocation_pairs = 1,
       .anti_colocation_pairs = 1},
      GetParam());
  original->model().host(0).properties.set("battery", 0.75);
  original->model().component(1).properties.set("criticality", 2.0);

  const std::string text = XadlLite::to_text(*original);
  const auto restored = XadlLite::from_text(text);

  const model::DeploymentModel& a = original->model();
  const model::DeploymentModel& b = restored->model();
  ASSERT_EQ(a.host_count(), b.host_count());
  ASSERT_EQ(a.component_count(), b.component_count());
  for (std::size_t h = 0; h < a.host_count(); ++h) {
    const auto id = static_cast<model::HostId>(h);
    EXPECT_EQ(a.host(id).name, b.host(id).name);
    EXPECT_DOUBLE_EQ(a.host(id).memory_capacity, b.host(id).memory_capacity);
    EXPECT_EQ(a.host(id).properties, b.host(id).properties);
  }
  for (std::size_t c = 0; c < a.component_count(); ++c) {
    const auto id = static_cast<model::ComponentId>(c);
    EXPECT_EQ(a.component(id).name, b.component(id).name);
    EXPECT_DOUBLE_EQ(a.component(id).memory_size, b.component(id).memory_size);
    EXPECT_EQ(a.component(id).properties, b.component(id).properties);
  }
  for (std::size_t x = 0; x < a.host_count(); ++x) {
    for (std::size_t y = x + 1; y < a.host_count(); ++y) {
      const auto hx = static_cast<model::HostId>(x);
      const auto hy = static_cast<model::HostId>(y);
      EXPECT_EQ(a.connected(hx, hy), b.connected(hx, hy));
      if (a.connected(hx, hy)) {
        EXPECT_DOUBLE_EQ(a.physical_link(hx, hy).reliability,
                         b.physical_link(hx, hy).reliability);
        EXPECT_DOUBLE_EQ(a.physical_link(hx, hy).bandwidth,
                         b.physical_link(hx, hy).bandwidth);
        EXPECT_DOUBLE_EQ(a.physical_link(hx, hy).delay_ms,
                         b.physical_link(hx, hy).delay_ms);
      }
    }
  }
  ASSERT_EQ(a.interactions().size(), b.interactions().size());
  for (std::size_t i = 0; i < a.interactions().size(); ++i) {
    EXPECT_EQ(a.interactions()[i].a, b.interactions()[i].a);
    EXPECT_EQ(a.interactions()[i].b, b.interactions()[i].b);
    EXPECT_DOUBLE_EQ(a.interactions()[i].frequency,
                     b.interactions()[i].frequency);
  }
  EXPECT_EQ(original->deployment(), restored->deployment());

  // Constraint semantics survive (checked behaviourally).
  for (std::size_t c = 0; c < a.component_count(); ++c)
    for (std::size_t h = 0; h < a.host_count(); ++h)
      EXPECT_EQ(original->constraints().host_allowed(
                    static_cast<model::ComponentId>(c),
                    static_cast<model::HostId>(h)),
                restored->constraints().host_allowed(
                    static_cast<model::ComponentId>(c),
                    static_cast<model::HostId>(h)));
  EXPECT_EQ(original->constraints().colocation_pairs().size(),
            restored->constraints().colocation_pairs().size());
  EXPECT_EQ(original->constraints().anti_colocation_pairs().size(),
            restored->constraints().anti_colocation_pairs().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Values(1, 2, 3, 4));

TEST(XadlLite, DoubleRoundTripIsIdentical) {
  const auto system = Generator::generate({.hosts = 3, .components = 7}, 9);
  const std::string once = XadlLite::to_text(*system);
  const std::string twice = XadlLite::to_text(*XadlLite::from_text(once));
  EXPECT_EQ(once, twice);
}

TEST(XadlLite, SchemaFieldPresent) {
  const auto system = Generator::generate({.hosts = 2, .components = 3}, 1);
  const util::json::Value doc = XadlLite::to_json(*system);
  EXPECT_EQ(doc.at("schema").as_string(), "dif-xadl-lite/1");
}

TEST(XadlLite, MalformedDocumentThrows) {
  EXPECT_THROW(XadlLite::from_text("{not json"), util::json::JsonError);
  EXPECT_THROW(XadlLite::from_text("{}"), util::json::JsonError);
  // Unknown host name referenced by a link.
  EXPECT_THROW(
      XadlLite::from_text(R"({"hosts":[{"name":"h0"}],"components":[],
        "physical_links":[{"a":"h0","b":"ghost"}],"logical_links":[]})"),
      std::out_of_range);
}

TEST(XadlLite, PartialDeploymentTolerated) {
  const auto system = Generator::generate({.hosts = 2, .components = 3}, 2);
  util::json::Value doc = XadlLite::to_json(*system);
  doc.as_object()["deployment"] = util::json::Object{};  // wipe it
  const auto restored = XadlLite::from_json(doc);
  EXPECT_FALSE(restored->deployment().complete());
}

}  // namespace
}  // namespace dif::desi
