// Tests for the pluggable algorithm registry (algo/registry.h).
#include "algo/registry.h"

#include <gtest/gtest.h>

#include "algo/stochastic.h"

namespace dif::algo {
namespace {

TEST(Registry, DefaultsContainAllAlgorithms) {
  const AlgorithmRegistry registry = AlgorithmRegistry::with_defaults();
  for (const std::string name :
       {"exact", "exact-unpruned", "stochastic", "avala", "hillclimb",
        "annealing", "genetic", "decap", "mincut", "bip-i5"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(registry.create(name), nullptr);
  }
  EXPECT_EQ(registry.names().size(), 10u);
}

TEST(Registry, CreateUnknownThrows) {
  const AlgorithmRegistry registry = AlgorithmRegistry::with_defaults();
  EXPECT_THROW(registry.create("nonexistent"), std::out_of_range);
}

TEST(Registry, PluggingInANewAlgorithm) {
  AlgorithmRegistry registry;
  EXPECT_FALSE(registry.contains("custom"));
  registry.register_factory(
      "custom", [] { return std::make_unique<StochasticAlgorithm>(7); });
  EXPECT_TRUE(registry.contains("custom"));
  EXPECT_EQ(registry.create("custom")->name(), "stochastic");
}

TEST(Registry, ReplaceAndUnregister) {
  AlgorithmRegistry registry = AlgorithmRegistry::with_defaults();
  registry.register_factory(
      "avala", [] { return std::make_unique<StochasticAlgorithm>(1); });
  EXPECT_EQ(registry.create("avala")->name(), "stochastic");  // replaced
  EXPECT_TRUE(registry.unregister("avala"));
  EXPECT_FALSE(registry.contains("avala"));
  EXPECT_FALSE(registry.unregister("avala"));
}

TEST(Registry, NamesAreSorted) {
  const AlgorithmRegistry registry = AlgorithmRegistry::with_defaults();
  const std::vector<std::string> names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace dif::algo
