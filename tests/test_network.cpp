// Unit tests for the simulated network (sim/network.h).
#include "sim/network.h"

#include <gtest/gtest.h>

namespace dif::sim {
namespace {

struct Fixture {
  Simulator sim;
  SimNetwork net{sim, 3, /*seed=*/1};
  std::vector<NetMessage> received;

  Fixture() {
    for (model::HostId h = 0; h < 3; ++h)
      net.set_receiver(
          h, [this](const NetMessage& m) { received.push_back(m); });
  }

  NetMessage msg(model::HostId from, model::HostId to, double kb = 1.0) {
    NetMessage m;
    m.from = from;
    m.to = to;
    m.channel = "test";
    m.size_kb = kb;
    return m;
  }
};

TEST(SimNetwork, PerfectLinkDeliversEverything) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 100.0,
                        .delay_ms = 5.0});
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(f.net.send(f.msg(0, 1)));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 20u);
  EXPECT_EQ(f.net.stats().delivered, 20u);
  EXPECT_EQ(f.net.stats().dropped, 0u);
}

TEST(SimNetwork, ZeroReliabilityDropsEverything) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 0.0, .bandwidth = 100.0});
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(f.net.send(f.msg(0, 1)));  // send "succeeds": loss is silent
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped, 20u);
}

TEST(SimNetwork, IntermediateReliabilityDropsProportionally) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 0.7, .bandwidth = 1e9});
  const int n = 5000;
  for (int i = 0; i < n; ++i) f.net.send(f.msg(0, 1, 0.0));
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(f.received.size()) / n, 0.7, 0.03);
}

TEST(SimNetwork, NoLinkIsUnroutable) {
  Fixture f;
  EXPECT_FALSE(f.net.send(f.msg(0, 2)));
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().unroutable, 1u);
}

TEST(SimNetwork, LocalDeliveryAlwaysWorks) {
  Fixture f;
  EXPECT_TRUE(f.net.send(f.msg(1, 1)));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].to, 1u);
}

TEST(SimNetwork, DeliveryDelayIsDelayPlusTransfer) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 10.0,
                        .delay_ms = 7.0});
  double arrival = -1.0;
  f.net.set_receiver(1, [&](const NetMessage&) { arrival = f.sim.now(); });
  f.net.send(f.msg(0, 1, 5.0));  // 5 KB at 10 KB/s = 500 ms transfer
  f.sim.run();
  EXPECT_DOUBLE_EQ(arrival, 507.0);
}

TEST(SimNetwork, TransfersSerializeOnTheLink) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 10.0,
                        .delay_ms = 0.0});
  std::vector<double> arrivals;
  f.net.set_receiver(1, [&](const NetMessage&) {
    arrivals.push_back(f.sim.now());
  });
  // Two 5 KB messages sent back-to-back share the link: the second starts
  // after the first finishes.
  f.net.send(f.msg(0, 1, 5.0));
  f.net.send(f.msg(0, 1, 5.0));
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 500.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 1000.0);
}

TEST(SimNetwork, SeverBlocksAndRestoreReopens) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 100.0});
  EXPECT_TRUE(f.net.reachable(0, 1));
  f.net.sever(0, 1);
  EXPECT_FALSE(f.net.reachable(0, 1));
  EXPECT_FALSE(f.net.send(f.msg(0, 1)));
  f.net.restore(0, 1);
  EXPECT_TRUE(f.net.send(f.msg(0, 1)));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetwork, LinksAreSymmetric) {
  Fixture f;
  f.net.set_link(2, 0, {.reliability = 0.5, .bandwidth = 42.0});
  EXPECT_DOUBLE_EQ(f.net.link(0, 2).bandwidth, 42.0);
  EXPECT_TRUE(f.net.reachable(0, 2));
}

TEST(SimNetwork, FromModelMirrorsLinks) {
  model::DeploymentModel m;
  m.add_host({.name = "a"});
  m.add_host({.name = "b"});
  m.add_host({.name = "c"});
  m.set_physical_link(0, 1, {.reliability = 0.8, .bandwidth = 64.0,
                             .delay_ms = 3.0});
  Simulator sim;
  SimNetwork net = SimNetwork::from_model(sim, m, 1);
  EXPECT_TRUE(net.reachable(0, 1));
  EXPECT_FALSE(net.reachable(0, 2));
  EXPECT_DOUBLE_EQ(net.link(0, 1).reliability, 0.8);
  EXPECT_DOUBLE_EQ(net.link(0, 1).delay_ms, 3.0);
}

TEST(SimNetwork, StatsAccumulateAndReset) {
  Fixture f;
  f.net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 100.0});
  f.net.send(f.msg(0, 1, 2.0));
  f.sim.run();
  EXPECT_EQ(f.net.stats().sent, 1u);
  EXPECT_DOUBLE_EQ(f.net.stats().kb_sent, 2.0);
  EXPECT_DOUBLE_EQ(f.net.stats().kb_delivered, 2.0);
  f.net.reset_stats();
  EXPECT_EQ(f.net.stats().sent, 0u);
}

TEST(SimNetwork, InvalidIdsThrow) {
  Fixture f;
  EXPECT_THROW(f.net.link(0, 9), std::out_of_range);
  EXPECT_THROW(f.net.set_receiver(9, nullptr), std::out_of_range);
  EXPECT_THROW(f.net.set_link(1, 1, {}), std::invalid_argument);
}

TEST(SimNetwork, DeterministicAcrossRunsWithSameSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim;
    SimNetwork net(sim, 2, seed);
    net.set_link(0, 1, {.reliability = 0.5, .bandwidth = 1e6});
    int delivered = 0;
    net.set_receiver(1, [&](const NetMessage&) { ++delivered; });
    for (int i = 0; i < 100; ++i) {
      NetMessage m;
      m.from = 0;
      m.to = 1;
      net.send(std::move(m));
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace dif::sim

// ---- host failure injection ------------------------------------------------

namespace dif::sim {
namespace {

TEST(HostFailure, DownHostNeitherSendsNorReceives) {
  Simulator sim;
  SimNetwork net(sim, 3, 1);
  net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 100.0});
  net.set_link(1, 2, {.reliability = 1.0, .bandwidth = 100.0});
  int delivered = 0;
  for (model::HostId h = 0; h < 3; ++h)
    net.set_receiver(h, [&](const NetMessage&) { ++delivered; });

  net.fail_host(1);
  EXPECT_FALSE(net.host_up(1));
  EXPECT_TRUE(net.host_up(0));
  EXPECT_FALSE(net.reachable(0, 1));
  EXPECT_FALSE(net.reachable(1, 2));
  EXPECT_FALSE(net.reachable(1, 1));  // even to itself while down

  NetMessage to_down;
  to_down.from = 0;
  to_down.to = 1;
  EXPECT_FALSE(net.send(std::move(to_down)));
  NetMessage from_down;
  from_down.from = 1;
  from_down.to = 2;
  EXPECT_FALSE(net.send(std::move(from_down)));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().unroutable, 2u);
}

TEST(HostFailure, RecoveryRestoresLinksButNotSeveredOnes) {
  Simulator sim;
  SimNetwork net(sim, 2, 1);
  net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 100.0});
  net.sever(0, 1);
  net.fail_host(1);
  net.recover_host(1);
  EXPECT_TRUE(net.host_up(1));
  EXPECT_FALSE(net.reachable(0, 1));  // link-level sever persists
  net.restore(0, 1);
  EXPECT_TRUE(net.reachable(0, 1));
}

TEST(HostFailure, InFlightMessageToCrashedHostIsDropped) {
  Simulator sim;
  SimNetwork net(sim, 2, 1);
  net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 10.0,
                      .delay_ms = 100.0});
  int delivered = 0;
  net.set_receiver(1, [&](const NetMessage&) { ++delivered; });
  NetMessage slow;
  slow.from = 0;
  slow.to = 1;
  slow.size_kb = 1.0;  // 100 ms transfer + 100 ms delay
  EXPECT_TRUE(net.send(std::move(slow)));
  sim.run_until(50.0);
  net.fail_host(1);  // crashes while the message is on the wire
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(HostFailure, CrashedAndRecoveredHostResumesService) {
  Simulator sim;
  SimNetwork net(sim, 2, 1);
  net.set_link(0, 1, {.reliability = 1.0, .bandwidth = 1000.0});
  int delivered = 0;
  net.set_receiver(1, [&](const NetMessage&) { ++delivered; });
  net.fail_host(1);
  net.recover_host(1);
  NetMessage m;
  m.from = 0;
  m.to = 1;
  EXPECT_TRUE(net.send(std::move(m)));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dif::sim
