// Unit tests for monitoring facilities (prism/monitors.h) and the
// DistributionConnector (prism/distribution.h).
#include "prism/monitors.h"

#include <gtest/gtest.h>

#include "prism/architecture.h"

namespace dif::prism {
namespace {

TEST(StabilityFilter, ReleasesOnlyWhenWindowIsTight) {
  StabilityFilter filter(3, 0.1);
  EXPECT_FALSE(filter.add(1.0).has_value());   // window not full
  EXPECT_FALSE(filter.add(2.0).has_value());
  EXPECT_FALSE(filter.add(1.5).has_value());   // full, spread 1.0 > 0.1
  EXPECT_FALSE(filter.add(1.52).has_value());  // {1.52,2.0,1.5} still wide
  // window now {1.52,1.48,1.5}: spread 0.04 < 0.1 -> stable, returns mean
  const auto stable = filter.add(1.48);
  ASSERT_TRUE(stable.has_value());
  EXPECT_NEAR(*stable, 1.5, 0.02);
}

TEST(StabilityFilter, ConstantSeriesStabilizesAtWindowFill) {
  StabilityFilter filter(4, 0.01);
  EXPECT_FALSE(filter.add(5.0).has_value());
  EXPECT_FALSE(filter.add(5.0).has_value());
  EXPECT_FALSE(filter.add(5.0).has_value());
  const auto stable = filter.add(5.0);
  ASSERT_TRUE(stable.has_value());
  EXPECT_DOUBLE_EQ(*stable, 5.0);
  EXPECT_TRUE(filter.stable());
}

TEST(StabilityFilter, ResetForgetsHistory) {
  StabilityFilter filter(2, 0.1);
  (void)filter.add(1.0);
  (void)filter.add(1.0);
  EXPECT_TRUE(filter.stable());
  filter.reset();
  EXPECT_FALSE(filter.stable());
}

class Probe final : public Component {
 public:
  explicit Probe(std::string name) : Component(std::move(name)) {}
  void handle(const Event&) override {}
  [[nodiscard]] std::string type_name() const override { return "probe"; }
};

TEST(EvtFrequencyMonitor, MeasuresPairFrequencies) {
  sim::Simulator sim;
  SimScaffold scaffold(sim);
  Architecture arch("a", scaffold, 0);
  auto& a = arch.add_component(std::make_unique<Probe>("a"));
  auto& b = arch.add_component(std::make_unique<Probe>("b"));
  auto& bus = arch.add_connector(std::make_unique<Connector>("bus"));
  arch.weld(a, bus);
  arch.weld(b, bus);
  auto monitor = std::make_shared<EvtFrequencyMonitor>(scaffold);
  a.add_monitor(monitor);
  b.add_monitor(monitor);

  // 20 events from a (broadcast; received by b) over 2 simulated seconds.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(i * 100.0, [&a] {
      Event e("app.msg");
      e.set("payload", std::vector<std::uint8_t>(2048));
      a.send(std::move(e));
    });
  }
  sim.run_until(2000.0);
  const auto pairs = monitor->collect();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].from, "a");
  EXPECT_EQ(pairs[0].to, "b");
  EXPECT_NEAR(pairs[0].frequency, 10.0, 0.5);  // 20 events / 2 s
  EXPECT_GT(pairs[0].avg_event_size_kb, 1.9);
  // collect() resets the counters, but a recently-active pair keeps being
  // reported — with an explicit zero — so consumers observe the interaction
  // stopping rather than the pair silently vanishing.
  const auto quiet = monitor->collect();
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0].from, "a");
  EXPECT_EQ(quiet[0].to, "b");
  EXPECT_DOUBLE_EQ(quiet[0].frequency, 0.0);
}

TEST(EvtFrequencyMonitor, SilentPairReportsZeroThenRetires) {
  sim::Simulator sim;
  SimScaffold scaffold(sim);
  Architecture arch("a", scaffold, 0);
  auto& a = arch.add_component(std::make_unique<Probe>("a"));
  auto& b = arch.add_component(std::make_unique<Probe>("b"));
  auto& bus = arch.add_connector(std::make_unique<Connector>("bus"));
  arch.weld(a, bus);
  arch.weld(b, bus);
  auto monitor = std::make_shared<EvtFrequencyMonitor>(scaffold,
                                                       /*retain_windows=*/2);
  a.add_monitor(monitor);
  b.add_monitor(monitor);

  sim.schedule_at(100.0, [&a] { a.send(Event("app.msg")); });
  sim.run_until(1000.0);
  ASSERT_EQ(monitor->collect().size(), 1u);  // active window

  // Two quiet windows report the pair at zero, then it is retired.
  for (int window = 0; window < 2; ++window) {
    const auto pairs = monitor->collect();
    ASSERT_EQ(pairs.size(), 1u) << "window " << window;
    EXPECT_DOUBLE_EQ(pairs[0].frequency, 0.0);
    EXPECT_DOUBLE_EQ(pairs[0].avg_event_size_kb, 0.0);
  }
  EXPECT_TRUE(monitor->collect().empty());
}

TEST(EvtFrequencyMonitor, ReactivatedPairResetsRetirementClock) {
  sim::Simulator sim;
  SimScaffold scaffold(sim);
  Architecture arch("a", scaffold, 0);
  auto& a = arch.add_component(std::make_unique<Probe>("a"));
  auto& b = arch.add_component(std::make_unique<Probe>("b"));
  auto& bus = arch.add_connector(std::make_unique<Connector>("bus"));
  arch.weld(a, bus);
  arch.weld(b, bus);
  auto monitor = std::make_shared<EvtFrequencyMonitor>(scaffold,
                                                       /*retain_windows=*/2);
  a.add_monitor(monitor);
  b.add_monitor(monitor);

  sim.schedule_at(100.0, [&a] { a.send(Event("app.msg")); });
  sim.run_until(1000.0);
  ASSERT_EQ(monitor->collect().size(), 1u);
  ASSERT_EQ(monitor->collect().size(), 1u);  // quiet window 1 of 2

  // Activity within the retention horizon restarts the clock: the pair is
  // live again and afterwards survives two further quiet windows.
  sim.schedule_at(1500.0, [&a] { a.send(Event("app.msg")); });
  sim.run_until(2000.0);
  auto pairs = monitor->collect();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_GT(pairs[0].frequency, 0.0);
  EXPECT_EQ(monitor->collect().size(), 1u);
  EXPECT_EQ(monitor->collect().size(), 1u);
  EXPECT_TRUE(monitor->collect().empty());
}

TEST(EvtFrequencyMonitor, IgnoresControlEvents) {
  sim::Simulator sim;
  SimScaffold scaffold(sim);
  Architecture arch("a", scaffold, 0);
  auto& a = arch.add_component(std::make_unique<Probe>("a"));
  auto& b = arch.add_component(std::make_unique<Probe>("b"));
  auto& bus = arch.add_connector(std::make_unique<Connector>("bus"));
  arch.weld(a, bus);
  arch.weld(b, bus);
  auto monitor = std::make_shared<EvtFrequencyMonitor>(scaffold);
  b.add_monitor(monitor);
  a.send(Event("__monitor_report"));
  a.send(Event("__location_update"));
  sim.run();
  EXPECT_EQ(monitor->events_observed(), 0u);
}

struct NetFixture {
  sim::Simulator sim;
  sim::SimNetwork net{sim, 2, 1};
  SimScaffold scaffold{sim};
  Architecture arch0{"a0", scaffold, 0};
  Architecture arch1{"a1", scaffold, 1};
  DistributionConnector* d0 = nullptr;
  DistributionConnector* d1 = nullptr;

  explicit NetFixture(double reliability) {
    net.set_link(0, 1, {.reliability = reliability, .bandwidth = 1e6,
                        .delay_ms = 1.0});
    d0 = &static_cast<DistributionConnector&>(arch0.add_connector(
        std::make_unique<DistributionConnector>("d0", net, 0)));
    d1 = &static_cast<DistributionConnector&>(arch1.add_connector(
        std::make_unique<DistributionConnector>("d1", net, 1)));
    d0->add_peer(1);
    d1->add_peer(0);
  }
};

TEST(NetworkReliabilityMonitor, PerfectLinkMeasuresOne) {
  NetFixture f(1.0);
  NetworkReliabilityMonitor monitor(*f.d0, f.sim,
                                    {.interval_ms = 100.0,
                                     .pings_per_round = 4});
  monitor.start();
  f.sim.run_until(2000.0);
  monitor.stop();
  f.sim.run_until(2100.0);  // let the final round's pongs land
  const auto estimates = monitor.collect();
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].peer, 1u);
  EXPECT_DOUBLE_EQ(estimates[0].reliability, 1.0);
  EXPECT_GT(estimates[0].probes, 0u);
}

TEST(NetworkReliabilityMonitor, LossyLinkEstimateNearTruth) {
  NetFixture f(0.8);
  NetworkReliabilityMonitor monitor(*f.d0, f.sim,
                                    {.interval_ms = 10.0,
                                     .pings_per_round = 16});
  monitor.start();
  f.sim.run_until(30'000.0);
  const auto estimates = monitor.collect();
  ASSERT_EQ(estimates.size(), 1u);
  // sqrt(round-trip success) estimates the one-way reliability.
  EXPECT_NEAR(estimates[0].reliability, 0.8, 0.05);
}

TEST(NetworkReliabilityMonitor, SeveredLinkMeasuresZero) {
  NetFixture f(1.0);
  f.net.sever(0, 1);
  NetworkReliabilityMonitor monitor(*f.d0, f.sim,
                                    {.interval_ms = 100.0,
                                     .pings_per_round = 2});
  monitor.start();
  f.sim.run_until(1000.0);
  const auto estimates = monitor.collect();
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(estimates[0].reliability, 0.0);
}

TEST(NetworkReliabilityMonitor, StopHaltsProbing) {
  NetFixture f(1.0);
  NetworkReliabilityMonitor monitor(*f.d0, f.sim, {.interval_ms = 100.0,
                                                   .pings_per_round = 1});
  monitor.start();
  f.sim.run_until(500.0);
  monitor.stop();
  (void)monitor.collect();
  f.sim.run_until(2000.0);
  EXPECT_TRUE(monitor.collect().empty());
}

}  // namespace
}  // namespace dif::prism
