// Determinism harness: same seed => bit-identical results, for every
// registered algorithm and for the portfolio runner.
//
// Time budgets are deliberately absent here — wall-clock cutoffs are the one
// legitimately nondeterministic budget, so these tests pin behaviour with
// evaluation caps only.
#include <gtest/gtest.h>

#include "algo/portfolio.h"
#include "algo/registry.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

struct Instance {
  std::unique_ptr<desi::SystemData> system;
  std::unique_ptr<model::ConstraintChecker> checker;
  model::AvailabilityObjective objective;
};

Instance make_instance(std::uint64_t seed, std::size_t hosts = 5,
                       std::size_t components = 14) {
  Instance inst;
  inst.system = desi::Generator::generate(
      {.hosts = hosts,
       .components = components,
       .interaction_density = 0.3,
       .location_constraints = 2,
       .colocation_pairs = 1,
       .anti_colocation_pairs = 1},
      seed);
  inst.checker = std::make_unique<model::ConstraintChecker>(
      inst.system->model(), inst.system->constraints());
  return inst;
}

/// Two runs with identical options must agree bit for bit — deployment,
/// value, evaluation count, and termination flags.
void expect_identical(const AlgoResult& a, const AlgoResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.deployment, b.deployment) << label;
  EXPECT_EQ(a.feasible, b.feasible) << label;
  if (a.feasible && b.feasible) {
    // Bit-identical, not merely close: same seed must replay the same
    // arithmetic in the same order.
    EXPECT_EQ(a.value, b.value) << label;
  }
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
}

class RegistryDeterminismTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(RegistryDeterminismTest, SameSeedBitIdentical) {
  const std::string name = GetParam();
  const auto registry = AlgorithmRegistry::with_defaults();
  for (const std::uint64_t seed : {1u, 23u}) {
    // Small enough for the exact-family entries to terminate uncapped.
    Instance inst = make_instance(seed, /*hosts=*/4, /*components=*/9);
    AlgoOptions options;
    options.seed = seed * 1000 + 7;
    options.initial = inst.system->deployment();
    const AlgoResult a = registry.create(name)->run(
        inst.system->model(), inst.objective, *inst.checker, options);
    const AlgoResult b = registry.create(name)->run(
        inst.system->model(), inst.objective, *inst.checker, options);
    expect_identical(a, b, name + "/seed" + std::to_string(seed));
  }
}

TEST_P(RegistryDeterminismTest, SameSeedBitIdenticalUnderEvaluationCap) {
  const std::string name = GetParam();
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(5);  // big enough that the cap bites
  AlgoOptions options;
  options.seed = 42;
  options.initial = inst.system->deployment();
  options.max_evaluations = 150;  // cut every search off mid-flight
  const AlgoResult a = registry.create(name)->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  const AlgoResult b = registry.create(name)->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  expect_identical(a, b, name + "/capped");
}

std::vector<std::string> all_registry_names() {
  return AlgorithmRegistry::with_defaults().names();
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RegistryDeterminismTest,
                         ::testing::ValuesIn(all_registry_names()));

// mincut only engages on its 2-host domain; cover that path too.
TEST(RegistryDeterminismTwoHosts, MincutSameSeedBitIdentical) {
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(9, /*hosts=*/2, /*components=*/10);
  AlgoOptions options;
  options.seed = 3;
  const AlgoResult a = registry.create("mincut")->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  const AlgoResult b = registry.create("mincut")->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  expect_identical(a, b, "mincut/2hosts");
}

/// The determinism anchor: a 1-thread portfolio is exactly the sequential
/// "run each entry, keep the best" loop.
TEST(PortfolioDeterminism, OneThreadMatchesSequentialRuns) {
  Instance inst = make_instance(11, /*hosts=*/6, /*components=*/18);
  const auto registry = AlgorithmRegistry::with_defaults();
  const std::vector<std::string> lineup = default_portfolio_lineup();

  PortfolioOptions popts;
  popts.threads = 1;
  popts.seed = 77;
  popts.initial = inst.system->deployment();
  PortfolioRunner runner(popts);
  runner.add_from_registry(registry, lineup);
  const PortfolioResult portfolio =
      runner.run(inst.system->model(), inst.objective, *inst.checker);

  ASSERT_EQ(portfolio.runs.size(), lineup.size());
  std::size_t expected_winner = lineup.size();
  AlgoResult expected_best;
  for (std::size_t i = 0; i < lineup.size(); ++i) {
    AlgoOptions options;
    options.seed = 77;
    options.initial = inst.system->deployment();
    const AlgoResult sequential = registry.create(lineup[i])->run(
        inst.system->model(), inst.objective, *inst.checker, options);
    expect_identical(portfolio.runs[i], sequential, lineup[i]);
    if (sequential.feasible &&
        (expected_winner == lineup.size() ||
         inst.objective.improves(sequential.value, expected_best.value))) {
      expected_best = sequential;
      expected_winner = i;
    }
  }
  ASSERT_LT(expected_winner, lineup.size());
  EXPECT_EQ(portfolio.winner_index, expected_winner);
  EXPECT_EQ(portfolio.best.deployment, expected_best.deployment);
  EXPECT_EQ(portfolio.best.value, expected_best.value);
  EXPECT_FALSE(portfolio.deadline_hit);
}

/// With per-entry evaluation caps (and no wall-clock deadline) every entry
/// is deterministic in isolation, so the parallel portfolio must agree with
/// the 1-thread portfolio run for run — whatever the thread schedule.
TEST(PortfolioDeterminism, ParallelMatchesOneThreadUnderEvaluationCap) {
  Instance inst = make_instance(13, /*hosts=*/6, /*components=*/18);
  const auto registry = AlgorithmRegistry::with_defaults();
  const std::vector<std::string> lineup = default_portfolio_lineup();

  const auto race = [&](std::size_t threads) {
    PortfolioOptions popts;
    popts.threads = threads;
    popts.seed = 5;
    popts.max_evaluations = 4000;
    popts.initial = inst.system->deployment();
    PortfolioRunner runner(popts);
    runner.add_from_registry(registry, lineup);
    return runner.run(inst.system->model(), inst.objective, *inst.checker);
  };

  const PortfolioResult one = race(1);
  const PortfolioResult four = race(4);
  ASSERT_EQ(one.runs.size(), four.runs.size());
  for (std::size_t i = 0; i < one.runs.size(); ++i)
    expect_identical(one.runs[i], four.runs[i], lineup[i]);
  EXPECT_EQ(one.winner_index, four.winner_index);
  EXPECT_EQ(one.best.deployment, four.best.deployment);
}

// --- warm-started re-optimization ------------------------------------------

std::vector<model::ComponentId> components_on_host(const model::Deployment& d,
                                                   model::HostId host) {
  std::vector<model::ComponentId> out;
  for (std::size_t c = 0; c < d.size(); ++c)
    if (d.host_of(static_cast<model::ComponentId>(c)) == host)
      out.push_back(static_cast<model::ComponentId>(c));
  return out;
}

/// Picks a host that actually carries components and halves the reliability
/// of every link incident to it — the single-host fluctuation a warm
/// re-optimization is built for. Returns the dirty component set.
std::vector<model::ComponentId> fluctuate_one_host(Instance& inst) {
  model::DeploymentModel& m = inst.system->model();
  const model::Deployment& d = inst.system->deployment();
  model::HostId host = 0;
  std::vector<model::ComponentId> dirty;
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    dirty = components_on_host(d, static_cast<model::HostId>(h));
    if (!dirty.empty() && dirty.size() < d.size()) {
      host = static_cast<model::HostId>(h);
      break;
    }
  }
  const auto links = m.physical_link_table();
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    if (h == host) continue;
    const model::PhysicalLink& link =
        links.at(host, static_cast<model::HostId>(h));
    if (link.reliability > 0.0)
      m.set_link_reliability(host, static_cast<model::HostId>(h),
                             link.reliability * 0.5);
  }
  return dirty;
}

/// Algorithms that accept AlgoOptions::warm_start.
class WarmStartTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WarmStartTest, EmptyDirtySetReturnsInitialAfterOneEvaluation) {
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(21, /*hosts=*/6, /*components=*/18);
  AlgoOptions options;
  options.seed = 17;
  options.initial = inst.system->deployment();
  options.warm_start = true;  // dirty_components left empty: nothing changed
  const AlgoResult result = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  ASSERT_TRUE(result.feasible) << result.notes;
  EXPECT_EQ(result.deployment, *options.initial);
  EXPECT_EQ(result.evaluations, 1u) << result.notes;
  EXPECT_EQ(result.migrations, 0u);
}

TEST_P(WarmStartTest, RepeatedWarmRunsBitIdentical) {
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(22, /*hosts=*/6, /*components=*/18);
  const std::vector<model::ComponentId> dirty = fluctuate_one_host(inst);
  ASSERT_FALSE(dirty.empty());
  AlgoOptions options;
  options.seed = 29;
  options.initial = inst.system->deployment();
  options.warm_start = true;
  options.dirty_components = dirty;
  const AlgoResult a = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  const AlgoResult b = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  expect_identical(a, b, GetParam() + "/warm");
}

TEST_P(WarmStartTest, WarmResultNoWorseThanKeepingCurrent) {
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(23, /*hosts=*/6, /*components=*/18);
  const std::vector<model::ComponentId> dirty = fluctuate_one_host(inst);
  ASSERT_FALSE(dirty.empty());
  const model::Deployment initial = inst.system->deployment();
  const double keep_value =
      inst.objective.evaluate(inst.system->model(), initial);
  AlgoOptions options;
  options.seed = 31;
  options.initial = initial;
  options.warm_start = true;
  options.dirty_components = dirty;
  const AlgoResult result = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  ASSERT_TRUE(result.feasible) << result.notes;
  EXPECT_TRUE(inst.checker->feasible(result.deployment));
  // Every warm path considers the initial placement first, so the result
  // can never be worse than keeping the current deployment.
  EXPECT_GE(result.value, keep_value - 1e-12) << result.notes;
}

INSTANTIATE_TEST_SUITE_P(WarmAlgorithms, WarmStartTest,
                         ::testing::Values("hillclimb", "annealing", "avala",
                                           "decap"));

/// For the search algorithms whose evaluation count tracks the explored
/// neighbourhood, a warm run over a single host's components must cost
/// strictly fewer evaluations than a cold rerun (constructive algorithms
/// like avala count evaluations per candidate, not per probe, so they are
/// scored by wall-time in bench_scalability instead).
class WarmBudgetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WarmBudgetTest, WarmUsesStrictlyFewerEvaluationsThanCold) {
  const auto registry = AlgorithmRegistry::with_defaults();
  Instance inst = make_instance(24, /*hosts=*/6, /*components=*/18);
  const std::vector<model::ComponentId> dirty = fluctuate_one_host(inst);
  ASSERT_FALSE(dirty.empty());
  AlgoOptions cold;
  cold.seed = 37;
  cold.initial = inst.system->deployment();
  const AlgoResult cold_result = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, cold);

  AlgoOptions warm = cold;
  warm.warm_start = true;
  warm.dirty_components = dirty;
  const AlgoResult warm_result = registry.create(GetParam())->run(
      inst.system->model(), inst.objective, *inst.checker, warm);

  ASSERT_TRUE(cold_result.feasible);
  ASSERT_TRUE(warm_result.feasible);
  EXPECT_LT(warm_result.evaluations, cold_result.evaluations)
      << GetParam() << ": warm " << warm_result.evaluations << " vs cold "
      << cold_result.evaluations;
}

INSTANTIATE_TEST_SUITE_P(SearchAlgorithms, WarmBudgetTest,
                         ::testing::Values("hillclimb", "annealing"));

}  // namespace
}  // namespace dif::algo
