// Defect corpus for the artifact auditors (check/audit.h,
// check/resilience.h, check/plan_check.h) and the deployer's plan
// preflight gate.
//
// Mirrors test_check.cpp's discipline: every rule gets a seeded-positive
// artifact it must flag (with the correct rule id and witness) and a
// near-miss negative it must stay silent on. The last section proves the
// static/dynamic agreement property: a placement the auditor passes never
// trips the campaign invariants on a fault-free run.
#include "check/audit.h"

#include <gtest/gtest.h>

#include <string>

#include "chaos/campaign.h"
#include "check/plan_check.h"
#include "check/preflight.h"
#include "check/resilience.h"
#include "desi/generator.h"
#include "model/constraints.h"
#include "model/deployment.h"
#include "model/deployment_model.h"
#include "prism/architecture.h"
#include "prism/deployer.h"
#include "util/json.h"

namespace dif::check {
namespace {

using model::ComponentId;
using model::ConstraintSet;
using model::Deployment;
using model::DeploymentModel;
using model::HostId;

/// k fully-connected hosts (mem 100) and n components (mem 10).
DeploymentModel make_model(std::size_t hosts, std::size_t comps,
                          double host_mem = 100.0, double comp_mem = 10.0) {
  DeploymentModel m;
  for (std::size_t h = 0; h < hosts; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = host_mem});
  for (std::size_t c = 0; c < comps; ++c)
    m.add_component(
        {.name = "c" + std::to_string(c), .memory_size = comp_mem});
  for (std::size_t a = 0; a < hosts; ++a)
    for (std::size_t b = a + 1; b < hosts; ++b)
      m.set_physical_link(static_cast<HostId>(a), static_cast<HostId>(b),
                          {.reliability = 0.9, .bandwidth = 100.0});
  return m;
}

std::size_t errors_of(const CheckReport& report, Rule rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule && d.severity == Severity::kError) ++n;
  return n;
}

/// First diagnostic of `rule`, or nullptr.
const Diagnostic* find_rule(const CheckReport& report, Rule rule) {
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule) return &d;
  return nullptr;
}

// --- placement-capacity ----------------------------------------------------

TEST(AuditCapacity, FlagsOversubscribedHostWithResidentWitness) {
  const DeploymentModel m = make_model(2, 3, /*host_mem=*/25.0);
  // 3 x 10 KB on h0 against 25 KB: over by 5.
  const Deployment d(std::vector<HostId>{0, 0, 0});
  const CheckReport report = PlacementAuditor().audit(m, {}, d);
  ASSERT_EQ(errors_of(report, Rule::kPlacementCapacity), 1u);
  const Diagnostic* diag = find_rule(report, Rule::kPlacementCapacity);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->witness, (std::vector<std::string>{"c0", "c1", "c2"}));
}

TEST(AuditCapacity, SilentWhenFootprintFitsExactly) {
  const DeploymentModel m = make_model(2, 3, /*host_mem=*/30.0);
  const Deployment d(std::vector<HostId>{0, 0, 0});
  const CheckReport report = PlacementAuditor().audit(m, {}, d);
  EXPECT_FALSE(report.has(Rule::kPlacementCapacity));
  EXPECT_TRUE(report.ok());
}

// --- placement-location ----------------------------------------------------

TEST(AuditLocation, FlagsComponentOnForbiddenHost) {
  const DeploymentModel m = make_model(3, 2);
  ConstraintSet cs;
  cs.allow_only(0, {1});
  const Deployment bad(std::vector<HostId>{0, 0});
  EXPECT_EQ(errors_of(PlacementAuditor().audit(m, cs, bad),
                      Rule::kPlacementLocation),
            1u);
  const Deployment good(std::vector<HostId>{1, 0});
  EXPECT_FALSE(
      PlacementAuditor().audit(m, cs, good).has(Rule::kPlacementLocation));
}

// --- placement-colocation --------------------------------------------------

TEST(AuditColocation, FlagsSplitCollocationClass) {
  const DeploymentModel m = make_model(3, 3);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.require_colocation(1, 2);  // closure: {c0, c1, c2} must share a host
  const Deployment split(std::vector<HostId>{0, 0, 2});
  const CheckReport report = PlacementAuditor().audit(m, cs, split);
  ASSERT_EQ(errors_of(report, Rule::kPlacementColocation), 1u);
  const Diagnostic* diag = find_rule(report, Rule::kPlacementColocation);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->witness, (std::vector<std::string>{"h0", "h2"}));
  const Deployment together(std::vector<HostId>{1, 1, 1});
  EXPECT_TRUE(PlacementAuditor().audit(m, cs, together).ok());
}

TEST(AuditColocation, FlagsSeparationPairSharingAHost) {
  const DeploymentModel m = make_model(2, 2);
  ConstraintSet cs;
  cs.forbid_colocation(0, 1);
  const Deployment same(std::vector<HostId>{1, 1});
  EXPECT_EQ(errors_of(PlacementAuditor().audit(m, cs, same),
                      Rule::kPlacementColocation),
            1u);
  const Deployment apart(std::vector<HostId>{0, 1});
  EXPECT_TRUE(PlacementAuditor().audit(m, cs, apart).ok());
}

// --- placement-unassigned --------------------------------------------------

TEST(AuditUnassigned, FlagsUnplacedComponentOnceNotTwice) {
  const DeploymentModel m = make_model(2, 2);
  ConstraintSet cs;
  cs.allow_only(0, {1});  // would also be a location defect if it were placed
  Deployment d(2);
  d.assign(1, 0);
  const CheckReport report = PlacementAuditor().audit(m, cs, d);
  EXPECT_EQ(errors_of(report, Rule::kPlacementUnassigned), 1u);
  // The unplaced component owns its root cause; no phantom location error.
  EXPECT_FALSE(report.has(Rule::kPlacementLocation));
}

// --- clean model -----------------------------------------------------------

TEST(Audit, CleanModelIsAllGreen) {
  const DeploymentModel m = make_model(3, 6);
  ConstraintSet cs;
  cs.allow_only(0, {0, 1});
  cs.require_colocation(1, 2);
  cs.forbid_colocation(3, 4);
  const Deployment d(std::vector<HostId>{0, 1, 1, 0, 2, 2});
  EXPECT_TRUE(PlacementAuditor().audit(m, cs, d).clean());
}

// --- resilience-spof (k = 1) -----------------------------------------------

TEST(Resilience, LineTopologyMiddleHostIsAnArticulationPoint) {
  // h0 -- h1 -- h2, interacting components on the endpoints: h1's failure
  // severs them even though it hosts nothing.
  DeploymentModel m;
  for (int h = 0; h < 3; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = 100.0});
  m.add_component({.name = "c0", .memory_size = 1.0});
  m.add_component({.name = "c1", .memory_size = 1.0});
  m.set_physical_link(0, 1, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_physical_link(1, 2, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  const Deployment d(std::vector<HostId>{0, 2});
  const CheckReport report = ResilienceProver().prove(m, d);
  const Diagnostic* diag = nullptr;
  for (const Diagnostic& candidate : report.diagnostics())
    if (candidate.witness == std::vector<std::string>{"h1"}) diag = &candidate;
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->rule, Rule::kResilienceSpof);
  EXPECT_NE(diag->message.find("sever"), std::string::npos);
}

TEST(Resilience, TriangleTopologyHasNoEmptyHostSpof) {
  DeploymentModel m;
  for (int h = 0; h < 3; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = 100.0});
  m.add_component({.name = "c0", .memory_size = 1.0});
  m.add_component({.name = "c1", .memory_size = 1.0});
  for (int a = 0; a < 3; ++a)
    for (int b = a + 1; b < 3; ++b)
      m.set_physical_link(static_cast<HostId>(a), static_cast<HostId>(b),
                          {.reliability = 0.9, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  const Deployment d(std::vector<HostId>{0, 2});
  // h1 hosts nothing and the alternate path h0--h2 survives it: the only
  // SPOF findings are the endpoint hosts losing their own residents.
  const CheckReport report = ResilienceProver().prove(m, d);
  for (const Diagnostic& diag : report.diagnostics())
    EXPECT_NE(diag.witness, (std::vector<std::string>{"h1"}));
}

// --- resilience-spof (k = 2 min cut) ---------------------------------------

TEST(Resilience, TwoDisjointPathsNeedATwoHostCut) {
  // h0 -> {h1 | h2} -> h3: no single host severs the endpoints, but the
  // pair {h1, h2} is a minimum vertex cut.
  DeploymentModel m;
  for (int h = 0; h < 4; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = 100.0});
  m.add_component({.name = "c0", .memory_size = 1.0});
  m.add_component({.name = "c1", .memory_size = 1.0});
  m.set_physical_link(0, 1, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_physical_link(0, 2, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_physical_link(1, 3, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_physical_link(2, 3, {.reliability = 0.9, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  const Deployment d(std::vector<HostId>{0, 3});

  ResilienceOptions k1;
  k1.max_failures = 1;
  const CheckReport single = ResilienceProver(k1).prove(m, d);
  for (const Diagnostic& diag : single.diagnostics())
    EXPECT_EQ(diag.message.find("sever"), std::string::npos)
        << diag.message;

  ResilienceOptions k2;
  k2.max_failures = 2;
  const CheckReport report = ResilienceProver(k2).prove(m, d);
  bool found_cut = false;
  for (const Diagnostic& diag : report.diagnostics())
    if (diag.witness == std::vector<std::string>{"h1", "h2"}) found_cut = true;
  EXPECT_TRUE(found_cut);
}

// --- resilience-region -----------------------------------------------------

TEST(Resilience, RegionLossNamesItsHostsAsWitness) {
  DeploymentModel m = make_model(4, 3);
  m.set_host_region(0, 0);
  m.set_host_region(1, 0);
  m.set_host_region(2, 1);
  m.set_host_region(3, 1);
  const Deployment d(std::vector<HostId>{0, 1, 2});
  const CheckReport report = ResilienceProver().prove(m, d);
  const Diagnostic* diag = find_rule(report, Rule::kResilienceRegion);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->witness, (std::vector<std::string>{"h0", "h1"}));
}

TEST(Resilience, SingleRegionModelEmitsNoRegionFindings) {
  const DeploymentModel m = make_model(3, 2);
  const Deployment d(std::vector<HostId>{0, 1});
  EXPECT_FALSE(
      ResilienceProver().prove(m, d).has(Rule::kResilienceRegion));
}

// --- plan checker ----------------------------------------------------------

TEST(PlanCheck, FlagsConflictingTasksForOneComponent) {
  PlanContext ctx;
  ctx.host_count = 3;
  const std::vector<PlanTask> plan = {{"a", 0, 1}, {"a", 0, 2}};
  const CheckReport report = MigrationPlanChecker().check(plan, ctx);
  EXPECT_EQ(errors_of(report, Rule::kPlanConflict), 1u);
}

TEST(PlanCheck, FlagsStaleCustody) {
  PlanContext ctx;
  ctx.host_count = 3;
  ctx.locations["a"] = 2;  // believed at h2, plan claims h0
  const std::vector<PlanTask> plan = {{"a", 0, 1}};
  EXPECT_EQ(errors_of(MigrationPlanChecker().check(plan, ctx),
                      Rule::kPlanCustody),
            1u);
  ctx.locations["a"] = 0;
  EXPECT_TRUE(MigrationPlanChecker().check(plan, ctx).ok());
}

TEST(PlanCheck, SteadyStateOverloadIsAnErrorTransientIsAWarning) {
  PlanContext ctx;
  ctx.host_count = 2;
  ctx.host_capacity_kb[1] = 10.0;
  ctx.component_memory_kb["in"] = 8.0;
  ctx.component_memory_kb["out"] = 8.0;
  ctx.host_used_memory_kb[1] = 5.0;

  // 5 used + 8 inbound = 13 > 10 steady state: the prepare vote is a
  // certain veto.
  ctx.locations["in"] = 0;
  const CheckReport steady =
      MigrationPlanChecker().check({{"in", 0, 1}}, ctx);
  EXPECT_EQ(errors_of(steady, Rule::kPlanOverload), 1u);

  // Swap: 8 used − 8 outbound + 8 inbound = 8 ≤ 10 steady, but 16 KB
  // double occupancy during the window: advisory only.
  ctx.host_used_memory_kb[1] = 8.0;
  ctx.locations["out"] = 1;
  const CheckReport swap = MigrationPlanChecker().check(
      {{"in", 0, 1}, {"out", 1, 0}}, ctx);
  EXPECT_TRUE(swap.ok());
  const Diagnostic* diag = find_rule(swap, Rule::kPlanTransientOverload);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->severity, Severity::kWarning);
}

TEST(PlanCheck, FlagsNoopAndDanglingHosts) {
  PlanContext ctx;
  ctx.host_count = 2;
  const CheckReport report =
      MigrationPlanChecker().check({{"a", 1, 1}, {"b", 0, 5}}, ctx);
  EXPECT_EQ(report.count(Rule::kPlanNoop), 1u);
  EXPECT_EQ(errors_of(report, Rule::kDanglingReference), 1u);
}

TEST(PlanCheck, FreeFunctionAuditsThePostPlanPlacement) {
  const DeploymentModel m = make_model(2, 2);
  ConstraintSet cs;
  cs.allow_only(0, {0});
  const Deployment current(std::vector<HostId>{0, 1});
  // Structurally fine plan whose destination violates c0's allow-list.
  const CheckReport report =
      check_plan(m, cs, current, {{"c0", 0, 1}});
  EXPECT_EQ(errors_of(report, Rule::kPlacementLocation), 1u);
  const Diagnostic* diag = find_rule(report, Rule::kPlacementLocation);
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->message.rfind("post-plan: ", 0), 0u);
}

// --- preflight entry points ------------------------------------------------

TEST(PlanCheck, PreflightPlanThrowsOnErrors) {
  PlanContext ctx;
  ctx.host_count = 2;
  EXPECT_NO_THROW(preflight_plan({{"a", 0, 1}}, ctx));
  EXPECT_THROW(preflight_plan({{"a", 0, 1}, {"a", 1, 0}}, ctx),
               PreflightError);
}

// --- diagnostic JSON escaping ----------------------------------------------

TEST(DiagnosticJson, HostileNamesSurviveARoundTrip) {
  const std::string hostile = "quote\" back\\slash\nnewline\x01ctl";
  CheckReport report;
  Diagnostic diag;
  diag.rule = Rule::kPlacementCapacity;
  diag.subjects = {"host " + hostile};
  diag.message = "message with " + hostile;
  diag.hint = "hint with " + hostile;
  diag.witness = {hostile};
  report.add(diag);

  const std::string text = report.to_json().dump(2);
  const util::json::Value parsed = util::json::parse(text);
  const util::json::Value& entry = parsed.at("diagnostics").as_array().at(0);
  EXPECT_EQ(entry.at("subjects").as_array().at(0).as_string(),
            "host " + hostile);
  EXPECT_EQ(entry.at("message").as_string(), "message with " + hostile);
  EXPECT_EQ(entry.at("hint").as_string(), "hint with " + hostile);
  EXPECT_EQ(entry.at("witness").as_array().at(0).as_string(), hostile);
}

// --- static/dynamic agreement ----------------------------------------------

TEST(AuditProperty, AuditorPassingPlacementHoldsOnFaultFreeCampaign) {
  // A generated system whose initial placement the auditor passes must run
  // a fault-free ("quiet") campaign without tripping any invariant — the
  // static verdict and the dynamic oracles agree on clean inputs.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    chaos::CampaignConfig config;
    config.scenario = chaos::scenario_by_name("quiet");
    config.scenario.duration_ms = 60'000.0;
    config.seeds = {seed};
    config.decentralized = false;
    config.generator.hosts = 4;
    config.generator.components = 10;

    const auto system = desi::Generator::generate(config.generator, seed);
    AuditOptions options;
    options.check_bandwidth = false;  // the sim mediates unlinked hosts
    const CheckReport audit = PlacementAuditor(options).audit(
        system->model(), system->constraints(), system->deployment());
    ASSERT_TRUE(audit.ok()) << audit.render_text();

    const chaos::CampaignReport report =
        chaos::CampaignRunner(config).run();
    ASSERT_EQ(report.runs.size(), 1u);
    for (const auto& violation : report.runs[0].violations)
      ADD_FAILURE() << "seed " << seed << ": [" << violation.invariant
                    << "] " << violation.detail;
  }
}

}  // namespace
}  // namespace dif::check

// --- deployer preflight gate -----------------------------------------------

namespace dif::prism {
namespace {

/// Minimal migratable component.
class Pawn final : public Component {
 public:
  explicit Pawn(std::string name) : Component(std::move(name)) {}
  void handle(const Event&) override {}
  [[nodiscard]] std::string type_name() const override { return "pawn"; }
  [[nodiscard]] double memory_kb() const override { return 8.0; }
};

/// Minimal two-phase testbed (see test_txn_redeploy.cpp for the full one).
struct PreflightBed {
  sim::Simulator sim;
  sim::SimNetwork net;
  SimScaffold scaffold{sim};
  ComponentFactory factory;
  std::vector<std::unique_ptr<Architecture>> archs;
  std::vector<DistributionConnector*> connectors;
  DeployerComponent* deployer = nullptr;
  obs::Registry metrics;

  PreflightBed(std::size_t k,
               DeployerComponent::DeployerParams deployer_params)
      : net(sim, k, 1) {
    factory.register_type("pawn", [](std::string name) {
      return std::make_unique<Pawn>(std::move(name));
    });
    AdminComponent::Params admin_params;
    for (std::size_t h = 0; h < k; ++h) {
      archs.push_back(std::make_unique<Architecture>(
          "arch" + std::to_string(h), scaffold,
          static_cast<model::HostId>(h)));
      connectors.push_back(&static_cast<DistributionConnector&>(
          archs[h]->add_connector(std::make_unique<DistributionConnector>(
              "dist" + std::to_string(h), net,
              static_cast<model::HostId>(h)))));
    }
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = a + 1; b < k; ++b) {
        net.set_link(static_cast<model::HostId>(a),
                     static_cast<model::HostId>(b),
                     {.reliability = 1.0, .bandwidth = 1000.0,
                      .delay_ms = 100.0});
        connectors[a]->add_peer(static_cast<model::HostId>(b));
        connectors[b]->add_peer(static_cast<model::HostId>(a));
      }
    std::vector<model::HostId> all_hosts;
    for (std::size_t h = 0; h < k; ++h)
      all_hosts.push_back(static_cast<model::HostId>(h));
    admin_params.fleet = all_hosts;
    deployer_params.admin_hosts = all_hosts;
    std::vector<AdminComponent*> admins;
    for (std::size_t h = 0; h < k; ++h) {
      connectors[h]->set_mediator(0);
      for (std::size_t g = 0; g < k; ++g)
        connectors[h]->set_location(admin_name(static_cast<model::HostId>(g)),
                                    static_cast<model::HostId>(g));
      connectors[h]->set_location(deployer_name(), 0);
      auto admin = std::make_unique<AdminComponent>(
          static_cast<model::HostId>(h), *connectors[h], factory, nullptr,
          nullptr, admin_params);
      admins.push_back(&static_cast<AdminComponent&>(
          archs[h]->add_component(std::move(admin))));
      archs[h]->weld(*admins[h], *connectors[h]);
    }
    auto dep = std::make_unique<DeployerComponent>(
        0, *connectors[0], factory, nullptr, nullptr, admin_params,
        deployer_params);
    deployer = &static_cast<DeployerComponent&>(
        archs[0]->add_component(std::move(dep)));
    archs[0]->weld(*deployer, *connectors[0]);
    deployer->set_instruments({&metrics, nullptr});
  }

  void place_pawn(std::size_t host, const std::string& name) {
    auto& pawn = static_cast<Pawn&>(
        archs[host]->add_component(std::make_unique<Pawn>(name)));
    archs[host]->weld(pawn, *connectors[host]);
    for (auto* connector : connectors)
      connector->set_location(name, static_cast<model::HostId>(host));
  }

  /// Hand-crafts the __monitor_report a Slave Admin would send, seeding
  /// the deployer's belief state (host usage + component footprints).
  void report_host(model::HostId host, double used_kb,
                   const std::vector<std::pair<std::string, double>>& comps) {
    Event evt("__monitor_report");
    evt.set("host", static_cast<double>(host));
    evt.set("memory_kb", used_kb);
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(comps.size()));
    for (const auto& [name, mem] : comps) {
      w.str(name);
      w.f64(mem);
    }
    evt.set("components", w.take());
    deployer->handle(evt);
  }

  [[nodiscard]] std::uint64_t counter_value(const char* name) const {
    const obs::Counter* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  }
};

TEST(DeployerPreflight, RejectsInfeasiblePlanBeforeAnyPrepare) {
  // Host 1 already uses 4 KB of its 6 KB budget; moving an 8 KB component
  // there is a certain capacity veto. The preflight must reject the round
  // without shipping a single __prepare.
  DeployerComponent::DeployerParams params;
  params.host_capacity_kb = {{1, 6.0}};
  PreflightBed bed(2, params);
  bed.place_pawn(0, "mover");
  bed.report_host(0, 8.0, {{"mover", 8.0}});
  bed.report_host(1, 4.0, {});

  bool completed = false;
  bool success = true;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 1}}, [&](bool ok, std::size_t) {
        completed = true;
        success = ok;
      }));
  bed.sim.run_until(5'000.0);

  EXPECT_TRUE(completed);
  EXPECT_FALSE(success);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);
  EXPECT_EQ(bed.deployer->plans_rejected(), 1u);
  EXPECT_EQ(bed.deployer->rounds_rolled_back(), 1u);
  EXPECT_EQ(bed.counter_value("deploy.preflight_rejected"), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.prepare_sent"), 0u);
  EXPECT_EQ(bed.counter_value("deploy.txn.votes_yes"), 0u);
  EXPECT_EQ(bed.counter_value("deploy.txn.votes_no"), 0u);

  ASSERT_EQ(bed.deployer->round_history().size(), 1u);
  const RoundRecord& record = bed.deployer->round_history().back();
  EXPECT_EQ(record.outcome, TxnOutcome::kAborted);
  EXPECT_EQ(record.moves_requested, 1u);
  EXPECT_EQ(record.moves_completed, 0u);
  ASSERT_TRUE(record.declared.count("mover"));
  EXPECT_EQ(record.declared.at("mover"), 0u);

  ASSERT_TRUE(bed.deployer->last_preflight().has_value());
  EXPECT_TRUE(
      bed.deployer->last_preflight()->has(check::Rule::kPlanOverload));
}

TEST(DeployerPreflight, RejectsConflictingTasksWithoutACapacityMap) {
  // Structural checks need no capacity knowledge: two targets for one
  // component are contradictory on their face.
  PreflightBed bed(3, {});
  bed.place_pawn(0, "mover");

  bool completed = false;
  ASSERT_TRUE(bed.deployer->effect_deployment(
      {{"mover", 1}, {"mover", 2}},
      [&](bool, std::size_t) { completed = true; }));
  bed.sim.run_until(5'000.0);

  EXPECT_TRUE(completed);
  EXPECT_EQ(bed.deployer->last_outcome(), TxnOutcome::kAborted);
  EXPECT_EQ(bed.deployer->plans_rejected(), 1u);
  EXPECT_EQ(bed.counter_value("deploy.txn.prepare_sent"), 0u);
  ASSERT_TRUE(bed.deployer->last_preflight().has_value());
  EXPECT_TRUE(
      bed.deployer->last_preflight()->has(check::Rule::kPlanConflict));
}

TEST(DeployerPreflight, CleanPlanStillRunsTheFullProtocol) {
  DeployerComponent::DeployerParams params;
  params.host_capacity_kb = {{1, 100.0}};
  PreflightBed bed(2, params);
  bed.place_pawn(0, "mover");
  bed.report_host(0, 8.0, {{"mover", 8.0}});
  bed.report_host(1, 4.0, {});

  // The plan is feasible; the preflight must wave it through to PREPARE.
  ASSERT_TRUE(
      bed.deployer->effect_deployment({{"mover", 1}}, nullptr));
  bed.sim.run_until(20'000.0);

  EXPECT_EQ(bed.deployer->plans_rejected(), 0u);
  EXPECT_GT(bed.counter_value("deploy.txn.prepare_sent"), 0u);
  ASSERT_TRUE(bed.deployer->last_preflight().has_value());
  EXPECT_TRUE(bed.deployer->last_preflight()->ok());
}

}  // namespace
}  // namespace dif::prism
