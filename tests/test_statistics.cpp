// Unit tests for streaming/batch statistics (util/statistics.h).
#include "util/statistics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dif::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Xoshiro256ss rng(1);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, PercentilesOfKnownData) {
  std::vector<double> data;
  for (int i = 1; i <= 100; ++i) data.push_back(i);
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
}

TEST(PercentileSorted, InterpolatesBetweenPoints) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.3), 7.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(SlidingWindow, FillsThenEvictsOldest) {
  SlidingWindow w(3);
  EXPECT_FALSE(w.full());
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.spread(), 8.0);
}

TEST(SlidingWindow, LatestTracksInsertionAcrossWrap) {
  SlidingWindow w(2);
  EXPECT_THROW(w.latest(), std::logic_error);
  w.add(1.0);
  EXPECT_DOUBLE_EQ(w.latest(), 1.0);
  w.add(2.0);
  EXPECT_DOUBLE_EQ(w.latest(), 2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.latest(), 3.0);
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.latest(), 4.0);
}

TEST(SlidingWindow, ClearEmpties) {
  SlidingWindow w(2);
  w.add(5.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.spread(), 0.0);
}

TEST(SlidingWindow, SpreadOfConstantSeriesIsZero) {
  SlidingWindow w(4);
  for (int i = 0; i < 10; ++i) w.add(3.3);
  EXPECT_DOUBLE_EQ(w.spread(), 0.0);
}

}  // namespace
}  // namespace dif::util
