// Property tests: the pairwise decomposition must agree exactly with the
// objectives it decomposes, on randomly generated models and deployments.
#include "algo/pairwise.h"

#include <gtest/gtest.h>

#include "desi/generator.h"
#include "util/rng.h"

namespace dif::algo {
namespace {

model::Deployment random_complete_deployment(const model::DeploymentModel& m,
                                             util::Xoshiro256ss& rng) {
  model::Deployment d(m.component_count());
  for (std::size_t c = 0; c < m.component_count(); ++c)
    d.assign(static_cast<model::ComponentId>(c),
             static_cast<model::HostId>(rng.index(m.host_count())));
  return d;
}

class PairwiseAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PairwiseAgreementTest, AvailabilityDecomposes) {
  const auto system = desi::Generator::generate(
      {.hosts = 5, .components = 12, .interaction_density = 0.4},
      GetParam());
  const model::DeploymentModel& m = system->model();
  const model::AvailabilityObjective objective;
  const auto view = PairwiseObjectiveView::try_create(objective, m);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->direction(), model::Direction::kMaximize);

  util::Xoshiro256ss rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const model::Deployment d = random_complete_deployment(m, rng);
    double sum = 0.0;
    for (std::size_t i = 0; i < m.interactions().size(); ++i) {
      const model::Interaction& ix = m.interactions()[i];
      sum += view->pair_term(i, d.host_of(ix.a), d.host_of(ix.b));
    }
    EXPECT_NEAR(view->finalize(sum), objective.evaluate(m, d), 1e-9);
  }
}

TEST_P(PairwiseAgreementTest, LatencyDecomposes) {
  const auto system = desi::Generator::generate(
      {.hosts = 4, .components = 10, .link_density = 0.3}, GetParam());
  const model::DeploymentModel& m = system->model();
  const model::LatencyObjective objective(1234.5);
  const auto view = PairwiseObjectiveView::try_create(objective, m);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->direction(), model::Direction::kMinimize);

  util::Xoshiro256ss rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const model::Deployment d = random_complete_deployment(m, rng);
    double sum = 0.0;
    for (std::size_t i = 0; i < m.interactions().size(); ++i) {
      const model::Interaction& ix = m.interactions()[i];
      sum += view->pair_term(i, d.host_of(ix.a), d.host_of(ix.b));
    }
    EXPECT_NEAR(view->finalize(sum), objective.evaluate(m, d), 1e-9);
  }
}

TEST_P(PairwiseAgreementTest, CommCostDecomposes) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 8}, GetParam());
  const model::DeploymentModel& m = system->model();
  const model::CommunicationCostObjective objective;
  const auto view = PairwiseObjectiveView::try_create(objective, m);
  ASSERT_TRUE(view.has_value());

  util::Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const model::Deployment d = random_complete_deployment(m, rng);
    double sum = 0.0;
    for (std::size_t i = 0; i < m.interactions().size(); ++i) {
      const model::Interaction& ix = m.interactions()[i];
      sum += view->pair_term(i, d.host_of(ix.a), d.host_of(ix.b));
    }
    EXPECT_NEAR(view->finalize(sum), objective.evaluate(m, d), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwiseAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Pairwise, OptimisticTermBoundsEveryPlacement) {
  const auto system =
      desi::Generator::generate({.hosts = 4, .components = 8}, 99);
  const model::DeploymentModel& m = system->model();
  const model::AvailabilityObjective objective;
  const auto view = PairwiseObjectiveView::try_create(objective, m);
  ASSERT_TRUE(view.has_value());
  for (std::size_t i = 0; i < m.interactions().size(); ++i) {
    for (std::size_t a = 0; a < m.host_count(); ++a)
      for (std::size_t b = 0; b < m.host_count(); ++b)
        EXPECT_LE(view->pair_term(i, static_cast<model::HostId>(a),
                                  static_cast<model::HostId>(b)),
                  view->optimistic_term(i) + 1e-12);
  }
}

TEST(Pairwise, UnknownObjectiveIsNotDecomposable) {
  const auto system =
      desi::Generator::generate({.hosts = 2, .components = 4}, 1);
  const model::SecurityObjective security;
  EXPECT_FALSE(
      PairwiseObjectiveView::try_create(security, system->model()).has_value());
}

}  // namespace
}  // namespace dif::algo

namespace dif::algo {
namespace {

TEST(Pairwise, WeightedObjectiveIsNotDecomposable) {
  const auto system =
      desi::Generator::generate({.hosts = 2, .components = 4}, 2);
  auto availability = std::make_shared<model::AvailabilityObjective>();
  auto latency = std::make_shared<model::LatencyObjective>();
  const model::WeightedObjective weighted(
      {{availability, 1.0}, {latency, 1.0}});
  // Weighted mixes normalized scores non-linearly across terms; exact
  // search must fall back to leaf evaluation rather than mis-prune.
  EXPECT_FALSE(
      PairwiseObjectiveView::try_create(weighted, system->model()).has_value());
}

}  // namespace
}  // namespace dif::algo
