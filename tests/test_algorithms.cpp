// Cross-algorithm behavioural tests: feasibility invariants, determinism,
// quality ordering, and improvement over random initial deployments.
#include <gtest/gtest.h>

#include "algo/annealing.h"
#include "algo/avala.h"
#include "algo/exact.h"
#include "algo/genetic.h"
#include "algo/local_search.h"
#include "algo/registry.h"
#include "algo/stochastic.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

struct Instance {
  std::unique_ptr<desi::SystemData> system;
  std::unique_ptr<model::ConstraintChecker> checker;
  model::AvailabilityObjective objective;
};

Instance make_instance(std::uint64_t seed, std::size_t hosts = 5,
                       std::size_t components = 14) {
  Instance inst;
  inst.system = desi::Generator::generate(
      {.hosts = hosts,
       .components = components,
       .interaction_density = 0.3,
       .location_constraints = 2,
       .colocation_pairs = 1,
       .anti_colocation_pairs = 1},
      seed);
  inst.checker = std::make_unique<model::ConstraintChecker>(
      inst.system->model(), inst.system->constraints());
  return inst;
}

/// Every approximative algorithm, by registry name.
const std::vector<std::string> kApproximative = {
    "stochastic", "avala", "hillclimb", "annealing", "genetic"};

class FeasibilityTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(FeasibilityTest, ProducesCompleteFeasibleDeployment) {
  const auto& [name, seed] = GetParam();
  Instance inst = make_instance(seed);
  const auto registry = AlgorithmRegistry::with_defaults();
  AlgoOptions options;
  options.seed = seed;
  const AlgoResult result = registry.create(name)->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  ASSERT_TRUE(result.feasible) << name;
  EXPECT_TRUE(result.deployment.complete());
  EXPECT_TRUE(inst.checker->feasible(result.deployment)) << name;
  EXPECT_GE(result.value, 0.0);
  EXPECT_LE(result.value, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, FeasibilityTest,
    ::testing::Combine(::testing::Values("stochastic", "avala", "hillclimb",
                                         "annealing", "genetic", "decap"),
                       ::testing::Values(1, 2, 3)));

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedSameResult) {
  const std::string name = GetParam();
  Instance inst = make_instance(17);
  const auto registry = AlgorithmRegistry::with_defaults();
  AlgoOptions options;
  options.seed = 99;
  const AlgoResult a = registry.create(name)->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  const AlgoResult b = registry.create(name)->run(
      inst.system->model(), inst.objective, *inst.checker, options);
  EXPECT_EQ(a.deployment, b.deployment) << name;
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeterminismTest,
                         ::testing::Values("stochastic", "avala", "hillclimb",
                                           "annealing", "genetic", "decap",
                                           "exact"));

TEST(Quality, ExactBoundsApproximativeOnSmallInstances) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    Instance inst = make_instance(seed, 3, 8);
    const auto registry = AlgorithmRegistry::with_defaults();
    AlgoOptions options;
    options.seed = seed;
    const double optimal =
        registry.create("exact")->run(inst.system->model(), inst.objective,
                                      *inst.checker, options)
            .value;
    for (const std::string& name : kApproximative) {
      const AlgoResult result = registry.create(name)->run(
          inst.system->model(), inst.objective, *inst.checker, options);
      ASSERT_TRUE(result.feasible) << name;
      EXPECT_LE(result.value, optimal + 1e-9) << name << " seed " << seed;
    }
  }
}

TEST(Quality, HillClimbNeverWorseThanItsStart) {
  Instance inst = make_instance(31);
  HillClimbAlgorithm hillclimb;
  AlgoOptions options;
  options.seed = 31;
  options.initial = inst.system->deployment();
  const double initial_value =
      inst.objective.evaluate(inst.system->model(), inst.system->deployment());
  const AlgoResult result = hillclimb.run(inst.system->model(), inst.objective,
                                          *inst.checker, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.value + 1e-12, initial_value);
}

TEST(Quality, AvalaBeatsAverageStochasticSingleShot) {
  // Avala is a deliberate heuristic; a single random deployment should lose
  // to it in the typical case. Compare against the mean of single-shot
  // stochastic runs across seeds.
  double avala_total = 0.0, stochastic_total = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Instance inst = make_instance(100 + t, 6, 18);
    AlgoOptions options;
    options.seed = 100 + t;
    AvalaAlgorithm avala;
    StochasticAlgorithm one_shot(1);
    avala_total +=
        avala.run(inst.system->model(), inst.objective, *inst.checker, options)
            .value;
    stochastic_total += one_shot
                            .run(inst.system->model(), inst.objective,
                                 *inst.checker, options)
                            .value;
  }
  EXPECT_GT(avala_total / trials, stochastic_total / trials);
}

TEST(Stochastic, MoreIterationsNeverHurt) {
  Instance inst = make_instance(41);
  AlgoOptions options;
  options.seed = 41;
  StochasticAlgorithm few(5), many(100);
  const double few_value =
      few.run(inst.system->model(), inst.objective, *inst.checker, options)
          .value;
  const double many_value =
      many.run(inst.system->model(), inst.objective, *inst.checker, options)
          .value;
  EXPECT_GE(many_value + 1e-12, few_value);
}

TEST(Annealing, StartsFromInitialWhenFeasible) {
  Instance inst = make_instance(51);
  SimulatedAnnealingAlgorithm annealing;
  AlgoOptions options;
  options.seed = 51;
  options.initial = inst.system->deployment();
  const AlgoResult result = annealing.run(inst.system->model(), inst.objective,
                                          *inst.checker, options);
  ASSERT_TRUE(result.feasible);
  const double initial_value =
      inst.objective.evaluate(inst.system->model(), inst.system->deployment());
  // SearchState keeps best-seen, which includes the start.
  EXPECT_GE(result.value + 1e-12, initial_value);
}

TEST(Genetic, RespectsEvaluationBudget) {
  Instance inst = make_instance(61);
  GeneticAlgorithm genetic;
  AlgoOptions options;
  options.seed = 61;
  options.max_evaluations = 40;
  const AlgoResult result = genetic.run(inst.system->model(), inst.objective,
                                        *inst.checker, options);
  EXPECT_LE(result.evaluations, 40u);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(Avala, HandlesMustColocationGroups) {
  Instance inst = make_instance(71);
  model::ConstraintSet constraints = inst.system->constraints();
  // Chain a few components into one group.
  constraints.require_colocation(0, 1);
  constraints.require_colocation(1, 2);
  const model::ConstraintChecker checker(inst.system->model(), constraints);
  AvalaAlgorithm avala;
  const AlgoResult result = avala.run(inst.system->model(), inst.objective,
                                      checker, AlgoOptions());
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.deployment.host_of(0), result.deployment.host_of(1));
  EXPECT_EQ(result.deployment.host_of(1), result.deployment.host_of(2));
}

TEST(Algorithms, LatencyObjectiveIsMinimized) {
  Instance inst = make_instance(81);
  const model::LatencyObjective latency;
  const auto registry = AlgorithmRegistry::with_defaults();
  AlgoOptions options;
  options.seed = 81;
  const double exact_value =
      registry.create("exact")->run(inst.system->model(), latency,
                                    *inst.checker, options)
          .value;
  for (const std::string& name : kApproximative) {
    const AlgoResult result = registry.create(name)->run(
        inst.system->model(), latency, *inst.checker, options);
    ASSERT_TRUE(result.feasible) << name;
    EXPECT_GE(result.value + 1e-9, exact_value) << name;
  }
}

}  // namespace
}  // namespace dif::algo
