// Tests for analyzers: execution profile, centralized algorithm-selection
// policy and latency guard, and decentralized voting/polling protocols.
#include <gtest/gtest.h>

#include "analyzer/centralized.h"
#include "analyzer/decentralized.h"
#include "desi/generator.h"

namespace dif::analyzer {
namespace {

TEST(ExecutionProfile, StabilityNeedsFullTightWindow) {
  ExecutionProfile profile(3);
  profile.add_sample(0.0, 0.5);
  profile.add_sample(1.0, 0.5);
  EXPECT_FALSE(profile.is_stable(0.1));  // window not full
  profile.add_sample(2.0, 0.5);
  EXPECT_TRUE(profile.is_stable(0.1));
  profile.add_sample(3.0, 0.9);  // jump
  EXPECT_FALSE(profile.is_stable(0.1));
  EXPECT_NEAR(profile.recent_spread(), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(profile.latest(), 0.9);
  EXPECT_EQ(profile.sample_count(), 4u);
}

TEST(ExecutionProfile, LogsRedeployments) {
  ExecutionProfile profile;
  profile.log_redeployment({.time_ms = 1.0,
                            .algorithm = "avala",
                            .value_before = 0.5,
                            .value_after = 0.7,
                            .migrations = 3,
                            .applied = true,
                            .reason = "gain"});
  profile.log_redeployment({.applied = false, .reason = "vetoed"});
  EXPECT_EQ(profile.redeployments().size(), 2u);
  EXPECT_EQ(profile.applied_count(), 1u);
}

struct AnalyzerFixture {
  algo::AlgorithmRegistry registry = algo::AlgorithmRegistry::with_defaults();
  model::AvailabilityObjective availability;
};

TEST(CentralizedAnalyzer, SelectsExactForSmallSystems) {
  AnalyzerFixture f;
  CentralizedAnalyzer analyzer(f.registry, {});
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 10}, 1);
  ExecutionProfile profile;
  EXPECT_EQ(analyzer.select_algorithm(system->model(), profile), "exact");
}

TEST(CentralizedAnalyzer, SelectsByStabilityForLargeSystems) {
  AnalyzerFixture f;
  CentralizedAnalyzer::Policy policy;
  policy.stability_epsilon = 0.05;
  CentralizedAnalyzer analyzer(f.registry, policy);
  const auto system =
      desi::Generator::generate({.hosts = 8, .components = 40}, 2);

  ExecutionProfile unstable(4);
  for (int i = 0; i < 8; ++i)
    unstable.add_sample(i, i % 2 ? 0.5 : 0.8);
  EXPECT_EQ(analyzer.select_algorithm(system->model(), unstable), "avala");

  ExecutionProfile stable(4);
  for (int i = 0; i < 8; ++i) stable.add_sample(i, 0.7);
  EXPECT_EQ(analyzer.select_algorithm(system->model(), stable), "hillclimb");
}

TEST(CentralizedAnalyzer, RedeploysWhenGainIsLarge) {
  AnalyzerFixture f;
  CentralizedAnalyzer::Policy policy;
  policy.min_improvement = 0.01;
  policy.enable_latency_guard = false;
  CentralizedAnalyzer analyzer(f.registry, policy);
  const auto system =
      desi::Generator::generate({.hosts = 4, .components = 12}, 3);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  ExecutionProfile profile;
  const Decision decision =
      analyzer.analyze(system->model(), f.availability, checker,
                       system->deployment(), profile, 3);
  // Random scattered deployments are typically far from optimal.
  ASSERT_EQ(decision.action, Decision::Action::kRedeploy);
  EXPECT_GT(decision.value_after, decision.value_before + 0.01);
  EXPECT_GT(decision.migrations, 0u);
  EXPECT_EQ(profile.redeployments().size(), 1u);
  EXPECT_TRUE(profile.redeployments()[0].applied);
}

TEST(CentralizedAnalyzer, KeepsWhenAlreadyOptimal) {
  AnalyzerFixture f;
  CentralizedAnalyzer analyzer(f.registry, {});
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 8}, 4);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  ExecutionProfile profile;
  // First analysis redeploys to the optimum...
  const Decision first =
      analyzer.analyze(system->model(), f.availability, checker,
                       system->deployment(), profile, 4);
  ASSERT_EQ(first.action, Decision::Action::kRedeploy);
  // ...a second analysis from the optimum keeps it.
  const Decision second = analyzer.analyze(
      system->model(), f.availability, checker, first.target, profile, 5);
  EXPECT_EQ(second.action, Decision::Action::kKeep);
  EXPECT_NE(second.reason.find("below threshold"), std::string::npos);
}

TEST(CentralizedAnalyzer, LatencyGuardVetoesRegressions) {
  AnalyzerFixture f;
  // Build a model where the availability optimum is terrible for latency:
  // a high-reliability link with almost no bandwidth.
  auto system = desi::Generator::generate({.hosts = 2, .components = 2}, 5);
  model::DeploymentModel& m = system->model();
  m.set_physical_link(0, 1, {.reliability = 0.99, .bandwidth = 0.01,
                             .delay_ms = 2000.0});
  m.set_logical_link(0, 1, {.frequency = 10.0, .avg_event_size = 5.0});
  // Make host 0 too small for both: the availability optimum must split
  // them across the slow link; staying put means... also split. Instead pin
  // them together initially and make the "optimum" remote.
  m.host(0).memory_capacity = 100.0;
  m.host(1).memory_capacity = 100.0;
  // Both local on host 0: availability 1, latency 0 — already optimal; the
  // guard never fires. To exercise the veto we need the availability
  // optimum to differ from the latency optimum, which cannot happen for
  // the same pair. So: two interacting pairs with a location constraint
  // that forces one apart unless colocated on the reliable-but-slow link.
  model::ConstraintSet constraints;
  constraints.pin(0, 0);  // c0 fixed to h0
  const model::ConstraintChecker checker(m, constraints);
  // Current deployment: c1 on h1 (remote but that is where it is).
  const model::Deployment current(std::vector<model::HostId>{0, 1});

  CentralizedAnalyzer::Policy policy;
  policy.min_improvement = 0.001;
  policy.latency_tolerance = 1.0;  // veto any latency increase
  CentralizedAnalyzer analyzer(f.registry, policy);
  ExecutionProfile profile;
  const Decision decision =
      analyzer.analyze(m, f.availability, checker, current, profile, 6);
  // Moving c1 to h0 improves availability (1.0 vs 0.99) AND latency (0);
  // so this decision is a redeploy — the guard correctly stays quiet.
  EXPECT_EQ(decision.action, Decision::Action::kRedeploy);

  // Now invert: current = both local, availability objective says stay;
  // force a "gain" by using a latency-hostile objective? Simpler: check the
  // guard directly by asking for communication-cost minimization with a
  // deployment whose comm optimum hurts latency. Construct: two hosts,
  // pair must split (anti-colocation), two links... covered by unit logic:
  SUCCEED();
}

TEST(CentralizedAnalyzer, LatencyGuardDirectVeto) {
  // Direct construction: improving the chosen objective while worsening
  // latency. Objective = SecurityObjective with a secure but ultra-slow
  // link; availability guard is evaluated on latency.
  model::DeploymentModel m;
  m.add_host({.name = "h0", .memory_capacity = 3.0});  // too small for both
  m.add_host({.name = "h1", .memory_capacity = 100.0});
  m.add_host({.name = "h2", .memory_capacity = 100.0});
  m.add_component({.name = "a", .memory_size = 2.0});
  m.add_component({.name = "b", .memory_size = 2.0});
  // h0--h1: fast but insecure. h0--h2: secure but glacial.
  model::PhysicalLink fast{.reliability = 0.9, .bandwidth = 1000.0,
                           .delay_ms = 1.0};
  model::PhysicalLink slow{.reliability = 0.9, .bandwidth = 0.05,
                           .delay_ms = 500.0};
  slow.properties.set("security", 5.0);
  m.set_physical_link(0, 1, fast);
  m.set_physical_link(0, 2, slow);
  m.set_physical_link(1, 2, fast);
  model::LogicalLink interaction{.frequency = 5.0, .avg_event_size = 2.0};
  interaction.properties.set("required_security", 3.0);
  m.set_logical_link(0, 1, interaction);

  model::ConstraintSet constraints;
  constraints.pin(0, 0);  // a stays on h0
  const model::ConstraintChecker checker(m, constraints);
  const model::Deployment current(std::vector<model::HostId>{0, 1});

  algo::AlgorithmRegistry registry = algo::AlgorithmRegistry::with_defaults();
  CentralizedAnalyzer::Policy policy;
  policy.min_improvement = 0.001;
  policy.latency_tolerance = 1.05;
  CentralizedAnalyzer analyzer(registry, policy);
  const model::SecurityObjective security;
  ExecutionProfile profile;
  const Decision decision =
      analyzer.analyze(m, security, checker, current, profile, 7);
  // The security optimum moves b onto the slow secure link; the latency
  // guard must veto it.
  EXPECT_EQ(decision.action, Decision::Action::kKeep);
  EXPECT_NE(decision.reason.find("vetoed"), std::string::npos);
  ASSERT_EQ(profile.redeployments().size(), 1u);
  EXPECT_FALSE(profile.redeployments()[0].applied);
}

TEST(VotingProtocol, MajorityRules) {
  const VotingProtocol voting(0.0);
  // Utilities: 3 positive, 2 negative -> accept.
  const std::vector<double> utilities{1.0, 0.5, 0.1, -1.0, -2.0};
  EXPECT_TRUE(voting.decide(5, [&](model::HostId h) { return utilities[h]; }));
  EXPECT_EQ(voting.last_votes(), (std::vector<bool>{true, true, true, false,
                                                    false}));
  // 2 positive, 3 negative -> reject.
  const std::vector<double> worse{1.0, 0.5, -0.1, -1.0, -2.0};
  EXPECT_FALSE(voting.decide(5, [&](model::HostId h) { return worse[h]; }));
}

TEST(VotingProtocol, ToleranceAcceptsSmallLosses) {
  const VotingProtocol tolerant(0.5);
  const std::vector<double> utilities{-0.4, -0.4, -0.4};
  EXPECT_TRUE(
      tolerant.decide(3, [&](model::HostId h) { return utilities[h]; }));
  const VotingProtocol strict(0.0);
  EXPECT_FALSE(
      strict.decide(3, [&](model::HostId h) { return utilities[h]; }));
}

TEST(VotingProtocol, TieIsRejected) {
  const VotingProtocol voting;
  const std::vector<double> utilities{1.0, -1.0};
  EXPECT_FALSE(
      voting.decide(2, [&](model::HostId h) { return utilities[h]; }));
}

TEST(PollingProtocol, AggregateGainDecides) {
  const PollingProtocol polling(0.0);
  // One big winner outweighs two small losers (voting would reject this).
  const std::vector<double> utilities{10.0, -1.0, -2.0};
  EXPECT_TRUE(
      polling.decide(3, [&](model::HostId h) { return utilities[h]; }));
  EXPECT_DOUBLE_EQ(polling.last_total(), 7.0);
  const std::vector<double> losses{1.0, -1.0, -2.0};
  EXPECT_FALSE(polling.decide(3, [&](model::HostId h) { return losses[h]; }));
}

TEST(DecentralizedAnalyzer, AcceptsImprovingDecApResult) {
  const auto system = desi::Generator::generate(
      {.hosts = 5, .components = 14, .link_density = 1.0}, 11);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective availability;
  const algo::AwarenessGraph awareness =
      algo::AwarenessGraph::from_links(system->model());
  DecentralizedAnalyzer analyzer({.protocol =
                                      DecentralizedAnalyzer::Protocol::kVoting,
                                  .threshold = 0.5});
  const Decision decision =
      analyzer.analyze(system->model(), availability, checker,
                       system->deployment(), awareness, 11);
  if (decision.migrations == 0) {
    EXPECT_EQ(decision.action, Decision::Action::kKeep);
    return;
  }
  // The analyzer's verdict must match an independent run of the voting
  // protocol over the same utility deltas.
  const LocalUtility delta = [&](model::HostId host) {
    return local_utility(system->model(), availability, decision.target,
                         awareness, host) -
           local_utility(system->model(), availability, system->deployment(),
                         awareness, host);
  };
  const bool expected =
      VotingProtocol(0.5).decide(system->model().host_count(), delta);
  EXPECT_EQ(decision.action == Decision::Action::kRedeploy, expected);
  EXPECT_NE(decision.reason.find("vote"), std::string::npos);
}

TEST(DecentralizedAnalyzer, PollingPathProducesDecision) {
  const auto system = desi::Generator::generate(
      {.hosts = 4, .components = 10, .link_density = 1.0}, 12);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective availability;
  const algo::AwarenessGraph awareness = algo::AwarenessGraph::full(4);
  DecentralizedAnalyzer analyzer(
      {.protocol = DecentralizedAnalyzer::Protocol::kPolling,
       .threshold = 0.0});
  const Decision decision =
      analyzer.analyze(system->model(), availability, checker,
                       system->deployment(), awareness, 12);
  EXPECT_EQ(decision.algorithm, "decap");
  if (decision.action == Decision::Action::kRedeploy)
    EXPECT_NE(decision.reason.find("poll"), std::string::npos);
}

TEST(LocalUtility, CountsOnlyAwarePartners) {
  model::DeploymentModel m;
  m.add_host({.name = "h0"});
  m.add_host({.name = "h1"});
  m.add_host({.name = "h2"});
  m.add_component({.name = "a"});
  m.add_component({.name = "b"});
  m.add_component({.name = "c"});
  m.set_physical_link(0, 1, {.reliability = 0.5, .bandwidth = 10.0});
  m.set_physical_link(1, 2, {.reliability = 0.5, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  m.set_logical_link(0, 2, {.frequency = 4.0, .avg_event_size = 1.0});
  const model::Deployment d(std::vector<model::HostId>{0, 1, 2});
  const model::AvailabilityObjective availability;

  // Full awareness: host 0 sees both of a's interactions.
  const double full = local_utility(m, availability, d,
                                    algo::AwarenessGraph::full(3), 0);
  EXPECT_DOUBLE_EQ(full, 2.0 * 0.5 + 4.0 * 0.0);  // h0-h2 unlinked: rel 0
  // Link-derived awareness: host 0 is unaware of host 2 entirely.
  const double partial = local_utility(
      m, availability, d, algo::AwarenessGraph::from_links(m), 0);
  EXPECT_DOUBLE_EQ(partial, 2.0 * 0.5);
}

}  // namespace
}  // namespace dif::analyzer

// ---- escalation meta-policy -------------------------------------------------

#include "analyzer/escalation.h"

namespace dif::analyzer {
namespace {

Decision keep_decision() {
  Decision d;
  d.action = Decision::Action::kKeep;
  d.reason = "improvement below threshold";
  return d;
}

Decision redeploy_decision() {
  Decision d;
  d.action = Decision::Action::kRedeploy;
  return d;
}

TEST(EscalationPolicy, ClimbsAfterStallThreshold) {
  EscalationPolicy policy({.ladder = {"avala", "hillclimb", "annealing"},
                           .stall_threshold = 3});
  EXPECT_EQ(policy.current(), "avala");
  policy.observe(keep_decision());
  policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "avala");  // not yet
  policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "hillclimb");
  EXPECT_EQ(policy.escalations(), 1u);
  // Three more stalls climb the next rung.
  for (int i = 0; i < 3; ++i) policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "annealing");
}

TEST(EscalationPolicy, TopOfLadderStays) {
  EscalationPolicy policy({.ladder = {"a", "b"}, .stall_threshold = 1});
  policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "b");
  for (int i = 0; i < 5; ++i) policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "b");
  EXPECT_EQ(policy.escalations(), 1u);
}

TEST(EscalationPolicy, SuccessRestsBackToBase) {
  EscalationPolicy policy({.ladder = {"cheap", "strong"},
                           .stall_threshold = 2});
  policy.observe(keep_decision());
  policy.observe(keep_decision());
  EXPECT_EQ(policy.current(), "strong");
  policy.observe(redeploy_decision());
  EXPECT_EQ(policy.current(), "cheap");
  EXPECT_EQ(policy.rung(), 0u);
}

TEST(EscalationPolicy, RejectsDegenerateConfig) {
  EXPECT_THROW(EscalationPolicy({.ladder = {}, .stall_threshold = 1}),
               std::invalid_argument);
  EXPECT_THROW(EscalationPolicy({.ladder = {"a"}, .stall_threshold = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dif::analyzer

namespace dif::analyzer {
namespace {

TEST(ExecutionProfile, RealizationAttachesToLastAppliedRecord) {
  ExecutionProfile profile;
  profile.log_redeployment({.value_after = 0.9, .applied = true});
  profile.log_redeployment({.applied = false, .reason = "vetoed"});
  profile.record_realized(0.85);
  const auto& log = profile.redeployments();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].has_realized);
  EXPECT_DOUBLE_EQ(log[0].realized, 0.85);
  EXPECT_FALSE(log[1].has_realized);
  EXPECT_NEAR(profile.mean_prediction_error(), 0.05, 1e-12);
  // A second realization does not overwrite the first.
  profile.record_realized(0.5);
  EXPECT_DOUBLE_EQ(profile.redeployments()[0].realized, 0.85);
}

TEST(ExecutionProfile, RealizationWithNoAppliedRecordIsNoOp) {
  ExecutionProfile profile;
  profile.record_realized(0.7);
  profile.log_redeployment({.applied = false});
  profile.record_realized(0.7);
  EXPECT_DOUBLE_EQ(profile.mean_prediction_error(), 0.0);
}

}  // namespace
}  // namespace dif::analyzer
