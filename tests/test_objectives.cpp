// Unit tests for objective functions (model/objective.h).
#include "model/objective.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dif::model {
namespace {

/// Two hosts joined by one link; two components with one interaction.
struct Fixture {
  DeploymentModel m;
  Fixture(double reliability, double bandwidth, double delay, double freq,
          double size) {
    m.add_host({.name = "h0", .memory_capacity = 100.0});
    m.add_host({.name = "h1", .memory_capacity = 100.0});
    m.add_component({.name = "a", .memory_size = 1.0});
    m.add_component({.name = "b", .memory_size = 1.0});
    m.set_physical_link(0, 1, {.reliability = reliability,
                               .bandwidth = bandwidth, .delay_ms = delay});
    m.set_logical_link(0, 1, {.frequency = freq, .avg_event_size = size});
  }
};

TEST(Availability, LocalInteractionIsPerfect) {
  Fixture f(0.5, 10.0, 1.0, 4.0, 1.0);
  const AvailabilityObjective availability;
  EXPECT_DOUBLE_EQ(
      availability.evaluate(f.m, Deployment(std::vector<HostId>{0, 0})), 1.0);
}

TEST(Availability, RemoteInteractionScoresLinkReliability) {
  Fixture f(0.7, 10.0, 1.0, 4.0, 1.0);
  const AvailabilityObjective availability;
  EXPECT_DOUBLE_EQ(
      availability.evaluate(f.m, Deployment(std::vector<HostId>{0, 1})), 0.7);
}

TEST(Availability, FrequencyWeightedMix) {
  DeploymentModel m;
  m.add_host({.name = "h0"});
  m.add_host({.name = "h1"});
  for (int i = 0; i < 3; ++i)
    m.add_component({.name = "c" + std::to_string(i)});
  m.set_physical_link(0, 1, {.reliability = 0.5, .bandwidth = 10.0});
  m.set_logical_link(0, 1, {.frequency = 3.0, .avg_event_size = 1.0});
  m.set_logical_link(1, 2, {.frequency = 1.0, .avg_event_size = 1.0});
  const AvailabilityObjective availability;
  // c0,c1 local (rel 1, weight 3); c1,c2 remote (rel 0.5, weight 1).
  const Deployment d(std::vector<HostId>{0, 0, 1});
  EXPECT_DOUBLE_EQ(availability.evaluate(m, d), (3.0 * 1.0 + 1.0 * 0.5) / 4.0);
}

TEST(Availability, UnassignedComponentCountsAsUnavailable) {
  Fixture f(0.9, 10.0, 1.0, 2.0, 1.0);
  const AvailabilityObjective availability;
  Deployment d(2);
  d.assign(0, 0);
  EXPECT_DOUBLE_EQ(availability.evaluate(f.m, d), 0.0);
}

TEST(Availability, NoInteractionsMeansPerfect) {
  DeploymentModel m;
  m.add_host({.name = "h"});
  m.add_component({.name = "c"});
  const AvailabilityObjective availability;
  EXPECT_DOUBLE_EQ(availability.evaluate(m, Deployment(std::vector<HostId>{0})),
                   1.0);
}

TEST(Availability, MonotoneInLinkReliability) {
  Fixture f(0.2, 10.0, 1.0, 5.0, 1.0);
  const AvailabilityObjective availability;
  const Deployment remote(std::vector<HostId>{0, 1});
  const double before = availability.evaluate(f.m, remote);
  f.m.set_link_reliability(0, 1, 0.9);
  EXPECT_GT(availability.evaluate(f.m, remote), before);
}

TEST(Latency, LocalDeploymentIsFree) {
  Fixture f(1.0, 10.0, 5.0, 4.0, 2.0);
  const LatencyObjective latency;
  EXPECT_DOUBLE_EQ(latency.evaluate(f.m, Deployment(std::vector<HostId>{1, 1})),
                   0.0);
}

TEST(Latency, RemoteChargesDelayPlusTransfer) {
  Fixture f(1.0, 10.0, 5.0, 4.0, 2.0);
  const LatencyObjective latency;
  // 4 evt/s * (5 ms + 1000 * 2/10 ms) = 4 * 205 = 820 ms/s.
  EXPECT_DOUBLE_EQ(latency.evaluate(f.m, Deployment(std::vector<HostId>{0, 1})),
                   820.0);
}

TEST(Latency, DisconnectedPairChargesPenalty) {
  DeploymentModel m;
  m.add_host({.name = "h0"});
  m.add_host({.name = "h1"});
  m.add_component({.name = "a"});
  m.add_component({.name = "b"});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  const LatencyObjective latency(/*disconnected_penalty_ms=*/500.0);
  EXPECT_DOUBLE_EQ(latency.evaluate(m, Deployment(std::vector<HostId>{0, 1})),
                   1000.0);
}

TEST(Latency, ScoreDecreasesWithLatency) {
  Fixture f(1.0, 10.0, 5.0, 4.0, 2.0);
  const LatencyObjective latency;
  const double local =
      latency.score(f.m, Deployment(std::vector<HostId>{0, 0}));
  const double remote =
      latency.score(f.m, Deployment(std::vector<HostId>{0, 1}));
  EXPECT_DOUBLE_EQ(local, 1.0);
  EXPECT_LT(remote, local);
  EXPECT_GT(remote, 0.0);
}

TEST(Latency, DirectionAndImproves) {
  const LatencyObjective latency;
  EXPECT_EQ(latency.direction(), Direction::kMinimize);
  EXPECT_TRUE(latency.improves(10.0, 20.0));
  EXPECT_FALSE(latency.improves(20.0, 10.0));
  EXPECT_TRUE(std::isinf(latency.worst()));
}

TEST(CommCost, CountsRemoteTrafficOnly) {
  Fixture f(1.0, 10.0, 5.0, 4.0, 2.0);
  const CommunicationCostObjective cost;
  EXPECT_DOUBLE_EQ(cost.evaluate(f.m, Deployment(std::vector<HostId>{0, 0})),
                   0.0);
  EXPECT_DOUBLE_EQ(cost.evaluate(f.m, Deployment(std::vector<HostId>{0, 1})),
                   8.0);
}

TEST(Security, RequiredLevelAgainstLinkProperty) {
  Fixture f(1.0, 10.0, 1.0, 2.0, 1.0);
  // Interaction requires security 2; link provides 1.
  LogicalLink link = f.m.logical_link(0, 1);
  link.properties.set("required_security", 2.0);
  f.m.set_logical_link(0, 1, std::move(link));
  PhysicalLink phys = f.m.physical_link(0, 1);
  phys.properties.set("security", 1.0);
  f.m.set_physical_link(0, 1, std::move(phys));

  const SecurityObjective security;
  EXPECT_DOUBLE_EQ(security.evaluate(f.m, Deployment(std::vector<HostId>{0, 1})),
                   0.0);
  // Local placement always satisfies the requirement.
  EXPECT_DOUBLE_EQ(security.evaluate(f.m, Deployment(std::vector<HostId>{1, 1})),
                   1.0);
  // Upgrading the link satisfies it remotely too.
  PhysicalLink upgraded = f.m.physical_link(0, 1);
  upgraded.properties.set("security", 3.0);
  f.m.set_physical_link(0, 1, std::move(upgraded));
  EXPECT_DOUBLE_EQ(security.evaluate(f.m, Deployment(std::vector<HostId>{0, 1})),
                   1.0);
}

TEST(Weighted, CombinesNormalizedScores) {
  Fixture f(0.6, 10.0, 5.0, 4.0, 2.0);
  auto availability = std::make_shared<AvailabilityObjective>();
  auto latency = std::make_shared<LatencyObjective>();
  const WeightedObjective weighted(
      {{availability, 2.0}, {latency, 1.0}});
  const Deployment local(std::vector<HostId>{0, 0});
  // Local: availability 1, latency score 1 -> weighted 1.
  EXPECT_DOUBLE_EQ(weighted.evaluate(f.m, local), 1.0);
  const Deployment remote(std::vector<HostId>{0, 1});
  const double expected =
      (2.0 * 0.6 + 1.0 * latency->score(f.m, remote)) / 3.0;
  EXPECT_DOUBLE_EQ(weighted.evaluate(f.m, remote), expected);
  EXPECT_EQ(weighted.direction(), Direction::kMaximize);
  EXPECT_EQ(weighted.name(), "weighted(availability+latency)");
}

TEST(Weighted, RejectsBadConstruction) {
  auto availability = std::make_shared<AvailabilityObjective>();
  EXPECT_THROW(WeightedObjective({}), std::invalid_argument);
  EXPECT_THROW(WeightedObjective({{nullptr, 1.0}}), std::invalid_argument);
  EXPECT_THROW(WeightedObjective({{availability, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(WeightedObjective({{availability, 0.0}}),
               std::invalid_argument);
}

TEST(Objective, WorstRespectsDirection) {
  const AvailabilityObjective availability;
  EXPECT_TRUE(std::isinf(availability.worst()));
  EXPECT_LT(availability.worst(), 0.0);
}

}  // namespace
}  // namespace dif::model
