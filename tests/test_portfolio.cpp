// Portfolio runner behaviour: deadline enforcement against a deliberately
// slow algorithm, evaluation caps, external cancellation, and the
// Algorithm-interface adapter. TSan-clean by construction (CI runs this
// binary under -DDIF_SANITIZE=thread).
#include <gtest/gtest.h>

#include <chrono>

#include "algo/portfolio.h"
#include "algo/registry.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

struct Instance {
  std::unique_ptr<desi::SystemData> system;
  std::unique_ptr<model::ConstraintChecker> checker;
  model::AvailabilityObjective objective;
};

Instance make_instance(std::uint64_t seed, std::size_t hosts = 5,
                       std::size_t components = 14) {
  Instance inst;
  inst.system = desi::Generator::generate(
      {.hosts = hosts, .components = components, .interaction_density = 0.3},
      seed);
  inst.checker = std::make_unique<model::ConstraintChecker>(
      inst.system->model(), inst.system->constraints());
  return inst;
}

/// A stub that finds one feasible deployment immediately, then grinds
/// through (nominally) unbounded evaluations — it terminates in reasonable
/// time only if SearchState::out_of_budget() actually cuts it off.
class SlowAlgorithm final : public Algorithm {
 public:
  [[nodiscard]] std::string_view name() const override { return "slow-stub"; }

  [[nodiscard]] AlgoResult run(const model::DeploymentModel& model,
                               const model::Objective& objective,
                               const model::ConstraintChecker& checker,
                               const AlgoOptions& options) override {
    SearchState search(model, objective, options);
    if (options.initial && checker.feasible(*options.initial)) {
      search.consider(*options.initial);
      // Nominally endless improvement loop; only budgets/cancel end it.
      while (!search.out_of_budget()) search.consider(*options.initial);
    }
    return search.finish(std::string(name()));
  }
};

TEST(PortfolioRunner, DeadlineStopsSlowAlgorithmPromptly) {
  Instance inst = make_instance(1);

  PortfolioOptions options;
  options.threads = 2;
  options.deadline_seconds = 0.2;
  options.initial = inst.system->deployment();
  PortfolioRunner runner(options);
  runner.add(std::make_unique<SlowAlgorithm>());
  runner.add(AlgorithmRegistry::with_defaults().create("stochastic"));

  const auto t0 = std::chrono::steady_clock::now();
  const PortfolioResult result =
      runner.run(inst.system->model(), inst.objective, *inst.checker);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // "Promptly": well under 10x the deadline, not the stub's nominal forever.
  EXPECT_LT(elapsed, 2.0);
  ASSERT_EQ(result.runs.size(), 2u);
  const AlgoResult& slow = result.runs[0];
  EXPECT_TRUE(slow.budget_exhausted);
  ASSERT_TRUE(slow.feasible);  // best-so-far survives the cutoff
  EXPECT_TRUE(inst.checker->feasible(slow.deployment));
  ASSERT_TRUE(result.feasible());
  EXPECT_TRUE(inst.checker->feasible(result.best.deployment));
}

TEST(PortfolioRunner, EvaluationCapStopsSlowAlgorithm) {
  Instance inst = make_instance(2);

  PortfolioOptions options;
  options.threads = 1;
  options.max_evaluations = 5000;
  options.initial = inst.system->deployment();
  PortfolioRunner runner(options);
  runner.add(std::make_unique<SlowAlgorithm>());

  const PortfolioResult result =
      runner.run(inst.system->model(), inst.objective, *inst.checker);
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_TRUE(result.runs[0].budget_exhausted);
  EXPECT_EQ(result.runs[0].evaluations, 5000u);
  EXPECT_TRUE(result.runs[0].feasible);
  EXPECT_FALSE(result.deadline_hit);
}

TEST(PortfolioRunner, ExternalCancelTokenPreemptsTheRace) {
  Instance inst = make_instance(3);

  CancelToken external;
  external.cancel();  // already cancelled before the race starts

  PortfolioOptions options;
  options.threads = 2;
  options.cancel = &external;
  options.initial = inst.system->deployment();
  PortfolioRunner runner(options);
  runner.add(std::make_unique<SlowAlgorithm>());
  runner.add(std::make_unique<SlowAlgorithm>());

  const auto t0 = std::chrono::steady_clock::now();
  const PortfolioResult result =
      runner.run(inst.system->model(), inst.objective, *inst.checker);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 2.0);
  for (const AlgoResult& r : result.runs) EXPECT_TRUE(r.budget_exhausted);
}

TEST(PortfolioRunner, EmptyPortfolioReportsInfeasible) {
  Instance inst = make_instance(4);
  PortfolioRunner runner;
  const PortfolioResult result =
      runner.run(inst.system->model(), inst.objective, *inst.checker);
  EXPECT_FALSE(result.feasible());
  EXPECT_TRUE(result.runs.empty());
}

TEST(PortfolioRunner, MoreThreadsThanEntriesIsFine) {
  Instance inst = make_instance(5);
  PortfolioOptions options;
  options.threads = 16;
  options.max_evaluations = 2000;
  options.initial = inst.system->deployment();
  PortfolioRunner runner(options);
  runner.add_from_registry(AlgorithmRegistry::with_defaults(),
                           {"stochastic", "avala"});
  const PortfolioResult result =
      runner.run(inst.system->model(), inst.objective, *inst.checker);
  ASSERT_TRUE(result.feasible());
  EXPECT_TRUE(inst.checker->feasible(result.best.deployment));
}

TEST(PortfolioAlgorithm, AdapterRacesLineupBehindAlgorithmInterface) {
  Instance inst = make_instance(6);
  const auto registry = AlgorithmRegistry::with_defaults();
  PortfolioAlgorithm portfolio(registry, {}, /*threads=*/2);
  EXPECT_EQ(portfolio.name(), "portfolio");

  AlgoOptions options;
  options.seed = 4;
  options.max_evaluations = 3000;
  options.initial = inst.system->deployment();
  const AlgoResult result = portfolio.run(inst.system->model(), inst.objective,
                                          *inst.checker, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(inst.checker->feasible(result.deployment));
  EXPECT_EQ(result.algorithm, "portfolio");
  EXPECT_NE(result.notes.find("winner="), std::string::npos);
  // Winner quality can never be worse than the same-seed stochastic run.
  AlgoOptions solo;
  solo.seed = 4;
  solo.max_evaluations = 3000;
  solo.initial = inst.system->deployment();
  const AlgoResult stochastic = registry.create("stochastic")
                                    ->run(inst.system->model(), inst.objective,
                                          *inst.checker, solo);
  ASSERT_TRUE(stochastic.feasible);
  EXPECT_FALSE(inst.objective.improves(stochastic.value, result.value));
}

/// The analyzer resolves the name "portfolio" without a registry entry.
TEST(PortfolioAlgorithm, RegistryStaysPortfolioFree) {
  const auto registry = AlgorithmRegistry::with_defaults();
  EXPECT_FALSE(registry.contains("portfolio"));
}

}  // namespace
}  // namespace dif::algo
