// Unit tests for the JSON parser/writer (util/json.h).
#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dif::util::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n\t\"a\" :\r 1 , \"b\": [ 1 ,2 ]}  ");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("b").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a":{"b":{"c":[1,{"d":true}]}}})");
  EXPECT_TRUE(
      v.at("a").at("b").at("c").as_array()[1].at("d").as_bool());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("a\tb")").as_string(), "a\tb");
  EXPECT_EQ(parse(R"("a\/b")").as_string(), "a/b");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), JsonError);
  EXPECT_THROW(parse("{"), JsonError);
  EXPECT_THROW(parse("[1,]"), JsonError);
  EXPECT_THROW(parse("{\"a\":}"), JsonError);
  EXPECT_THROW(parse("tru"), JsonError);
  EXPECT_THROW(parse("\"unterminated"), JsonError);
  EXPECT_THROW(parse("1 2"), JsonError);   // trailing garbage
  EXPECT_THROW(parse("{'a':1}"), JsonError);
}

TEST(JsonDump, RoundTripsCompoundDocument) {
  const std::string doc =
      R"({"arr":[1,2.5,"three",null,true],"num":-7,"obj":{"x":"y"}})";
  const Value parsed = parse(doc);
  const Value reparsed = parse(parsed.dump());
  EXPECT_EQ(parsed, reparsed);
}

TEST(JsonDump, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(Value(5).dump(), "5");
  EXPECT_EQ(Value(-17.0).dump(), "-17");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v = Value(std::string("a\nb\"c"));
  EXPECT_EQ(v.dump(), "\"a\\nb\\\"c\"");
  EXPECT_EQ(parse(v.dump()).as_string(), "a\nb\"c");
}

TEST(JsonDump, PrettyPrintParsesBack) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":true}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, AccessorsThrowOnTypeMismatch) {
  EXPECT_THROW(Value(1.0).as_string(), JsonError);
  EXPECT_THROW(Value("x").as_number(), JsonError);
  EXPECT_THROW(Value().as_array(), JsonError);
  EXPECT_THROW(Value(true).at("k"), JsonError);
}

TEST(JsonValue, AtThrowsOnMissingKey) {
  const Value v = parse(R"({"a":1})");
  EXPECT_THROW(v.at("b"), JsonError);
}

TEST(JsonValue, FindAndDefaults) {
  const Value v = parse(R"({"n":3,"s":"str"})");
  EXPECT_TRUE(v.find("n").has_value());
  EXPECT_FALSE(v.find("missing").has_value());
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "d"), "str");
  EXPECT_EQ(v.string_or("missing", "d"), "d");
  // Type-mismatched member falls back to the default too.
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);
}

TEST(JsonDump, NanBecomesNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(JsonParse, DeeplyNestedArrays) {
  std::string doc;
  for (int i = 0; i < 100; ++i) doc += '[';
  doc += '1';
  for (int i = 0; i < 100; ++i) doc += ']';
  const Value* v = nullptr;
  Value parsed = parse(doc);
  v = &parsed;
  for (int i = 0; i < 100; ++i) v = &v->as_array()[0];
  EXPECT_DOUBLE_EQ(v->as_number(), 1.0);
}

}  // namespace
}  // namespace dif::util::json
