// Failure-injection property tests: the safety invariant of the whole
// middleware is that every application component exists on exactly one host
// no matter what the network does — drops, partitions, host crashes —
// while the improvement loop concurrently migrates components.
#include <gtest/gtest.h>

#include <map>

#include "core/improvement_loop.h"
#include "desi/generator.h"
#include "sim/fluctuation.h"

namespace dif::core {
namespace {

/// Counts how often each application component exists across all hosts.
std::map<std::string, int> census(CentralizedInstantiation& inst,
                                  std::size_t hosts) {
  std::map<std::string, int> counts;
  for (std::size_t h = 0; h < hosts; ++h) {
    for (const std::string& name :
         inst.architecture(static_cast<model::HostId>(h)).component_names()) {
      if (name.rfind("__", 0) == 0) continue;
      ++counts[name];
    }
  }
  return counts;
}

class FailureInjectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FailureInjectionTest, NoComponentLostOrDuplicatedUnderChurn) {
  const std::uint64_t seed = GetParam();
  auto system = desi::Generator::generate(
      {.hosts = 5,
       .components = 15,
       .reliability = {0.5, 0.95},
       .bandwidth = {200.0, 800.0},
       .link_density = 0.8,
       .interaction_density = 0.3},
      seed);
  const std::size_t hosts = system->model().host_count();
  const model::AvailabilityObjective availability;

  FrameworkConfig config;
  config.seed = seed;
  config.admin.report_interval_ms = 500.0;
  config.admin.stability_window = 2;
  config.admin.stability_epsilon = 1.0;
  config.admin.transfer_retry_interval_ms = 500.0;
  // Tight transactional budgets so every redeployment round — including a
  // full rollback, its transfer retries, and any reclaim exchange a lost
  // compensation leaves behind — closes well inside the 40 s quiet-down
  // windows below; otherwise a round launched on the last tick before a
  // sample is still legitimately mid-compensation when the census runs.
  config.deployer.redeploy_timeout_ms = 5'000.0;
  config.deployer.rollback_timeout_ms = 5'000.0;
  CentralizedInstantiation inst(*system, config);

  // Aggressive churn: fluctuation, two scripted outages, one host crash.
  sim::FluctuationModel fluctuation(
      inst.network(),
      {.interval_ms = 1'000.0, .reliability_step = 0.08,
       .bandwidth_step_fraction = 0.1},
      seed + 5);
  fluctuation.start();
  sim::PartitionSchedule partitions(inst.network());
  partitions.add_outage(1, 2, 20'000.0, 45'000.0);
  partitions.add_outage(0, 3, 60'000.0, 80'000.0);
  inst.simulator().schedule_at(100'000.0,
                               [&] { inst.network().fail_host(4); });
  inst.simulator().schedule_at(130'000.0,
                               [&] { inst.network().recover_host(4); });

  ImprovementLoop::Config loop_config;
  loop_config.interval_ms = 7'000.0;
  loop_config.policy.min_improvement = 0.01;
  loop_config.policy.enable_latency_guard = false;
  ImprovementLoop loop(inst, availability, loop_config);

  inst.start();
  loop.start();

  // Check the invariant repeatedly during the run, not just at the end.
  // (A component mid-flight legitimately exists zero times at an instant;
  // only persistent absence/duplication is a violation, so sample after
  // quiet-down periods.)
  for (double t = 50'000.0; t <= 250'000.0; t += 50'000.0) {
    inst.simulator().run_until(t);
    loop.stop();
    // Let in-flight transfers and retries finish undisturbed.
    inst.simulator().run_until(t + 40'000.0);
    const auto counts = census(inst, hosts);
    EXPECT_EQ(counts.size(), system->model().component_count())
        << "seed " << seed << " t=" << t << ": component(s) missing";
    for (const auto& [name, count] : counts)
      EXPECT_EQ(count, 1) << "seed " << seed << " t=" << t << ": " << name
                          << " exists " << count << " times";
    loop.start();
  }

  // Application kept flowing throughout.
  EXPECT_GT(inst.workload_stats().received, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionTest,
                         ::testing::Values(11, 23, 37, 53));

}  // namespace
}  // namespace dif::core
