// Property-style equivalence harness for the incremental evaluator: after
// any sequence of random single-component moves, the delta-maintained value
// must match a from-scratch Objective::evaluate to within floating-point
// accumulation noise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "desi/generator.h"
#include "model/incremental.h"
#include "util/rng.h"

namespace dif::model {
namespace {

/// |a - b| <= tol * max(1, |a|, |b|): relative with an absolute floor.
void expect_close(double a, double b, const char* what, std::size_t step) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  EXPECT_NEAR(a, b, 1e-9 * scale) << what << " at move " << step;
}

std::unique_ptr<desi::SystemData> make_system(std::uint64_t seed) {
  return desi::Generator::generate(
      {.hosts = 8,
       .components = 24,
       .interaction_density = 0.3,
       .location_constraints = 2,
       .colocation_pairs = 1,
       .anti_colocation_pairs = 1},
      seed);
}

class IncrementalEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

/// Replays thousands of random single-component moves (including unassigns)
/// against each decomposable objective and cross-checks every step.
TEST_P(IncrementalEquivalenceTest, ThousandsOfRandomMovesMatchFullEvaluate) {
  const auto system = make_system(GetParam());
  const DeploymentModel& m = system->model();
  util::Xoshiro256ss rng(GetParam() * 31 + 5);

  const AvailabilityObjective availability;
  const LatencyObjective latency;
  const CommunicationCostObjective comm_cost;
  const Objective* objectives[] = {&availability, &latency, &comm_cost};

  for (const Objective* objective : objectives) {
    auto inc = IncrementalEvaluator::try_create(*objective, m);
    ASSERT_TRUE(inc.has_value()) << objective->name();

    Deployment mirror = system->deployment();
    inc->reset(mirror);
    expect_close(inc->value(), objective->evaluate(m, mirror),
                 std::string(objective->name()).c_str(), 0);

    std::uint64_t real_moves = 0;
    for (std::size_t step = 1; step <= 3000; ++step) {
      const auto c =
          static_cast<ComponentId>(rng.index(m.component_count()));
      // Mostly real moves, occasionally an unassign (kNoHost) to exercise
      // the partial-deployment terms.
      const HostId h = rng.chance(0.05)
                           ? kNoHost
                           : static_cast<HostId>(rng.index(m.host_count()));
      if (mirror.host_of(c) != h) ++real_moves;
      mirror.assign(c, h);
      inc->apply(c, h);
      expect_close(inc->value(), objective->evaluate(m, mirror),
                   std::string(objective->name()).c_str(), step);
    }
    EXPECT_EQ(inc->moves_applied(), real_moves) << objective->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Values(1, 7, 19, 101));

TEST(IncrementalEvaluator, ScoreMatchesObjectiveScore) {
  const auto system = make_system(3);
  const DeploymentModel& m = system->model();
  util::Xoshiro256ss rng(12);

  const AvailabilityObjective availability;
  const LatencyObjective latency;
  const CommunicationCostObjective comm_cost;
  const Objective* objectives[] = {&availability, &latency, &comm_cost};
  for (const Objective* objective : objectives) {
    auto inc = IncrementalEvaluator::try_create(*objective, m);
    ASSERT_TRUE(inc.has_value());
    Deployment mirror = system->deployment();
    inc->reset(mirror);
    for (std::size_t step = 1; step <= 200; ++step) {
      const auto c =
          static_cast<ComponentId>(rng.index(m.component_count()));
      const auto h = static_cast<HostId>(rng.index(m.host_count()));
      mirror.assign(c, h);
      inc->apply(c, h);
      expect_close(inc->score(), objective->score(m, mirror),
                   std::string(objective->name()).c_str(), step);
    }
  }
}

TEST(IncrementalEvaluator, ResetResynchronizesAfterDrift) {
  const auto system = make_system(4);
  const DeploymentModel& m = system->model();
  const AvailabilityObjective objective;
  auto inc = IncrementalEvaluator::try_create(objective, m);
  ASSERT_TRUE(inc.has_value());

  inc->reset(system->deployment());
  util::Xoshiro256ss rng(9);
  Deployment mirror = system->deployment();
  for (std::size_t step = 0; step < 500; ++step) {
    const auto c = static_cast<ComponentId>(rng.index(m.component_count()));
    const auto h = static_cast<HostId>(rng.index(m.host_count()));
    mirror.assign(c, h);
    inc->apply(c, h);
  }
  // A fresh reset must discard all accumulated rounding error exactly.
  inc->reset(mirror);
  EXPECT_EQ(inc->value(), objective.evaluate(m, mirror));
}

TEST(IncrementalEvaluator, ToDeploymentMirrorsAppliedMoves) {
  const auto system = make_system(5);
  const DeploymentModel& m = system->model();
  const CommunicationCostObjective objective;
  auto inc = IncrementalEvaluator::try_create(objective, m);
  ASSERT_TRUE(inc.has_value());
  Deployment mirror = system->deployment();
  inc->reset(mirror);
  util::Xoshiro256ss rng(2);
  for (std::size_t step = 0; step < 100; ++step) {
    const auto c = static_cast<ComponentId>(rng.index(m.component_count()));
    const auto h = static_cast<HostId>(rng.index(m.host_count()));
    mirror.assign(c, h);
    inc->apply(c, h);
  }
  EXPECT_EQ(inc->to_deployment(), mirror);
}

TEST(IncrementalEvaluator, NoOpMoveLeavesValueBitIdentical) {
  const auto system = make_system(6);
  const DeploymentModel& m = system->model();
  const LatencyObjective objective;
  auto inc = IncrementalEvaluator::try_create(objective, m);
  ASSERT_TRUE(inc.has_value());
  inc->reset(system->deployment());
  const double before = inc->value();
  inc->apply(ComponentId{0}, system->deployment().host_of(ComponentId{0}));
  EXPECT_EQ(inc->value(), before);  // skipped, not recomputed
}

TEST(IncrementalEvaluator, DegreeZeroComponentsMatchFullEvaluate) {
  // A hand-built model where half the components never interact (the
  // generator refuses to produce isolated components): their CSR adjacency
  // rows are empty, so apply() must degenerate to a pure assignment update
  // and still agree with the from-scratch evaluation at every step.
  DeploymentModel m;
  for (int h = 0; h < 4; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = 100.0});
  for (int c = 0; c < 10; ++c)
    m.add_component({.name = "c" + std::to_string(c), .memory_size = 1.0});
  for (HostId a = 0; a < 4; ++a)
    for (HostId b = a + 1; b < 4; ++b)
      m.set_physical_link(a, b,
                          {.reliability = 0.9, .bandwidth = 50.0,
                           .delay_ms = 3.0});
  // Components 0..4 form a chain; 5..9 stay isolated (degree 0).
  for (ComponentId c = 0; c < 4; ++c)
    m.set_logical_link(c, c + 1,
                       {.frequency = 2.0, .avg_event_size = 0.5});

  const AvailabilityObjective availability;
  const LatencyObjective latency;
  const CommunicationCostObjective comm_cost;
  const Objective* objectives[] = {&availability, &latency, &comm_cost};
  util::Xoshiro256ss rng(8);
  for (const Objective* objective : objectives) {
    auto inc = IncrementalEvaluator::try_create(*objective, m);
    ASSERT_TRUE(inc.has_value()) << objective->name();
    Deployment mirror(m.component_count());
    for (std::size_t c = 0; c < m.component_count(); ++c)
      mirror.assign(static_cast<ComponentId>(c),
                    static_cast<HostId>(c % m.host_count()));
    inc->reset(mirror);
    for (std::size_t step = 1; step <= 50; ++step) {
      const auto c = static_cast<ComponentId>(rng.index(m.component_count()));
      const auto h = static_cast<HostId>(rng.index(m.host_count()));
      mirror.assign(c, h);
      inc->apply(c, h);
      expect_close(inc->value(), objective->evaluate(m, mirror),
                   std::string(objective->name()).c_str(), step);
    }
  }
}

TEST(IncrementalEvaluator, RejectsNonDecomposableObjectives) {
  const auto system = make_system(7);
  const DeploymentModel& m = system->model();

  const SecurityObjective security;
  EXPECT_FALSE(IncrementalEvaluator::try_create(security, m).has_value());

  std::vector<WeightedObjective::Term> terms;
  terms.push_back({std::make_shared<AvailabilityObjective>(), 1.0});
  terms.push_back({std::make_shared<LatencyObjective>(), 1.0});
  const WeightedObjective weighted(std::move(terms));
  EXPECT_FALSE(IncrementalEvaluator::try_create(weighted, m).has_value());
}

}  // namespace
}  // namespace dif::model
