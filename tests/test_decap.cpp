// Tests for the decentralized auction algorithm (algo/decap.h).
#include "algo/decap.h"

#include <gtest/gtest.h>

#include "algo/exact.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

TEST(AwarenessGraph, FullGraphConnectsEveryPair) {
  const AwarenessGraph g = AwarenessGraph::full(5);
  for (model::HostId a = 0; a < 5; ++a)
    for (model::HostId b = 0; b < 5; ++b) EXPECT_TRUE(g.aware(a, b));
  EXPECT_DOUBLE_EQ(g.density(), 1.0);
  EXPECT_EQ(g.neighbors(2).size(), 4u);
}

TEST(AwarenessGraph, SelfAwarenessAlwaysHolds) {
  util::Xoshiro256ss rng(1);
  const AwarenessGraph g = AwarenessGraph::random(6, 0.0, rng);
  for (model::HostId h = 0; h < 6; ++h) {
    EXPECT_TRUE(g.aware(h, h));
    EXPECT_TRUE(g.neighbors(h).empty());
  }
  EXPECT_DOUBLE_EQ(g.density(), 0.0);
}

TEST(AwarenessGraph, FromLinksMirrorsConnectivity) {
  const auto system = desi::Generator::generate(
      {.hosts = 6, .components = 6, .link_density = 0.3}, 7);
  const model::DeploymentModel& m = system->model();
  const AwarenessGraph g = AwarenessGraph::from_links(m);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = 0; b < 6; ++b)
      if (a != b)
        EXPECT_EQ(g.aware(static_cast<model::HostId>(a),
                          static_cast<model::HostId>(b)),
                  m.connected(static_cast<model::HostId>(a),
                              static_cast<model::HostId>(b)));
}

TEST(AwarenessGraph, RandomIsSymmetricAndSeeded) {
  util::Xoshiro256ss rng1(9), rng2(9);
  const AwarenessGraph a = AwarenessGraph::random(8, 0.5, rng1);
  const AwarenessGraph b = AwarenessGraph::random(8, 0.5, rng2);
  for (model::HostId x = 0; x < 8; ++x)
    for (model::HostId y = 0; y < 8; ++y) {
      EXPECT_EQ(a.aware(x, y), a.aware(y, x));
      EXPECT_EQ(a.aware(x, y), b.aware(x, y));
    }
}

class DecApTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecApTest, ImprovesOverInitialDeployment) {
  const auto system = desi::Generator::generate(
      {.hosts = 6, .components = 16, .interaction_density = 0.3}, GetParam());
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  DecApAlgorithm decap;
  AlgoOptions options;
  options.seed = GetParam();
  options.initial = system->deployment();
  const double initial_value =
      objective.evaluate(system->model(), system->deployment());
  const AlgoResult result =
      decap.run(system->model(), objective, checker, options);
  ASSERT_TRUE(result.feasible);
  // With awareness == physical connectivity, a move is only accepted when a
  // bidder values the component more than its current host does; global
  // availability must not collapse (and typically improves).
  EXPECT_GE(result.value + 0.05, initial_value);
}

TEST_P(DecApTest, ResultSatisfiesConstraints) {
  const auto system = desi::Generator::generate(
      {.hosts = 5,
       .components = 12,
       .location_constraints = 2,
       .colocation_pairs = 1,
       .anti_colocation_pairs = 1},
      GetParam());
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  DecApAlgorithm decap;
  AlgoOptions options;
  options.seed = GetParam();
  options.initial = system->deployment();
  const AlgoResult result =
      decap.run(system->model(), objective, checker, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(checker.feasible(result.deployment));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecApTest, ::testing::Values(3, 5, 8, 13));

TEST(DecAp, FullAwarenessApproachesCentralizedQuality) {
  double decap_total = 0.0, exact_total = 0.0, initial_total = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const auto system = desi::Generator::generate(
        {.hosts = 4, .components = 10, .link_density = 1.0}, 200 + t);
    const model::ConstraintChecker checker(system->model(),
                                           system->constraints());
    const model::AvailabilityObjective objective;
    AlgoOptions options;
    options.seed = 200 + t;
    options.initial = system->deployment();

    DecApAlgorithm decap({.max_rounds = 16, .min_gain = 1e-9},
                         AwarenessGraph::full(4));
    ExactAlgorithm exact;
    initial_total += objective.evaluate(system->model(), system->deployment());
    decap_total +=
        decap.run(system->model(), objective, checker, options).value;
    exact_total +=
        exact.run(system->model(), objective, checker, options).value;
  }
  EXPECT_GT(decap_total, initial_total);   // significant improvement
  EXPECT_LE(decap_total, exact_total + 1e-9);  // bounded by the optimum
  // The paper's claim: DecAp recovers most of the centralized gain.
  EXPECT_GT(decap_total - initial_total,
            0.4 * (exact_total - initial_total));
}

TEST(DecAp, ZeroAwarenessMeansNoMigrations) {
  const auto system =
      desi::Generator::generate({.hosts = 5, .components = 10}, 42);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  util::Xoshiro256ss rng(42);
  DecApAlgorithm decap({}, AwarenessGraph::random(5, 0.0, rng));
  AlgoOptions options;
  options.initial = system->deployment();
  const AlgoResult result =
      decap.run(system->model(), objective, checker, options);
  EXPECT_EQ(decap.stats().migrations, 0u);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_EQ(result.deployment, system->deployment());
}

TEST(DecAp, StatsCountProtocolActivity) {
  const auto system =
      desi::Generator::generate({.hosts = 5, .components = 12}, 21);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  DecApAlgorithm decap;
  AlgoOptions options;
  options.seed = 21;
  options.initial = system->deployment();
  (void)decap.run(system->model(), objective, checker, options);
  EXPECT_GT(decap.stats().auctions, 0u);
  EXPECT_GT(decap.stats().messages, decap.stats().auctions);
  EXPECT_GE(decap.stats().rounds, 1u);
}

TEST(DecAp, NotesContainProtocolSummary) {
  const auto system =
      desi::Generator::generate({.hosts = 4, .components = 8}, 22);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective objective;
  DecApAlgorithm decap;
  AlgoOptions options;
  options.initial = system->deployment();
  const AlgoResult result =
      decap.run(system->model(), objective, checker, options);
  EXPECT_NE(result.notes.find("rounds="), std::string::npos);
  EXPECT_NE(result.notes.find("messages="), std::string::npos);
}

}  // namespace
}  // namespace dif::algo
