// Unit tests for the deployment-architecture model (model/deployment_model.h).
#include "model/deployment_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dif::model {
namespace {

DeploymentModel two_hosts_two_components() {
  DeploymentModel m;
  m.add_host({.name = "h0", .memory_capacity = 100.0});
  m.add_host({.name = "h1", .memory_capacity = 50.0});
  m.add_component({.name = "c0", .memory_size = 10.0});
  m.add_component({.name = "c1", .memory_size = 5.0});
  return m;
}

TEST(DeploymentModel, AddAndLookup) {
  DeploymentModel m = two_hosts_two_components();
  EXPECT_EQ(m.host_count(), 2u);
  EXPECT_EQ(m.component_count(), 2u);
  EXPECT_EQ(m.host(0).name, "h0");
  EXPECT_EQ(m.component(1).name, "c1");
  EXPECT_EQ(m.host_by_name("h1"), 1u);
  EXPECT_EQ(m.component_by_name("c0"), 0u);
  EXPECT_THROW(m.host_by_name("nope"), std::out_of_range);
  EXPECT_THROW(m.component_by_name("nope"), std::out_of_range);
  EXPECT_THROW(m.host(9), std::out_of_range);
}

TEST(DeploymentModel, PhysicalLinksAreSymmetric) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 0.9, .bandwidth = 100.0,
                             .delay_ms = 5.0});
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).reliability, 0.9);
  EXPECT_DOUBLE_EQ(m.physical_link(1, 0).reliability, 0.9);
  EXPECT_TRUE(m.connected(0, 1));
  EXPECT_TRUE(m.connected(1, 0));
}

TEST(DeploymentModel, SelfLinkIsPerfect) {
  DeploymentModel m = two_hosts_two_components();
  EXPECT_DOUBLE_EQ(m.physical_link(0, 0).reliability, 1.0);
  EXPECT_TRUE(std::isinf(m.physical_link(1, 1).bandwidth));
  EXPECT_FALSE(m.connected(0, 0));  // "connected" means distinct hosts
  EXPECT_THROW(m.set_physical_link(0, 0, {}), std::invalid_argument);
}

TEST(DeploymentModel, UnsetLinkIsDisconnected) {
  DeploymentModel m = two_hosts_two_components();
  EXPECT_FALSE(m.connected(0, 1));
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).reliability, 0.0);
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).bandwidth, 0.0);
}

TEST(DeploymentModel, ClearLinkDisconnects) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 0.9, .bandwidth = 10.0});
  m.clear_physical_link(1, 0);
  EXPECT_FALSE(m.connected(0, 1));
}

TEST(DeploymentModel, SingleFieldLinkUpdates) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 0.5, .bandwidth = 10.0,
                             .delay_ms = 1.0});
  m.set_link_reliability(0, 1, 0.75);
  m.set_link_bandwidth(1, 0, 20.0);
  m.set_link_delay(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).reliability, 0.75);
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).bandwidth, 20.0);
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).delay_ms, 2.5);
}

TEST(DeploymentModel, LogicalLinksSymmetricAndSelfRejected) {
  DeploymentModel m = two_hosts_two_components();
  m.set_logical_link(0, 1, {.frequency = 4.0, .avg_event_size = 1.5});
  EXPECT_DOUBLE_EQ(m.logical_link(1, 0).frequency, 4.0);
  EXPECT_THROW(m.set_logical_link(1, 1, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(m.logical_link(0, 0).frequency, 0.0);
}

TEST(DeploymentModel, InteractionsCacheListsPositiveFrequencies) {
  DeploymentModel m;
  m.add_host({.name = "h"});
  for (int i = 0; i < 4; ++i)
    m.add_component({.name = "c" + std::to_string(i)});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  m.set_logical_link(2, 3, {.frequency = 3.0, .avg_event_size = 1.0});
  m.set_logical_link(0, 3, {.frequency = 0.0, .avg_event_size = 1.0});
  const auto interactions = m.interactions();
  ASSERT_EQ(interactions.size(), 2u);
  EXPECT_DOUBLE_EQ(m.total_interaction_frequency(), 5.0);
}

TEST(DeploymentModel, InteractionsCacheInvalidatedOnChange) {
  DeploymentModel m = two_hosts_two_components();
  m.set_logical_link(0, 1, {.frequency = 1.0, .avg_event_size = 1.0});
  EXPECT_EQ(m.interactions().size(), 1u);
  m.clear_logical_link(0, 1);
  EXPECT_EQ(m.interactions().size(), 0u);
  m.add_component({.name = "c2"});
  m.set_logical_link(0, 2, {.frequency = 2.0, .avg_event_size = 1.0});
  EXPECT_EQ(m.interactions().size(), 1u);
  EXPECT_EQ(m.interactions()[0].b, 2u);
}

TEST(DeploymentModel, GrowingTopologyPreservesLinks) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 0.8, .bandwidth = 50.0});
  m.set_logical_link(0, 1, {.frequency = 7.0, .avg_event_size = 0.5});
  m.add_host({.name = "h2", .memory_capacity = 10.0});
  m.add_component({.name = "c2", .memory_size = 1.0});
  EXPECT_DOUBLE_EQ(m.physical_link(0, 1).reliability, 0.8);
  EXPECT_DOUBLE_EQ(m.logical_link(0, 1).frequency, 7.0);
  EXPECT_FALSE(m.connected(0, 2));
}

TEST(DeploymentModel, ListenersFireAndRemove) {
  DeploymentModel m = two_hosts_two_components();
  int events = 0;
  const std::size_t id = m.add_listener([&](ModelEvent) { ++events; });
  m.set_physical_link(0, 1, {.reliability = 0.5, .bandwidth = 1.0});
  m.set_logical_link(0, 1, {.frequency = 1.0, .avg_event_size = 1.0});
  m.notify_entity_changed();
  EXPECT_EQ(events, 3);
  m.remove_listener(id);
  m.notify_entity_changed();
  EXPECT_EQ(events, 3);
}

TEST(DeploymentModel, ValidateAcceptsSaneModel) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 0.5, .bandwidth = 1.0});
  EXPECT_NO_THROW(m.validate());
}

TEST(DeploymentModel, ValidateRejectsOutOfRangeReliability) {
  DeploymentModel m = two_hosts_two_components();
  m.set_physical_link(0, 1, {.reliability = 1.5, .bandwidth = 1.0});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(DeploymentModel, ValidateRejectsNegativeParameters) {
  DeploymentModel m;
  m.add_host({.name = "h", .memory_capacity = -1.0});
  EXPECT_THROW(m.validate(), std::invalid_argument);

  DeploymentModel m2 = two_hosts_two_components();
  m2.set_logical_link(0, 1, {.frequency = -2.0, .avg_event_size = 1.0});
  EXPECT_THROW(m2.validate(), std::invalid_argument);
}

TEST(DeploymentModel, ModelLevelProperties) {
  DeploymentModel m;
  m.properties().set("monitoring_window", 5.0);
  EXPECT_DOUBLE_EQ(m.properties().at("monitoring_window"), 5.0);
}

}  // namespace
}  // namespace dif::model

namespace dif::model {
namespace {

TEST(DeploymentModel, RejectsDuplicateNames) {
  DeploymentModel m;
  m.add_host({.name = "h"});
  EXPECT_THROW(m.add_host({.name = "h"}), std::invalid_argument);
  m.add_component({.name = "c"});
  EXPECT_THROW(m.add_component({.name = "c"}), std::invalid_argument);
  // Host and component namespaces are independent.
  EXPECT_NO_THROW(m.add_component({.name = "h"}));
}

}  // namespace
}  // namespace dif::model
