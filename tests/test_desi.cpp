// Tests for the DeSi environment: SystemData reactivity, Generator ranges
// and feasibility, Modifier edits, AlgorithmContainer, AlgoResultData,
// TableView/GraphView rendering.
#include <gtest/gtest.h>

#include "algo/stochastic.h"
#include "desi/algorithm_container.h"
#include "desi/generator.h"
#include "desi/graph_view.h"
#include "desi/modifier.h"
#include "desi/table_view.h"

namespace dif::desi {
namespace {

TEST(SystemData, NotifiesOnModelAndDeploymentChanges) {
  SystemData system;
  std::vector<SystemData::Change> changes;
  system.add_listener([&](SystemData::Change c) { changes.push_back(c); });
  system.model().add_host({.name = "h"});
  system.model().add_component({.name = "c"});
  system.sync_deployment_size();
  system.set_deployment(model::Deployment(std::vector<model::HostId>{0}));
  system.notify_constraints_changed();
  ASSERT_GE(changes.size(), 4u);
  EXPECT_EQ(changes[0], SystemData::Change::kModel);
  EXPECT_EQ(changes.back(), SystemData::Change::kConstraints);
}

TEST(SystemData, MoveComponentUpdatesDeployment) {
  SystemData system;
  system.model().add_host({.name = "h0"});
  system.model().add_host({.name = "h1"});
  system.model().add_component({.name = "c"});
  system.sync_deployment_size();
  system.move_component(0, 1);
  EXPECT_EQ(system.deployment().host_of(0), 1u);
}

TEST(SystemData, SetDeploymentRejectsWrongSize) {
  SystemData system;
  system.model().add_host({.name = "h"});
  system.model().add_component({.name = "c"});
  EXPECT_THROW(system.set_deployment(model::Deployment(5)),
               std::invalid_argument);
}

TEST(Generator, ProducesRequestedTopologySizes) {
  const auto system =
      Generator::generate({.hosts = 7, .components = 23}, 1);
  EXPECT_EQ(system->model().host_count(), 7u);
  EXPECT_EQ(system->model().component_count(), 23u);
  EXPECT_TRUE(system->deployment().complete());
}

TEST(Generator, ParametersRespectRanges) {
  GeneratorSpec spec;
  spec.hosts = 6;
  spec.components = 15;
  spec.host_memory = {200.0, 300.0};
  spec.component_memory = {1.0, 3.0};
  spec.reliability = {0.4, 0.6};
  spec.bandwidth = {10.0, 20.0};
  spec.delay_ms = {2.0, 4.0};
  spec.frequency = {1.0, 2.0};
  spec.event_size = {0.5, 0.6};
  const auto system = Generator::generate(spec, 2);
  const model::DeploymentModel& m = system->model();
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    EXPECT_GE(m.host(static_cast<model::HostId>(h)).memory_capacity, 200.0);
    EXPECT_LE(m.host(static_cast<model::HostId>(h)).memory_capacity, 300.0);
  }
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      if (!m.connected(ha, hb)) continue;
      EXPECT_GE(m.physical_link(ha, hb).reliability, 0.4);
      EXPECT_LE(m.physical_link(ha, hb).reliability, 0.6);
      EXPECT_GE(m.physical_link(ha, hb).bandwidth, 10.0);
      EXPECT_LE(m.physical_link(ha, hb).bandwidth, 20.0);
    }
  }
  for (const model::Interaction& ix : m.interactions()) {
    EXPECT_GE(ix.frequency, 1.0);
    EXPECT_LE(ix.frequency, 2.0);
    EXPECT_GE(ix.avg_event_size, 0.5);
    EXPECT_LE(ix.avg_event_size, 0.6);
  }
  EXPECT_NO_THROW(m.validate());
}

TEST(Generator, HostGraphIsConnected) {
  const auto system = Generator::generate(
      {.hosts = 10, .components = 10, .link_density = 0.0}, 3);
  // Even with zero extra density the spanning tree connects everything:
  // BFS from host 0 must reach all hosts.
  const model::DeploymentModel& m = system->model();
  std::vector<bool> seen(m.host_count(), false);
  std::vector<model::HostId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const model::HostId h = stack.back();
    stack.pop_back();
    for (std::size_t g = 0; g < m.host_count(); ++g) {
      if (!seen[g] && m.connected(h, static_cast<model::HostId>(g))) {
        seen[g] = true;
        stack.push_back(static_cast<model::HostId>(g));
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Generator, EveryComponentInteracts) {
  const auto system = Generator::generate(
      {.hosts = 4, .components = 20, .interaction_density = 0.0}, 4);
  std::vector<bool> interacts(20, false);
  for (const model::Interaction& ix : system->model().interactions()) {
    interacts[ix.a] = true;
    interacts[ix.b] = true;
  }
  EXPECT_TRUE(std::all_of(interacts.begin(), interacts.end(),
                          [](bool b) { return b; }));
}

TEST(Generator, InitialDeploymentSatisfiesGeneratedConstraints) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto system = Generator::generate(
        {.hosts = 5,
         .components = 16,
         .location_constraints = 4,
         .colocation_pairs = 2,
         .anti_colocation_pairs = 2},
        seed);
    const model::ConstraintChecker checker(system->model(),
                                           system->constraints());
    EXPECT_TRUE(checker.feasible(system->deployment())) << "seed " << seed;
  }
}

TEST(Generator, DeterministicPerSeed) {
  const auto a = Generator::generate({.hosts = 4, .components = 9}, 7);
  const auto b = Generator::generate({.hosts = 4, .components = 9}, 7);
  EXPECT_EQ(a->deployment(), b->deployment());
  EXPECT_EQ(a->model().host(2).memory_capacity,
            b->model().host(2).memory_capacity);
  const auto c = Generator::generate({.hosts = 4, .components = 9}, 8);
  EXPECT_NE(a->model().host(2).memory_capacity,
            c->model().host(2).memory_capacity);
}

TEST(Generator, RejectsDegenerateSpecs) {
  EXPECT_THROW(Generator::generate({.hosts = 0, .components = 5}, 1),
               std::invalid_argument);
  EXPECT_THROW(Generator::generate({.hosts = 2, .components = 0}, 1),
               std::invalid_argument);
}

TEST(Modifier, SingleParameterEdits) {
  auto system = Generator::generate({.hosts = 3, .components = 6}, 9);
  Modifier modifier(*system);
  model::DeploymentModel& m = system->model();
  // Find a connected pair.
  model::HostId ha = 0, hb = 1;
  for (std::size_t b = 1; b < 3; ++b)
    if (m.connected(0, static_cast<model::HostId>(b)))
      hb = static_cast<model::HostId>(b);
  modifier.set_link_reliability(ha, hb, 0.42);
  modifier.set_link_bandwidth(ha, hb, 77.0);
  modifier.set_link_delay(ha, hb, 9.0);
  EXPECT_DOUBLE_EQ(m.physical_link(ha, hb).reliability, 0.42);
  EXPECT_DOUBLE_EQ(m.physical_link(ha, hb).bandwidth, 77.0);
  EXPECT_DOUBLE_EQ(m.physical_link(ha, hb).delay_ms, 9.0);

  modifier.set_host_memory(0, 512.0);
  modifier.set_component_memory(1, 2.5);
  EXPECT_DOUBLE_EQ(m.host(0).memory_capacity, 512.0);
  EXPECT_DOUBLE_EQ(m.component(1).memory_size, 2.5);

  const model::Interaction ix = m.interactions()[0];
  modifier.set_interaction_frequency(ix.a, ix.b, 99.0);
  modifier.set_interaction_event_size(ix.a, ix.b, 0.25);
  EXPECT_DOUBLE_EQ(m.logical_link(ix.a, ix.b).frequency, 99.0);
  EXPECT_DOUBLE_EQ(m.logical_link(ix.a, ix.b).avg_event_size, 0.25);

  modifier.set_host_property(0, "battery", 0.8);
  modifier.set_component_property(0, "criticality", 3.0);
  EXPECT_DOUBLE_EQ(m.host(0).properties.at("battery"), 0.8);
  EXPECT_DOUBLE_EQ(m.component(0).properties.at("criticality"), 3.0);
}

TEST(Modifier, ScaleAllReliabilitiesClamps) {
  auto system = Generator::generate({.hosts = 4, .components = 6}, 10);
  Modifier modifier(*system);
  modifier.scale_all_reliabilities(10.0);  // would exceed 1 without clamp
  const model::DeploymentModel& m = system->model();
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t b = a + 1; b < 4; ++b)
      if (m.connected(static_cast<model::HostId>(a),
                      static_cast<model::HostId>(b)))
        EXPECT_LE(m.physical_link(static_cast<model::HostId>(a),
                                  static_cast<model::HostId>(b))
                      .reliability,
                  1.0);
}

TEST(AlgoResultData, TracksBestPerObjective) {
  AlgoResultData results;
  ResultEntry entry;
  entry.objective = "availability";
  entry.result.algorithm = "a";
  entry.result.feasible = true;
  entry.result.value = 0.5;
  results.add(entry);
  entry.result.algorithm = "b";
  entry.result.value = 0.8;
  results.add(entry);
  entry.result.algorithm = "c";
  entry.result.value = 0.6;
  results.add(entry);
  entry.objective = "latency";
  entry.result.value = 0.1;
  results.add(entry);
  const auto best =
      results.best_index("availability", model::Direction::kMaximize);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(results.entries()[*best].result.algorithm, "b");
  EXPECT_FALSE(
      results.best_index("security", model::Direction::kMaximize).has_value());
  results.clear();
  EXPECT_EQ(results.size(), 0u);
}

TEST(AlgorithmContainer, InvokeRecordsResult) {
  auto system = Generator::generate({.hosts = 4, .components = 10}, 11);
  AlgoResultData results;
  AlgorithmContainer container(*system, results);
  const model::AvailabilityObjective availability;
  const ResultEntry& entry = container.invoke("avala", availability);
  EXPECT_EQ(entry.result.algorithm, "avala");
  EXPECT_TRUE(entry.result.feasible);
  EXPECT_EQ(entry.objective, "availability");
  EXPECT_EQ(results.size(), 1u);
  // Migrations measured against the system's current deployment.
  EXPECT_EQ(entry.result.migrations,
            model::Deployment::diff_count(system->deployment(),
                                          entry.result.deployment));
  if (entry.result.migrations > 0) EXPECT_GT(entry.estimated_redeploy_ms, 0.0);
}

TEST(AlgorithmContainer, InvokeAllSkipsInapplicable) {
  auto system = Generator::generate({.hosts = 3, .components = 20}, 12);
  AlgoResultData results;
  AlgorithmContainer container(*system, results);
  const model::AvailabilityObjective availability;
  // 20 components: exact variants skipped; 3 hosts: mincut skipped.
  const std::size_t ran = container.invoke_all(availability, 12);
  EXPECT_EQ(ran, results.size());
  for (const ResultEntry& entry : results.entries()) {
    EXPECT_NE(entry.result.algorithm, "exact");
    EXPECT_NE(entry.result.algorithm, "exact-unpruned");
    EXPECT_NE(entry.result.algorithm, "mincut");
  }
  EXPECT_GE(ran, 5u);
}

TEST(AlgorithmContainer, CustomRegistryIsUsed) {
  auto system = Generator::generate({.hosts = 3, .components = 8}, 13);
  AlgoResultData results;
  algo::AlgorithmRegistry registry;  // empty
  AlgorithmContainer container(*system, results, std::move(registry));
  const model::AvailabilityObjective availability;
  EXPECT_THROW(container.invoke("avala", availability), std::out_of_range);
  container.registry().register_factory("mine", [] {
    return std::make_unique<algo::StochasticAlgorithm>(3);
  });
  EXPECT_NO_THROW(container.invoke("mine", availability));
}

TEST(TableView, RendersAllPanels) {
  auto system = Generator::generate(
      {.hosts = 3, .components = 6, .location_constraints = 1,
       .colocation_pairs = 1},
      14);
  system->model().host(0).properties.set("battery", 0.9);
  AlgoResultData results;
  AlgorithmContainer container(*system, results);
  const model::AvailabilityObjective availability;
  container.invoke("avala", availability);

  const std::string hosts = TableView::render_hosts(*system);
  EXPECT_NE(hosts.find("host0"), std::string::npos);
  EXPECT_NE(hosts.find("battery"), std::string::npos);
  const std::string comps = TableView::render_components(*system);
  EXPECT_NE(comps.find("comp5"), std::string::npos);
  const std::string links = TableView::render_links(*system);
  EXPECT_NE(links.find("--"), std::string::npos);
  const std::string interactions = TableView::render_interactions(*system);
  EXPECT_NE(interactions.find("<->"), std::string::npos);
  const std::string constraints = TableView::render_constraints(*system);
  EXPECT_NE(constraints.find("location"), std::string::npos);
  const std::string rendered = TableView::render_results(results);
  EXPECT_NE(rendered.find("avala"), std::string::npos);
  EXPECT_NE(rendered.find("availability"), std::string::npos);
}

TEST(GraphView, AsciiListsHostsComponentsAndLinks) {
  auto system = Generator::generate({.hosts = 3, .components = 5}, 15);
  const std::string ascii = GraphView::render_ascii(*system);
  EXPECT_NE(ascii.find("host0"), std::string::npos);
  EXPECT_NE(ascii.find("[comp0]"), std::string::npos);
  EXPECT_NE(ascii.find("physical links:"), std::string::npos);
  EXPECT_NE(ascii.find("logical links:"), std::string::npos);
}

TEST(GraphView, DotContainsClustersPerHost) {
  auto system = Generator::generate({.hosts = 3, .components = 5}, 16);
  GraphViewData layout;
  layout.refresh(*system);
  const std::string dot = GraphView::to_dot(*system, layout);
  EXPECT_NE(dot.find("graph deployment"), std::string::npos);
  EXPECT_NE(dot.find("cluster_h0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_h2"), std::string::npos);
  EXPECT_NE(dot.find("c0"), std::string::npos);
}

TEST(GraphViewData, LayoutAssignsContainmentAndZoomScales) {
  auto system = Generator::generate({.hosts = 4, .components = 8}, 17);
  GraphViewData layout;
  layout.refresh(*system);
  ASSERT_EQ(layout.hosts().size(), 4u);
  ASSERT_EQ(layout.components().size(), 8u);
  for (const ComponentVisual& cv : layout.components())
    EXPECT_EQ(cv.containing_host,
              system->deployment().host_of(cv.component));
  const double radius_before = std::abs(layout.hosts()[0].x);
  layout.set_zoom(2.0);
  layout.refresh(*system);
  EXPECT_NEAR(std::abs(layout.hosts()[0].x), 2.0 * radius_before, 1e-9);
  EXPECT_THROW(layout.set_zoom(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dif::desi

// ---- sensitivity analysis ---------------------------------------------------

#include "desi/sensitivity.h"

namespace dif::desi {
namespace {

TEST(Sensitivity, LinkReliabilitySweepIsMonotoneForFixedDeployment) {
  const auto system = Generator::generate(
      {.hosts = 3, .components = 8, .link_density = 1.0}, 21);
  const model::AvailabilityObjective availability;
  SensitivityAnalysis analysis(*system);
  // Pick a link actually carrying remote traffic in the current deployment.
  model::HostId a = 0, b = 1;
  const auto points = analysis.sweep_link_reliability(
      a, b, 0.1, 1.0, availability, {.algorithm = "hillclimb", .steps = 5});
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].parameter, points[i - 1].parameter);
    EXPECT_GE(points[i].current + 1e-12, points[i - 1].current)
        << "availability must not fall as the link improves";
  }
  // Re-optimizing never does worse than staying put.
  for (const auto& point : points)
    EXPECT_GE(point.reoptimized + 1e-9, point.current);
}

TEST(Sensitivity, OriginalSystemIsUntouched) {
  const auto system = Generator::generate({.hosts = 3, .components = 6}, 22);
  const double before_rel = system->model().physical_link(0, 1).reliability;
  const model::Deployment before_deployment = system->deployment();
  const model::AvailabilityObjective availability;
  SensitivityAnalysis analysis(*system);
  (void)analysis.sweep_link_reliability(0, 1, 0.0, 1.0, availability,
                                        {.steps = 3});
  (void)analysis.sweep_host_memory(0, 10.0, 500.0, availability,
                                   {.steps = 3});
  EXPECT_DOUBLE_EQ(system->model().physical_link(0, 1).reliability,
                   before_rel);
  EXPECT_EQ(system->deployment(), before_deployment);
}

TEST(Sensitivity, HostMemorySweepShowsHeadroomValue) {
  // Starving a host forces spreading; growing it lets the optimizer pack.
  const auto system = Generator::generate(
      {.hosts = 3, .components = 8, .link_density = 1.0}, 23);
  const model::AvailabilityObjective availability;
  SensitivityAnalysis analysis(*system);
  const double total_demand = [&] {
    double sum = 0.0;
    for (std::size_t c = 0; c < system->model().component_count(); ++c)
      sum += system->model()
                 .component(static_cast<model::ComponentId>(c))
                 .memory_size;
    return sum;
  }();
  const auto points = analysis.sweep_host_memory(
      0, 20.0, total_demand * 1.5, availability,
      {.algorithm = "exact", .steps = 4});
  // With enough memory on one host, the optimum approaches all-local 1.0.
  EXPECT_GT(points.back().reoptimized, 0.99);
  // Re-optimized quality never decreases as memory grows.
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].reoptimized + 1e-9, points[i - 1].reoptimized);
}

TEST(Sensitivity, FrequencySweepAndRendering) {
  const auto system = Generator::generate({.hosts = 3, .components = 6}, 24);
  const model::Interaction ix = system->model().interactions()[0];
  const model::AvailabilityObjective availability;
  SensitivityAnalysis analysis(*system);
  const auto points = analysis.sweep_interaction_frequency(
      ix.a, ix.b, 0.5, 20.0, availability, {.steps = 3});
  ASSERT_EQ(points.size(), 3u);
  const std::string table =
      SensitivityAnalysis::render(points, "frequency (evt/s)");
  EXPECT_NE(table.find("frequency (evt/s)"), std::string::npos);
  EXPECT_NE(table.find("re-optimized"), std::string::npos);
}

TEST(Sensitivity, RejectsDegenerateInput) {
  const auto system = Generator::generate({.hosts = 2, .components = 4}, 25);
  const model::AvailabilityObjective availability;
  SensitivityAnalysis analysis(*system);
  EXPECT_THROW(analysis.sweep_link_reliability(0, 1, 0.0, 1.0, availability,
                                               {.steps = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dif::desi
