// Tests for the related-work baselines: Coign-style min-cut partitioning and
// the I5-style exact communication minimizer.
#include <gtest/gtest.h>

#include "algo/bip.h"
#include "algo/exact.h"
#include "algo/mincut.h"
#include "desi/generator.h"

namespace dif::algo {
namespace {

std::unique_ptr<desi::SystemData> two_host_system(std::uint64_t seed,
                                                  std::size_t components) {
  return desi::Generator::generate(
      {.hosts = 2,
       .components = components,
       .host_memory = {10'000.0, 10'000.0},  // Coign ignores memory; avoid it
       .link_density = 1.0,
       .interaction_density = 0.4},
      seed);
}

class MinCutTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCutTest, MatchesExactCommunicationOptimum) {
  const auto system = two_host_system(GetParam(), 9);
  // Min-cut minimizes communication *time* across the link: per interaction
  // freq * (delay + transfer). For two hosts that is exactly the latency
  // objective, whose exact optimum the cut must match.
  const model::LatencyObjective latency;
  // Pin one component to each side so the cut is non-trivial.
  model::ConstraintSet pinned;
  pinned.pin(0, 0);
  pinned.pin(1, 1);
  const model::ConstraintChecker pinned_checker(system->model(), pinned);

  MinCutPartitioner mincut;
  ExactAlgorithm exact;
  const AlgoResult cut =
      mincut.run(system->model(), latency, pinned_checker, AlgoOptions());
  const AlgoResult optimal =
      exact.run(system->model(), latency, pinned_checker, AlgoOptions());
  ASSERT_TRUE(cut.feasible);
  ASSERT_TRUE(optimal.feasible);
  EXPECT_NEAR(cut.value, optimal.value, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutTest, ::testing::Values(2, 4, 6, 8));

TEST(MinCut, RespectsPinning) {
  const auto system = two_host_system(11, 6);
  const model::CommunicationCostObjective comm;
  model::ConstraintSet pinned;
  pinned.pin(2, 0);
  pinned.pin(3, 1);
  const model::ConstraintChecker checker(system->model(), pinned);
  MinCutPartitioner mincut;
  const AlgoResult result =
      mincut.run(system->model(), comm, checker, AlgoOptions());
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.deployment.host_of(2), 0u);
  EXPECT_EQ(result.deployment.host_of(3), 1u);
}

TEST(MinCut, RefusesMoreThanTwoHosts) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 5}, 1);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::CommunicationCostObjective comm;
  MinCutPartitioner mincut;
  const AlgoResult result =
      mincut.run(system->model(), comm, checker, AlgoOptions());
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.notes.find("2 hosts"), std::string::npos);
}

TEST(MinCut, ReportsResourceViolationLikeCoign) {
  // Like Coign, the cut knows nothing about memory: shrink the hosts after
  // generation so that the unpinned min cut (everything on one side, cut
  // value 0) violates the memory constraint.
  const auto system = desi::Generator::generate(
      {.hosts = 2, .components = 8, .interaction_density = 0.8}, 3);
  for (model::HostId h = 0; h < 2; ++h)
    system->model().host(h).memory_capacity = 20.0;
  for (model::ComponentId c = 0; c < 8; ++c)
    system->model().component(c).memory_size = 10.0;
  model::ConstraintSet none;
  const model::ConstraintChecker checker(system->model(), none);
  const model::CommunicationCostObjective comm;
  MinCutPartitioner mincut;
  const AlgoResult result =
      mincut.run(system->model(), comm, checker, AlgoOptions());
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.notes.find("violates"), std::string::npos);
}

TEST(BipI5, FindsExactCommunicationOptimum) {
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 8}, 5);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::CommunicationCostObjective comm;
  BipBranchAndBound bip;
  ExactAlgorithm exact;
  const AlgoResult bip_result =
      bip.run(system->model(), comm, checker, AlgoOptions());
  const AlgoResult exact_result =
      exact.run(system->model(), comm, checker, AlgoOptions());
  ASSERT_TRUE(bip_result.feasible);
  EXPECT_NEAR(bip_result.value, exact_result.value, 1e-9);
}

TEST(BipI5, OptimizesCommunicationEvenWhenAskedForAvailability) {
  // The paper's criticism of I5: "only applicable to the minimization of
  // remote communication". Its deployment can be availability-suboptimal.
  const auto system =
      desi::Generator::generate({.hosts = 3, .components = 8}, 6);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective availability;
  BipBranchAndBound bip;
  ExactAlgorithm exact;
  const AlgoResult bip_result =
      bip.run(system->model(), availability, checker, AlgoOptions());
  const AlgoResult optimal =
      exact.run(system->model(), availability, checker, AlgoOptions());
  ASSERT_TRUE(bip_result.feasible);
  // Reported under availability; never better than the availability optimum.
  EXPECT_LE(bip_result.value, optimal.value + 1e-9);
  EXPECT_NE(bip_result.notes.find("comm_cost="), std::string::npos);
}

}  // namespace
}  // namespace dif::algo
