// Unit tests for Deployment (model/deployment.h).
#include "model/deployment.h"

#include <gtest/gtest.h>

#include "model/deployment_model.h"

namespace dif::model {
namespace {

TEST(Deployment, StartsUnassigned) {
  Deployment d(3);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_FALSE(d.complete());
  EXPECT_FALSE(d.is_assigned(0));
  EXPECT_EQ(d.host_of(2), kNoHost);
}

TEST(Deployment, AssignUnassign) {
  Deployment d(2);
  d.assign(0, 5);
  EXPECT_TRUE(d.is_assigned(0));
  EXPECT_EQ(d.host_of(0), 5u);
  d.assign(1, 3);
  EXPECT_TRUE(d.complete());
  d.unassign(0);
  EXPECT_FALSE(d.complete());
}

TEST(Deployment, OutOfRangeThrows) {
  Deployment d(2);
  EXPECT_THROW(d.host_of(2), std::out_of_range);
  EXPECT_THROW(d.assign(5, 0), std::out_of_range);
}

TEST(Deployment, ComponentsOnHost) {
  Deployment d(std::vector<HostId>{0, 1, 0, 2, 0});
  EXPECT_EQ(d.components_on(0), (std::vector<ComponentId>{0, 2, 4}));
  EXPECT_EQ(d.components_on(1), (std::vector<ComponentId>{1}));
  EXPECT_TRUE(d.components_on(7).empty());
}

TEST(Deployment, DiffCountsChangedComponents) {
  const Deployment a(std::vector<HostId>{0, 1, 2});
  const Deployment b(std::vector<HostId>{0, 2, 2});
  EXPECT_EQ(Deployment::diff_count(a, b), 1u);
  EXPECT_EQ(Deployment::diff_count(a, a), 0u);
  const auto moves = Deployment::diff(a, b);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].component, 1u);
  EXPECT_EQ(moves[0].from, 1u);
  EXPECT_EQ(moves[0].to, 2u);
}

TEST(Deployment, DiffSizeMismatchThrows) {
  EXPECT_THROW(Deployment::diff_count(Deployment(2), Deployment(3)),
               std::invalid_argument);
  EXPECT_THROW(Deployment::diff(Deployment(2), Deployment(3)),
               std::invalid_argument);
}

TEST(Deployment, Equality) {
  const Deployment a(std::vector<HostId>{1, 2});
  const Deployment b(std::vector<HostId>{1, 2});
  const Deployment c(std::vector<HostId>{2, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Deployment, DescribeUsesModelNames) {
  DeploymentModel m;
  m.add_host({.name = "alpha"});
  m.add_component({.name = "widget"});
  m.add_component({.name = "gadget"});
  Deployment d(2);
  d.assign(0, 0);
  const std::string text = d.describe(m);
  EXPECT_NE(text.find("widget -> alpha"), std::string::npos);
  EXPECT_NE(text.find("gadget -> (unassigned)"), std::string::npos);
}

}  // namespace
}  // namespace dif::model
