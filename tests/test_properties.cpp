// Cross-cutting property tests over randomized instances: invariants that
// must hold for every seed, wiring several modules together.
#include <gtest/gtest.h>

#include "algo/exact.h"
#include "algo/registry.h"
#include "desi/generator.h"
#include "desi/xadl.h"
#include "util/rng.h"

namespace dif {
namespace {

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

desi::GeneratorSpec constrained_spec() {
  desi::GeneratorSpec spec;
  spec.hosts = 5;
  spec.components = 13;
  spec.host_cpu = {2.0, 6.0};
  spec.component_cpu = {0.1, 0.8};
  spec.interaction_density = 0.3;
  spec.location_constraints = 3;
  spec.colocation_pairs = 2;
  spec.anti_colocation_pairs = 2;
  return spec;
}

TEST_P(PropertyTest, EveryAlgorithmRespectsEveryConstraintKind) {
  const auto system = desi::Generator::generate(constrained_spec(),
                                                GetParam());
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::AvailabilityObjective availability;
  const auto registry = algo::AlgorithmRegistry::with_defaults();
  for (const std::string& name :
       {"exact", "stochastic", "avala", "hillclimb", "annealing", "genetic",
        "decap"}) {
    algo::AlgoOptions options;
    options.seed = GetParam();
    options.initial = system->deployment();
    const algo::AlgoResult result = registry.create(name)->run(
        system->model(), availability, checker, options);
    ASSERT_TRUE(result.feasible) << name << " seed " << GetParam();
    const auto violations = checker.violations(result.deployment);
    EXPECT_TRUE(violations.empty())
        << name << " seed " << GetParam() << ": "
        << (violations.empty() ? "" : violations.front().detail);
  }
}

TEST_P(PropertyTest, ObjectiveValuesStayInTheirRanges) {
  const auto system = desi::Generator::generate(constrained_spec(),
                                                GetParam() + 100);
  const model::DeploymentModel& m = system->model();
  const model::AvailabilityObjective availability;
  const model::SecurityObjective security;
  const model::LatencyObjective latency;
  const model::CommunicationCostObjective comm;
  auto availability_ptr = std::make_shared<model::AvailabilityObjective>();
  auto latency_ptr = std::make_shared<model::LatencyObjective>();
  const model::WeightedObjective weighted(
      {{availability_ptr, 1.0}, {latency_ptr, 2.0}});

  util::Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    model::Deployment d(m.component_count());
    for (std::size_t c = 0; c < m.component_count(); ++c)
      d.assign(static_cast<model::ComponentId>(c),
               static_cast<model::HostId>(rng.index(m.host_count())));
    for (const model::Objective* objective :
         std::initializer_list<const model::Objective*>{&availability,
                                                        &security, &weighted}) {
      const double value = objective->evaluate(m, d);
      EXPECT_GE(value, 0.0) << objective->name();
      EXPECT_LE(value, 1.0) << objective->name();
    }
    EXPECT_GE(latency.evaluate(m, d), 0.0);
    EXPECT_GE(comm.evaluate(m, d), 0.0);
    for (const model::Objective* objective :
         std::initializer_list<const model::Objective*>{
             &availability, &security, &weighted, &latency, &comm}) {
      const double score = objective->score(m, d);
      EXPECT_GE(score, 0.0) << objective->name();
      EXPECT_LE(score, 1.0) << objective->name();
    }
  }
}

TEST_P(PropertyTest, RaisingAnyLinkReliabilityNeverLowersAvailability) {
  const auto system = desi::Generator::generate(constrained_spec(),
                                                GetParam() + 200);
  model::DeploymentModel& m = system->model();
  const model::AvailabilityObjective availability;
  const double before = availability.evaluate(m, system->deployment());
  // Raise every link to its ceiling.
  for (std::size_t a = 0; a < m.host_count(); ++a)
    for (std::size_t b = a + 1; b < m.host_count(); ++b)
      if (m.connected(static_cast<model::HostId>(a),
                      static_cast<model::HostId>(b)))
        m.set_link_reliability(static_cast<model::HostId>(a),
                               static_cast<model::HostId>(b), 1.0);
  EXPECT_GE(availability.evaluate(m, system->deployment()) + 1e-12, before);
}

TEST_P(PropertyTest, MoreHostMemoryNeverHurtsTheOptimum) {
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 8, .interaction_density = 0.35},
      GetParam() + 300);
  model::DeploymentModel& m = system->model();
  const model::ConstraintChecker checker(m, system->constraints());
  const model::AvailabilityObjective availability;
  algo::ExactAlgorithm exact;
  const double tight =
      exact.run(m, availability, checker, algo::AlgoOptions()).value;
  for (std::size_t h = 0; h < m.host_count(); ++h)
    m.host(static_cast<model::HostId>(h)).memory_capacity *= 3.0;
  const model::ConstraintChecker relaxed(m, system->constraints());
  const double roomy =
      exact.run(m, availability, relaxed, algo::AlgoOptions()).value;
  EXPECT_GE(roomy + 1e-12, tight);
}

TEST_P(PropertyTest, ExactPrunedMatchesUnprunedOnCommCost) {
  const auto system = desi::Generator::generate(
      {.hosts = 3, .components = 7}, GetParam() + 400);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  const model::CommunicationCostObjective comm;
  algo::ExactAlgorithm pruned(true), plain(false);
  const double a =
      pruned.run(system->model(), comm, checker, algo::AlgoOptions()).value;
  const double b =
      plain.run(system->model(), comm, checker, algo::AlgoOptions()).value;
  EXPECT_NEAR(a, b, 1e-9);
}

TEST_P(PropertyTest, XadlRoundTripPreservesObjectiveValues) {
  const auto original = desi::Generator::generate(constrained_spec(),
                                                  GetParam() + 500);
  const auto restored =
      desi::XadlLite::from_text(desi::XadlLite::to_text(*original));
  const model::AvailabilityObjective availability;
  const model::LatencyObjective latency;
  EXPECT_DOUBLE_EQ(
      availability.evaluate(original->model(), original->deployment()),
      availability.evaluate(restored->model(), restored->deployment()));
  EXPECT_DOUBLE_EQ(
      latency.evaluate(original->model(), original->deployment()),
      latency.evaluate(restored->model(), restored->deployment()));
}

TEST_P(PropertyTest, GeneratedCpuConstraintsAreSatisfiable) {
  const auto system = desi::Generator::generate(constrained_spec(),
                                                GetParam() + 600);
  const model::ConstraintChecker checker(system->model(),
                                         system->constraints());
  // The generator's initial deployment satisfies CPU limits too.
  EXPECT_TRUE(checker.feasible(system->deployment()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dif
