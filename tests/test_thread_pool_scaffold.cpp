// Tests for the concurrent scaffold (prism/thread_pool_scaffold.h).
#include "prism/thread_pool_scaffold.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>

namespace dif::prism {
namespace {

TEST(ThreadPoolScaffold, ExecutesEveryDispatchedTask) {
  ThreadPoolScaffold pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i)
    pool.dispatch([&counter] { ++counter; });
  pool.drain();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_EQ(pool.tasks_executed(), 1000u);
}

TEST(ThreadPoolScaffold, TasksRunOnWorkerThreads) {
  ThreadPoolScaffold pool(3);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  const std::thread::id caller = std::this_thread::get_id();
  for (int i = 0; i < 200; ++i) {
    pool.dispatch([&] {
      const std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
  }
  pool.drain();
  EXPECT_FALSE(ids.count(caller));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 3u);
}

TEST(ThreadPoolScaffold, ScheduleFiresAfterDelay) {
  ThreadPoolScaffold pool(1);
  std::atomic<bool> fired{false};
  const double before = pool.now_ms();
  pool.schedule(30.0, [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(fired.load());
  // Wait generously for the timer.
  for (int i = 0; i < 200 && !fired; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(fired.load());
  EXPECT_GE(pool.now_ms() - before, 30.0);
}

TEST(ThreadPoolScaffold, EarlierTimerOvertakesLaterOne) {
  ThreadPoolScaffold pool(1);
  std::mutex mutex;
  std::vector<int> order;
  pool.schedule(80.0, [&] {
    const std::lock_guard<std::mutex> lock(mutex);
    order.push_back(2);
  });
  pool.schedule(20.0, [&] {
    const std::lock_guard<std::mutex> lock(mutex);
    order.push_back(1);
  });
  for (int i = 0; i < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::lock_guard<std::mutex> lock(mutex);
    if (order.size() == 2) break;
  }
  const std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadPoolScaffold, TasksMayDispatchMoreTasks) {
  ThreadPoolScaffold pool(2);
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (++depth < 50) pool.dispatch(chain);
  };
  pool.dispatch(chain);
  for (int i = 0; i < 200 && depth < 50; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.drain();
  EXPECT_EQ(depth.load(), 50);
}

TEST(ThreadPoolScaffold, CleanShutdownWithPendingTimers) {
  std::atomic<bool> fired{false};
  {
    ThreadPoolScaffold pool(2);
    pool.schedule(60'000.0, [&] { fired = true; });
    // Destructor must not wait for the far-future timer.
  }
  EXPECT_FALSE(fired.load());
}

TEST(ThreadPoolScaffold, NowMsAdvances) {
  ThreadPoolScaffold pool(1);
  const double a = pool.now_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(pool.now_ms(), a);
}

}  // namespace
}  // namespace dif::prism
