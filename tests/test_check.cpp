// Defect corpus for the static deployment-model analyzer (check/).
//
// Every rule gets at least one seeded-positive model it must flag (with the
// correct rule id) and one near-miss negative it must stay silent on.
#include "check/static_analyzer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "check/preflight.h"
#include "desi/algorithm_container.h"
#include "desi/generator.h"
#include "model/constraints.h"
#include "model/deployment_model.h"
#include "model/objective.h"

namespace dif::check {
namespace {

using model::ComponentId;
using model::ConstraintSet;
using model::DeploymentModel;
using model::HostId;

/// k fully-connected hosts (mem 100) and n components (mem 10).
DeploymentModel make_model(std::size_t hosts, std::size_t comps,
                          double host_mem = 100.0, double comp_mem = 10.0) {
  DeploymentModel m;
  for (std::size_t h = 0; h < hosts; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = host_mem});
  for (std::size_t c = 0; c < comps; ++c)
    m.add_component(
        {.name = "c" + std::to_string(c), .memory_size = comp_mem});
  for (std::size_t a = 0; a < hosts; ++a)
    for (std::size_t b = a + 1; b < hosts; ++b)
      m.set_physical_link(static_cast<HostId>(a), static_cast<HostId>(b),
                          {.reliability = 0.9, .bandwidth = 100.0});
  return m;
}

std::size_t errors_of(const CheckReport& report, Rule rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule && d.severity == Severity::kError) ++n;
  return n;
}

// --- dangling-reference ----------------------------------------------------

TEST(CheckDanglingReference, FlagsConstraintsOverMissingEntities) {
  const DeploymentModel m = make_model(2, 3);
  ConstraintSet cs;
  cs.pin(7, 0);                  // no component 7
  cs.allow_only(0, {5});         // no host 5
  cs.require_colocation(1, 9);   // no component 9
  cs.forbid_colocation(2, 8);    // no component 8
  cs.forbid_host(6, 1);          // no component 6
  const CheckReport report = run_checks(m, cs);
  EXPECT_TRUE(report.has(Rule::kDanglingReference));
  EXPECT_GE(errors_of(report, Rule::kDanglingReference), 5u);
}

TEST(CheckDanglingReference, SilentOnBoundaryIds) {
  const DeploymentModel m = make_model(2, 3);
  ConstraintSet cs;
  cs.pin(2, 1);                 // last component, last host
  cs.require_colocation(0, 2);
  cs.forbid_host(1, 0);
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kDanglingReference));
}

// --- param-range -----------------------------------------------------------

TEST(CheckParamRange, FlagsOutOfDomainParameters) {
  DeploymentModel m = make_model(3, 2);
  m.set_physical_link(0, 1, {.reliability = 1.5, .bandwidth = 10.0});
  m.set_physical_link(1, 2, {.reliability = 0.9, .bandwidth = -4.0});
  m.set_logical_link(0, 1, {.frequency = -1.0, .avg_event_size = 0.5});
  m.host(0).memory_capacity = -10.0;
  m.component(1).cpu_load = std::nan("");
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_GE(errors_of(report, Rule::kParamRange), 5u);
}

TEST(CheckParamRange, SilentOnBoundaryValues) {
  DeploymentModel m = make_model(2, 2);
  m.set_physical_link(0, 1, {.reliability = 1.0, .bandwidth = 0.1});
  m.set_logical_link(0, 1, {.frequency = 0.0, .avg_event_size = 0.0});
  m.host(0).cpu_capacity = 0.0;  // "not modelled" is legal
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_FALSE(report.has(Rule::kParamRange));
}

// --- location-unsat --------------------------------------------------------

TEST(CheckLocationUnsat, FlagsEmptyEffectiveAllowList) {
  const DeploymentModel m = make_model(3, 2);
  ConstraintSet cs;
  cs.allow_only(0, {1});
  cs.forbid_host(0, 1);  // pin erased by the forbid: nothing left
  const CheckReport report = run_checks(m, cs);
  EXPECT_EQ(errors_of(report, Rule::kLocationUnsat), 1u);
}

TEST(CheckLocationUnsat, SilentWhenOneHostSurvives) {
  const DeploymentModel m = make_model(3, 2);
  ConstraintSet cs;
  cs.allow_only(0, {1, 2});
  cs.forbid_host(0, 1);  // host 2 survives
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kLocationUnsat));
}

// --- colocation-conflict ---------------------------------------------------

TEST(CheckColocationConflict, FlagsSeparationInsideMustClosure) {
  const DeploymentModel m = make_model(2, 4);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.require_colocation(1, 2);   // closure: {0, 1, 2}
  cs.forbid_colocation(0, 2);    // contradicts the closure
  const CheckReport report = run_checks(m, cs);
  EXPECT_EQ(errors_of(report, Rule::kColocationConflict), 1u);
}

TEST(CheckColocationConflict, SilentOnSeparationOutsideClosure) {
  const DeploymentModel m = make_model(2, 4);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.require_colocation(1, 2);
  cs.forbid_colocation(0, 3);  // component 3 is outside the closure
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kColocationConflict));
}

// --- group-location-unsat --------------------------------------------------

TEST(CheckGroupLocationUnsat, FlagsEmptyAllowListIntersection) {
  const DeploymentModel m = make_model(3, 3);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.allow_only(0, {0, 1});
  cs.allow_only(1, {2});  // intersection with {0, 1} is empty
  const CheckReport report = run_checks(m, cs);
  EXPECT_EQ(errors_of(report, Rule::kGroupLocationUnsat), 1u);
}

TEST(CheckGroupLocationUnsat, SilentWhenIntersectionNonEmpty) {
  const DeploymentModel m = make_model(3, 3);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.allow_only(0, {0, 1});
  cs.allow_only(1, {1, 2});  // host 1 is common
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kGroupLocationUnsat));
}

// --- capacity-pigeonhole ---------------------------------------------------

TEST(CheckCapacityPigeonhole, FlagsGroupLargerThanBestLegalHost) {
  DeploymentModel m = make_model(2, 3, /*host_mem=*/25.0, /*comp_mem=*/10.0);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.require_colocation(1, 2);  // 30 KB group, best host holds 25 KB
  const CheckReport report = run_checks(m, cs);
  EXPECT_GE(errors_of(report, Rule::kCapacityPigeonhole), 1u);
}

TEST(CheckCapacityPigeonhole, FlagsGlobalOversubscription) {
  // 4 * 10 KB of components vs 2 * 15 KB of hosts: no assignment can fit
  // even though every single component fits somewhere.
  const DeploymentModel m = make_model(2, 4, 15.0, 10.0);
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_GE(errors_of(report, Rule::kCapacityPigeonhole), 1u);
}

TEST(CheckCapacityPigeonhole, FlagsCpuOnlyWhenEveryLegalHostModelsIt) {
  DeploymentModel m = make_model(2, 1);
  m.host(0).cpu_capacity = 1.0;
  m.host(1).cpu_capacity = 1.0;
  m.component(0).cpu_load = 2.0;
  EXPECT_GE(errors_of(run_checks(m, ConstraintSet()),
                      Rule::kCapacityPigeonhole),
            1u);
  // One legal host opts out of CPU modelling: the bound no longer holds.
  m.host(1).cpu_capacity = 0.0;
  EXPECT_FALSE(run_checks(m, ConstraintSet())
                   .has(Rule::kCapacityPigeonhole));
}

TEST(CheckCapacityPigeonhole, SilentWhenOneLegalHostFits) {
  DeploymentModel m = make_model(2, 3, 25.0, 10.0);
  m.host(1).memory_capacity = 31.0;  // the 30 KB group fits on h1
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.require_colocation(1, 2);
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kCapacityPigeonhole));
}

// --- network-partition -----------------------------------------------------

/// Two 2-host islands: {h0, h1} and {h2, h3}, no cross link.
DeploymentModel make_partitioned(double comp_mem = 10.0) {
  DeploymentModel m;
  for (int h = 0; h < 4; ++h)
    m.add_host({.name = "h" + std::to_string(h), .memory_capacity = 100.0});
  for (int c = 0; c < 2; ++c)
    m.add_component(
        {.name = "c" + std::to_string(c), .memory_size = comp_mem});
  m.set_physical_link(0, 1, {.reliability = 0.9, .bandwidth = 50.0});
  m.set_physical_link(2, 3, {.reliability = 0.9, .bandwidth = 50.0});
  m.set_logical_link(0, 1, {.frequency = 2.0, .avg_event_size = 1.0});
  return m;
}

TEST(CheckNetworkPartition, FlagsInteractionAcrossIslands) {
  const DeploymentModel m = make_partitioned();
  ConstraintSet cs;
  cs.pin(0, 0);  // island {h0, h1}
  cs.pin(1, 2);  // island {h2, h3}
  const CheckReport report = run_checks(m, cs);
  EXPECT_EQ(errors_of(report, Rule::kNetworkPartition), 1u);
}

TEST(CheckNetworkPartition, FlagsSeparatedPairWithOnlyOneCommonHost) {
  const DeploymentModel m = make_partitioned();
  ConstraintSet cs;
  cs.allow_only(0, {0});
  cs.allow_only(1, {0});
  cs.forbid_colocation(0, 1);  // need two distinct hosts, only h0 legal
  const CheckReport report = run_checks(m, cs);
  EXPECT_EQ(errors_of(report, Rule::kNetworkPartition), 1u);
}

TEST(CheckNetworkPartition, SilentWhenSameIslandOrCollocatable) {
  const DeploymentModel m = make_partitioned();
  {
    ConstraintSet cs;
    cs.pin(0, 2);
    cs.pin(1, 3);  // same island, linked
    EXPECT_FALSE(run_checks(m, cs).has(Rule::kNetworkPartition));
  }
  {
    // Unconstrained endpoints can always be collocated.
    EXPECT_FALSE(
        run_checks(m, ConstraintSet()).has(Rule::kNetworkPartition));
  }
  {
    ConstraintSet cs;
    cs.allow_only(0, {0, 1});
    cs.allow_only(1, {0, 1});
    cs.forbid_colocation(0, 1);  // h0 + h1 are distinct and linked
    EXPECT_FALSE(run_checks(m, cs).has(Rule::kNetworkPartition));
  }
}

// --- lints -----------------------------------------------------------------

TEST(CheckLints, IsolatedHostIsAWarningNotAnError) {
  DeploymentModel m = make_model(2, 1);
  m.clear_physical_link(0, 1);
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_TRUE(report.has(Rule::kIsolatedHost));
  EXPECT_EQ(report.warning_count(), 2u);  // both hosts are now isolated
  EXPECT_TRUE(report.ok());               // warnings do not fail the check
  EXPECT_FALSE(report.clean());
}

TEST(CheckLints, UselessHostWarnsWhenNothingCanFit) {
  DeploymentModel m = make_model(2, 2, 100.0, 10.0);
  m.host(0).memory_capacity = 5.0;  // below the smallest component
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_TRUE(report.has(Rule::kUselessHost));
  EXPECT_TRUE(report.ok());
}

TEST(CheckLints, CanBeDisabled) {
  DeploymentModel m = make_model(2, 1);
  m.clear_physical_link(0, 1);
  CheckOptions options;
  options.lints = false;
  EXPECT_TRUE(run_checks(m, ConstraintSet(), options).clean());
}

// --- report plumbing -------------------------------------------------------

TEST(CheckReport, RenderTextAndJsonCarryRuleIds) {
  const DeploymentModel m = make_model(3, 2);
  ConstraintSet cs;
  cs.allow_only(0, {1});
  cs.forbid_host(0, 1);
  const CheckReport report = run_checks(m, cs);
  ASSERT_EQ(report.error_count(), 1u);
  EXPECT_NE(report.render_text().find("error[location-unsat]"),
            std::string::npos);
  EXPECT_NE(report.render_text().find("component c0"), std::string::npos);
  const util::json::Value doc = report.to_json();
  EXPECT_DOUBLE_EQ(doc.at("errors").as_number(), 1.0);
  EXPECT_EQ(doc.at("diagnostics").as_array().size(), 1u);
  EXPECT_EQ(
      doc.at("diagnostics").as_array()[0].at("rule").as_string(),
      "location-unsat");
}

TEST(CheckReport, CleanModelIsClean) {
  const DeploymentModel m = make_model(3, 4);
  const CheckReport report = run_checks(m, ConstraintSet());
  EXPECT_TRUE(report.clean());
  EXPECT_NE(report.render_text().find("check: clean"), std::string::npos);
}

TEST(Check, GeneratedModelsAreCleanAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto system = desi::Generator::generate(
        {.hosts = 5, .components = 14, .location_constraints = 3,
         .colocation_pairs = 2, .anti_colocation_pairs = 2},
        seed);
    const CheckReport report =
        run_checks(system->model(), system->constraints());
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                             << report.render_text();
  }
}

// --- preflight -------------------------------------------------------------

TEST(Preflight, ThrowsWithDiagnosticsOnBrokenModel) {
  const DeploymentModel m = make_model(2, 3);
  ConstraintSet cs;
  cs.require_colocation(0, 1);
  cs.forbid_colocation(0, 1);
  try {
    preflight(m, cs);
    FAIL() << "preflight must throw on a contradictory constraint set";
  } catch (const PreflightError& e) {
    EXPECT_TRUE(e.report().has(Rule::kColocationConflict));
    EXPECT_NE(std::string(e.what()).find("colocation-conflict"),
              std::string::npos);
  }
}

TEST(Preflight, PassesCleanAndPartitionedModels) {
  EXPECT_NO_THROW(preflight(make_model(3, 4), ConstraintSet()));
  // Network partitions are run-time-legitimate: solvers must still run.
  ConstraintSet cs;
  cs.pin(0, 0);
  cs.pin(1, 2);
  EXPECT_NO_THROW(preflight(make_partitioned(), cs));
}

TEST(Preflight, AlgorithmContainerRejectsBrokenModelBeforeSearching) {
  const auto system = desi::Generator::generate({.hosts = 3,
                                                 .components = 6}, 1);
  system->constraints().require_colocation(0, 1);
  system->constraints().forbid_colocation(0, 1);
  desi::AlgoResultData results;
  desi::AlgorithmContainer container(*system, results);
  const model::AvailabilityObjective availability;
  EXPECT_THROW(container.invoke("avala", availability), PreflightError);
  EXPECT_TRUE(results.entries().empty());  // rejected before any run
}

// --- region-spof -----------------------------------------------------------

TEST(CheckRegionSpof, FlagsAllowListConfinedToOneRegion) {
  DeploymentModel m = make_model(4, 2);
  m.set_host_region(0, 0);
  m.set_host_region(1, 0);
  m.set_host_region(2, 1);
  m.set_host_region(3, 1);
  ConstraintSet cs;
  cs.allow_only(0, {0, 1});  // both legal hosts die with region 0
  const CheckReport report = run_checks(m, cs);
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == Rule::kRegionSpof && d.severity == Severity::kWarning)
      ++warnings;
  EXPECT_EQ(warnings, 1u);
}

TEST(CheckRegionSpof, SilentWhenAllowListSpansRegions) {
  DeploymentModel m = make_model(4, 2);
  m.set_host_region(0, 0);
  m.set_host_region(1, 0);
  m.set_host_region(2, 1);
  m.set_host_region(3, 1);
  ConstraintSet cs;
  cs.allow_only(0, {1, 2});  // regions 0 and 1 both represented
  const CheckReport report = run_checks(m, cs);
  EXPECT_FALSE(report.has(Rule::kRegionSpof));
}

TEST(CheckRegionSpof, SilentOnUnzonedModelsAndWhenDisabled) {
  // No regions declared: the rule must not fire no matter the constraints.
  DeploymentModel flat = make_model(3, 2);
  ConstraintSet cs;
  cs.allow_only(0, {0, 1});
  EXPECT_FALSE(run_checks(flat, cs).has(Rule::kRegionSpof));

  // Zoned and confined, but region awareness switched off.
  DeploymentModel zoned = make_model(4, 2);
  zoned.set_host_region(0, 0);
  zoned.set_host_region(1, 0);
  zoned.set_host_region(2, 1);
  zoned.set_host_region(3, 1);
  ConstraintSet confined;
  confined.allow_only(0, {0, 1});
  CheckOptions options;
  options.region_awareness = false;
  EXPECT_FALSE(run_checks(zoned, confined, options).has(Rule::kRegionSpof));
}

}  // namespace
}  // namespace dif::check
