// Self-healing layer: phi-accrual failure detection (deterministic
// suspicion trajectories, heartbeat delay/reorder tolerance) and the heal
// controller's recovery loop (flapping-host double-placement guard,
// convergence of the recovery reference campaign) —
// heal/failure_detector.h, heal/recovery.h, chaos/campaign.h.
#include "heal/recovery.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "core/improvement_loop.h"
#include "desi/generator.h"
#include "heal/failure_detector.h"
#include "prism/event.h"
#include "prism/distribution.h"

namespace dif::heal {
namespace {

// --- detector ------------------------------------------------------------

TEST(PhiAccrual, TrajectoryIsDeterministicInTheHeartbeatSequence) {
  const DetectorConfig config;
  PhiAccrualDetector one(config);
  PhiAccrualDetector two(config);
  // A jittered but identical schedule: 1000 ms cadence, ±200 ms wobble.
  const double jitter[] = {0.0, 150.0, -200.0, 80.0, -120.0, 200.0};
  double t = 0.0;
  for (int i = 0; i < 24; ++i) {
    t = 1'000.0 * (i + 1) + jitter[i % 6];
    one.heartbeat(3, t);
    two.heartbeat(3, t);
  }
  // Identical samples at every probe instant, and phi is monotone in the
  // silence that follows the last heartbeat.
  double prev = -1.0;
  for (double probe = t; probe < t + 20'000.0; probe += 500.0) {
    const double a = one.phi(3, probe);
    const double b = two.phi(3, probe);
    EXPECT_EQ(a, b) << "probe " << probe;
    EXPECT_GE(a, prev) << "phi must accrue monotonically at " << probe;
    prev = a;
  }
  // The trajectory crosses suspect strictly before condemn.
  double suspected_at = -1.0;
  double condemned_at = -1.0;
  for (double probe = t; probe < t + 60'000.0; probe += 100.0) {
    const HostState s = one.state(3, probe);
    if (suspected_at < 0 && s != HostState::kAlive) suspected_at = probe;
    if (condemned_at < 0 && s == HostState::kCondemned) condemned_at = probe;
  }
  ASSERT_GT(suspected_at, 0.0);
  ASSERT_GT(condemned_at, 0.0);
  EXPECT_LT(suspected_at, condemned_at);
}

TEST(PhiAccrual, ReorderedHeartbeatsAreTolerated) {
  PhiAccrualDetector detector;
  PhiAccrualDetector reference;
  for (int i = 1; i <= 12; ++i) {
    const double t = 1'000.0 * i;
    detector.heartbeat(1, t);
    reference.heartbeat(1, t);
    // A delayed duplicate of an older report arrives out of order: its
    // timestamp is in the past and must not poison the interval window.
    if (i % 3 == 0) detector.heartbeat(1, t - 2'500.0);
  }
  for (double probe = 12'000.0; probe < 30'000.0; probe += 500.0)
    EXPECT_EQ(detector.phi(1, probe), reference.phi(1, probe))
        << "probe " << probe;
}

TEST(PhiAccrual, DelayJitterWithinAcceptablePauseNeverSuspects) {
  const DetectorConfig config;  // acceptable_pause_ms = 2000
  PhiAccrualDetector detector(config);
  // Heartbeats whose delivery wobbles by up to 1.5 s — fuzz-hook delay and
  // reorder territory — must never push a live host past suspect.
  const double delays[] = {0.0, 900.0, 1'500.0, 300.0, 1'200.0, 600.0};
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    t = 1'000.0 * (i + 1) + delays[i % 6];
    detector.heartbeat(7, t);
    EXPECT_EQ(detector.state(7, t), HostState::kAlive);
  }
  // Even probed a full cadence after the last (delayed) beat.
  EXPECT_EQ(detector.state(7, t + 1'000.0), HostState::kAlive);
}

TEST(PhiAccrual, NeverSeenHostsScoreZeroUntilBootstrapped) {
  PhiAccrualDetector detector;
  EXPECT_EQ(detector.phi(5, 50'000.0), 0.0);
  EXPECT_EQ(detector.state(5, 50'000.0), HostState::kAlive);
  detector.bootstrap_from(50'000.0);
  EXPECT_EQ(detector.phi(5, 50'000.0), 0.0);
  // After bootstrap, silence accrues suspicion even with zero heartbeats.
  EXPECT_EQ(detector.state(5, 200'000.0), HostState::kCondemned);
}

TEST(PhiAccrual, HeartbeatAfterSilenceRestoresLiveness) {
  PhiAccrualDetector detector;
  for (int i = 1; i <= 10; ++i) detector.heartbeat(2, 1'000.0 * i);
  EXPECT_EQ(detector.state(2, 60'000.0), HostState::kCondemned);
  detector.heartbeat(2, 61'000.0);
  EXPECT_EQ(detector.state(2, 61'500.0), HostState::kAlive);
}

// --- controller + campaign ----------------------------------------------

/// Counts how often each application component exists across all hosts.
std::map<std::string, int> census(core::CentralizedInstantiation& inst,
                                  std::size_t hosts) {
  std::map<std::string, int> counts;
  for (std::size_t h = 0; h < hosts; ++h) {
    for (const std::string& name :
         inst.architecture(static_cast<model::HostId>(h)).component_names()) {
      if (name.rfind("__", 0) == 0) continue;
      ++counts[name];
    }
  }
  return counts;
}

TEST(HealController, NoFalseCondemnationUnderHeartbeatDelayAndReorder) {
  // A faultless run whose monitor reports are adversarially delayed and
  // reordered (within the detector's acceptable pause) must not condemn
  // anyone: the whole point of accrual detection over fixed timeouts.
  chaos::CampaignConfig config = chaos::recovery_campaign_config();
  config.scenario = chaos::scenario_by_name("quiet");
  config.scenario.duration_ms = 60'000.0;
  chaos::CampaignRunner runner(config);

  int tapped = 0;
  const chaos::RunReport report = runner.run_centralized_once(
      3, [&tapped](core::CentralizedInstantiation& inst) {
        inst.network().set_fuzz_hook(
            [&tapped](const sim::NetMessage& msg)
                -> std::optional<sim::FuzzDecision> {
              if (msg.channel != prism::kEventChannel) return std::nullopt;
              const prism::Event event = prism::Event::deserialize(msg.payload);
              if (event.name() != "__monitor_report") return std::nullopt;
              ++tapped;
              sim::FuzzDecision decision;
              // Deterministic delay pattern up to 1.6 s; every 7th report
              // overtakes the next one outright (a reorder).
              decision.delay_ms = 400.0 * (tapped % 5);
              return decision;
            });
      });

  EXPECT_GT(tapped, 0);
  EXPECT_TRUE(report.recovery_enabled);
  EXPECT_EQ(report.condemnations, 0u);
  EXPECT_EQ(report.recoveries_committed, 0u);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().invariant << ": "
      << report.violations.front().detail;
}

TEST(HealController, FlappingHostNeverDoublePlaces) {
  desi::GeneratorSpec spec;
  spec.hosts = 5;
  spec.components = 14;
  spec.host_memory = {50.0, 70.0};
  spec.component_memory = {8.0, 12.0};
  spec.reliability = {0.60, 0.99};
  spec.bandwidth = {50.0, 400.0};
  spec.link_density = 0.5;
  spec.interaction_density = 0.25;
  const std::uint64_t seed = 9;
  auto system = desi::Generator::generate(spec, seed);
  const auto pristine = desi::Generator::generate(spec, seed);

  core::FrameworkConfig fc;
  fc.seed = seed;
  core::CentralizedInstantiation inst(*system, fc);
  HealConfig hc;
  hc.seed = seed + 1;
  HealController healer(inst, *pristine, hc);

  // The victim: the non-master host holding the most components initially.
  model::HostId victim = 1;
  {
    std::vector<std::size_t> load(spec.hosts, 0);
    const model::Deployment& d = pristine->deployment();
    for (model::ComponentId c = 0; c < pristine->model().component_count();
         ++c)
      if (d.is_assigned(c)) ++load[d.host_of(c)];
    for (model::HostId h = 1; h < spec.hosts; ++h)
      if (load[h] > load[victim]) victim = h;
  }

  // Flap hard: a long outage (condemned, repaired), a short rejoin, and a
  // second outage right after — the guard must not re-place components a
  // committed repair already moved, and anti-entropy must leave every
  // component hosted exactly once.
  inst.simulator().schedule_at(10'000.0, [&] { inst.crash_host(victim); });
  inst.simulator().schedule_at(35'000.0, [&] { inst.restart_host(victim); });
  inst.simulator().schedule_at(40'000.0, [&] { inst.crash_host(victim); });
  inst.simulator().schedule_at(60'000.0, [&] { inst.restart_host(victim); });

  inst.start();
  healer.start();
  inst.simulator().run_until(100'000.0);
  healer.stop();
  inst.simulator().run_until(130'000.0);

  EXPECT_GE(healer.condemnations(), 1u);
  const auto counts = census(inst, spec.hosts);
  EXPECT_EQ(counts.size(), pristine->model().component_count());
  for (const auto& [name, count] : counts)
    EXPECT_EQ(count, 1) << name << " exists " << count << " times";
  // At most one repair round may have re-placed the victim's components;
  // the re-condemnation after the flap must find nothing left to move.
  std::size_t placements = 0;
  for (const RecoveryRecord& r : healer.recoveries())
    if (r.committed) placements += r.components;
  EXPECT_LE(placements, pristine->model().component_count());
  ASSERT_GE(healer.recoveries().size(), 1u);
}

TEST(HealController, RecoveryReferenceCampaignRepairsAndConverges) {
  chaos::CampaignConfig config = chaos::recovery_campaign_config();
  config.seeds = {0, 2};
  chaos::CampaignRunner runner(config);
  const chaos::CampaignReport report = runner.run();
  ASSERT_EQ(report.runs.size(), 2u);
  for (const chaos::RunReport& run : report.runs) {
    EXPECT_TRUE(run.recovery_enabled);
    EXPECT_GE(run.condemnations, 1u) << "seed " << run.seed;
    EXPECT_GE(run.recoveries_committed, 1u) << "seed " << run.seed;
    EXPECT_GE(run.converged_at_ms, 0.0) << "seed " << run.seed;
    EXPECT_GT(run.mean_mttr_ms, 0.0) << "seed " << run.seed;
    EXPECT_TRUE(run.violations.empty())
        << "seed " << run.seed << ": " << run.violations.front().invariant
        << ": " << run.violations.front().detail;
  }
}

}  // namespace
}  // namespace dif::heal
