file(REMOVE_RECURSE
  "CMakeFiles/decentralized_fleet.dir/decentralized_fleet.cpp.o"
  "CMakeFiles/decentralized_fleet.dir/decentralized_fleet.cpp.o.d"
  "decentralized_fleet"
  "decentralized_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
