# Empty compiler generated dependencies file for decentralized_fleet.
# This may be replaced when dependencies are built.
