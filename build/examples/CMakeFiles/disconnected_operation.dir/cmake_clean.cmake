file(REMOVE_RECURSE
  "CMakeFiles/disconnected_operation.dir/disconnected_operation.cpp.o"
  "CMakeFiles/disconnected_operation.dir/disconnected_operation.cpp.o.d"
  "disconnected_operation"
  "disconnected_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnected_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
