# Empty compiler generated dependencies file for disconnected_operation.
# This may be replaced when dependencies are built.
