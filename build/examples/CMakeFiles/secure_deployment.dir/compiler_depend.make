# Empty compiler generated dependencies file for secure_deployment.
# This may be replaced when dependencies are built.
