file(REMOVE_RECURSE
  "CMakeFiles/secure_deployment.dir/secure_deployment.cpp.o"
  "CMakeFiles/secure_deployment.dir/secure_deployment.cpp.o.d"
  "secure_deployment"
  "secure_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
