# Empty compiler generated dependencies file for crisis_response.
# This may be replaced when dependencies are built.
