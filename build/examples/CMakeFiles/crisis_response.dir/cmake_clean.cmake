file(REMOVE_RECURSE
  "CMakeFiles/crisis_response.dir/crisis_response.cpp.o"
  "CMakeFiles/crisis_response.dir/crisis_response.cpp.o.d"
  "crisis_response"
  "crisis_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisis_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
