file(REMOVE_RECURSE
  "CMakeFiles/test_fluctuation.dir/test_fluctuation.cpp.o"
  "CMakeFiles/test_fluctuation.dir/test_fluctuation.cpp.o.d"
  "test_fluctuation"
  "test_fluctuation.pdb"
  "test_fluctuation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
