# Empty dependencies file for test_fluctuation.
# This may be replaced when dependencies are built.
