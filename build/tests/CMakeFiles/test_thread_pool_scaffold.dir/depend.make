# Empty dependencies file for test_thread_pool_scaffold.
# This may be replaced when dependencies are built.
