file(REMOVE_RECURSE
  "CMakeFiles/test_thread_pool_scaffold.dir/test_thread_pool_scaffold.cpp.o"
  "CMakeFiles/test_thread_pool_scaffold.dir/test_thread_pool_scaffold.cpp.o.d"
  "test_thread_pool_scaffold"
  "test_thread_pool_scaffold.pdb"
  "test_thread_pool_scaffold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_pool_scaffold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
