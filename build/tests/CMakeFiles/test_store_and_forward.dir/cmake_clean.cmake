file(REMOVE_RECURSE
  "CMakeFiles/test_store_and_forward.dir/test_store_and_forward.cpp.o"
  "CMakeFiles/test_store_and_forward.dir/test_store_and_forward.cpp.o.d"
  "test_store_and_forward"
  "test_store_and_forward.pdb"
  "test_store_and_forward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_and_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
