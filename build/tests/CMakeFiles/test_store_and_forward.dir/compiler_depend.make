# Empty compiler generated dependencies file for test_store_and_forward.
# This may be replaced when dependencies are built.
