# Empty compiler generated dependencies file for test_property_map.
# This may be replaced when dependencies are built.
