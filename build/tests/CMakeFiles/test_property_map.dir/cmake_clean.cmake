file(REMOVE_RECURSE
  "CMakeFiles/test_property_map.dir/test_property_map.cpp.o"
  "CMakeFiles/test_property_map.dir/test_property_map.cpp.o.d"
  "test_property_map"
  "test_property_map.pdb"
  "test_property_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
