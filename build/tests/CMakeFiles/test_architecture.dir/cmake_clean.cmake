file(REMOVE_RECURSE
  "CMakeFiles/test_architecture.dir/test_architecture.cpp.o"
  "CMakeFiles/test_architecture.dir/test_architecture.cpp.o.d"
  "test_architecture"
  "test_architecture.pdb"
  "test_architecture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
