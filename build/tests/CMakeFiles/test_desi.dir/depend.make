# Empty dependencies file for test_desi.
# This may be replaced when dependencies are built.
