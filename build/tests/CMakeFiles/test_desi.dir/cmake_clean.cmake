file(REMOVE_RECURSE
  "CMakeFiles/test_desi.dir/test_desi.cpp.o"
  "CMakeFiles/test_desi.dir/test_desi.cpp.o.d"
  "test_desi"
  "test_desi.pdb"
  "test_desi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_desi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
