# Empty compiler generated dependencies file for test_deployment_model.
# This may be replaced when dependencies are built.
