file(REMOVE_RECURSE
  "CMakeFiles/test_deployment_model.dir/test_deployment_model.cpp.o"
  "CMakeFiles/test_deployment_model.dir/test_deployment_model.cpp.o.d"
  "test_deployment_model"
  "test_deployment_model.pdb"
  "test_deployment_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deployment_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
