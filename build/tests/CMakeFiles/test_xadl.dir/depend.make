# Empty dependencies file for test_xadl.
# This may be replaced when dependencies are built.
