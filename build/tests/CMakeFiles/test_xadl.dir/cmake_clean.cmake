file(REMOVE_RECURSE
  "CMakeFiles/test_xadl.dir/test_xadl.cpp.o"
  "CMakeFiles/test_xadl.dir/test_xadl.cpp.o.d"
  "test_xadl"
  "test_xadl.pdb"
  "test_xadl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xadl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
