# Empty dependencies file for test_objectives.
# This may be replaced when dependencies are built.
