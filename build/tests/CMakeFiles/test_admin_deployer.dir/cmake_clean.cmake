file(REMOVE_RECURSE
  "CMakeFiles/test_admin_deployer.dir/test_admin_deployer.cpp.o"
  "CMakeFiles/test_admin_deployer.dir/test_admin_deployer.cpp.o.d"
  "test_admin_deployer"
  "test_admin_deployer.pdb"
  "test_admin_deployer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admin_deployer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
