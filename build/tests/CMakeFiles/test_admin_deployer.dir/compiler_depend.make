# Empty compiler generated dependencies file for test_admin_deployer.
# This may be replaced when dependencies are built.
