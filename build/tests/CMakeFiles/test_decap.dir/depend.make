# Empty dependencies file for test_decap.
# This may be replaced when dependencies are built.
