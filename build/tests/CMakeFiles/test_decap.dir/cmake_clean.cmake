file(REMOVE_RECURSE
  "CMakeFiles/test_decap.dir/test_decap.cpp.o"
  "CMakeFiles/test_decap.dir/test_decap.cpp.o.d"
  "test_decap"
  "test_decap.pdb"
  "test_decap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
