# Empty dependencies file for bench_decap.
# This may be replaced when dependencies are built.
