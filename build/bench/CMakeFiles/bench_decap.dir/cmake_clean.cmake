file(REMOVE_RECURSE
  "CMakeFiles/bench_decap.dir/bench_decap.cpp.o"
  "CMakeFiles/bench_decap.dir/bench_decap.cpp.o.d"
  "bench_decap"
  "bench_decap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
