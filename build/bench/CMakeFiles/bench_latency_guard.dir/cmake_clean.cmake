file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_guard.dir/bench_latency_guard.cpp.o"
  "CMakeFiles/bench_latency_guard.dir/bench_latency_guard.cpp.o.d"
  "bench_latency_guard"
  "bench_latency_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
