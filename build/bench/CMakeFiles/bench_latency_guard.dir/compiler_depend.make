# Empty compiler generated dependencies file for bench_latency_guard.
# This may be replaced when dependencies are built.
