file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm_quality.dir/bench_algorithm_quality.cpp.o"
  "CMakeFiles/bench_algorithm_quality.dir/bench_algorithm_quality.cpp.o.d"
  "bench_algorithm_quality"
  "bench_algorithm_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
