# Empty compiler generated dependencies file for bench_algorithm_quality.
# This may be replaced when dependencies are built.
