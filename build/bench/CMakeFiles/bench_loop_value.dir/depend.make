# Empty dependencies file for bench_loop_value.
# This may be replaced when dependencies are built.
