file(REMOVE_RECURSE
  "CMakeFiles/bench_loop_value.dir/bench_loop_value.cpp.o"
  "CMakeFiles/bench_loop_value.dir/bench_loop_value.cpp.o.d"
  "bench_loop_value"
  "bench_loop_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
