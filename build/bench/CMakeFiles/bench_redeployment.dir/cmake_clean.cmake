file(REMOVE_RECURSE
  "CMakeFiles/bench_redeployment.dir/bench_redeployment.cpp.o"
  "CMakeFiles/bench_redeployment.dir/bench_redeployment.cpp.o.d"
  "bench_redeployment"
  "bench_redeployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redeployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
