# Empty compiler generated dependencies file for bench_redeployment.
# This may be replaced when dependencies are built.
