file(REMOVE_RECURSE
  "CMakeFiles/bench_analyzer_policy.dir/bench_analyzer_policy.cpp.o"
  "CMakeFiles/bench_analyzer_policy.dir/bench_analyzer_policy.cpp.o.d"
  "bench_analyzer_policy"
  "bench_analyzer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyzer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
