# Empty dependencies file for bench_analyzer_policy.
# This may be replaced when dependencies are built.
