file(REMOVE_RECURSE
  "CMakeFiles/bench_crisis_scenario.dir/bench_crisis_scenario.cpp.o"
  "CMakeFiles/bench_crisis_scenario.dir/bench_crisis_scenario.cpp.o.d"
  "bench_crisis_scenario"
  "bench_crisis_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crisis_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
