# Empty dependencies file for bench_crisis_scenario.
# This may be replaced when dependencies are built.
