file(REMOVE_RECURSE
  "CMakeFiles/dif_sim.dir/fluctuation.cpp.o"
  "CMakeFiles/dif_sim.dir/fluctuation.cpp.o.d"
  "CMakeFiles/dif_sim.dir/network.cpp.o"
  "CMakeFiles/dif_sim.dir/network.cpp.o.d"
  "CMakeFiles/dif_sim.dir/simulator.cpp.o"
  "CMakeFiles/dif_sim.dir/simulator.cpp.o.d"
  "libdif_sim.a"
  "libdif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
