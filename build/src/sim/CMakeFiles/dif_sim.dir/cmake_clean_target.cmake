file(REMOVE_RECURSE
  "libdif_sim.a"
)
