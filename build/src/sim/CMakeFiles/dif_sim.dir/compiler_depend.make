# Empty compiler generated dependencies file for dif_sim.
# This may be replaced when dependencies are built.
