# Empty compiler generated dependencies file for dif_core.
# This may be replaced when dependencies are built.
