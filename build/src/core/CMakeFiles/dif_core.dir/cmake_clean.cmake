file(REMOVE_RECURSE
  "CMakeFiles/dif_core.dir/centralized_instantiation.cpp.o"
  "CMakeFiles/dif_core.dir/centralized_instantiation.cpp.o.d"
  "CMakeFiles/dif_core.dir/decentralized_instantiation.cpp.o"
  "CMakeFiles/dif_core.dir/decentralized_instantiation.cpp.o.d"
  "CMakeFiles/dif_core.dir/improvement_loop.cpp.o"
  "CMakeFiles/dif_core.dir/improvement_loop.cpp.o.d"
  "CMakeFiles/dif_core.dir/workload.cpp.o"
  "CMakeFiles/dif_core.dir/workload.cpp.o.d"
  "libdif_core.a"
  "libdif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
