file(REMOVE_RECURSE
  "libdif_core.a"
)
