file(REMOVE_RECURSE
  "libdif_algo.a"
)
