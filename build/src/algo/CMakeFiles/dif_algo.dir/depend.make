# Empty dependencies file for dif_algo.
# This may be replaced when dependencies are built.
