
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/algorithm.cpp" "src/algo/CMakeFiles/dif_algo.dir/algorithm.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/algorithm.cpp.o.d"
  "/root/repo/src/algo/annealing.cpp" "src/algo/CMakeFiles/dif_algo.dir/annealing.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/annealing.cpp.o.d"
  "/root/repo/src/algo/avala.cpp" "src/algo/CMakeFiles/dif_algo.dir/avala.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/avala.cpp.o.d"
  "/root/repo/src/algo/bip.cpp" "src/algo/CMakeFiles/dif_algo.dir/bip.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/bip.cpp.o.d"
  "/root/repo/src/algo/decap.cpp" "src/algo/CMakeFiles/dif_algo.dir/decap.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/decap.cpp.o.d"
  "/root/repo/src/algo/exact.cpp" "src/algo/CMakeFiles/dif_algo.dir/exact.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/exact.cpp.o.d"
  "/root/repo/src/algo/genetic.cpp" "src/algo/CMakeFiles/dif_algo.dir/genetic.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/genetic.cpp.o.d"
  "/root/repo/src/algo/local_search.cpp" "src/algo/CMakeFiles/dif_algo.dir/local_search.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/local_search.cpp.o.d"
  "/root/repo/src/algo/mincut.cpp" "src/algo/CMakeFiles/dif_algo.dir/mincut.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/mincut.cpp.o.d"
  "/root/repo/src/algo/pairwise.cpp" "src/algo/CMakeFiles/dif_algo.dir/pairwise.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/pairwise.cpp.o.d"
  "/root/repo/src/algo/random_feasible.cpp" "src/algo/CMakeFiles/dif_algo.dir/random_feasible.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/random_feasible.cpp.o.d"
  "/root/repo/src/algo/registry.cpp" "src/algo/CMakeFiles/dif_algo.dir/registry.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/registry.cpp.o.d"
  "/root/repo/src/algo/stochastic.cpp" "src/algo/CMakeFiles/dif_algo.dir/stochastic.cpp.o" "gcc" "src/algo/CMakeFiles/dif_algo.dir/stochastic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dif_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
