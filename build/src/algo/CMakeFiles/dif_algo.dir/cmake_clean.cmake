file(REMOVE_RECURSE
  "CMakeFiles/dif_algo.dir/algorithm.cpp.o"
  "CMakeFiles/dif_algo.dir/algorithm.cpp.o.d"
  "CMakeFiles/dif_algo.dir/annealing.cpp.o"
  "CMakeFiles/dif_algo.dir/annealing.cpp.o.d"
  "CMakeFiles/dif_algo.dir/avala.cpp.o"
  "CMakeFiles/dif_algo.dir/avala.cpp.o.d"
  "CMakeFiles/dif_algo.dir/bip.cpp.o"
  "CMakeFiles/dif_algo.dir/bip.cpp.o.d"
  "CMakeFiles/dif_algo.dir/decap.cpp.o"
  "CMakeFiles/dif_algo.dir/decap.cpp.o.d"
  "CMakeFiles/dif_algo.dir/exact.cpp.o"
  "CMakeFiles/dif_algo.dir/exact.cpp.o.d"
  "CMakeFiles/dif_algo.dir/genetic.cpp.o"
  "CMakeFiles/dif_algo.dir/genetic.cpp.o.d"
  "CMakeFiles/dif_algo.dir/local_search.cpp.o"
  "CMakeFiles/dif_algo.dir/local_search.cpp.o.d"
  "CMakeFiles/dif_algo.dir/mincut.cpp.o"
  "CMakeFiles/dif_algo.dir/mincut.cpp.o.d"
  "CMakeFiles/dif_algo.dir/pairwise.cpp.o"
  "CMakeFiles/dif_algo.dir/pairwise.cpp.o.d"
  "CMakeFiles/dif_algo.dir/random_feasible.cpp.o"
  "CMakeFiles/dif_algo.dir/random_feasible.cpp.o.d"
  "CMakeFiles/dif_algo.dir/registry.cpp.o"
  "CMakeFiles/dif_algo.dir/registry.cpp.o.d"
  "CMakeFiles/dif_algo.dir/stochastic.cpp.o"
  "CMakeFiles/dif_algo.dir/stochastic.cpp.o.d"
  "libdif_algo.a"
  "libdif_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
