
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prism/admin.cpp" "src/prism/CMakeFiles/dif_prism.dir/admin.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/admin.cpp.o.d"
  "/root/repo/src/prism/architecture.cpp" "src/prism/CMakeFiles/dif_prism.dir/architecture.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/architecture.cpp.o.d"
  "/root/repo/src/prism/brick.cpp" "src/prism/CMakeFiles/dif_prism.dir/brick.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/brick.cpp.o.d"
  "/root/repo/src/prism/bytes.cpp" "src/prism/CMakeFiles/dif_prism.dir/bytes.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/bytes.cpp.o.d"
  "/root/repo/src/prism/deployer.cpp" "src/prism/CMakeFiles/dif_prism.dir/deployer.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/deployer.cpp.o.d"
  "/root/repo/src/prism/distribution.cpp" "src/prism/CMakeFiles/dif_prism.dir/distribution.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/distribution.cpp.o.d"
  "/root/repo/src/prism/event.cpp" "src/prism/CMakeFiles/dif_prism.dir/event.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/event.cpp.o.d"
  "/root/repo/src/prism/monitors.cpp" "src/prism/CMakeFiles/dif_prism.dir/monitors.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/monitors.cpp.o.d"
  "/root/repo/src/prism/thread_pool_scaffold.cpp" "src/prism/CMakeFiles/dif_prism.dir/thread_pool_scaffold.cpp.o" "gcc" "src/prism/CMakeFiles/dif_prism.dir/thread_pool_scaffold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dif_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
