file(REMOVE_RECURSE
  "CMakeFiles/dif_prism.dir/admin.cpp.o"
  "CMakeFiles/dif_prism.dir/admin.cpp.o.d"
  "CMakeFiles/dif_prism.dir/architecture.cpp.o"
  "CMakeFiles/dif_prism.dir/architecture.cpp.o.d"
  "CMakeFiles/dif_prism.dir/brick.cpp.o"
  "CMakeFiles/dif_prism.dir/brick.cpp.o.d"
  "CMakeFiles/dif_prism.dir/bytes.cpp.o"
  "CMakeFiles/dif_prism.dir/bytes.cpp.o.d"
  "CMakeFiles/dif_prism.dir/deployer.cpp.o"
  "CMakeFiles/dif_prism.dir/deployer.cpp.o.d"
  "CMakeFiles/dif_prism.dir/distribution.cpp.o"
  "CMakeFiles/dif_prism.dir/distribution.cpp.o.d"
  "CMakeFiles/dif_prism.dir/event.cpp.o"
  "CMakeFiles/dif_prism.dir/event.cpp.o.d"
  "CMakeFiles/dif_prism.dir/monitors.cpp.o"
  "CMakeFiles/dif_prism.dir/monitors.cpp.o.d"
  "CMakeFiles/dif_prism.dir/thread_pool_scaffold.cpp.o"
  "CMakeFiles/dif_prism.dir/thread_pool_scaffold.cpp.o.d"
  "libdif_prism.a"
  "libdif_prism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_prism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
