# Empty compiler generated dependencies file for dif_prism.
# This may be replaced when dependencies are built.
