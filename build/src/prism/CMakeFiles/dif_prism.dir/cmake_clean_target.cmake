file(REMOVE_RECURSE
  "libdif_prism.a"
)
