file(REMOVE_RECURSE
  "libdif_model.a"
)
