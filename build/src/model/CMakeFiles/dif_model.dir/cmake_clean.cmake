file(REMOVE_RECURSE
  "CMakeFiles/dif_model.dir/constraints.cpp.o"
  "CMakeFiles/dif_model.dir/constraints.cpp.o.d"
  "CMakeFiles/dif_model.dir/deployment.cpp.o"
  "CMakeFiles/dif_model.dir/deployment.cpp.o.d"
  "CMakeFiles/dif_model.dir/deployment_model.cpp.o"
  "CMakeFiles/dif_model.dir/deployment_model.cpp.o.d"
  "CMakeFiles/dif_model.dir/objective.cpp.o"
  "CMakeFiles/dif_model.dir/objective.cpp.o.d"
  "CMakeFiles/dif_model.dir/property_map.cpp.o"
  "CMakeFiles/dif_model.dir/property_map.cpp.o.d"
  "libdif_model.a"
  "libdif_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
