# Empty compiler generated dependencies file for dif_model.
# This may be replaced when dependencies are built.
