
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/constraints.cpp" "src/model/CMakeFiles/dif_model.dir/constraints.cpp.o" "gcc" "src/model/CMakeFiles/dif_model.dir/constraints.cpp.o.d"
  "/root/repo/src/model/deployment.cpp" "src/model/CMakeFiles/dif_model.dir/deployment.cpp.o" "gcc" "src/model/CMakeFiles/dif_model.dir/deployment.cpp.o.d"
  "/root/repo/src/model/deployment_model.cpp" "src/model/CMakeFiles/dif_model.dir/deployment_model.cpp.o" "gcc" "src/model/CMakeFiles/dif_model.dir/deployment_model.cpp.o.d"
  "/root/repo/src/model/objective.cpp" "src/model/CMakeFiles/dif_model.dir/objective.cpp.o" "gcc" "src/model/CMakeFiles/dif_model.dir/objective.cpp.o.d"
  "/root/repo/src/model/property_map.cpp" "src/model/CMakeFiles/dif_model.dir/property_map.cpp.o" "gcc" "src/model/CMakeFiles/dif_model.dir/property_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
