
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/desi/algo_result_data.cpp" "src/desi/CMakeFiles/dif_desi.dir/algo_result_data.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/algo_result_data.cpp.o.d"
  "/root/repo/src/desi/algorithm_container.cpp" "src/desi/CMakeFiles/dif_desi.dir/algorithm_container.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/algorithm_container.cpp.o.d"
  "/root/repo/src/desi/generator.cpp" "src/desi/CMakeFiles/dif_desi.dir/generator.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/generator.cpp.o.d"
  "/root/repo/src/desi/graph_view.cpp" "src/desi/CMakeFiles/dif_desi.dir/graph_view.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/graph_view.cpp.o.d"
  "/root/repo/src/desi/graph_view_data.cpp" "src/desi/CMakeFiles/dif_desi.dir/graph_view_data.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/graph_view_data.cpp.o.d"
  "/root/repo/src/desi/middleware_adapter.cpp" "src/desi/CMakeFiles/dif_desi.dir/middleware_adapter.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/middleware_adapter.cpp.o.d"
  "/root/repo/src/desi/modifier.cpp" "src/desi/CMakeFiles/dif_desi.dir/modifier.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/modifier.cpp.o.d"
  "/root/repo/src/desi/sensitivity.cpp" "src/desi/CMakeFiles/dif_desi.dir/sensitivity.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/sensitivity.cpp.o.d"
  "/root/repo/src/desi/system_data.cpp" "src/desi/CMakeFiles/dif_desi.dir/system_data.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/system_data.cpp.o.d"
  "/root/repo/src/desi/table_view.cpp" "src/desi/CMakeFiles/dif_desi.dir/table_view.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/table_view.cpp.o.d"
  "/root/repo/src/desi/xadl.cpp" "src/desi/CMakeFiles/dif_desi.dir/xadl.cpp.o" "gcc" "src/desi/CMakeFiles/dif_desi.dir/xadl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/dif_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/dif_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/prism/CMakeFiles/dif_prism.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dif_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
