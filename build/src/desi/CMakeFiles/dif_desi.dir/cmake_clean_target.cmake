file(REMOVE_RECURSE
  "libdif_desi.a"
)
