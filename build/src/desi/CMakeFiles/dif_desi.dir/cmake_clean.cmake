file(REMOVE_RECURSE
  "CMakeFiles/dif_desi.dir/algo_result_data.cpp.o"
  "CMakeFiles/dif_desi.dir/algo_result_data.cpp.o.d"
  "CMakeFiles/dif_desi.dir/algorithm_container.cpp.o"
  "CMakeFiles/dif_desi.dir/algorithm_container.cpp.o.d"
  "CMakeFiles/dif_desi.dir/generator.cpp.o"
  "CMakeFiles/dif_desi.dir/generator.cpp.o.d"
  "CMakeFiles/dif_desi.dir/graph_view.cpp.o"
  "CMakeFiles/dif_desi.dir/graph_view.cpp.o.d"
  "CMakeFiles/dif_desi.dir/graph_view_data.cpp.o"
  "CMakeFiles/dif_desi.dir/graph_view_data.cpp.o.d"
  "CMakeFiles/dif_desi.dir/middleware_adapter.cpp.o"
  "CMakeFiles/dif_desi.dir/middleware_adapter.cpp.o.d"
  "CMakeFiles/dif_desi.dir/modifier.cpp.o"
  "CMakeFiles/dif_desi.dir/modifier.cpp.o.d"
  "CMakeFiles/dif_desi.dir/sensitivity.cpp.o"
  "CMakeFiles/dif_desi.dir/sensitivity.cpp.o.d"
  "CMakeFiles/dif_desi.dir/system_data.cpp.o"
  "CMakeFiles/dif_desi.dir/system_data.cpp.o.d"
  "CMakeFiles/dif_desi.dir/table_view.cpp.o"
  "CMakeFiles/dif_desi.dir/table_view.cpp.o.d"
  "CMakeFiles/dif_desi.dir/xadl.cpp.o"
  "CMakeFiles/dif_desi.dir/xadl.cpp.o.d"
  "libdif_desi.a"
  "libdif_desi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_desi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
