# Empty compiler generated dependencies file for dif_desi.
# This may be replaced when dependencies are built.
