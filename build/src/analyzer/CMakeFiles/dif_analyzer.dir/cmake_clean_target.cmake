file(REMOVE_RECURSE
  "libdif_analyzer.a"
)
