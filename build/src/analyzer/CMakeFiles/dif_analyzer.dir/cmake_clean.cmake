file(REMOVE_RECURSE
  "CMakeFiles/dif_analyzer.dir/centralized.cpp.o"
  "CMakeFiles/dif_analyzer.dir/centralized.cpp.o.d"
  "CMakeFiles/dif_analyzer.dir/decentralized.cpp.o"
  "CMakeFiles/dif_analyzer.dir/decentralized.cpp.o.d"
  "CMakeFiles/dif_analyzer.dir/escalation.cpp.o"
  "CMakeFiles/dif_analyzer.dir/escalation.cpp.o.d"
  "CMakeFiles/dif_analyzer.dir/execution_profile.cpp.o"
  "CMakeFiles/dif_analyzer.dir/execution_profile.cpp.o.d"
  "libdif_analyzer.a"
  "libdif_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
