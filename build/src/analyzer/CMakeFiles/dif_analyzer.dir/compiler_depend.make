# Empty compiler generated dependencies file for dif_analyzer.
# This may be replaced when dependencies are built.
