
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/centralized.cpp" "src/analyzer/CMakeFiles/dif_analyzer.dir/centralized.cpp.o" "gcc" "src/analyzer/CMakeFiles/dif_analyzer.dir/centralized.cpp.o.d"
  "/root/repo/src/analyzer/decentralized.cpp" "src/analyzer/CMakeFiles/dif_analyzer.dir/decentralized.cpp.o" "gcc" "src/analyzer/CMakeFiles/dif_analyzer.dir/decentralized.cpp.o.d"
  "/root/repo/src/analyzer/escalation.cpp" "src/analyzer/CMakeFiles/dif_analyzer.dir/escalation.cpp.o" "gcc" "src/analyzer/CMakeFiles/dif_analyzer.dir/escalation.cpp.o.d"
  "/root/repo/src/analyzer/execution_profile.cpp" "src/analyzer/CMakeFiles/dif_analyzer.dir/execution_profile.cpp.o" "gcc" "src/analyzer/CMakeFiles/dif_analyzer.dir/execution_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/dif_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dif_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dif_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
