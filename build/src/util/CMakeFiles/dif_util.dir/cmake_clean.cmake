file(REMOVE_RECURSE
  "CMakeFiles/dif_util.dir/json.cpp.o"
  "CMakeFiles/dif_util.dir/json.cpp.o.d"
  "CMakeFiles/dif_util.dir/logging.cpp.o"
  "CMakeFiles/dif_util.dir/logging.cpp.o.d"
  "CMakeFiles/dif_util.dir/rng.cpp.o"
  "CMakeFiles/dif_util.dir/rng.cpp.o.d"
  "CMakeFiles/dif_util.dir/statistics.cpp.o"
  "CMakeFiles/dif_util.dir/statistics.cpp.o.d"
  "CMakeFiles/dif_util.dir/table.cpp.o"
  "CMakeFiles/dif_util.dir/table.cpp.o.d"
  "libdif_util.a"
  "libdif_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dif_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
