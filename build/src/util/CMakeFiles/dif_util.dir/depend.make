# Empty dependencies file for dif_util.
# This may be replaced when dependencies are built.
