file(REMOVE_RECURSE
  "libdif_util.a"
)
