# Empty compiler generated dependencies file for difctl.
# This may be replaced when dependencies are built.
