file(REMOVE_RECURSE
  "CMakeFiles/difctl.dir/difctl.cpp.o"
  "CMakeFiles/difctl.dir/difctl.cpp.o.d"
  "difctl"
  "difctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
