# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(difctl_roundtrip "/usr/bin/cmake" "-DDIFCTL=/root/repo/build/tools/difctl" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/difctl_roundtrip.cmake")
set_tests_properties(difctl_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
