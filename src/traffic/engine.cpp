#include "traffic/engine.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/logging.h"

namespace dif::traffic {

namespace {

/// Wire cost of one direct (reachable) leg: propagation + serialized
/// transfer + the wait behind whatever is already queued on the link.
double hop_cost(const sim::SimNetwork& net, model::HostId from,
                model::HostId to, double size_kb) {
  const sim::LinkState& link = net.link(from, to);
  return link.delay_ms + 1'000.0 * size_kb / link.bandwidth +
         net.backlog_ms(from, to);
}

}  // namespace

std::string_view to_string(ArrivalModel m) noexcept {
  return m == ArrivalModel::kOpen ? "open" : "closed";
}

std::string_view to_string(IntensityShape s) noexcept {
  switch (s) {
    case IntensityShape::kFlat: return "flat";
    case IntensityShape::kDiurnal: return "diurnal";
    case IntensityShape::kFlash: return "flash";
  }
  return "flat";
}

ArrivalModel arrival_by_name(const std::string& name) {
  if (name == "open") return ArrivalModel::kOpen;
  if (name == "closed") return ArrivalModel::kClosed;
  throw std::invalid_argument("unknown arrival model '" + name + "'");
}

IntensityShape shape_by_name(const std::string& name) {
  if (name == "flat") return IntensityShape::kFlat;
  if (name == "diurnal") return IntensityShape::kDiurnal;
  if (name == "flash") return IntensityShape::kFlash;
  throw std::invalid_argument("unknown intensity shape '" + name + "'");
}

TrafficEngine::TrafficEngine(core::CentralizedInstantiation& inst,
                             EngineConfig config,
                             obs::Instruments instruments)
    : inst_(inst),
      config_(std::move(config)),
      obs_(instruments),
      arrivals_rng_(util::Xoshiro256ss(config_.seed).fork(0x7261ff1c)),
      path_rng_(util::Xoshiro256ss(config_.seed).fork(0x7261ff1d)),
      shed_rng_(util::Xoshiro256ss(config_.seed).fork(0x7261ff1e)) {
  if (config_.tenants.empty()) config_.tenants.push_back({"t0", 1.0, 1.0});
  if (config_.tick_ms <= 0.0)
    throw std::invalid_argument("TrafficEngine: tick_ms must be positive");

  const model::DeploymentModel& m = inst_.system().model();
  adjacency_.resize(m.component_count());
  edge_size_kb_.resize(m.component_count());
  for (const model::Interaction& it : m.interactions()) {
    adjacency_[it.a].push_back(it.b);
    edge_size_kb_[it.a].push_back(it.avg_event_size);
    adjacency_[it.b].push_back(it.a);
    edge_size_kb_[it.b].push_back(it.avg_event_size);
  }
  for (model::ComponentId c = 0; c < m.component_count(); ++c)
    if (!adjacency_[c].empty()) entry_pool_.push_back(c);
  if (entry_pool_.empty())
    for (model::ComponentId c = 0; c < m.component_count(); ++c)
      entry_pool_.push_back(c);

  location_.assign(m.component_count(), model::kNoHost);
  hop_load_.assign(m.host_count(), 0.0);
  prev_util_.assign(m.host_count(), 0.0);
  smoothed_util_.assign(m.host_count(), 0.0);
  stats_.resize(config_.tenants.size());
  shed_level_.assign(config_.tenants.size(), 0.0);
  for (const TenantSpec& t : config_.tenants) total_weight_ += t.weight;
  if (total_weight_ <= 0.0) total_weight_ = 1.0;

  if (config_.arrival == ArrivalModel::kClosed) {
    // Weighted round-robin user->tenant assignment (largest remainder), so
    // the population split follows the weights without any RNG draws.
    user_tenant_.reserve(config_.closed_users);
    std::vector<double> owed(config_.tenants.size(), 0.0);
    for (std::size_t u = 0; u < config_.closed_users; ++u) {
      std::size_t best = 0;
      for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
        owed[t] += config_.tenants[t].weight / total_weight_;
        if (owed[t] > owed[best]) best = t;
      }
      owed[best] -= 1.0;
      user_tenant_.push_back(best);
    }
    user_next_free_.assign(config_.closed_users, 0.0);
  }

  if (obs_.metrics) {
    tenant_metrics_.resize(config_.tenants.size());
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      const std::string base = "traffic.tenant." + config_.tenants[t].name;
      tenant_metrics_[t].offered = &obs_.metrics->counter(base + ".offered");
      tenant_metrics_[t].completed =
          &obs_.metrics->counter(base + ".completed");
      tenant_metrics_[t].failed = &obs_.metrics->counter(base + ".failed");
      tenant_metrics_[t].shed = &obs_.metrics->counter(base + ".shed");
      // Finer-than-default bounds across the serving range: the ratekeeper
      // reads windowed p99 off bucket upper bounds, and the default
      // 100->250->500 jumps would quantize every tail sample straight past
      // a serving SLO.
      tenant_metrics_[t].latency_ms = &obs_.metrics->histogram(
          base + ".latency_ms",
          {5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0,
           400.0, 500.0, 750.0, 1'000.0, 2'000.0, 5'000.0});
    }
    util_gauges_.resize(m.host_count());
    for (model::HostId h = 0; h < m.host_count(); ++h)
      util_gauges_[h] =
          &obs_.metrics->gauge("traffic.host." + std::to_string(h) + ".util");
    fail_host_down_ = &obs_.metrics->counter("traffic.failed.host_down");
    fail_partitioned_ = &obs_.metrics->counter("traffic.failed.partitioned");
    fail_migrating_ = &obs_.metrics->counter("traffic.failed.migrating");
    fail_no_path_ = &obs_.metrics->counter("traffic.failed.no_path");
    fail_timeout_ = &obs_.metrics->counter("traffic.failed.timeout");
  }
}

void TrafficEngine::start() {
  running_ = true;
  inst_.simulator().schedule_after(config_.tick_ms, [this] { tick(); });
}

double TrafficEngine::intensity(double t_ms) const {
  switch (config_.shape) {
    case IntensityShape::kFlat:
      return 1.0;
    case IntensityShape::kDiurnal:
      return 1.0 + 0.6 * std::sin(2.0 * std::numbers::pi * t_ms /
                                  std::max(config_.diurnal_period_ms, 1.0));
    case IntensityShape::kFlash:
      return (t_ms >= config_.flash_at_ms &&
              t_ms < config_.flash_at_ms + config_.flash_duration_ms)
                 ? config_.flash_multiplier
                 : 1.0;
  }
  return 1.0;
}

void TrafficEngine::set_shed_level(std::size_t tenant, double level) {
  shed_level_.at(tenant) = std::clamp(level, 0.0, 1.0);
}

model::HostId TrafficEngine::resolve(model::ComponentId component) const {
  return location_[component];
}

void TrafficEngine::refresh_locations() {
  const model::DeploymentModel& m = inst_.system().model();
  std::fill(location_.begin(), location_.end(), model::kNoHost);
  for (model::HostId h = 0; h < m.host_count(); ++h) {
    for (const std::string& name : inst_.architecture(h).component_names()) {
      if (name.rfind("__", 0) == 0) continue;  // middleware bricks
      try {
        location_[m.component_by_name(name)] = h;
      } catch (const std::out_of_range&) {
        // A brick the model does not know (nothing to route to it).
      }
    }
  }
}

double TrafficEngine::service_at(model::HostId host) const {
  // M/M/1-flavoured congestion: as the previous tick's utilization nears
  // 1, service time inflates toward 20x; saturation is what the
  // ratekeeper's tag throttling exists to relieve.
  const double util = std::min(prev_util_[host], 0.95);
  return config_.service_ms / std::max(0.05, 1.0 - util);
}

std::uint64_t TrafficEngine::draw_poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops under e^-lambda.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= arrivals_rng_.uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large rates (one draw per tenant-tick).
  const double draw = arrivals_rng_.normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
}

void TrafficEngine::fail_request(std::size_t tenant,
                                 std::uint64_t FailureCounts::*reason) {
  failures_.*reason += 1;
  ++stats_[tenant].failed;
  stats_[tenant].latencies_ms.push_back(config_.failure_penalty_ms);
  if (obs_.metrics) {
    tenant_metrics_[tenant].failed->add(1);
    tenant_metrics_[tenant].latency_ms->observe(config_.failure_penalty_ms);
    if (reason == &FailureCounts::host_down) fail_host_down_->add(1);
    else if (reason == &FailureCounts::partitioned) fail_partitioned_->add(1);
    else if (reason == &FailureCounts::migrating) fail_migrating_->add(1);
    else if (reason == &FailureCounts::timeout) fail_timeout_->add(1);
    else fail_no_path_->add(1);
  }
}

double TrafficEngine::run_request(std::size_t tenant, double /*at_ms*/) {
  const sim::SimNetwork& net = inst_.network();
  model::ComponentId cur = entry_pool_[path_rng_.index(entry_pool_.size())];

  model::HostId host = resolve(cur);
  if (host == model::kNoHost) {
    fail_request(tenant, &FailureCounts::migrating);
    return config_.failure_penalty_ms;
  }
  if (!net.host_up(host)) {
    fail_request(tenant, &FailureCounts::host_down);
    return config_.failure_penalty_ms;
  }
  if (adjacency_[cur].empty()) {
    fail_request(tenant, &FailureCounts::no_path);
    return config_.failure_penalty_ms;
  }

  double latency = service_at(host);
  hop_load_[host] += 1.0;
  for (std::size_t hop = 1; hop < config_.path_hops; ++hop) {
    if (adjacency_[cur].empty()) break;
    const std::size_t pick = path_rng_.index(adjacency_[cur].size());
    const model::ComponentId next = adjacency_[cur][pick];
    const double size_kb = edge_size_kb_[cur][pick];

    const model::HostId next_host = resolve(next);
    if (next_host == model::kNoHost) {
      fail_request(tenant, &FailureCounts::migrating);
      return config_.failure_penalty_ms;
    }
    if (next_host != host) {
      // The data plane's routing precedence: a direct link, else mediation
      // via the master's host (prism/distribution.cpp). A mediated hop
      // pays both legs.
      if (net.reachable(host, next_host)) {
        latency += hop_cost(net, host, next_host, size_kb);
      } else if (const model::HostId master = inst_.config().master_host;
                 master != host && master != next_host &&
                 net.reachable(host, master) &&
                 net.reachable(master, next_host)) {
        latency += hop_cost(net, host, master, size_kb) +
                   hop_cost(net, master, next_host, size_kb);
      } else {
        fail_request(tenant, net.host_up(host) && net.host_up(next_host)
                                 ? &FailureCounts::partitioned
                                 : &FailureCounts::host_down);
        return config_.failure_penalty_ms;
      }
    }
    latency += service_at(next_host);
    hop_load_[next_host] += 1.0;
    cur = next;
    host = next_host;
  }

  if (config_.request_timeout_ms > 0.0 &&
      latency > config_.request_timeout_ms) {
    // The user gave up waiting (queueing behind a backed-up link, or a
    // saturated host): a timeout, not a success with absurd latency.
    fail_request(tenant, &FailureCounts::timeout);
    return config_.failure_penalty_ms;
  }

  ++stats_[tenant].completed;
  stats_[tenant].latencies_ms.push_back(latency);
  if (obs_.metrics) {
    tenant_metrics_[tenant].completed->add(1);
    tenant_metrics_[tenant].latency_ms->observe(latency);
  }
  return latency;
}

void TrafficEngine::tick() {
  if (!running_) return;
  ++ticks_;
  const double now = inst_.simulator().now();
  const double tick_s = config_.tick_ms / 1'000.0;
  refresh_locations();
  std::fill(hop_load_.begin(), hop_load_.end(), 0.0);

  const double scale = intensity(now);
  if (config_.arrival == ArrivalModel::kOpen) {
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      const double lambda = config_.rps *
                            (config_.tenants[t].weight / total_weight_) *
                            scale * tick_s;
      const std::uint64_t arrivals = draw_poisson(lambda);
      for (std::uint64_t i = 0; i < arrivals; ++i) {
        ++stats_[t].offered;
        if (obs_.metrics) tenant_metrics_[t].offered->add(1);
        if (shed_level_[t] > 0.0 && shed_rng_.chance(shed_level_[t])) {
          ++stats_[t].shed;
          if (obs_.metrics) tenant_metrics_[t].shed->add(1);
          continue;
        }
        run_request(t, now);
      }
    }
  } else {
    const double tick_end = now + config_.tick_ms;
    std::size_t outstanding = 0;
    for (std::size_t u = 0; u < user_tenant_.size(); ++u) {
      const std::size_t t = user_tenant_[u];
      while (user_next_free_[u] < tick_end) {
        const double issue_at = std::max(user_next_free_[u], now);
        ++stats_[t].offered;
        if (obs_.metrics) tenant_metrics_[t].offered->add(1);
        if (shed_level_[t] > 0.0 && shed_rng_.chance(shed_level_[t])) {
          ++stats_[t].shed;
          if (obs_.metrics) tenant_metrics_[t].shed->add(1);
          // A shed user backs off a full think time (never zero, or a
          // zero-think config would spin inside one tick forever).
          user_next_free_[u] = issue_at + std::max(config_.think_ms, 1.0);
          continue;
        }
        const double latency = run_request(t, issue_at);
        user_next_free_[u] = issue_at + latency + config_.think_ms;
      }
      // Still serving (not yet thinking) at the tick boundary?
      if (user_next_free_[u] - config_.think_ms > tick_end) ++outstanding;
    }
    max_outstanding_ = std::max(max_outstanding_, outstanding);
  }

  for (model::HostId h = 0; h < hop_load_.size(); ++h) {
    prev_util_[h] =
        hop_load_[h] / std::max(config_.host_capacity_rps * tick_s, 1e-9);
    smoothed_util_[h] = 0.8 * smoothed_util_[h] + 0.2 * prev_util_[h];
    if (obs_.metrics) util_gauges_[h]->set(smoothed_util_[h]);
  }

  inst_.simulator().schedule_after(config_.tick_ms, [this] { tick(); });
}

}  // namespace dif::traffic
