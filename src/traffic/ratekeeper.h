// Ratekeeper: the feedback controller that closes the loop between user
// traffic and the control plane (FoundationDB's Ratekeeper/TagThrottle is
// the exemplar; ROADMAP "Ratekeeper" item).
//
// Every control interval it samples what the TrafficEngine published to the
// obs registry — per-tenant latency histograms and per-host utilization
// gauges — and acts on two fronts:
//
//   * Migration throttling. While any tenant's windowed p99 breaches the
//     SLO target, an escalation level climbs (and decays one step per
//     clean interval). The level maps to a prism::PrepareThrottle written
//     into a shared cell the DeployerComponent samples at every __prepare
//     fan-out: higher levels mean smaller batches and longer inter-batch
//     gaps, so redeployment sagas yield link bandwidth and defer
//     custody-transfer churn until user latency recovers.
//
//   * Tag shedding. While the SLO is breached AND any host's (smoothed)
//     utilization exceeds the saturation threshold — latency pain with a
//     congestion cause — tenants whose share of the offered load exceeds
//     their tag_budget get their admission shed level raised stepwise (and
//     decayed when the pressure clears), protecting within-budget tenants
//     from a noisy neighbour.
//
// Sampling and SLO-violation accounting always run; `enabled` gates only
// the *actions* — that is what lets a bench compare violation seconds with
// the controller on vs off under identical offered load.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/centralized_instantiation.h"
#include "obs/instruments.h"
#include "prism/deployer.h"
#include "traffic/engine.h"

namespace dif::traffic {

struct RatekeeperConfig {
  /// Gates actions (throttle writes + shedding); sampling and violation
  /// accounting run regardless.
  bool enabled = true;
  /// The SLO target the per-tenant windowed p99 is held to. Default sits
  /// above the healthy steady state of a traffic_generator_spec() run
  /// (~130 ms p99) and below its stressed state, so violations mark real
  /// incidents (flash crowds, mid-migration churn), not the baseline.
  double slo_p99_ms = 250.0;
  double control_interval_ms = 500.0;
  /// Host utilization above which tag budgets are enforced.
  double saturation_threshold = 0.85;
  /// Escalation ladder: level 0 is unthrottled; the prepare batch cap
  /// shrinks 8 >> level (floor 1) and the inter-batch delay grows
  /// level/max_level of the max as the level climbs.
  int max_level = 4;
  double max_inter_batch_delay_ms = 2'000.0;
  /// Shed level moved per interval (up under pressure, down when clear).
  double shed_step = 0.25;
  double max_shed = 0.9;
};

class Ratekeeper {
 public:
  /// `cell` is the PrepareThrottle the deployer's DeployerParams::throttle
  /// lambda reads (create it before building the instantiation, bind it
  /// into FrameworkConfig, then hand it here). Engine and instantiation
  /// must outlive the ratekeeper.
  Ratekeeper(TrafficEngine& engine, core::CentralizedInstantiation& inst,
             obs::Instruments instruments,
             std::shared_ptr<prism::PrepareThrottle> cell,
             RatekeeperConfig config);

  /// Schedules the recurring control tick on the instantiation's simulator.
  void start();
  void stop() noexcept { running_ = false; }

  [[nodiscard]] const RatekeeperConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] int max_level_reached() const noexcept {
    return max_level_reached_;
  }
  /// Escalations (level increases) and shed-level increases performed.
  [[nodiscard]] std::uint64_t throttle_actions() const noexcept {
    return throttle_actions_;
  }
  [[nodiscard]] std::uint64_t shed_actions() const noexcept {
    return shed_actions_;
  }
  /// Sim time during which >= 1 tenant's windowed p99 breached the SLO.
  [[nodiscard]] double slo_violation_ms() const noexcept {
    return slo_violation_ms_;
  }
  /// Sim time during which `tenant`'s own windowed p99 breached the SLO.
  [[nodiscard]] double tenant_slo_violation_ms(std::size_t tenant) const {
    return tenant_violation_ms_.at(tenant);
  }
  [[nodiscard]] prism::PrepareThrottle current_throttle() const {
    return *cell_;
  }

 private:
  void control_tick();
  /// Windowed p99 of `tenant` since the previous control tick, from the
  /// latency histogram's bucket-count deltas (0 when no samples landed).
  [[nodiscard]] double interval_p99_ms(std::size_t tenant);

  TrafficEngine& engine_;
  core::CentralizedInstantiation& inst_;
  obs::Instruments obs_;
  std::shared_ptr<prism::PrepareThrottle> cell_;
  RatekeeperConfig config_;
  bool running_ = false;

  int level_ = 0;
  int max_level_reached_ = 0;
  std::uint64_t throttle_actions_ = 0;
  std::uint64_t shed_actions_ = 0;
  double slo_violation_ms_ = 0.0;
  std::vector<double> tenant_violation_ms_;

  /// Per-tenant histogram bucket + counter snapshots from the last tick.
  std::vector<std::vector<std::uint64_t>> bucket_snapshot_;
  std::vector<std::uint64_t> offered_snapshot_;

  obs::Counter* throttle_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Gauge* level_gauge_ = nullptr;
};

}  // namespace dif::traffic
