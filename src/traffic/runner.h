// TrafficRunner: the one code path behind `difctl traffic`, bench_traffic,
// and tests/test_traffic.cpp.
//
// Generates a system, builds the centralized instantiation with the
// ratekeeper's PrepareThrottle cell bound into the deployer, starts the
// traffic engine + ratekeeper + improvement loop, optionally arms a chaos
// scenario and forces periodic redeployments (so migrations demonstrably
// run *under load*), and renders one deterministic "dif-traffic-v1" JSON
// report — the same seeded options always yield byte-identical bytes,
// which is what the CI smoke and the determinism test pin.
#pragma once

#include <cstdint>
#include <string>

#include "desi/generator.h"
#include "heal/recovery.h"
#include "traffic/engine.h"
#include "traffic/ratekeeper.h"
#include "util/json.h"

namespace dif::traffic {

/// Generator defaults tuned for serving live traffic: denser links (so the
/// direct-or-master-mediated data plane covers almost every host pair) and
/// an order of magnitude more bandwidth than the desi baseline (so the app
/// workload does not chronically oversubscribe links — backlog then comes
/// from real events: migrations and flash crowds, not a saturated steady
/// state).
[[nodiscard]] desi::GeneratorSpec traffic_generator_spec();

struct RunOptions {
  desi::GeneratorSpec generator = traffic_generator_spec();
  std::uint64_t seed = 1;
  double duration_ms = 60'000.0;
  EngineConfig engine;          // engine.seed is overwritten with `seed`
  RatekeeperConfig ratekeeper;
  /// Chaos scenario armed over the run ("none" disables injection;
  /// anything else resolves via chaos::scenario_by_name, its duration
  /// clamped to `duration_ms`).
  std::string scenario = "none";
  /// Improvement loop cadence (0 disables the loop).
  double loop_interval_ms = 5'000.0;
  /// Forced redeployment churn: starting at `redeploy_at_ms` (0 = never)
  /// and repeating every `redeploy_every_ms` (0 = once), move
  /// `redeploy_moves` capacity-fitting components to new hosts — skipped
  /// silently while another round is in flight.
  double redeploy_at_ms = 0.0;
  double redeploy_every_ms = 0.0;
  std::size_t redeploy_moves = 0;
  /// Self-healing: attach a heal::HealController (phi-accrual detection,
  /// automatic recovery re-placement) over the live run and add a
  /// "recovery" object to the report. Off by default — recovery-off runs
  /// stay byte-identical to pre-heal builds.
  bool recovery = false;
  heal::HealConfig heal;
};

struct RunResult {
  util::json::Value report;   // the dif-traffic-v1 document
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::size_t max_outstanding = 0;
  double slo_violation_ms = 0.0;
  std::uint64_t rounds = 0;         // closed txn rounds
  std::uint64_t committed = 0;      // clean commits
  std::uint64_t rolled_back = 0;    // aborted/rolled-back/partial rounds
  std::uint64_t migrations = 0;     // components actually moved
  /// Self-healing observations (zero unless RunOptions::recovery).
  std::uint64_t condemnations = 0;
  std::uint64_t recoveries_committed = 0;
  double mean_mttr_ms = 0.0;
  /// SLO-violation ms accrued while a repair was pending or in flight —
  /// the share of user pain attributable to recovery traffic.
  double slo_repair_attrib_ms = 0.0;
  /// The full metrics registry of the run, serialized (dif-metrics-v1).
  util::json::Value metrics;
};

/// Runs one seeded traffic session end to end. Throws std::invalid_argument
/// on an unknown scenario name.
[[nodiscard]] RunResult run_traffic(const RunOptions& options);

}  // namespace dif::traffic
