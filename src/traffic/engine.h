// Deterministic user-traffic engine: simulated requests through a deployed
// Prism architecture.
//
// The paper argues autonomic redeployment improves dependability *as
// experienced by users*, but the rest of the stack only ever measures the
// model's objective. This engine closes that gap: seeded open-loop
// (Poisson) or closed-loop (fixed-concurrency) arrivals, tagged per-tenant,
// with time-varying intensity (diurnal sinusoid, flash crowd), are walked
// across the component interaction graph over the live SimNetwork. A
// request accumulates link delay, serialized-transfer time, queueing behind
// in-flight migration transfers (SimNetwork::backlog_ms), and
// congestion-scaled service time — and *fails* when its path crosses a dead
// host, a severed link, or a component mid-migration without custody. The
// Ratekeeper (ratekeeper.h) feeds on the metrics this engine publishes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/centralized_instantiation.h"
#include "obs/instruments.h"
#include "util/rng.h"

namespace dif::traffic {

enum class ArrivalModel {
  kOpen,    // Poisson arrivals at rps * weight * intensity(t)
  kClosed,  // fixed user population, think time between requests
};

enum class IntensityShape {
  kFlat,     // constant 1.0
  kDiurnal,  // 1 + 0.6 sin(2*pi*t/period) — a compressed day
  kFlash,    // flat with a flash-crowd multiplier inside a window
};

[[nodiscard]] std::string_view to_string(ArrivalModel m) noexcept;
[[nodiscard]] std::string_view to_string(IntensityShape s) noexcept;
/// Throw std::invalid_argument on unknown names.
[[nodiscard]] ArrivalModel arrival_by_name(const std::string& name);
[[nodiscard]] IntensityShape shape_by_name(const std::string& name);

/// One tenant tag: a share of the offered load plus the budget the
/// ratekeeper holds it to when hosts saturate.
struct TenantSpec {
  std::string name;
  /// Relative share of offered load (open loop) / of the user population
  /// (closed loop).
  double weight = 1.0;
  /// Max fraction of the total offered load this tenant may hold while a
  /// host is saturated; the ratekeeper sheds the excess (tag throttling).
  double tag_budget = 1.0;
};

struct EngineConfig {
  ArrivalModel arrival = ArrivalModel::kOpen;
  /// Open loop: aggregate offered rate (requests/s) at intensity 1.0.
  double rps = 200.0;
  /// Closed loop: total concurrent users across tenants, and the think
  /// time each user waits between a completion and its next request.
  std::size_t closed_users = 64;
  double think_ms = 200.0;
  IntensityShape shape = IntensityShape::kFlat;
  double diurnal_period_ms = 60'000.0;
  double flash_at_ms = 20'000.0;
  double flash_duration_ms = 10'000.0;
  double flash_multiplier = 4.0;
  /// Driver cadence; arrivals inside one tick share its intensity sample.
  double tick_ms = 100.0;
  /// Interaction-graph hops walked per request (entry component included).
  std::size_t path_hops = 3;
  /// Base per-hop service time; scaled by the serving host's congestion
  /// (an M/M/1-flavoured 1/(1-utilization) factor from the previous tick).
  double service_ms = 2.0;
  /// Hop-service capacity per host (hops/s) that defines utilization 1.0.
  /// Sized so a default run's hottest host (the improvement loop
  /// consolidates placement) idles around 70% and a 4x flash crowd
  /// saturates it — the regime the ratekeeper's shedding exists for.
  double host_capacity_rps = 300.0;
  /// Latency charged to a failed request (the user-visible timeout); it
  /// lands in the latency histogram so failures drive p99 like real
  /// timeouts do.
  double failure_penalty_ms = 5'000.0;
  /// A request whose accumulated latency exceeds this gave up from the
  /// user's point of view: it fails (reason `timeout`) and is charged the
  /// failure penalty. Guards against unbounded link backlogs on
  /// oversubscribed topologies.
  double request_timeout_ms = 2'000.0;
  std::uint64_t seed = 1;
  /// Empty => one tenant {"t0", 1.0, 1.0}.
  std::vector<TenantSpec> tenants;
};

/// Why a request failed, in priority order of detection.
struct FailureCounts {
  std::uint64_t host_down = 0;    // entry/next host is crashed or suspended
  std::uint64_t partitioned = 0;  // hosts up but link severed / absent
  std::uint64_t migrating = 0;    // component detached (custody in flight)
  std::uint64_t no_path = 0;      // entry component has no interactions
  std::uint64_t timeout = 0;      // accumulated latency > request_timeout_ms
};

struct TenantStats {
  std::uint64_t offered = 0;    // arrivals, shed included
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;       // rejected at admission by the ratekeeper
  /// Latency samples for completed (true latency) and failed
  /// (failure_penalty_ms) requests, in arrival order.
  std::vector<double> latencies_ms;
};

class TrafficEngine {
 public:
  /// The instantiation must outlive the engine. Metrics (when present) gain
  /// per-tenant "traffic.tenant.<name>.{offered,completed,failed,shed}"
  /// counters and ".latency_ms" histograms, per-host "traffic.host.<id>.util"
  /// gauges, and "traffic.failed.<reason>" counters.
  TrafficEngine(core::CentralizedInstantiation& inst, EngineConfig config,
                obs::Instruments instruments);

  /// Schedules the per-tick driver on the instantiation's simulator.
  void start();
  void stop() noexcept { running_ = false; }

  /// Admission shedding, set by the ratekeeper: probability in [0, 1) that
  /// an arriving request of `tenant` is rejected before it runs.
  void set_shed_level(std::size_t tenant, double level);
  [[nodiscard]] double shed_level(std::size_t tenant) const {
    return shed_level_.at(tenant);
  }

  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<TenantStats>& tenants() const noexcept {
    return stats_;
  }
  [[nodiscard]] const FailureCounts& failures() const noexcept {
    return failures_;
  }
  /// Peak closed-loop requests still in flight at any tick boundary; by
  /// construction never exceeds config().closed_users.
  [[nodiscard]] std::size_t max_outstanding() const noexcept {
    return max_outstanding_;
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  /// Smoothed (EWMA over ticks) hop-load / capacity for `host` — the
  /// ratekeeper's saturation signal. The service-time model uses the raw
  /// previous tick instead: queueing is instantaneous, control should not
  /// chase per-tick Poisson noise.
  [[nodiscard]] double host_utilization(model::HostId host) const {
    return smoothed_util_.at(host);
  }
  /// Intensity multiplier of the configured shape at sim time `t_ms`.
  [[nodiscard]] double intensity(double t_ms) const;

 private:
  void tick();
  /// Runs one request of `tenant` arriving at `at_ms`; returns its
  /// user-visible latency (completion or penalty) after recording stats.
  double run_request(std::size_t tenant, double at_ms);
  void fail_request(std::size_t tenant, std::uint64_t FailureCounts::*reason);
  /// Where `component` currently holds custody (attached to a host's
  /// architecture), or model::kNoHost while it is mid-migration.
  [[nodiscard]] model::HostId resolve(model::ComponentId component) const;
  void refresh_locations();
  /// Congestion-scaled service time at `host` (previous-tick utilization).
  [[nodiscard]] double service_at(model::HostId host) const;
  [[nodiscard]] std::uint64_t draw_poisson(double lambda);

  core::CentralizedInstantiation& inst_;
  EngineConfig config_;
  obs::Instruments obs_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;

  // Interaction-graph snapshot (taken at construction): per-component
  // neighbour lists plus the matching event sizes, and the entry pool.
  std::vector<std::vector<model::ComponentId>> adjacency_;
  std::vector<std::vector<double>> edge_size_kb_;
  std::vector<model::ComponentId> entry_pool_;

  // Per-tick custody map: component id -> host it is attached to.
  std::vector<model::HostId> location_;
  // Per-tick hop load, the previous tick's utilization, and its EWMA.
  std::vector<double> hop_load_;
  std::vector<double> prev_util_;
  std::vector<double> smoothed_util_;

  std::vector<TenantStats> stats_;
  std::vector<double> shed_level_;
  FailureCounts failures_;
  double total_weight_ = 0.0;

  // Closed loop: per-user tenant assignment and next-free times.
  std::vector<std::size_t> user_tenant_;
  std::vector<double> user_next_free_;
  std::size_t max_outstanding_ = 0;

  // Independent streams so shedding never perturbs path choice and
  // arrivals never perturb either.
  util::Xoshiro256ss arrivals_rng_;
  util::Xoshiro256ss path_rng_;
  util::Xoshiro256ss shed_rng_;

  // Pre-resolved metric handles (allocation-stable registry references).
  struct TenantMetrics {
    obs::Counter* offered = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Histogram* latency_ms = nullptr;
  };
  std::vector<TenantMetrics> tenant_metrics_;
  std::vector<obs::Gauge*> util_gauges_;
  obs::Counter* fail_host_down_ = nullptr;
  obs::Counter* fail_partitioned_ = nullptr;
  obs::Counter* fail_migrating_ = nullptr;
  obs::Counter* fail_no_path_ = nullptr;
  obs::Counter* fail_timeout_ = nullptr;
};

}  // namespace dif::traffic
