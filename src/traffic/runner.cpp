#include "traffic/runner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "chaos/fault_schedule.h"
#include "chaos/scenario.h"
#include "core/improvement_loop.h"
#include "heal/recovery.h"
#include "model/objective.h"
#include "obs/metrics.h"
#include "prism/deployer.h"

namespace dif::traffic {

namespace {

/// Nearest-rank percentile of an unsorted sample set (0 when empty).
double percentile_ms(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

/// Draws up to `moves` capacity-fitting component moves against the live
/// runtime placement and effects them (no-op while a round is in flight).
void force_redeploy(core::CentralizedInstantiation& inst,
                    util::Xoshiro256ss& rng, std::size_t moves) {
  if (inst.deployer().redeployment_in_flight()) return;
  const model::DeploymentModel& m = inst.system().model();
  const model::Deployment placement = inst.runtime_deployment();

  std::vector<double> usage(m.host_count(), 0.0);
  for (model::ComponentId c = 0; c < m.component_count(); ++c) {
    const model::HostId h = placement.host_of(c);
    if (h != model::kNoHost) usage[h] += m.component(c).memory_size;
  }

  prism::DeployerComponent::TargetDeployment target;
  std::vector<bool> picked(m.component_count(), false);
  for (std::size_t attempt = 0;
       attempt < moves * 8 && target.size() < moves; ++attempt) {
    const auto c =
        static_cast<model::ComponentId>(rng.index(m.component_count()));
    if (picked[c]) continue;
    const model::HostId cur = placement.host_of(c);
    if (cur == model::kNoHost) continue;
    const auto h = static_cast<model::HostId>(rng.index(m.host_count()));
    if (h == cur) continue;
    const double mem = m.component(c).memory_size;
    if (usage[h] + mem > m.host(h).memory_capacity) continue;
    usage[h] += mem;
    usage[cur] -= mem;
    picked[c] = true;
    target.emplace_back(m.component(c).name, h);
  }
  if (!target.empty())
    inst.deployer().effect_deployment(target,
                                      [](bool /*ok*/, std::size_t /*n*/) {});
}

}  // namespace

desi::GeneratorSpec traffic_generator_spec() {
  desi::GeneratorSpec spec;
  spec.link_density = 0.9;
  spec.bandwidth = {200.0, 2'000.0};
  // Serving-grade links: the desi default floor (0.30 — 70% loss) makes
  // component transfers retry for tens of seconds, leaving components
  // detached (and every request to them failing) far longer than any real
  // migration would.
  spec.reliability = {0.90, 0.999};
  return spec;
}

RunResult run_traffic(const RunOptions& options) {
  auto system = desi::Generator::generate(options.generator, options.seed);

  // The throttle cell outlives the instantiation: the deployer samples it
  // on every prepare fan-out, the ratekeeper writes it each control tick.
  auto throttle_cell = std::make_shared<prism::PrepareThrottle>();
  core::FrameworkConfig fc;
  fc.seed = options.seed;
  fc.deployer.throttle = [throttle_cell] { return *throttle_cell; };

  // Seat the master on the best-connected host (the paper's Headquarters
  // sits on the hub): the data plane only routes direct or master-mediated,
  // so a poorly-linked master strands every host pair it cannot bridge.
  {
    const model::DeploymentModel& m = system->model();
    std::size_t best_degree = 0;
    for (model::HostId h = 0; h < m.host_count(); ++h) {
      std::size_t degree = 0;
      for (model::HostId o = 0; o < m.host_count(); ++o)
        if (o != h && m.connected(h, o)) ++degree;
      if (degree > best_degree) {
        best_degree = degree;
        fc.master_host = h;
      }
    }
  }
  core::CentralizedInstantiation inst(*system, fc);

  obs::Registry metrics;
  obs::Instruments instruments;
  instruments.metrics = &metrics;
  inst.set_instruments(instruments);

  EngineConfig engine_config = options.engine;
  engine_config.seed = options.seed;
  TrafficEngine engine(inst, engine_config, instruments);
  RatekeeperConfig rk_config = options.ratekeeper;
  Ratekeeper ratekeeper(engine, inst, instruments, throttle_cell, rk_config);

  chaos::FaultInjector injector(inst, instruments);
  if (options.scenario != "none") {
    chaos::ScenarioSpec spec = chaos::scenario_by_name(options.scenario);
    spec.duration_ms = options.duration_ms;
    spec.fault_until_ms = std::min(spec.fault_until_ms, options.duration_ms);
    spec.fault_from_ms = std::min(spec.fault_from_ms, spec.fault_until_ms);
    injector.arm(chaos::FaultSchedule::compile(
        spec, system->model(), fc.master_host, options.seed));
  }

  const model::AvailabilityObjective objective;
  core::ImprovementLoop::Config loop_config;
  loop_config.interval_ms =
      options.loop_interval_ms > 0.0 ? options.loop_interval_ms : 5'000.0;
  loop_config.seed = options.seed;
  core::ImprovementLoop loop(inst, objective, loop_config);
  loop.set_instruments(instruments);

  // Forced churn: schedule every wave up front; each draws its moves from
  // a shared forked stream at fire time (fire order is deterministic).
  auto churn_rng = std::make_shared<util::Xoshiro256ss>(
      util::Xoshiro256ss(options.seed).fork(0x5ede9107));
  if (options.redeploy_at_ms > 0.0 && options.redeploy_moves > 0) {
    for (double at = options.redeploy_at_ms; at < options.duration_ms;
         at += options.redeploy_every_ms > 0.0 ? options.redeploy_every_ms
                                               : options.duration_ms) {
      inst.simulator().schedule_at(at, [&inst, churn_rng,
                                        moves = options.redeploy_moves] {
        force_redeploy(inst, *churn_rng, moves);
      });
    }
  }

  // Self-healing: the healer plans repairs against a pristine regeneration
  // of the system (the live copy's reliabilities drift with observations).
  // A periodic sampler splits the ratekeeper's SLO-violation clock into
  // repair-attributable and background shares: violation ms accrued while
  // a condemned host awaits or undergoes repair are charged to recovery.
  std::unique_ptr<desi::SystemData> heal_pristine;
  std::unique_ptr<heal::HealController> healer;
  double slo_repair_attrib_ms = 0.0;
  if (options.recovery) {
    heal_pristine = desi::Generator::generate(options.generator,
                                              options.seed);
    heal::HealConfig hc = options.heal;
    hc.seed = options.seed + 1;
    healer = std::make_unique<heal::HealController>(inst, *heal_pristine, hc);
    auto last_slo = std::make_shared<double>(0.0);
    auto sampler = std::make_shared<std::function<void()>>();
    *sampler = [&inst, &ratekeeper, &healer, &slo_repair_attrib_ms, last_slo,
                sampler, horizon = options.duration_ms] {
      const double now = ratekeeper.slo_violation_ms();
      if (healer->repair_in_flight())
        slo_repair_attrib_ms += now - *last_slo;
      *last_slo = now;
      if (inst.simulator().now() < horizon)
        inst.simulator().schedule_after(1'000.0, [sampler] { (*sampler)(); });
    };
    inst.simulator().schedule_after(1'000.0, [sampler] { (*sampler)(); });
  }

  inst.start();
  engine.start();
  ratekeeper.start();
  if (options.loop_interval_ms > 0.0) loop.start();
  if (healer) healer->start();
  inst.simulator().run_until(options.duration_ms);
  if (healer) healer->stop();
  loop.stop();
  ratekeeper.stop();
  engine.stop();

  // --- assemble the dif-traffic-v1 report --------------------------------
  RunResult result;
  const double duration_s = options.duration_ms / 1'000.0;

  util::json::Object config;
  config["arrival"] = util::json::Value(
      std::string(to_string(engine_config.arrival)));
  config["shape"] =
      util::json::Value(std::string(to_string(engine_config.shape)));
  config["rps"] = util::json::Value(engine_config.rps);
  config["closed_users"] =
      util::json::Value(static_cast<double>(engine_config.closed_users));
  config["think_ms"] = util::json::Value(engine_config.think_ms);
  config["tick_ms"] = util::json::Value(engine_config.tick_ms);
  config["path_hops"] =
      util::json::Value(static_cast<double>(engine_config.path_hops));
  config["slo_p99_ms"] = util::json::Value(rk_config.slo_p99_ms);
  config["ratekeeper_enabled"] = util::json::Value(rk_config.enabled);
  config["duration_ms"] = util::json::Value(options.duration_ms);
  config["seed"] = util::json::Value(static_cast<double>(options.seed));
  config["hosts"] =
      util::json::Value(static_cast<double>(options.generator.hosts));
  config["components"] =
      util::json::Value(static_cast<double>(options.generator.components));
  config["scenario"] = util::json::Value(options.scenario);
  util::json::Array tenants_cfg;
  for (const TenantSpec& t : engine.config().tenants) {
    util::json::Object tc;
    tc["name"] = util::json::Value(t.name);
    tc["weight"] = util::json::Value(t.weight);
    tc["tag_budget"] = util::json::Value(t.tag_budget);
    tenants_cfg.push_back(util::json::Value(std::move(tc)));
  }
  config["tenants"] = util::json::Value(std::move(tenants_cfg));

  util::json::Object tenants_doc;
  for (std::size_t t = 0; t < engine.config().tenants.size(); ++t) {
    const TenantStats& s = engine.tenants()[t];
    result.offered += s.offered;
    result.completed += s.completed;
    result.failed += s.failed;
    result.shed += s.shed;
    util::json::Object td;
    td["offered"] = util::json::Value(static_cast<double>(s.offered));
    td["completed"] = util::json::Value(static_cast<double>(s.completed));
    td["failed"] = util::json::Value(static_cast<double>(s.failed));
    td["shed"] = util::json::Value(static_cast<double>(s.shed));
    td["goodput_rps"] =
        util::json::Value(static_cast<double>(s.completed) / duration_s);
    td["p50_ms"] = util::json::Value(percentile_ms(s.latencies_ms, 0.5));
    td["p99_ms"] = util::json::Value(percentile_ms(s.latencies_ms, 0.99));
    td["slo_violation_ms"] =
        util::json::Value(ratekeeper.tenant_slo_violation_ms(t));
    tenants_doc[engine.config().tenants[t].name] =
        util::json::Value(std::move(td));
  }

  util::json::Object totals;
  totals["offered"] = util::json::Value(static_cast<double>(result.offered));
  totals["completed"] =
      util::json::Value(static_cast<double>(result.completed));
  totals["failed"] = util::json::Value(static_cast<double>(result.failed));
  totals["shed"] = util::json::Value(static_cast<double>(result.shed));
  totals["goodput_rps"] =
      util::json::Value(static_cast<double>(result.completed) / duration_s);
  const std::uint64_t admitted = result.offered - result.shed;
  totals["availability"] = util::json::Value(
      admitted > 0 ? static_cast<double>(result.completed) /
                         static_cast<double>(admitted)
                   : 1.0);

  util::json::Object failures;
  const FailureCounts& f = engine.failures();
  failures["host_down"] =
      util::json::Value(static_cast<double>(f.host_down));
  failures["partitioned"] =
      util::json::Value(static_cast<double>(f.partitioned));
  failures["migrating"] =
      util::json::Value(static_cast<double>(f.migrating));
  failures["no_path"] = util::json::Value(static_cast<double>(f.no_path));
  failures["timeout"] = util::json::Value(static_cast<double>(f.timeout));

  result.slo_violation_ms = ratekeeper.slo_violation_ms();
  util::json::Object rk;
  rk["enabled"] = util::json::Value(rk_config.enabled);
  rk["slo_violation_ms"] = util::json::Value(result.slo_violation_ms);
  rk["throttle_actions"] = util::json::Value(
      static_cast<double>(ratekeeper.throttle_actions()));
  rk["shed_actions"] =
      util::json::Value(static_cast<double>(ratekeeper.shed_actions()));
  rk["max_level_reached"] = util::json::Value(
      static_cast<double>(ratekeeper.max_level_reached()));
  const obs::Counter* batches =
      metrics.find_counter("deploy.txn.prepare_batches");
  rk["prepare_batches"] = util::json::Value(
      static_cast<double>(batches ? batches->value() : 0));
  const obs::Counter* throttled =
      metrics.find_counter("deploy.txn.prepare_throttled");
  rk["prepare_fanouts_throttled"] = util::json::Value(
      static_cast<double>(throttled ? throttled->value() : 0));

  const prism::DeployerComponent& deployer = inst.deployer();
  result.rounds = deployer.round_history().size();
  result.committed = deployer.redeployments_completed();
  result.rolled_back = deployer.rounds_rolled_back();
  for (const prism::RoundRecord& record : deployer.round_history())
    if (record.outcome == prism::TxnOutcome::kCommitted)
      result.migrations += record.moves_requested;
  util::json::Object deploy;
  deploy["rounds"] = util::json::Value(static_cast<double>(result.rounds));
  deploy["committed"] =
      util::json::Value(static_cast<double>(result.committed));
  deploy["rolled_back"] =
      util::json::Value(static_cast<double>(result.rolled_back));
  deploy["migrations"] =
      util::json::Value(static_cast<double>(result.migrations));

  util::json::Object sim;
  sim["events"] = util::json::Value(
      static_cast<double>(inst.simulator().events_processed()));
  sim["ticks"] = util::json::Value(static_cast<double>(engine.ticks()));
  sim["duration_ms"] = util::json::Value(options.duration_ms);

  util::json::Object doc;
  doc["schema"] = util::json::Value(std::string("dif-traffic-v1"));
  doc["config"] = util::json::Value(std::move(config));
  doc["totals"] = util::json::Value(std::move(totals));
  doc["tenants"] = util::json::Value(std::move(tenants_doc));
  doc["failures"] = util::json::Value(std::move(failures));
  doc["ratekeeper"] = util::json::Value(std::move(rk));
  doc["deployer"] = util::json::Value(std::move(deploy));
  // Only recovery-enabled runs carry the extra key, so recovery-off
  // reports stay byte-identical to what the pinned CI seeds expect.
  if (healer) {
    result.condemnations = healer->condemnations();
    result.recoveries_committed = healer->recoveries_committed();
    result.mean_mttr_ms = healer->mean_mttr_ms();
    result.slo_repair_attrib_ms = slo_repair_attrib_ms;
    util::json::Value recovery = healer->to_json();
    recovery.as_object()["slo_repair_attrib_ms"] =
        util::json::Value(slo_repair_attrib_ms);
    doc["recovery"] = std::move(recovery);
  }
  doc["sim"] = util::json::Value(std::move(sim));

  result.max_outstanding = engine.max_outstanding();
  result.report = util::json::Value(std::move(doc));
  result.metrics = metrics.to_json();
  return result;
}

}  // namespace dif::traffic
