#include "traffic/ratekeeper.h"

#include <algorithm>

namespace dif::traffic {

Ratekeeper::Ratekeeper(TrafficEngine& engine,
                       core::CentralizedInstantiation& inst,
                       obs::Instruments instruments,
                       std::shared_ptr<prism::PrepareThrottle> cell,
                       RatekeeperConfig config)
    : engine_(engine),
      inst_(inst),
      obs_(instruments),
      cell_(std::move(cell)),
      config_(config) {
  const std::size_t tenants = engine_.config().tenants.size();
  tenant_violation_ms_.assign(tenants, 0.0);
  bucket_snapshot_.resize(tenants);
  offered_snapshot_.assign(tenants, 0);
  if (obs_.metrics) {
    throttle_counter_ = &obs_.metrics->counter("ratekeeper.throttle_actions");
    shed_counter_ = &obs_.metrics->counter("ratekeeper.shed_actions");
    level_gauge_ = &obs_.metrics->gauge("ratekeeper.level");
  }
}

void Ratekeeper::start() {
  running_ = true;
  inst_.simulator().schedule_after(config_.control_interval_ms,
                                   [this] { control_tick(); });
}

double Ratekeeper::interval_p99_ms(std::size_t tenant) {
  if (!obs_.metrics) return 0.0;
  const obs::Histogram* h = obs_.metrics->find_histogram(
      "traffic.tenant." + engine_.config().tenants[tenant].name +
      ".latency_ms");
  if (h == nullptr) return 0.0;

  const std::vector<std::uint64_t>& buckets = h->bucket_counts();
  std::vector<std::uint64_t>& snap = bucket_snapshot_[tenant];
  snap.resize(buckets.size(), 0);

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i)
    total += buckets[i] - snap[i];
  double p99 = 0.0;
  if (total > 0) {
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(0.99 * static_cast<double>(total) + 0.5));
    std::uint64_t cumulative = 0;
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i] - snap[i];
      if (cumulative >= target) {
        // The +inf overflow bucket has no bound; stand in with twice the
        // last finite bound (only its relation to the SLO matters).
        p99 = i < bounds.size() ? bounds[i] : 2.0 * bounds.back();
        break;
      }
    }
  }
  snap.assign(buckets.begin(), buckets.end());
  return p99;
}

void Ratekeeper::control_tick() {
  if (!running_) return;
  const std::vector<TenantSpec>& tenants = engine_.config().tenants;

  // --- sample: windowed p99 per tenant, SLO-violation accounting ---------
  bool breach = false;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const double p99 = interval_p99_ms(t);
    if (p99 > config_.slo_p99_ms) {
      breach = true;
      tenant_violation_ms_[t] += config_.control_interval_ms;
    }
  }
  if (breach) slo_violation_ms_ += config_.control_interval_ms;

  // --- act: migration throttle escalation ladder -------------------------
  if (config_.enabled) {
    if (breach) {
      if (level_ < config_.max_level) {
        ++level_;
        ++throttle_actions_;
        if (throttle_counter_) throttle_counter_->add(1);
      }
    } else if (level_ > 0) {
      --level_;
    }
    max_level_reached_ = std::max(max_level_reached_, level_);
    if (level_ == 0) {
      *cell_ = prism::PrepareThrottle{};
    } else {
      cell_->max_batch = std::max<std::size_t>(
          1, static_cast<std::size_t>(8) >> static_cast<unsigned>(level_));
      cell_->inter_batch_delay_ms = config_.max_inter_batch_delay_ms *
                                    static_cast<double>(level_) /
                                    static_cast<double>(config_.max_level);
    }
    if (level_gauge_) level_gauge_->set(static_cast<double>(level_));
  }

  // --- act: tag-budget shedding under host saturation ---------------------
  bool saturated = false;
  for (model::HostId h = 0; h < inst_.system().model().host_count(); ++h)
    if (engine_.host_utilization(h) > config_.saturation_threshold)
      saturated = true;

  std::vector<std::uint64_t> offered_delta(tenants.size(), 0);
  std::uint64_t offered_total = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const std::uint64_t offered = engine_.tenants()[t].offered;
    offered_delta[t] = offered - offered_snapshot_[t];
    offered_snapshot_[t] = offered;
    offered_total += offered_delta[t];
  }
  if (config_.enabled) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const double share =
          offered_total > 0 ? static_cast<double>(offered_delta[t]) /
                                  static_cast<double>(offered_total)
                            : 0.0;
      double level = engine_.shed_level(t);
      // Shed only when users hurt AND congestion is the cause: saturation
      // without an SLO breach is headroom spent well, and sacrificing
      // goodput for it would punish tenants for latency nobody observes.
      if (breach && saturated && share > tenants[t].tag_budget) {
        level = std::min(config_.max_shed, level + config_.shed_step);
        ++shed_actions_;
        if (shed_counter_) shed_counter_->add(1);
      } else {
        level = std::max(0.0, level - config_.shed_step);
      }
      engine_.set_shed_level(t, level);
    }
  }

  inst_.simulator().schedule_after(config_.control_interval_ms,
                                   [this] { control_tick(); });
}

}  // namespace dif::traffic
