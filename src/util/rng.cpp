#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace dif::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Xoshiro256ss Xoshiro256ss::fork(std::uint64_t stream_id) const noexcept {
  // Mix the current state with the stream id through SplitMix64 so that
  // distinct ids give statistically independent children.
  SplitMix64 sm(state_[0] ^ rotl(stream_id, 32) ^ 0xd1b54a32d192ed03ULL);
  return Xoshiro256ss(sm.next() ^ stream_id);
}

double Xoshiro256ss::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256ss::uniform_int(std::uint64_t lo,
                                        std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  // Debiased modulo (Lemire-style rejection would be overkill here; the span
  // in this codebase is always tiny relative to 2^64, so plain modulo bias is
  // below 2^-40 — still, reject the tail for exactness).
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t x = (*this)();
  while (x >= limit) x = (*this)();
  return lo + x % span;
}

bool Xoshiro256ss::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256ss::normal(double mean, double stddev) noexcept {
  // Box-Muller transform; u1 nudged away from 0 to keep log() finite.
  const double u1 = uniform() + 0x1.0p-60;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Xoshiro256ss::index(std::size_t size) noexcept {
  return static_cast<std::size_t>(uniform_int(0, size - 1));
}

}  // namespace dif::util
