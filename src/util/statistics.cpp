#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dif::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile_sorted(const std::vector<double>& sorted,
                         double q) noexcept {
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats acc;
  for (const double x : samples) acc.add(x);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = percentile_sorted(sorted, 0.5);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow: capacity 0");
  buf_.reserve(capacity);
}

void SlidingWindow::add(double x) {
  if (buf_.size() < capacity_) {
    buf_.push_back(x);
    latest_index_ = buf_.size() - 1;
  } else {
    buf_[next_] = x;
    latest_index_ = next_;
    next_ = (next_ + 1) % capacity_;
  }
}

double SlidingWindow::mean() const noexcept {
  if (buf_.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : buf_) sum += x;
  return sum / static_cast<double>(buf_.size());
}

double SlidingWindow::spread() const noexcept {
  if (buf_.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(buf_.begin(), buf_.end());
  return *hi - *lo;
}

double SlidingWindow::latest() const {
  if (buf_.empty()) throw std::logic_error("SlidingWindow: empty");
  return buf_[latest_index_];
}

}  // namespace dif::util
