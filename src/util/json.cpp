#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dif::util::json {

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  throw JsonError("json: value is not a bool");
}

double Value::as_number() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  throw JsonError("json: value is not a number");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw JsonError("json: value is not a string");
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  throw JsonError("json: value is not an array");
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  throw JsonError("json: value is not an array");
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  throw JsonError("json: value is not an object");
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  throw JsonError("json: value is not an object");
}

const Value& Value::at(std::string_view key) const {
  const Object& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end())
    throw JsonError("json: missing key '" + std::string(key) + "'");
  return it->second;
}

std::optional<std::reference_wrapper<const Value>> Value::find(
    std::string_view key) const {
  if (!is_object()) return std::nullopt;
  const Object& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end()) return std::nullopt;
  return std::cref(it->second);
}

double Value::number_or(std::string_view key, double dflt) const {
  const auto v = find(key);
  return v && v->get().is_number() ? v->get().as_number() : dflt;
}

std::string Value::string_or(std::string_view key, std::string dflt) const {
  const auto v = find(key);
  return v && v->get().is_string() ? v->get().as_string() : std::move(dflt);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; emit null like most encoders
    return;
  }
  // Integers print without a decimal point for readability.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const Array& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Value& item : arr) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_value(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, item] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(key, out);
      out += indent > 0 ? ": " : ":";
      dump_value(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      fail("invalid literal");
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: fail("invalid escape sequence");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    // UTF-8 encode the BMP code point.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double result = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, result);
    if (ec != std::errc() || ptr != text_.data() + pos_)
      fail("invalid number");
    return Value(result);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace dif::util::json
