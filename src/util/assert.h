// DIF_ASSERT — internal invariant checks on hot mutation paths.
//
// Distinct from user-input validation: out-of-range *parameters* are
// reported as diagnostics (DeploymentModel::validate, check/), because tests
// and tools legitimately build broken models on purpose. DIF_ASSERT guards
// *internal* invariants that no input should ever be able to violate
// (canonical pair ordering, matrix sizing, index bounds); a failure is a
// bug in the framework itself, so it aborts with a source location.
//
// Compiled out unless DIF_ENABLE_ASSERTS is defined (CMake: -DDIF_ASSERTS=ON;
// the sanitizer CI builds turn it on). The condition must be side-effect
// free.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dif::util {

[[noreturn]] inline void assert_fail(const char* condition, const char* file,
                                     int line, const char* message) {
  std::fprintf(stderr, "DIF_ASSERT failed: %s\n  at %s:%d\n  %s\n", condition,
               file, line, message);
  std::abort();
}

}  // namespace dif::util

#ifdef DIF_ENABLE_ASSERTS
#define DIF_ASSERT(condition, message)                                   \
  do {                                                                   \
    if (!(condition))                                                    \
      ::dif::util::assert_fail(#condition, __FILE__, __LINE__, message); \
  } while (false)
#else
#define DIF_ASSERT(condition, message) \
  do {                                 \
  } while (false)
#endif
