// Lightweight leveled logger.
//
// The framework components (monitors, analyzers, effectors) log their
// decisions through this so example programs can show the improvement loop at
// work; tests run with the logger silenced.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dif::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-wide logger. Thread-compatible: configure once up front, then log
/// from a single thread (the framework is single-threaded by design; the
/// thread-pool scaffold serializes its own logging).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view component,
           std::string_view message);

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_;
  }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

/// Logs with lazy message construction: arguments are only stringified when
/// the level is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.log(level, component, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  log(LogLevel::kDebug, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  log(LogLevel::kInfo, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  log(LogLevel::kWarn, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  log(LogLevel::kError, component, std::forward<Args>(args)...);
}

}  // namespace dif::util
