#include "util/logging.h"

#include <cstdio>

namespace dif::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component,
             std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()),
                 message.data());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    const LogLevel level = level_;
    *this = Logger();  // restores the stderr sink
    level_ = level;
  }
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (enabled(level)) sink_(level, component, message);
}

}  // namespace dif::util
