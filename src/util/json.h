// Minimal JSON document model, parser, and writer.
//
// Used by the xADL-lite architecture-description serialization (desi/xadl.h)
// and by benchmark result dumps. Supports the full JSON grammar except for
// \uXXXX surrogate pairs outside the BMP (sufficient for our ASCII documents).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dif::util::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys ordered, so serialization is deterministic.
using Object = std::map<std::string, Value>;

/// Thrown on malformed input or type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value: null, bool, number (double), string, array, or object.
class Value {
 public:
  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}
  Value(bool b) noexcept : data_(b) {}
  Value(double d) noexcept : data_(d) {}
  Value(int i) noexcept : data_(static_cast<double>(i)) {}
  Value(unsigned i) noexcept : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) noexcept : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) noexcept : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) noexcept : data_(std::move(s)) {}
  Value(Array a) noexcept : data_(std::move(a)) {}
  Value(Object o) noexcept : data_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<Object>(data_);
  }

  /// Checked accessors; throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member lookup; throws JsonError if not an object or key missing.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// Object member lookup returning nullopt when absent.
  [[nodiscard]] std::optional<std::reference_wrapper<const Value>> find(
      std::string_view key) const;

  /// Convenience: member as number/string with a default when absent.
  [[nodiscard]] double number_or(std::string_view key, double dflt) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string dflt) const;

  /// Serializes to a compact string, or pretty-printed when indent > 0.
  [[nodiscard]] std::string dump(int indent = 0) const;

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document. Throws JsonError on malformed input or
/// trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace dif::util::json
