// Deterministic, seedable random number generation.
//
// All randomness in the framework flows through these generators so that every
// simulation, algorithm run, and test is reproducible from a single seed.
// Xoshiro256** is the workhorse; SplitMix64 seeds it and derives independent
// streams (one per host, per algorithm, per fluctuation model, ...).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace dif::util {

/// SplitMix64: tiny, fast generator used for seeding and stream derivation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Derives an independent generator for a named substream. Deterministic:
  /// the same (parent seed, stream id) always yields the same child stream.
  [[nodiscard]] Xoshiro256ss fork(std::uint64_t stream_id) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Normally distributed value (Box-Muller, no caching).
  double normal(double mean, double stddev) noexcept;

  /// Uniformly picks an index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dif::util
