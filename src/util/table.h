// ASCII table rendering.
//
// DeSi's TableView and every benchmark harness print their results through
// this, so the whole suite produces consistent, paper-style tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dif::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows, render.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Sets alignment for one column (default: left for col 0, right for rest).
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
[[nodiscard]] std::string fmt(double value, int decimals = 3);

/// Formats a double as a percentage, e.g. fmt_pct(0.123) == "12.3%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);

/// Formats nanoseconds into a human unit (ns/us/ms/s).
[[nodiscard]] std::string fmt_duration_ns(double nanos);

}  // namespace dif::util
