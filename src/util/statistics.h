// Streaming and batch descriptive statistics.
//
// Used by monitors (stability filtering over sampling windows), the analyzer
// (availability-history profiles), and the benchmark harness (seed sweeps).
#pragma once

#include <cstddef>
#include <vector>

namespace dif::util {

/// Welford online mean/variance accumulator. O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel Welford).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; copies and sorts internally. Empty input -> all zeros.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated percentile of a sorted sample vector; q in [0, 1].
/// Requires sorted non-empty input.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q) noexcept;

/// Fixed-capacity sliding window of recent samples; evicts oldest.
/// Used by the monitor stability filter and the analyzer execution profile.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] bool full() const noexcept { return buf_.size() == capacity_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double mean() const noexcept;
  /// max - min over the window; 0 when empty.
  [[nodiscard]] double spread() const noexcept;
  /// Most recent sample; requires non-empty.
  [[nodiscard]] double latest() const;
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return buf_;
  }
  void clear() noexcept { buf_.clear(); next_ = 0; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // insertion cursor once full
  std::vector<double> buf_;
  std::size_t latest_index_ = 0;
};

}  // namespace dif::util
