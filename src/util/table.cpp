#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dif::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit_cell = [&](std::string& out, const std::string& cell,
                             std::size_t c) {
    const std::size_t pad = widths[c] - cell.size();
    if (aligns_[c] == Align::kRight) out.append(pad, ' ');
    out += cell;
    if (aligns_[c] == Align::kLeft) out.append(pad, ' ');
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    emit_cell(out, headers_[c], c);
  }
  out += '\n';
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  out.append(total + 2 * (widths.size() - 1), '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      emit_cell(out, row[c], c);
    }
    out += '\n';
  }
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string fmt_duration_ns(double nanos) {
  if (nanos < 1e3) return fmt(nanos, 0) + " ns";
  if (nanos < 1e6) return fmt(nanos / 1e3, 2) + " us";
  if (nanos < 1e9) return fmt(nanos / 1e6, 2) + " ms";
  return fmt(nanos / 1e9, 3) + " s";
}

}  // namespace dif::util
