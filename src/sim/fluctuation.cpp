#include "sim/fluctuation.h"

#include <algorithm>
#include <stdexcept>

namespace dif::sim {

FluctuationModel::FluctuationModel(SimNetwork& network, Params params,
                                   std::uint64_t seed)
    : network_(network), params_(params), rng_(seed) {
  if (params.interval_ms <= 0.0)
    throw std::invalid_argument("FluctuationModel: non-positive interval");
  const std::size_t k = network.host_count();
  base_bandwidth_.assign(k * k, 0.0);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = a + 1; b < k; ++b)
      base_bandwidth_[a * k + b] =
          network.link(static_cast<model::HostId>(a),
                       static_cast<model::HostId>(b))
              .bandwidth;
}

void FluctuationModel::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void FluctuationModel::schedule_next() {
  network_.simulator().schedule_after(params_.interval_ms, [this] {
    if (!running_) return;
    step_once();
    schedule_next();
  });
}

void FluctuationModel::step_once() {
  ++steps_;
  const std::size_t k = network_.host_count();
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      LinkState state = network_.link(ha, hb);
      if (state.bandwidth <= 0.0) continue;  // never create new links
      state.reliability = std::clamp(
          state.reliability + rng_.uniform(-params_.reliability_step,
                                           params_.reliability_step),
          params_.reliability_floor, params_.reliability_ceil);
      const double base = base_bandwidth_[a * k + b];
      state.bandwidth = std::clamp(
          state.bandwidth *
              (1.0 + rng_.uniform(-params_.bandwidth_step_fraction,
                                  params_.bandwidth_step_fraction)),
          base * params_.bandwidth_floor_fraction,
          base * params_.bandwidth_ceil_fraction);
      network_.set_link(ha, hb, state);
    }
  }
}

void PartitionSchedule::add_outage(model::HostId a, model::HostId b,
                                   TimePoint down_at_ms, TimePoint up_at_ms) {
  if (up_at_ms <= down_at_ms)
    throw std::invalid_argument("PartitionSchedule: outage ends before start");
  network_.simulator().schedule_at(down_at_ms,
                                   [this, a, b] { network_.sever(a, b); });
  network_.simulator().schedule_at(up_at_ms,
                                   [this, a, b] { network_.restore(a, b); });
}

}  // namespace dif::sim
