// Runtime fluctuation of network parameters.
//
// The paper's premise: system parameters "are typically not known at system
// design time and/or may fluctuate at run time". FluctuationModel drives a
// bounded random walk over every link's reliability and bandwidth at a fixed
// cadence; PartitionSchedule scripts hard disconnections. Both write into a
// SimNetwork, which is what the Prism-MW monitors then observe — closing the
// monitor -> model -> algorithm -> effector loop the framework exists for.
#pragma once

#include <vector>

#include "model/ids.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dif::sim {

class FluctuationModel {
 public:
  struct Params {
    /// Time between fluctuation steps.
    double interval_ms = 1000.0;
    /// Max reliability change per step (uniform in [-step, step]).
    double reliability_step = 0.02;
    /// Max relative bandwidth change per step.
    double bandwidth_step_fraction = 0.05;
    /// Reliability is clamped into [floor, ceil].
    double reliability_floor = 0.05;
    double reliability_ceil = 1.0;
    /// Bandwidth is clamped into [orig * floor_frac, orig * ceil_frac].
    double bandwidth_floor_fraction = 0.25;
    double bandwidth_ceil_fraction = 2.0;
  };

  /// Snapshots every existing link as its walk origin. The network and its
  /// simulator must outlive this object.
  FluctuationModel(SimNetwork& network, Params params, std::uint64_t seed);

  /// Begins stepping every interval; idempotent.
  void start();
  /// Stops at the next step boundary.
  void stop() noexcept { running_ = false; }

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  /// Applies one fluctuation step immediately (exposed for tests).
  void step_once();

 private:
  void schedule_next();

  SimNetwork& network_;
  Params params_;
  util::Xoshiro256ss rng_;
  bool running_ = false;
  std::uint64_t steps_ = 0;
  /// Original bandwidth per canonical link pair, for clamping.
  std::vector<double> base_bandwidth_;
};

/// Scripts link outages: sever (a, b) at `down_at_ms`, restore at
/// `up_at_ms`. Used by the disconnected-operation example.
class PartitionSchedule {
 public:
  explicit PartitionSchedule(SimNetwork& network) : network_(network) {}

  void add_outage(model::HostId a, model::HostId b, TimePoint down_at_ms,
                  TimePoint up_at_ms);

 private:
  SimNetwork& network_;
};

}  // namespace dif::sim
