#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dif::sim {

void Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  queue_.push({std::max(t, now_), next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(double delay_ms, std::function<void()> fn) {
  schedule_at(now_ + std::max(delay_ms, 0.0), std::move(fn));
}

void Simulator::fire_next() {
  // Move the event out before popping: the callback may schedule new events,
  // which mutates the queue.
  Scheduled event = std::move(const_cast<Scheduled&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.fn();
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    fire_next();
    ++fired;
  }
  return fired;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    fire_next();
    ++fired;
  }
  now_ = std::max(now_, t);
  return fired;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  fire_next();
  return true;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace dif::sim
