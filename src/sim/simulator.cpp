#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dif::sim {

void Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  heap_.push_back({std::max(t, now_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Simulator::schedule_after(double delay_ms, std::function<void()> fn) {
  schedule_at(now_ + std::max(delay_ms, 0.0), std::move(fn));
}

std::size_t Simulator::fire_batch(std::size_t limit) {
  if (heap_.empty() || limit == 0) return 0;
  batch_.clear();
  batch_pos_ = 0;
  const TimePoint t = heap_.front().time;
  // Drain the whole same-timestamp run up front: handlers that schedule at
  // time t get sequence numbers larger than everything drained here, so
  // executing the drained run first is exactly (time, seq) order. A capped
  // drain leaves the tail of the run in the heap; it fires (still in seq
  // order) on the next call.
  while (!heap_.empty() && heap_.front().time == t && batch_.size() < limit) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    batch_.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  now_ = t;
  ++batches_;
  std::size_t fired = 0;
  while (batch_pos_ < batch_.size()) {
    auto fn = std::move(batch_[batch_pos_].fn);
    ++batch_pos_;
    ++processed_;
    ++fired;
    fn();  // may schedule new events or clear() the rest of the batch
  }
  batch_.clear();
  batch_pos_ = 0;
  return fired;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!heap_.empty() && fired < max_events)
    fired += fire_batch(max_events - fired);
  return fired;
}

std::size_t Simulator::run_until(TimePoint t) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.front().time <= t)
    fired += fire_batch(SIZE_MAX);
  now_ = std::max(now_, t);
  return fired;
}

bool Simulator::step() { return fire_batch(1) == 1; }

void Simulator::clear() {
  heap_.clear();
  // Keep the already-fired prefix (their fns are moved-out shells) and drop
  // the unfired tail, so an in-flight fire_batch loop stops immediately.
  batch_.resize(batch_pos_);
}

}  // namespace dif::sim
