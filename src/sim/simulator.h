// Deterministic discrete-event simulation kernel.
//
// The paper's tools ran on physical PDAs and PCs; this simulator is the
// substitute substrate (see DESIGN.md §2). Everything above it — the
// Prism-MW middleware, monitors, effectors, the improvement loop — executes
// against simulated time, so experiments are exactly reproducible and
// disconnection/fluctuation scenarios can be scripted.
//
// Events fire in (time, insertion-sequence) order: two events at the same
// timestamp run in the order they were scheduled. The dispatch loop drains
// whole same-timestamp runs in one batch (one clock write and one heap
// restructure per run, receiver-style), which is where fleet-scale message
// storms spend their time; the (time, seq) contract is unaffected because a
// handler scheduled during a batch always gets a larger sequence number than
// every drained event.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dif::sim {

/// Simulated time in milliseconds since simulation start.
using TimePoint = double;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now; earlier times are clamped
  /// to now — an event cannot fire in the past).
  void schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` `delay_ms` after the current time (negative clamps to 0).
  void schedule_after(double delay_ms, std::function<void()> fn);

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to exactly
  /// t (even if no event fired). Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Fires the single earliest event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + (batch_.size() - batch_pos_);
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  /// Dispatch batches executed so far (a batch is one same-timestamp run;
  /// events_processed() / batches_dispatched() is the mean batch size).
  [[nodiscard]] std::uint64_t batches_dispatched() const noexcept {
    return batches_;
  }

  /// Drops all pending events (the clock is left where it is). Safe to call
  /// from inside a handler: the rest of the current batch is dropped too.
  void clear();

 private:
  struct Scheduled {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drains the earliest same-timestamp run (at most `limit` events) into
  /// batch_ and executes it. Returns the number of events fired. Events a
  /// handler schedules at the batch timestamp land behind the drained run
  /// (larger seq) and form the next batch. Not re-entrant: handlers may
  /// schedule and clear(), but must not call run()/step() recursively.
  std::size_t fire_batch(std::size_t limit);

  /// Explicit binary heap (std::push_heap / std::pop_heap) ordered by
  /// (time, seq). An explicit vector — unlike std::priority_queue — lets the
  /// dispatcher move events out without const_cast and lets clear() drop
  /// storage without popping one element at a time.
  std::vector<Scheduled> heap_;
  /// Current dispatch batch; entries before batch_pos_ already fired.
  std::vector<Scheduled> batch_;
  std::size_t batch_pos_ = 0;
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace dif::sim
