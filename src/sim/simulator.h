// Deterministic discrete-event simulation kernel.
//
// The paper's tools ran on physical PDAs and PCs; this simulator is the
// substitute substrate (see DESIGN.md §2). Everything above it — the
// Prism-MW middleware, monitors, effectors, the improvement loop — executes
// against simulated time, so experiments are exactly reproducible and
// disconnection/fluctuation scenarios can be scripted.
//
// Events fire in (time, insertion-sequence) order: two events at the same
// timestamp run in the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dif::sim {

/// Simulated time in milliseconds since simulation start.
using TimePoint = double;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now; earlier times are clamped
  /// to now — an event cannot fire in the past).
  void schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` `delay_ms` after the current time (negative clamps to 0).
  void schedule_after(double delay_ms, std::function<void()> fn);

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= t, then advances the clock to exactly
  /// t (even if no event fired). Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Fires the single earliest event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Drops all pending events (the clock is left where it is).
  void clear();

 private:
  struct Scheduled {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void fire_next();

  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace dif::sim
