#include "sim/network.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dif::sim {

SimNetwork::SimNetwork(Simulator& simulator, std::size_t host_count,
                       std::uint64_t seed)
    : sim_(simulator),
      k_(host_count),
      links_(host_count * host_count),
      link_free_(host_count * host_count, 0.0),
      link_dropped_(host_count * host_count, 0),
      host_up_(host_count, true),
      receivers_(host_count),
      rng_(seed) {
  if (host_count == 0) throw std::invalid_argument("SimNetwork: no hosts");
}

SimNetwork SimNetwork::from_model(Simulator& simulator,
                                  const model::DeploymentModel& m,
                                  std::uint64_t seed) {
  SimNetwork net(simulator, m.host_count(), seed);
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const model::PhysicalLink& link = m.physical_link(
          static_cast<model::HostId>(a), static_cast<model::HostId>(b));
      if (link.bandwidth > 0.0) {
        net.set_link(static_cast<model::HostId>(a),
                     static_cast<model::HostId>(b),
                     {link.reliability, link.bandwidth, link.delay_ms, false});
      }
    }
  }
  return net;
}

std::size_t SimNetwork::index(model::HostId a, model::HostId b) const {
  if (a >= k_ || b >= k_)
    throw std::out_of_range("SimNetwork: bad host id");
  const auto [lo, hi] = std::minmax(a, b);
  return static_cast<std::size_t>(lo) * k_ + hi;
}

void SimNetwork::set_link(model::HostId a, model::HostId b, LinkState state) {
  if (a == b) throw std::invalid_argument("SimNetwork: self link");
  links_[index(a, b)] = state;
}

const LinkState& SimNetwork::link(model::HostId a, model::HostId b) const {
  return links_[index(a, b)];
}

void SimNetwork::sever(model::HostId a, model::HostId b) {
  links_[index(a, b)].severed = true;
}

void SimNetwork::restore(model::HostId a, model::HostId b) {
  links_[index(a, b)].severed = false;
}

void SimNetwork::fail_host(model::HostId host) {
  if (host >= k_) throw std::out_of_range("SimNetwork: bad host id");
  host_up_[host] = false;
}

void SimNetwork::recover_host(model::HostId host) {
  if (host >= k_) throw std::out_of_range("SimNetwork: bad host id");
  host_up_[host] = true;
}

bool SimNetwork::host_up(model::HostId host) const {
  if (host >= k_) throw std::out_of_range("SimNetwork: bad host id");
  return host_up_[host];
}

bool SimNetwork::reachable(model::HostId a, model::HostId b) const {
  if (a >= k_ || b >= k_) throw std::out_of_range("SimNetwork: bad host id");
  if (!host_up_[a] || !host_up_[b]) return false;
  if (a == b) return true;
  const LinkState& link = links_[index(a, b)];
  return !link.severed && link.bandwidth > 0.0;
}

double SimNetwork::backlog_ms(model::HostId a, model::HostId b) const {
  if (a >= k_ || b >= k_) throw std::out_of_range("SimNetwork: bad host id");
  if (a == b) return 0.0;
  return std::max(0.0, link_free_[index(a, b)] - sim_.now());
}

void SimNetwork::reset_stats() noexcept {
  stats_ = MessageStats{};
  std::fill(link_dropped_.begin(), link_dropped_.end(), 0);
}

std::uint64_t SimNetwork::link_dropped(model::HostId a, model::HostId b) const {
  return link_dropped_[index(a, b)];
}

std::vector<LinkDrops> SimNetwork::dropped_links() const {
  std::vector<LinkDrops> result;
  for (std::size_t a = 0; a < k_; ++a)
    for (std::size_t b = a + 1; b < k_; ++b)
      if (const std::uint64_t n = link_dropped_[a * k_ + b])
        result.push_back({static_cast<model::HostId>(a),
                          static_cast<model::HostId>(b), n});
  return result;
}

void SimNetwork::set_receiver(model::HostId host, Receiver receiver) {
  if (host >= k_) throw std::out_of_range("SimNetwork: bad host id");
  receivers_[host] = std::move(receiver);
}

void SimNetwork::set_instruments(obs::Instruments instruments) {
  obs_ = instruments;
  metric_ = CachedMetrics{};
  link_queue_ms_.assign(obs_.metrics ? k_ * k_ : 0, nullptr);
  if (!obs_.metrics) return;
  obs::Registry& r = *obs_.metrics;
  metric_.sent = &r.counter("net.sent");
  metric_.delivered = &r.counter("net.delivered");
  metric_.dropped = &r.counter("net.dropped");
  metric_.unroutable = &r.counter("net.unroutable");
  metric_.fuzz_duplicated = &r.counter("net.fuzz.duplicated");
  metric_.fuzz_dropped = &r.counter("net.fuzz.dropped");
  metric_.fuzz_delayed = &r.counter("net.fuzz.delayed");
  metric_.kb_sent = &r.gauge("net.kb_sent");
  metric_.kb_delivered = &r.gauge("net.kb_delivered");
  metric_.queue_ms = &r.histogram("net.queue_ms");
}

obs::Histogram* SimNetwork::link_queue_histogram(std::size_t li,
                                                model::HostId from,
                                                model::HostId to) {
  if (!obs_.metrics) return nullptr;
  if (!link_queue_ms_[li]) {
    const auto [lo, hi] = std::minmax(from, to);
    link_queue_ms_[li] =
        &obs_.metrics->histogram("net.link." + std::to_string(lo) + "-" +
                                 std::to_string(hi) + ".queue_ms");
  }
  return link_queue_ms_[li];
}

bool SimNetwork::send(NetMessage msg) {
  ++stats_.sent;
  stats_.kb_sent += msg.size_kb;
  if (metric_.sent) {
    metric_.sent->add(1);
    metric_.kb_sent->add(msg.size_kb);
  }

  const auto deliver = [this](NetMessage m, double delay_ms) {
    sim_.schedule_after(delay_ms, [this, m = std::move(m)]() {
      // A host that crashed while the message was in flight receives
      // nothing.
      if (!host_up_[m.to]) {
        ++stats_.dropped;
        if (m.from != m.to) ++link_dropped_[index(m.from, m.to)];
        if (metric_.dropped) metric_.dropped->add(1);
        return;
      }
      ++stats_.delivered;
      stats_.kb_delivered += m.size_kb;
      if (metric_.delivered) {
        metric_.delivered->add(1);
        metric_.kb_delivered->add(m.size_kb);
      }
      if (receivers_[m.to]) receivers_[m.to](m);
    });
  };

  if (msg.from >= k_ || msg.to >= k_)
    throw std::out_of_range("SimNetwork: bad host id");
  if (!host_up_[msg.from] || !host_up_[msg.to]) {
    ++stats_.unroutable;
    if (metric_.unroutable) metric_.unroutable->add(1);
    return false;
  }
  if (msg.from == msg.to) {
    deliver(std::move(msg), 0.0);
    return true;
  }

  const std::size_t li = index(msg.from, msg.to);
  const LinkState& link = links_[li];
  if (link.severed || link.bandwidth <= 0.0) {
    ++stats_.unroutable;
    if (metric_.unroutable) metric_.unroutable->add(1);
    return false;
  }
  double fuzz_delay_ms = 0.0;
  if (fuzz_hook_ && !fuzz_replay_) {
    if (const std::optional<FuzzDecision> fuzz = fuzz_hook_(msg)) {
      // Duplicates are scheduled before a drop verdict is applied: "drop
      // the original, deliver a copy later" is exactly a reorder.
      for (int copy = 1; copy <= fuzz->duplicates; ++copy) {
        sim_.schedule_after(
            fuzz->duplicate_gap_ms * copy, [this, dup = msg]() mutable {
              fuzz_replay_ = true;
              send(std::move(dup));
              fuzz_replay_ = false;
            });
        if (metric_.fuzz_duplicated) metric_.fuzz_duplicated->add(1);
      }
      if (fuzz->drop) {
        ++stats_.dropped;
        ++link_dropped_[li];
        if (metric_.dropped) {
          metric_.dropped->add(1);
          metric_.fuzz_dropped->add(1);
        }
        return true;
      }
      fuzz_delay_ms = std::max(fuzz->delay_ms, 0.0);
      if (fuzz_delay_ms > 0.0 && metric_.fuzz_delayed)
        metric_.fuzz_delayed->add(1);
    }
  }
  if (!rng_.chance(link.reliability)) {
    ++stats_.dropped;
    ++link_dropped_[li];
    if (metric_.dropped) metric_.dropped->add(1);
    // The sender does not learn about the loss (fire-and-forget events);
    // reliability protocols are layered above when needed.
    return true;
  }
  // Serialize transfers on the link: a transfer starts when the link frees
  // up, takes size/bandwidth, and the message additionally rides the
  // propagation delay.
  const TimePoint start = std::max(sim_.now(), link_free_[li]);
  const double transfer_ms =
      1000.0 * std::max(msg.size_kb, 0.0) / link.bandwidth;
  link_free_[li] = start + transfer_ms;
  const double queue_ms = start - sim_.now();
  if (metric_.queue_ms) {
    metric_.queue_ms->observe(queue_ms);
    link_queue_histogram(li, msg.from, msg.to)->observe(queue_ms);
  }
  const double total_delay =
      queue_ms + transfer_ms + link.delay_ms + fuzz_delay_ms;
  deliver(std::move(msg), total_delay);
  return true;
}

}  // namespace dif::sim
