// Simulated network connecting the hosts of a distributed system.
//
// Stands in for the paper's physical network (DESIGN.md §2): every pair of
// hosts may have a link with a reliability (message survival probability),
// a bandwidth (KB/s, transfers are serialized per link), and a propagation
// delay. Links can be severed and restored at runtime to script the
// "network disconnections during system execution" the paper's motivating
// scenario is built around.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "model/deployment_model.h"
#include "model/ids.h"
#include "obs/instruments.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dif::sim {

/// Runtime state of one physical link.
struct LinkState {
  double reliability = 0.0;   // delivery probability in [0, 1]
  double bandwidth = 0.0;     // KB/s; <= 0 means no link
  double delay_ms = 0.0;      // propagation delay
  bool severed = false;       // hard partition overrides everything
};

/// A message in flight between two hosts.
struct NetMessage {
  model::HostId from = 0;
  model::HostId to = 0;
  /// Demultiplexing label ("app", "monitor", "deploy", ...).
  std::string channel;
  /// Opaque payload (serialized Prism-MW events, component state, ...).
  std::vector<std::uint8_t> payload;
  /// Size used for bandwidth accounting (KB); may exceed payload.size()
  /// to model application data not literally materialized in the test.
  double size_kb = 0.0;
};

/// Delivery counters, total and per link.
struct MessageStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;      // lost to reliability
  std::uint64_t unroutable = 0;   // no link / severed
  double kb_sent = 0.0;
  double kb_delivered = 0.0;
};

/// One link's share of the drop count (canonical pair, a < b).
struct LinkDrops {
  model::HostId a = 0;
  model::HostId b = 0;
  std::uint64_t dropped = 0;
};

/// A fuzz hook's verdict on one outbound message (chaos/fuzz.h). Applied
/// after the routability checks and before the reliability draw, so a
/// mutation never masks (or is masked by) an unroutable verdict:
///   drop        the message dies on the link (charged like a loss)
///   delay_ms    extra hold before the transfer starts (a large value past
///               later messages' arrivals is a reorder)
///   duplicates  extra copies re-entering send() after duplicate_gap_ms
///               each; replayed copies are never re-fuzzed
struct FuzzDecision {
  bool drop = false;
  double delay_ms = 0.0;
  int duplicates = 0;
  double duplicate_gap_ms = 0.0;
};

class SimNetwork {
 public:
  /// The simulator must outlive the network.
  SimNetwork(Simulator& simulator, std::size_t host_count,
             std::uint64_t seed);

  /// Builds a network whose links mirror `m`'s physical links.
  static SimNetwork from_model(Simulator& simulator,
                               const model::DeploymentModel& m,
                               std::uint64_t seed);

  [[nodiscard]] std::size_t host_count() const noexcept { return k_; }

  // --- topology -----------------------------------------------------------

  void set_link(model::HostId a, model::HostId b, LinkState state);
  [[nodiscard]] const LinkState& link(model::HostId a, model::HostId b) const;

  /// Severs / restores a link without losing its parameters.
  void sever(model::HostId a, model::HostId b);
  void restore(model::HostId a, model::HostId b);

  /// Host failure injection: a down host can neither send nor receive on
  /// any of its links (all other link state is preserved and comes back
  /// when the host recovers). Models device crashes/battery death — the
  /// dependability events the paper's framework reacts to.
  void fail_host(model::HostId host);
  void recover_host(model::HostId host);
  [[nodiscard]] bool host_up(model::HostId host) const;

  /// Can a message currently travel between the two hosts?
  [[nodiscard]] bool reachable(model::HostId a, model::HostId b) const;

  /// Current transfer-queue backlog on the (a, b) link: how long a message
  /// sent right now would wait for the serialized transfer slot before its
  /// own transfer starts (0 for local pairs and idle links). The traffic
  /// engine charges user requests this wait so they queue behind bulk
  /// migration transfers without materializing their own bytes.
  [[nodiscard]] double backlog_ms(model::HostId a, model::HostId b) const;

  // --- messaging ----------------------------------------------------------

  using Receiver = std::function<void(const NetMessage&)>;

  /// Installs the receiver invoked when a message arrives at `host`.
  void set_receiver(model::HostId host, Receiver receiver);

  /// Sends `msg`. Local (from == to) messages are delivered next tick with
  /// no loss. Remote messages are dropped with probability 1 - reliability;
  /// surviving ones arrive after delay + serialized transfer time. Returns
  /// false when the message was immediately unroutable.
  bool send(NetMessage msg);

  [[nodiscard]] const MessageStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept;

  /// Drops charged to the (a, b) link: reliability losses plus messages that
  /// were in flight on the link when the receiver crashed. Local (a == a)
  /// deliveries are never charged to a link.
  [[nodiscard]] std::uint64_t link_dropped(model::HostId a,
                                           model::HostId b) const;
  /// Every link with at least one drop, in canonical (a, b) order —
  /// campaign reports use this to localize lossy links.
  [[nodiscard]] std::vector<LinkDrops> dropped_links() const;

  /// Installs (or, with an empty function, removes) the message-level fuzz
  /// interceptor. The hook sees every routable remote message exactly once
  /// — duplicates it injects are replayed verbatim, not re-fuzzed — and
  /// returning nullopt passes the message through untouched. Fuzz drops are
  /// charged to the link like reliability losses ("net.fuzz.*" counters
  /// additionally attribute every mutation).
  using FuzzHook = std::function<std::optional<FuzzDecision>(const NetMessage&)>;
  void set_fuzz_hook(FuzzHook hook) { fuzz_hook_ = std::move(hook); }

  /// Attaches observability sinks. Counters mirror MessageStats under
  /// "net.*"; each link additionally feeds a queueing-delay histogram
  /// ("net.link.<lo>-<hi>.queue_ms": time a message waited for the link's
  /// serialized transfer slot, excluding propagation delay). Metric handles
  /// are resolved here once — the send path must not rebuild metric names
  /// per message (registry references are allocation-stable).
  void set_instruments(obs::Instruments instruments);

  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }

 private:
  /// Pre-resolved "net.*" metric handles; null when observability is off.
  struct CachedMetrics {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* unroutable = nullptr;
    obs::Counter* fuzz_duplicated = nullptr;
    obs::Counter* fuzz_dropped = nullptr;
    obs::Counter* fuzz_delayed = nullptr;
    obs::Gauge* kb_sent = nullptr;
    obs::Gauge* kb_delivered = nullptr;
    obs::Histogram* queue_ms = nullptr;
  };

  [[nodiscard]] std::size_t index(model::HostId a, model::HostId b) const;
  /// The (lazily created) per-link queue-delay histogram, or null when
  /// metrics are off. Lazy because only links that actually carry traffic
  /// should appear in the registry (k^2 histograms would swamp it).
  [[nodiscard]] obs::Histogram* link_queue_histogram(std::size_t li,
                                                     model::HostId from,
                                                     model::HostId to);

  Simulator& sim_;
  std::size_t k_;
  std::vector<LinkState> links_;        // canonical-pair square matrix
  std::vector<TimePoint> link_free_;    // per-link transfer queue tail
  std::vector<std::uint64_t> link_dropped_;  // per-link share of dropped
  std::vector<bool> host_up_;
  std::vector<Receiver> receivers_;
  util::Xoshiro256ss rng_;
  MessageStats stats_;
  obs::Instruments obs_;
  CachedMetrics metric_;
  std::vector<obs::Histogram*> link_queue_ms_;  // lazy per-link handles
  FuzzHook fuzz_hook_;
  bool fuzz_replay_ = false;  // true while re-sending an injected duplicate
};

}  // namespace dif::sim
