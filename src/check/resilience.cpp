#include "check/resilience.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/deployment.h"
#include "model/deployment_model.h"

namespace dif::check {

namespace {

using model::ComponentId;
using model::DeploymentModel;
using model::HostId;

/// Joins up to `cap` names, appending "+N more" when truncated.
std::string join_names(const std::vector<std::string>& names,
                       std::size_t cap) {
  std::string out;
  const std::size_t shown = std::min(names.size(), cap);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  if (names.size() > shown)
    out += ", +" + std::to_string(names.size() - shown) + " more";
  return out;
}

/// Diagnostic sink with a hard cap; overflow collapses into one summary.
class Emitter {
 public:
  Emitter(CheckReport& report, std::size_t cap) : report_(report), cap_(cap) {}

  void add(Diagnostic d) {
    if (report_.diagnostics().size() < cap_)
      report_.add(std::move(d));
    else
      ++suppressed_;
  }

  void flush() {
    if (suppressed_ == 0) return;
    report_.add({Rule::kResilienceSpof,
                 Severity::kWarning,
                 {"model"},
                 std::to_string(suppressed_) +
                     " further resilience finding(s) suppressed",
                 "raise ResilienceOptions::max_diagnostics to see them all"});
  }

 private:
  CheckReport& report_;
  std::size_t cap_;
  std::size_t suppressed_ = 0;
};

/// Connected-component labels of the host graph with `failed` hosts
/// removed. Failed hosts keep label k (never matched against).
std::vector<std::size_t> surviving_labels(
    const std::vector<std::vector<HostId>>& adj,
    const std::vector<bool>& failed) {
  const std::size_t k = adj.size();
  std::vector<std::size_t> label(k, k);
  std::size_t next = 0;
  std::vector<HostId> stack;
  for (std::size_t root = 0; root < k; ++root) {
    if (failed[root] || label[root] != k) continue;
    label[root] = next;
    stack.push_back(static_cast<HostId>(root));
    while (!stack.empty()) {
      const HostId h = stack.back();
      stack.pop_back();
      for (const HostId other : adj[h]) {
        if (failed[other] || label[other] != k) continue;
        label[other] = next;
        stack.push_back(other);
      }
    }
    ++next;
  }
  return label;
}

/// Minimum vertex cut between two hosts via unit-capacity max-flow over the
/// split graph: host i becomes in-node 2i and out-node 2i+1 joined by a
/// capacity-1 internal edge; each physical link contributes two directed
/// unbounded edges out(a)→in(b), out(b)→in(a). The cut members are the
/// hosts whose internal edge is saturated across the final residual
/// reachability frontier.
class VertexCut {
 public:
  explicit VertexCut(const std::vector<std::vector<HostId>>& adj)
      : adj_(adj) {}

  /// The minimum host set (excluding the endpoints) whose removal
  /// disconnects s from t, when its size is ≤ limit; nullopt when the cut
  /// is larger (or infinite: a direct s—t link exists).
  [[nodiscard]] std::optional<std::vector<HostId>> cut(HostId s, HostId t,
                                                       std::size_t limit) {
    const std::size_t k = adj_.size();
    graph_.assign(2 * k, {});
    for (std::size_t i = 0; i < k; ++i)
      add_edge(in(i), out(i), 1);
    for (std::size_t a = 0; a < k; ++a)
      for (const HostId b : adj_[a]) {
        if (a == s && b == t) return std::nullopt;  // uncuttable direct link
        add_edge(out(a), in(b), kUnbounded);
      }

    std::size_t flow = 0;
    while (flow <= limit && augment(out(s), in(t))) ++flow;
    if (flow > limit) return std::nullopt;

    const std::vector<bool> reach = residual_reachable(out(s));
    std::vector<HostId> members;
    for (std::size_t i = 0; i < k; ++i) {
      if (i == s || i == t) continue;
      if (reach[static_cast<std::size_t>(in(i))] &&
          !reach[static_cast<std::size_t>(out(i))])
        members.push_back(static_cast<HostId>(i));
    }
    return members;
  }

 private:
  static constexpr int kUnbounded = 1 << 28;

  struct Edge {
    int to;
    int cap;
    int rev;
  };

  static int in(std::size_t host) { return static_cast<int>(2 * host); }
  static int out(std::size_t host) { return static_cast<int>(2 * host + 1); }

  void add_edge(int u, int v, int cap) {
    graph_[static_cast<std::size_t>(u)].push_back(
        {v, cap, static_cast<int>(graph_[static_cast<std::size_t>(v)].size())});
    graph_[static_cast<std::size_t>(v)].push_back(
        {u, 0,
         static_cast<int>(graph_[static_cast<std::size_t>(u)].size()) - 1});
  }

  /// One BFS augmentation; returns false when t is unreachable.
  bool augment(int s, int t) {
    const std::size_t nodes = graph_.size();
    std::vector<std::pair<int, int>> parent(nodes, {-1, -1});  // node, edge
    std::vector<bool> seen(nodes, false);
    std::vector<int> queue{s};
    seen[static_cast<std::size_t>(s)] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      if (u == t) break;
      const auto& edges = graph_[static_cast<std::size_t>(u)];
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].cap <= 0 || seen[static_cast<std::size_t>(edges[e].to)])
          continue;
        seen[static_cast<std::size_t>(edges[e].to)] = true;
        parent[static_cast<std::size_t>(edges[e].to)] = {u,
                                                         static_cast<int>(e)};
        queue.push_back(edges[e].to);
      }
    }
    if (!seen[static_cast<std::size_t>(t)]) return false;

    int bottleneck = kUnbounded;
    for (int v = t; v != s;) {
      const auto [u, e] = parent[static_cast<std::size_t>(v)];
      bottleneck = std::min(
          bottleneck,
          graph_[static_cast<std::size_t>(u)][static_cast<std::size_t>(e)].cap);
      v = u;
    }
    for (int v = t; v != s;) {
      const auto [u, e] = parent[static_cast<std::size_t>(v)];
      Edge& fwd =
          graph_[static_cast<std::size_t>(u)][static_cast<std::size_t>(e)];
      fwd.cap -= bottleneck;
      graph_[static_cast<std::size_t>(fwd.to)][static_cast<std::size_t>(
                                                   fwd.rev)]
          .cap += bottleneck;
      v = u;
    }
    return true;
  }

  [[nodiscard]] std::vector<bool> residual_reachable(int s) const {
    std::vector<bool> seen(graph_.size(), false);
    std::vector<int> stack{s};
    seen[static_cast<std::size_t>(s)] = true;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const Edge& e : graph_[static_cast<std::size_t>(u)]) {
        if (e.cap <= 0 || seen[static_cast<std::size_t>(e.to)]) continue;
        seen[static_cast<std::size_t>(e.to)] = true;
        stack.push_back(e.to);
      }
    }
    return seen;
  }

  const std::vector<std::vector<HostId>>& adj_;
  std::vector<std::vector<Edge>> graph_;
};

}  // namespace

CheckReport ResilienceProver::prove(const DeploymentModel& m,
                                    const model::Deployment& d) const {
  CheckReport report;
  Emitter emit(report, options_.max_diagnostics);
  const std::size_t n = m.component_count();
  const std::size_t k = m.host_count();
  const std::size_t covered = std::min(d.size(), n);

  // Host adjacency (links with bandwidth > 0) and the resolved placement.
  // Unassigned or out-of-range components are the PlacementAuditor's
  // findings; here they simply carry no service to lose.
  std::vector<std::vector<HostId>> adj(k);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      if (a != b &&
          m.connected(static_cast<HostId>(a), static_cast<HostId>(b)))
        adj[a].push_back(static_cast<HostId>(b));

  std::vector<bool> placed(covered, false);
  std::vector<HostId> where(covered, 0);
  std::vector<std::vector<std::string>> residents(k);
  for (std::size_t c = 0; c < covered; ++c) {
    const auto cid = static_cast<ComponentId>(c);
    if (!d.is_assigned(cid) || d.host_of(cid) >= k) continue;
    placed[c] = true;
    where[c] = d.host_of(cid);
    residents[where[c]].push_back(m.component(cid).name);
  }

  // Live remote interactions: both endpoints placed, on distinct hosts.
  struct Flow {
    HostId a;
    HostId b;
    std::string name;
  };
  std::vector<Flow> flows;
  for (const model::Interaction& ix : m.interactions()) {
    if (ix.a >= covered || ix.b >= covered) continue;
    if (!placed[ix.a] || !placed[ix.b]) continue;
    if (where[ix.a] == where[ix.b]) continue;
    flows.push_back({where[ix.a], where[ix.b],
                     m.component(static_cast<ComponentId>(ix.a)).name + "--" +
                         m.component(static_cast<ComponentId>(ix.b)).name});
  }

  // k = 1 sweep: every single host's failure, with partition analysis.
  if (options_.max_failures >= 1) {
    std::vector<bool> failed(k, false);
    for (std::size_t h = 0; h < k; ++h) {
      failed[h] = true;
      std::vector<std::string> severed;
      const std::vector<std::size_t> label = surviving_labels(adj, failed);
      for (const Flow& f : flows) {
        if (f.a == h || f.b == h) continue;  // endpoint loss counted below
        if (label[f.a] != label[f.b]) severed.push_back(f.name);
      }
      failed[h] = false;
      if (residents[h].empty() && severed.empty()) continue;

      std::string message;
      if (!residents[h].empty())
        message += "its failure takes down " +
                   std::to_string(residents[h].size()) + " component(s): " +
                   join_names(residents[h], 5);
      if (!severed.empty()) {
        if (!message.empty()) message += "; ";
        message += "it is an articulation point severing " +
                   std::to_string(severed.size()) +
                   " surviving interaction(s): " + join_names(severed, 5);
      }
      emit.add({Rule::kResilienceSpof,
                Severity::kWarning,
                {"host " + m.host(static_cast<HostId>(h)).name},
                std::move(message),
                residents[h].empty()
                    ? "add a redundant physical path around this host"
                    : "replicate or re-place the residents off this host",
                {m.host(static_cast<HostId>(h)).name}});
    }
  }

  // k ≥ 2: a minimum vertex cut per remote interaction, grouped by cut set.
  if (options_.max_failures >= 2) {
    VertexCut cutter(adj);
    std::map<std::vector<HostId>, std::vector<std::string>> by_cut;
    for (const Flow& f : flows) {
      const auto members = cutter.cut(f.a, f.b, options_.max_failures);
      // Size-1 cuts are the sweep's articulation findings.
      if (!members || members->size() < 2) continue;
      by_cut[*members].push_back(f.name);
    }
    for (const auto& [members, names] : by_cut) {
      std::vector<std::string> witness;
      witness.reserve(members.size());
      for (const HostId h : members) witness.push_back(m.host(h).name);
      emit.add({Rule::kResilienceSpof,
                Severity::kWarning,
                {"hosts {" + join_names(witness, 8) + "}"},
                "the simultaneous failure of these " +
                    std::to_string(members.size()) +
                    " hosts (a minimum vertex cut) severs " +
                    std::to_string(names.size()) + " interaction(s): " +
                    join_names(names, 5),
                "add a physical path avoiding this host set",
                std::move(witness)});
    }
  }

  // Whole-region failures.
  if (options_.regions && m.region_count() >= 2) {
    for (std::size_t r = 0; r < m.region_count(); ++r) {
      const std::vector<HostId> region_hosts = m.hosts_in_region(r);
      if (region_hosts.empty()) continue;
      std::vector<bool> failed(k, false);
      std::vector<std::string> witness;
      std::vector<std::string> lost;
      for (const HostId h : region_hosts) {
        failed[h] = true;
        witness.push_back(m.host(h).name);
        lost.insert(lost.end(), residents[h].begin(), residents[h].end());
      }
      std::vector<std::string> severed;
      const std::vector<std::size_t> label = surviving_labels(adj, failed);
      for (const Flow& f : flows) {
        if (failed[f.a] || failed[f.b]) continue;
        if (label[f.a] != label[f.b]) severed.push_back(f.name);
      }
      if (lost.empty() && severed.empty()) continue;

      std::string message =
          "region " + std::to_string(r) + " going down (" +
          std::to_string(region_hosts.size()) + " host(s))";
      if (!lost.empty())
        message += " takes down " + std::to_string(lost.size()) +
                   " component(s): " + join_names(lost, 5);
      if (!severed.empty())
        message += std::string(lost.empty() ? " severs " : " and severs ") +
                   std::to_string(severed.size()) +
                   " surviving interaction(s): " + join_names(severed, 5);
      emit.add({Rule::kResilienceRegion,
                Severity::kWarning,
                {"region " + std::to_string(r)},
                std::move(message),
                "spread the components (and physical paths) across regions",
                std::move(witness)});
    }
  }

  emit.flush();
  return report;
}

}  // namespace dif::check
