#include "check/preflight.h"

#include <utility>

namespace dif::check {

PreflightError::PreflightError(CheckReport report)
    : std::invalid_argument("model rejected by pre-flight check:\n" +
                            report.render_text()),
      report_(std::move(report)) {}

CheckOptions preflight_options() noexcept {
  CheckOptions options;
  options.network_reachability = false;
  options.lints = false;
  return options;
}

CheckReport preflight_report(const model::DeploymentModel& model,
                             const model::ConstraintSet& set) {
  return run_checks(model, set, preflight_options());
}

void preflight(const model::DeploymentModel& model,
               const model::ConstraintSet& set) {
  CheckReport report = preflight_report(model, set);
  if (!report.ok()) throw PreflightError(std::move(report));
}

CheckReport preflight_plan_report(const std::vector<PlanTask>& plan,
                                  const PlanContext& context) {
  return MigrationPlanChecker().check(plan, context);
}

void preflight_plan(const std::vector<PlanTask>& plan,
                    const PlanContext& context) {
  CheckReport report = preflight_plan_report(plan, context);
  if (!report.ok()) throw PreflightError(std::move(report));
}

}  // namespace dif::check
