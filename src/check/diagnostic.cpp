#include "check/diagnostic.h"

#include <sstream>

namespace dif::check {

std::string_view rule_id(Rule rule) noexcept {
  switch (rule) {
    case Rule::kDanglingReference: return "dangling-reference";
    case Rule::kParamRange: return "param-range";
    case Rule::kLocationUnsat: return "location-unsat";
    case Rule::kColocationConflict: return "colocation-conflict";
    case Rule::kGroupLocationUnsat: return "group-location-unsat";
    case Rule::kCapacityPigeonhole: return "capacity-pigeonhole";
    case Rule::kNetworkPartition: return "network-partition";
    case Rule::kIsolatedHost: return "isolated-host";
    case Rule::kUselessHost: return "useless-host";
    case Rule::kRegionSpof: return "region-spof";
    case Rule::kPlacementUnassigned: return "placement-unassigned";
    case Rule::kPlacementLocation: return "placement-location";
    case Rule::kPlacementCapacity: return "placement-capacity";
    case Rule::kPlacementColocation: return "placement-colocation";
    case Rule::kPlacementBandwidth: return "placement-bandwidth";
    case Rule::kResilienceSpof: return "resilience-spof";
    case Rule::kResilienceRegion: return "resilience-region";
    case Rule::kPlanConflict: return "plan-conflict";
    case Rule::kPlanCustody: return "plan-custody";
    case Rule::kPlanOverload: return "plan-overload";
    case Rule::kPlanTransientOverload: return "plan-transient-overload";
    case Rule::kPlanNoop: return "plan-noop";
  }
  return "?";
}

std::string_view to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

void CheckReport::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++errors_;
  } else {
    ++warnings_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

bool CheckReport::has(Rule rule) const noexcept { return count(rule) > 0; }

std::size_t CheckReport::count(Rule rule) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.rule == rule) ++n;
  return n;
}

std::string CheckReport::render_text() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics_) {
    out << to_string(d.severity) << '[' << rule_id(d.rule) << ']';
    for (std::size_t i = 0; i < d.subjects.size(); ++i)
      out << (i == 0 ? " " : ", ") << d.subjects[i];
    out << ": " << d.message;
    if (!d.witness.empty()) {
      out << " [witness:";
      for (const std::string& w : d.witness) out << ' ' << w;
      out << ']';
    }
    if (!d.hint.empty()) out << " (fix: " << d.hint << ')';
    out << '\n';
  }
  if (clean()) {
    out << "check: clean\n";
  } else {
    out << "check: " << errors_ << " error(s), " << warnings_
        << " warning(s)\n";
  }
  return out.str();
}

util::json::Value CheckReport::to_json() const {
  util::json::Array entries;
  for (const Diagnostic& d : diagnostics_) {
    util::json::Object entry;
    entry.emplace("rule", std::string(rule_id(d.rule)));
    entry.emplace("severity", std::string(to_string(d.severity)));
    util::json::Array subjects;
    for (const std::string& s : d.subjects) subjects.emplace_back(s);
    entry.emplace("subjects", std::move(subjects));
    entry.emplace("message", d.message);
    entry.emplace("hint", d.hint);
    if (!d.witness.empty()) {
      util::json::Array witness;
      for (const std::string& w : d.witness) witness.emplace_back(w);
      entry.emplace("witness", std::move(witness));
    }
    entries.emplace_back(std::move(entry));
  }
  util::json::Object doc;
  doc.emplace("errors", static_cast<std::uint64_t>(errors_));
  doc.emplace("warnings", static_cast<std::uint64_t>(warnings_));
  doc.emplace("diagnostics", std::move(entries));
  return util::json::Value(std::move(doc));
}

}  // namespace dif::check
