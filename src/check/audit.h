// Placement auditor: proves a *concrete* deployment against the model's
// constraints.
//
// The spec rules (static_analyzer.h) reject models no placement could
// satisfy; this layer closes the other half of the gap — given a
// DeploymentModel plus an actual component→host assignment (a solver
// result, a hand-written placement, or the runtime deployment a campaign
// converged to), it proves every constraint holds and reports each
// violation as a Diagnostic:
//
//   placement-unassigned   component off every host / wrong cover
//   placement-location     component on a host its allow/forbid rules ban
//   placement-capacity     host memory (or modelled CPU) oversubscribed
//   placement-colocation   collocation class split, or separation violated
//   placement-bandwidth    (advisory) mediated or oversubscribed link
//
// It shares the AnalysisContext build (allow masks, union-find closure)
// with the spec rules, so auditing after an analyze() costs one pass over
// the placement, not a second constraint compilation.
#pragma once

#include "check/static_analyzer.h"

namespace dif::model {
class Deployment;
}  // namespace dif::model

namespace dif::check {

struct AuditOptions {
  bool check_memory = true;
  bool check_cpu = true;
  /// Bandwidth findings are advisory (warning severity): a mediated or
  /// oversubscribed link degrades service rather than invalidating the
  /// placement, matching model::CheckerOptions::check_bandwidth being off
  /// by default and the simulator's store-and-forward routing.
  bool check_bandwidth = true;
};

class PlacementAuditor {
 public:
  explicit PlacementAuditor(AuditOptions options = {}) : options_(options) {}

  /// Audits `deployment` against the context's model + constraints.
  [[nodiscard]] CheckReport audit(const AnalysisContext& context,
                                  const model::Deployment& deployment) const;

  /// Convenience: builds a fresh context first.
  [[nodiscard]] CheckReport audit(const model::DeploymentModel& model,
                                  const model::ConstraintSet& set,
                                  const model::Deployment& deployment) const;

  [[nodiscard]] const AuditOptions& options() const noexcept {
    return options_;
  }

 private:
  AuditOptions options_;
};

}  // namespace dif::check
