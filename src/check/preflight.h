// Fail-fast pre-flight validation for algorithm/analyzer entry points.
//
// A solver handed a statically-broken model (contradictory constraints,
// pigeonhole-violating capacities, dangling references) would search its
// entire budget and then report the unhelpful "no feasible deployment
// found". The pre-flight hook runs the static analyzer first and rejects
// such models with the actual diagnostics. Call sites:
//
//   * algo::PortfolioRunner::run        — throws PreflightError
//   * desi::AlgorithmContainer::invoke  — throws PreflightError
//   * analyzer::CentralizedAnalyzer     — returns a kKeep Decision carrying
//                                         the diagnostics (the periodic
//                                         improvement loop must not die)
//
// preflight_options() deliberately excludes the network-reachability rule
// (a partition is a legitimate *transient* state at run time — the paper's
// disconnected-operation scenario — not a specification defect) and the
// advisory lints.
#pragma once

#include <stdexcept>
#include <vector>

#include "check/plan_check.h"
#include "check/static_analyzer.h"

namespace dif::check {

/// Thrown by solver entry points when pre-flight finds error diagnostics.
/// what() carries the rendered report.
class PreflightError : public std::invalid_argument {
 public:
  explicit PreflightError(CheckReport report);

  [[nodiscard]] const CheckReport& report() const noexcept { return report_; }

 private:
  CheckReport report_;
};

/// The rule set solver entry points gate on: every statically-provable
/// unsatisfiability, but neither run-time-legitimate conditions (network
/// partitions) nor warning lints.
[[nodiscard]] CheckOptions preflight_options() noexcept;

/// Runs the pre-flight rules and returns the report (never throws).
[[nodiscard]] CheckReport preflight_report(const model::DeploymentModel& model,
                                           const model::ConstraintSet& set);

/// Runs the pre-flight rules; throws PreflightError when any error-severity
/// diagnostic is found.
void preflight(const model::DeploymentModel& model,
               const model::ConstraintSet& set);

/// Plan admission (check/plan_check.h) as a report: structural hazards
/// (conflicting tasks, custody mismatches, dangling hosts) plus capacity
/// feasibility for hosts the context models.
[[nodiscard]] CheckReport preflight_plan_report(
    const std::vector<PlanTask>& plan, const PlanContext& context);

/// Plan admission; throws PreflightError when the plan has error-severity
/// defects. The DeployerComponent runs the same checker inline (rejecting
/// with a closed `aborted` round instead of an exception); this entry point
/// is for callers that build plans outside the deployer.
void preflight_plan(const std::vector<PlanTask>& plan,
                    const PlanContext& context);

}  // namespace dif::check
