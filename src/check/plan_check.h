// Static admission checking for migration plans — before any __prepare.
//
// A TxnRound (src/prism/txn_round.h) discovers an infeasible plan the
// expensive way: it ships __prepare to every participant, collects vetoes,
// and burns a round closing `aborted`. FoundationDB's data distribution
// takes the opposite stance — cheap static admission before fleet-scale
// movement — and this checker brings that here. It judges a plan against
// the *deployer's belief state* (locations learned from monitor reports,
// per-component footprints, optional per-host capacities), so it lives in
// src/check and knows nothing of src/prism; the deployer adapts its
// MigrationTask list into PlanTasks:
//
//   plan-conflict            one component in two tasks           (error)
//   plan-custody             declared source ≠ believed location  (error)
//   dangling-reference       source/target outside the fleet      (error)
//   plan-overload            steady state certain to be vetoed    (error)
//   plan-transient-overload  double occupancy peaks over capacity (warning)
//   plan-noop                source equals destination            (warning)
//
// The capacity split mirrors the admins' prepare vote (prism/admin.cpp),
// which admits `usage − outbound + inbound ≤ capacity`: a steady-state
// overflow is *certain* to be vetoed (error), while transient
// source+destination double occupancy during the transfer window would
// still commit (warning).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "check/audit.h"
#include "model/ids.h"

namespace dif::model {
class Deployment;
}  // namespace dif::model

namespace dif::check {

/// One migration the plan wants; mirrors prism::MigrationTask without
/// depending on it (check sits below prism in the layer graph).
struct PlanTask {
  std::string component;
  model::HostId from = 0;
  model::HostId to = 0;
};

/// The belief state a plan is judged against. Every map is optional:
/// absent knowledge disables the corresponding check, mirroring the admin
/// vote where `memory_capacity_kb <= 0` means capacity is unmodelled.
struct PlanContext {
  /// Fleet size; 0 = unknown (disables the dangling-host check).
  std::size_t host_count = 0;
  /// Host names for diagnostics, indexed by id (optional; ids are used
  /// when absent or out of range).
  std::vector<std::string> host_names;
  /// Believed current location per component (custody check).
  std::map<std::string, model::HostId> locations;
  /// Believed footprint per component, KB (absent → 0, like the prepare
  /// payload the deployer ships).
  std::map<std::string, double> component_memory_kb;
  /// Believed used memory per host, KB (from monitor reports; absent → 0).
  std::map<model::HostId, double> host_used_memory_kb;
  /// Modelled capacity per host, KB. Hosts absent (or ≤ 0) are unmodelled:
  /// no capacity checks fire for them.
  std::map<model::HostId, double> host_capacity_kb;
};

class MigrationPlanChecker {
 public:
  [[nodiscard]] CheckReport check(const std::vector<PlanTask>& plan,
                                  const PlanContext& context) const;
};

/// Model-level convenience (difctl audit --plan): builds the PlanContext
/// from a concrete model + current placement — locations, footprints, used
/// memory, and capacities all come from the model — runs the checker, then
/// audits the post-plan placement with PlacementAuditor and appends those
/// diagnostics with a "post-plan:" message prefix. Tasks naming unknown
/// components are dangling-reference errors and are not applied.
[[nodiscard]] CheckReport check_plan(const model::DeploymentModel& model,
                                     const model::ConstraintSet& set,
                                     const model::Deployment& current,
                                     const std::vector<PlanTask>& plan,
                                     const AuditOptions& audit_options = {});

}  // namespace dif::check
