// Rule-based static analyzer over DeploymentModel + ConstraintSet.
//
// Dearle et al.'s constraint-based deployment framework (arXiv:1006.4733)
// validates a deployment specification *before* handing it to a solver; this
// analyzer is that correctness layer for the paper's Model and User Input
// components. Every rule proves its defect from the specification alone —
// without running any algorithm — so a broken model is reported as a set of
// actionable diagnostics instead of surfacing as "no feasible deployment
// found" deep inside a search:
//
//   dangling-reference    constraints naming entities the model lacks
//   param-range           parameters outside their domain (incl. NaN)
//   location-unsat        allow-list minus forbidden hosts is empty
//   colocation-conflict   must-collocate closure hits a separation pair
//   group-location-unsat  a collocation group has no common legal host
//   capacity-pigeonhole   group footprint exceeds every legal host
//   network-partition     an interaction no host pair can ever carry
//   isolated-host (lint)  host with no physical link
//   useless-host (lint)   host too small for every component
//
// The full rule catalogue — these spec rules plus the artifact audit rules
// of check/audit.h, check/resilience.h, and check/plan_check.h — is
// documented with defect examples in docs/checking.md.
//
// Complexity: O(n·k) per location rule plus O(k^2) for the host-graph BFS —
// negligible next to any solver run, so the preflight hook (preflight.h)
// runs it on every algorithm entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/diagnostic.h"

namespace dif::model {
class ConstraintSet;
class DeploymentModel;
}  // namespace dif::model

namespace dif::check {

/// Per-rule toggles. Everything on by default; preflight_options() (see
/// preflight.h) disables the rules that are legitimate transient states at
/// run time (network partitions) and the advisory lints.
struct CheckOptions {
  bool dangling_references = true;
  bool parameter_ranges = true;
  bool location_satisfiability = true;
  bool colocation_consistency = true;
  bool capacity_bounds = true;
  bool network_reachability = true;
  /// Region awareness (region-spof): inactive on models that declare fewer
  /// than two regions, so untagged models are unaffected.
  bool region_awareness = true;
  /// Warning-severity advisory rules (isolated-host, useless-host).
  bool lints = true;
};

/// Shared rule context over one (model, constraint set) pair: the
/// per-component allowed-host bitmask rows and the must-collocate
/// union-find closure, built once up front. Building these dominates an
/// analyze() call, so the spec rules (StaticAnalyzer) and the artifact
/// auditors (check/audit.h, check/plan_check.h) reuse one build instead of
/// reconstructing the maps per rule or per pass.
///
/// The context borrows the model and constraint set; both must outlive it,
/// and it must be rebuilt after either mutates.
class AnalysisContext {
 public:
  AnalysisContext(const model::DeploymentModel& model,
                  const model::ConstraintSet& set);

  [[nodiscard]] const model::DeploymentModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const model::ConstraintSet& constraints() const noexcept {
    return *set_;
  }
  /// Component / host counts captured at build time.
  [[nodiscard]] std::size_t components() const noexcept { return n_; }
  [[nodiscard]] std::size_t hosts() const noexcept { return k_; }

  /// Location rules (allow-list minus forbids) permit component c on host h.
  /// Valid only for c < components() and h < hosts().
  [[nodiscard]] bool allowed(std::size_t c, std::size_t h) const {
    return (rows_[c * words_ + h / 64] >> (h % 64)) & 1u;
  }
  /// Number of legal hosts for component c.
  [[nodiscard]] std::size_t allowed_count(std::size_t c) const;
  /// AND of the allowed-host rows of every component in `members`
  /// (word-packed little-endian bits, tail bits beyond hosts() masked off).
  [[nodiscard]] std::vector<std::uint64_t> allowed_intersection(
      const std::vector<std::size_t>& members) const;

  /// Representative of c's must-collocate closure class.
  [[nodiscard]] std::size_t group_root(std::size_t c) const {
    return root_[c];
  }
  /// The closure classes, singletons included (every component appears in
  /// exactly one class).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& groups()
      const noexcept {
    return groups_;
  }

  /// "component <name>" / "host <name>" diagnostic subject strings.
  [[nodiscard]] std::string component_subject(std::size_t c) const;
  [[nodiscard]] std::string host_subject(std::size_t h) const;

 private:
  const model::DeploymentModel* model_;
  const model::ConstraintSet* set_;
  std::size_t n_ = 0;      // components
  std::size_t k_ = 0;      // hosts
  std::size_t words_ = 0;  // 64-bit words per allow-mask row
  std::vector<std::uint64_t> rows_;
  std::vector<std::size_t> root_;
  std::vector<std::vector<std::size_t>> groups_;
};

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(CheckOptions options = {}) : options_(options) {}

  /// Runs every enabled rule; never throws on model defects (that is the
  /// point), only on allocation failure.
  [[nodiscard]] CheckReport analyze(const model::DeploymentModel& model,
                                    const model::ConstraintSet& set) const;

  /// Same rules over a prebuilt shared context, so one context build can
  /// serve the spec rules and the artifact auditors.
  [[nodiscard]] CheckReport analyze(const AnalysisContext& context) const;

  [[nodiscard]] const CheckOptions& options() const noexcept {
    return options_;
  }

 private:
  CheckOptions options_;
};

/// Convenience: StaticAnalyzer(options).analyze(model, set).
[[nodiscard]] CheckReport run_checks(const model::DeploymentModel& model,
                                     const model::ConstraintSet& set,
                                     const CheckOptions& options = {});

}  // namespace dif::check
