// Rule-based static analyzer over DeploymentModel + ConstraintSet.
//
// Dearle et al.'s constraint-based deployment framework (arXiv:1006.4733)
// validates a deployment specification *before* handing it to a solver; this
// analyzer is that correctness layer for the paper's Model and User Input
// components. Every rule proves its defect from the specification alone —
// without running any algorithm — so a broken model is reported as a set of
// actionable diagnostics instead of surfacing as "no feasible deployment
// found" deep inside a search:
//
//   dangling-reference    constraints naming entities the model lacks
//   param-range           parameters outside their domain (incl. NaN)
//   location-unsat        allow-list minus forbidden hosts is empty
//   colocation-conflict   must-collocate closure hits a separation pair
//   group-location-unsat  a collocation group has no common legal host
//   capacity-pigeonhole   group footprint exceeds every legal host
//   network-partition     an interaction no host pair can ever carry
//   isolated-host (lint)  host with no physical link
//   useless-host (lint)   host too small for every component
//
// Complexity: O(n·k) per location rule plus O(k^2) for the host-graph BFS —
// negligible next to any solver run, so the preflight hook (preflight.h)
// runs it on every algorithm entry.
#pragma once

#include "check/diagnostic.h"

namespace dif::model {
class ConstraintSet;
class DeploymentModel;
}  // namespace dif::model

namespace dif::check {

/// Per-rule toggles. Everything on by default; preflight_options() (see
/// preflight.h) disables the rules that are legitimate transient states at
/// run time (network partitions) and the advisory lints.
struct CheckOptions {
  bool dangling_references = true;
  bool parameter_ranges = true;
  bool location_satisfiability = true;
  bool colocation_consistency = true;
  bool capacity_bounds = true;
  bool network_reachability = true;
  /// Region awareness (region-spof): inactive on models that declare fewer
  /// than two regions, so untagged models are unaffected.
  bool region_awareness = true;
  /// Warning-severity advisory rules (isolated-host, useless-host).
  bool lints = true;
};

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(CheckOptions options = {}) : options_(options) {}

  /// Runs every enabled rule; never throws on model defects (that is the
  /// point), only on allocation failure.
  [[nodiscard]] CheckReport analyze(const model::DeploymentModel& model,
                                    const model::ConstraintSet& set) const;

  [[nodiscard]] const CheckOptions& options() const noexcept {
    return options_;
  }

 private:
  CheckOptions options_;
};

/// Convenience: StaticAnalyzer(options).analyze(model, set).
[[nodiscard]] CheckReport run_checks(const model::DeploymentModel& model,
                                     const model::ConstraintSet& set,
                                     const CheckOptions& options = {});

}  // namespace dif::check
