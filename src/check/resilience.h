// k-resilience prover: which components and interactions lose service when
// k hosts — or one whole failure region — go down together.
//
// The chaos layer (src/chaos) *observes* what faults do to a running
// system; this prover answers the same question statically, from the model
// and a concrete placement, before anything runs:
//
//   resilience-spof    a host set of size ≤ k whose simultaneous failure
//                      loses components or severs live interactions. k = 1
//                      is a per-host sweep (resident components plus
//                      articulation-point partition analysis of the host
//                      graph); k ≥ 2 adds a minimum vertex cut per
//                      interaction (unit-capacity max-flow over the split
//                      host graph), whose cut set is the witness.
//   resilience-region  one failure region (DeploymentModel regions, PR 6)
//                      going down loses components or severs interactions
//                      between the survivors.
//
// Every diagnostic carries the failing host set as its witness, so a
// consumer (or ci.sh) can independently replay the failure and confirm the
// loss. All findings are warnings: an unreplicated model is degraded, not
// invalid.
#pragma once

#include <cstddef>

#include "check/diagnostic.h"

namespace dif::model {
class Deployment;
class DeploymentModel;
}  // namespace dif::model

namespace dif::check {

struct ResilienceOptions {
  /// Largest simultaneous host-failure set proven against. 1 sweeps single
  /// hosts; k ≥ 2 adds per-interaction minimum vertex cuts of size ≤ k.
  /// 0 disables host-failure analysis entirely.
  std::size_t max_failures = 1;
  /// Whole-region failure analysis (inactive on models declaring fewer
  /// than two regions).
  bool regions = true;
  /// Cap on emitted diagnostics; proving continues past it but further
  /// findings collapse into one summary diagnostic.
  std::size_t max_diagnostics = 64;
};

class ResilienceProver {
 public:
  explicit ResilienceProver(ResilienceOptions options = {})
      : options_(options) {}

  [[nodiscard]] CheckReport prove(const model::DeploymentModel& model,
                                  const model::Deployment& deployment) const;

  [[nodiscard]] const ResilienceOptions& options() const noexcept {
    return options_;
  }

 private:
  ResilienceOptions options_;
};

}  // namespace dif::check
