// Structured diagnostics emitted by the static deployment-model analyzer
// (check/static_analyzer.h).
//
// The paper's Model and User Input components accept arbitrary parameter
// values and constraints, so a deployment specification can be silently
// broken — unsatisfiable constraints, pigeonhole-violating capacities,
// partitioned networks. Each defect the analyzer proves is reported as a
// Diagnostic: a stable rule id, a severity, the subject entities (by name),
// a human-readable message, and a fix hint. The same representation renders
// as text (difctl check), JSON (difctl check --json), and an exception
// payload (check/preflight.h).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace dif::check {

/// The analyzer's rule catalogue. Every rule proves its defect statically —
/// no algorithm runs, no deployment is required.
enum class Rule {
  /// A constraint or deployment references a component/host id the model
  /// does not contain.
  kDanglingReference,
  /// A stored parameter is outside its domain (reliability outside [0,1],
  /// negative size/frequency/bandwidth/delay/capacity, or NaN).
  kParamRange,
  /// A component's effective allow-list (allow-list minus forbidden hosts)
  /// is empty: no host may legally hold it.
  kLocationUnsat,
  /// The transitive collocation closure of the must-pairs contains a
  /// forbidden (separation) pair: the constraints are contradictory.
  kColocationConflict,
  /// The components of one collocation group have location constraints
  /// whose intersection is empty: the group has no common legal host.
  kGroupLocationUnsat,
  /// A collocation group's summed footprint exceeds the best legal host's
  /// capacity (memory, or CPU where every legal host models CPU), or the
  /// total component footprint exceeds the total host capacity.
  kCapacityPigeonhole,
  /// An interaction whose endpoints can never reach each other: no pair of
  /// allowed hosts lies in the same connected network partition.
  kNetworkPartition,
  /// Lint: a host with no physical link at all (unreachable by design).
  kIsolatedHost,
  /// Lint: a host that cannot hold even the smallest component.
  kUselessHost,
  /// In a model with several failure regions, a component whose legal
  /// hosts all sit in one region: a correlated region failure (the chaos
  /// layer's KillRegion workload) takes down every placement candidate at
  /// once.
  kRegionSpof,

  // --- Artifact audit rules (check/audit.h, check/resilience.h,
  // check/plan_check.h). These judge a *concrete* placement or migration
  // plan, not the specification. ---

  /// The audited placement leaves a component off every host (or does not
  /// cover the model's component set at all).
  kPlacementUnassigned,
  /// The audited placement puts a component on a host its location
  /// constraints (allow-list minus forbids) rule out.
  kPlacementLocation,
  /// A host's resident components oversubscribe its memory (or modelled
  /// CPU) capacity in the audited placement.
  kPlacementCapacity,
  /// The audited placement splits a must-collocate closure class across
  /// hosts, or puts a forbidden (separation) pair on one host.
  kPlacementColocation,
  /// Advisory: an interaction's endpoint hosts have no direct physical
  /// link (traffic must be store-and-forward mediated) or the pair's
  /// aggregate traffic oversubscribes the link's bandwidth.
  kPlacementBandwidth,
  /// k hosts failing together (k = 1: a single host) lose components or
  /// sever live interactions; the witness lists the failing host set.
  kResilienceSpof,
  /// One whole failure region going down loses components or severs
  /// interactions between the surviving hosts.
  kResilienceRegion,
  /// A migration plan names one component in two tasks (duplicate or
  /// contradictory targets).
  kPlanConflict,
  /// A plan task's declared source host disagrees with the believed
  /// current location: a stale custody view would tear the transfer.
  kPlanCustody,
  /// The plan's steady-state result oversubscribes a host whose capacity
  /// is modelled — the admins' prepare vote is certain to veto it.
  kPlanOverload,
  /// Advisory: source+destination double occupancy during the transfer
  /// window peaks above a host's capacity even though the steady state
  /// fits (the vote credits outbound moves, so the round would commit).
  kPlanTransientOverload,
  /// Advisory: a plan task whose source equals its destination.
  kPlanNoop,
};

enum class Severity { kWarning, kError };

/// Stable kebab-case rule id, e.g. "capacity-pigeonhole".
[[nodiscard]] std::string_view rule_id(Rule rule) noexcept;
[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

/// One defect, proven statically.
struct Diagnostic {
  Rule rule;
  Severity severity = Severity::kError;
  /// Names of the entities involved ("component c3", "host h1", ...).
  std::vector<std::string> subjects;
  /// What is wrong, with concrete numbers where available.
  std::string message;
  /// How to repair the specification.
  std::string hint;
  /// Proof artifact, where the rule has one: for resilience rules the
  /// failing host set, for capacity rules the resident components. Host or
  /// component names, not prefixed subjects.
  std::vector<std::string> witness = {};
};

/// The analyzer's verdict over one model + constraint set.
class CheckReport {
 public:
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warning_count() const noexcept {
    return warnings_;
  }
  /// No diagnostics at all (not even warnings).
  [[nodiscard]] bool clean() const noexcept { return diagnostics_.empty(); }
  /// No error-severity diagnostics (warnings allowed).
  [[nodiscard]] bool ok() const noexcept { return errors_ == 0; }

  /// True when some diagnostic was emitted by `rule`.
  [[nodiscard]] bool has(Rule rule) const noexcept;
  /// Count of diagnostics emitted by `rule`.
  [[nodiscard]] std::size_t count(Rule rule) const noexcept;

  /// One line per diagnostic plus a summary line, e.g.
  ///   error[location-unsat] component c2: ... (fix: ...)
  [[nodiscard]] std::string render_text() const;

  /// {"errors": N, "warnings": N, "diagnostics": [{rule, severity,
  ///  subjects, message, hint, witness}, ...]}; `witness` only when
  ///  non-empty.
  [[nodiscard]] util::json::Value to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

}  // namespace dif::check
