#include "check/audit.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "model/constraints.h"
#include "model/deployment.h"
#include "model/deployment_model.h"

namespace dif::check {

namespace {

using model::ComponentId;
using model::DeploymentModel;
using model::HostId;

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// First `cap` names, with a "+N more" tail when truncated.
std::vector<std::string> capped_names(const std::vector<std::string>& names,
                                      std::size_t cap) {
  if (names.size() <= cap) return names;
  std::vector<std::string> out(names.begin(),
                               names.begin() + static_cast<std::ptrdiff_t>(cap));
  out.push_back("+" + std::to_string(names.size() - cap) + " more");
  return out;
}

}  // namespace

CheckReport PlacementAuditor::audit(const AnalysisContext& ctx,
                                    const model::Deployment& d) const {
  CheckReport report;
  const DeploymentModel& m = ctx.model();
  const std::size_t n = ctx.components();
  const std::size_t k = ctx.hosts();

  if (d.size() != n) {
    report.add({Rule::kPlacementUnassigned,
                Severity::kError,
                {"deployment"},
                "the deployment covers " + std::to_string(d.size()) +
                    " components but the model has " + std::to_string(n),
                "audit a deployment built for this model"});
  }
  const std::size_t covered = std::min(d.size(), n);

  // Resolved per-component host (only in-range assignments), and the
  // assignment-shape defects.
  std::vector<bool> placed(covered, false);
  std::vector<HostId> where(covered, 0);
  for (std::size_t c = 0; c < covered; ++c) {
    const auto cid = static_cast<ComponentId>(c);
    if (!d.is_assigned(cid)) {
      report.add({Rule::kPlacementUnassigned,
                  Severity::kError,
                  {ctx.component_subject(c)},
                  "the deployment leaves this component off every host",
                  "assign it a host or drop it from the model"});
      continue;
    }
    const HostId h = d.host_of(cid);
    if (h >= k) {
      report.add({Rule::kDanglingReference,
                  Severity::kError,
                  {ctx.component_subject(c)},
                  "the deployment places it on host id " + std::to_string(h) +
                      " but the model has " + std::to_string(k) + " hosts",
                  "point the assignment at an existing host"});
      continue;
    }
    placed[c] = true;
    where[c] = h;
    if (!ctx.allowed(c, h))
      report.add({Rule::kPlacementLocation,
                  Severity::kError,
                  {ctx.component_subject(c), ctx.host_subject(h)},
                  "the location constraints (allow-list minus forbids) rule "
                  "this host out for the component",
                  "move the component to an allowed host or relax the "
                  "constraint"});
  }

  // Per-host capacity sums.
  if (options_.check_memory || options_.check_cpu) {
    std::vector<double> mem(k, 0.0), cpu(k, 0.0);
    std::vector<std::vector<std::string>> residents(k);
    for (std::size_t c = 0; c < covered; ++c) {
      if (!placed[c]) continue;
      const model::SoftwareComponent& comp =
          m.component(static_cast<ComponentId>(c));
      mem[where[c]] += comp.memory_size;
      cpu[where[c]] += comp.cpu_load;
      residents[where[c]].push_back(comp.name);
    }
    for (std::size_t h = 0; h < k; ++h) {
      const model::Host& host = m.host(static_cast<HostId>(h));
      if (options_.check_memory && mem[h] > host.memory_capacity)
        report.add({Rule::kPlacementCapacity,
                    Severity::kError,
                    {ctx.host_subject(h)},
                    "resident memory " + fmt(mem[h]) +
                        " KB oversubscribes the host's " +
                        fmt(host.memory_capacity) + " KB (" +
                        std::to_string(residents[h].size()) + " components)",
                    "move a resident elsewhere or grow the host",
                    capped_names(residents[h], 8)});
      if (options_.check_cpu && host.cpu_capacity > 0.0 &&
          cpu[h] > host.cpu_capacity)
        report.add({Rule::kPlacementCapacity,
                    Severity::kError,
                    {ctx.host_subject(h)},
                    "resident CPU load " + fmt(cpu[h]) +
                        " oversubscribes the host's capacity " +
                        fmt(host.cpu_capacity),
                    "move a resident elsewhere or grow the host's CPU",
                    capped_names(residents[h], 8)});
    }
  }

  // Collocation closure classes must sit on one host each.
  for (const auto& group : ctx.groups()) {
    if (group.size() < 2) continue;
    std::set<HostId> hosts_used;
    std::string members = "group {";
    bool all_placed = true;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const std::size_t c = group[i];
      if (i > 0) members += ", ";
      members += m.component(static_cast<ComponentId>(c)).name;
      if (c < covered && placed[c])
        hosts_used.insert(where[c]);
      else
        all_placed = false;
    }
    members += "}";
    if (!all_placed) continue;  // placement-unassigned owns the root cause
    if (hosts_used.size() <= 1) continue;
    std::vector<std::string> witness;
    witness.reserve(hosts_used.size());
    for (const HostId h : hosts_used)
      witness.push_back(m.host(static_cast<HostId>(h)).name);
    report.add({Rule::kPlacementColocation,
                Severity::kError,
                {members},
                "the must-collocate closure is split across " +
                    std::to_string(hosts_used.size()) + " hosts",
                "move the class onto one common legal host",
                std::move(witness)});
  }

  // Separation pairs must not share a host.
  for (const auto& [a, b] : ctx.constraints().anti_colocation_pairs()) {
    if (a >= covered || b >= covered || !placed[a] || !placed[b]) continue;
    if (where[a] != where[b]) continue;
    report.add({Rule::kPlacementColocation,
                Severity::kError,
                {ctx.component_subject(a), ctx.component_subject(b),
                 ctx.host_subject(where[a])},
                "a separation constraint forbids these components from "
                "sharing a host, but both are placed there",
                "move one of the pair to a different legal host"});
  }

  // Advisory bandwidth audit: aggregate interaction traffic per host pair.
  if (options_.check_bandwidth) {
    std::map<std::pair<HostId, HostId>, double> traffic;
    std::map<std::pair<HostId, HostId>, std::size_t> flows;
    for (const model::Interaction& ix : m.interactions()) {
      if (ix.a >= covered || ix.b >= covered) continue;
      if (!placed[ix.a] || !placed[ix.b]) continue;
      const HostId ha = where[ix.a];
      const HostId hb = where[ix.b];
      if (ha == hb) continue;  // local delivery, no physical link involved
      const auto key = std::minmax(ha, hb);
      traffic[key] += ix.frequency * ix.avg_event_size;
      ++flows[key];
    }
    for (const auto& [key, load] : traffic) {
      const auto [ha, hb] = key;
      const std::string subject = "link " +
                                  m.host(static_cast<HostId>(ha)).name + "--" +
                                  m.host(static_cast<HostId>(hb)).name;
      if (!m.connected(ha, hb)) {
        report.add({Rule::kPlacementBandwidth,
                    Severity::kWarning,
                    {subject},
                    std::to_string(flows[key]) +
                        " interaction(s) cross this host pair but no direct "
                        "physical link exists: " +
                        fmt(load) +
                        " KB/s must be store-and-forward mediated",
                    "add a physical link or collocate the endpoints"});
        continue;
      }
      const model::PhysicalLink& link = m.physical_link(ha, hb);
      if (load > link.bandwidth)
        report.add({Rule::kPlacementBandwidth,
                    Severity::kWarning,
                    {subject},
                    "aggregate interaction traffic " + fmt(load) +
                        " KB/s oversubscribes the link's " +
                        fmt(link.bandwidth) + " KB/s",
                    "spread the endpoints or grow the link's bandwidth"});
    }
  }

  return report;
}

CheckReport PlacementAuditor::audit(const model::DeploymentModel& model,
                                    const model::ConstraintSet& set,
                                    const model::Deployment& deployment) const {
  return audit(AnalysisContext(model, set), deployment);
}

}  // namespace dif::check
