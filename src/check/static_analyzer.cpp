#include "check/static_analyzer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "model/constraints.h"
#include "model/deployment_model.h"

namespace dif::check {

namespace {

using model::ComponentId;
using model::ConstraintSet;
using model::DeploymentModel;
using model::HostId;

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// Union-find with path halving over component ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

bool mask_bit(const std::vector<std::uint64_t>& mask, std::size_t h) {
  return (mask[h / 64] >> (h % 64)) & 1u;
}

std::size_t mask_count(const std::vector<std::uint64_t>& mask) {
  std::size_t total = 0;
  for (const std::uint64_t w : mask)
    total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

/// Rule context shared by all rule functions: the prebuilt AnalysisContext
/// plus this run's report.
struct Ctx {
  const AnalysisContext& a;
  const DeploymentModel& m;
  const ConstraintSet& set;
  CheckReport& report;
  std::size_t n;  // components
  std::size_t k;  // hosts
};

void check_dangling(Ctx& ctx) {
  const auto dangling_comp = [&](std::size_t c, std::string_view where) {
    if (c < ctx.n) return false;
    ctx.report.add({Rule::kDanglingReference,
                    Severity::kError,
                    {ctx.a.component_subject(c)},
                    std::string(where) + " references component id " +
                        std::to_string(c) + " but the model has " +
                        std::to_string(ctx.n) + " components",
                    "remove the constraint or add the missing component"});
    return true;
  };
  const auto dangling_host = [&](std::size_t h, std::string_view where) {
    if (h < ctx.k) return false;
    ctx.report.add({Rule::kDanglingReference,
                    Severity::kError,
                    {ctx.a.host_subject(h)},
                    std::string(where) + " references host id " +
                        std::to_string(h) + " but the model has " +
                        std::to_string(ctx.k) + " hosts",
                    "remove the constraint or add the missing host"});
    return true;
  };
  for (const auto& [c, hosts] : ctx.set.allow_lists()) {
    dangling_comp(c, "location allow-list");
    for (const HostId h : hosts) dangling_host(h, "location allow-list");
  }
  for (const auto& [c, h] : ctx.set.forbidden_hosts()) {
    dangling_comp(c, "location forbid rule");
    dangling_host(h, "location forbid rule");
  }
  for (const auto& [a, b] : ctx.set.colocation_pairs()) {
    dangling_comp(a, "collocation constraint");
    dangling_comp(b, "collocation constraint");
  }
  for (const auto& [a, b] : ctx.set.anti_colocation_pairs()) {
    dangling_comp(a, "separation constraint");
    dangling_comp(b, "separation constraint");
  }
}

void check_param_ranges(Ctx& ctx) {
  const auto bad_nonneg = [](double v) { return !(v >= 0.0) || std::isinf(v); };
  const auto bad_unit = [](double v) { return !(v >= 0.0 && v <= 1.0); };
  const auto report = [&](std::string subject, std::string message,
                          std::string hint) {
    ctx.report.add({Rule::kParamRange,
                    Severity::kError,
                    {std::move(subject)},
                    std::move(message),
                    std::move(hint)});
  };

  for (std::size_t h = 0; h < ctx.k; ++h) {
    const model::Host& host = ctx.m.host(static_cast<HostId>(h));
    if (bad_nonneg(host.memory_capacity))
      report(ctx.a.host_subject(h),
             "memory capacity " + fmt(host.memory_capacity) +
                 " is not a finite non-negative number",
             "set a non-negative memory capacity in KB");
    if (bad_nonneg(host.cpu_capacity))
      report(ctx.a.host_subject(h),
             "CPU capacity " + fmt(host.cpu_capacity) +
                 " is not a finite non-negative number",
             "set a non-negative CPU capacity (0 = not modelled)");
  }
  for (std::size_t c = 0; c < ctx.n; ++c) {
    const model::SoftwareComponent& comp =
        ctx.m.component(static_cast<ComponentId>(c));
    if (bad_nonneg(comp.memory_size))
      report(ctx.a.component_subject(c),
             "memory size " + fmt(comp.memory_size) +
                 " is not a finite non-negative number",
             "set a non-negative memory size in KB");
    if (bad_nonneg(comp.cpu_load))
      report(ctx.a.component_subject(c),
             "CPU load " + fmt(comp.cpu_load) +
                 " is not a finite non-negative number",
             "set a non-negative CPU load");
  }
  for (std::size_t a = 0; a < ctx.k; ++a) {
    for (std::size_t b = a + 1; b < ctx.k; ++b) {
      const model::PhysicalLink& link = ctx.m.physical_link(
          static_cast<HostId>(a), static_cast<HostId>(b));
      if (link.bandwidth <= 0.0 && link.reliability <= 0.0 &&
          !std::isnan(link.reliability) && !std::isnan(link.bandwidth))
        continue;  // absent link
      const std::string subject = "link " +
                                  ctx.m.host(static_cast<HostId>(a)).name +
                                  "--" +
                                  ctx.m.host(static_cast<HostId>(b)).name;
      if (bad_unit(link.reliability))
        report(subject,
               "reliability " + fmt(link.reliability) + " is outside [0, 1]",
               "clamp the reliability into [0, 1]");
      if (bad_nonneg(link.bandwidth))
        report(subject,
               "bandwidth " + fmt(link.bandwidth) +
                   " is not a finite non-negative number",
               "set a non-negative bandwidth in KB/s");
      if (bad_nonneg(link.delay_ms))
        report(subject,
               "delay " + fmt(link.delay_ms) +
                   " is not a finite non-negative number",
               "set a non-negative delay in ms");
    }
  }
  // Iterate the raw logical links, not interactions(): the interaction
  // cache filters on frequency > 0, which would hide negative/NaN entries.
  for (std::size_t a = 0; a < ctx.n; ++a) {
    for (std::size_t b = a + 1; b < ctx.n; ++b) {
      const model::LogicalLink& link = ctx.m.logical_link(
          static_cast<ComponentId>(a), static_cast<ComponentId>(b));
      if (link.frequency == 0.0 && link.avg_event_size == 0.0)
        continue;  // absent interaction
      const std::string subject =
          "interaction " + ctx.m.component(static_cast<ComponentId>(a)).name +
          "--" + ctx.m.component(static_cast<ComponentId>(b)).name;
      if (bad_nonneg(link.frequency))
        report(subject, "frequency " + fmt(link.frequency) + " is invalid",
               "set a non-negative interaction frequency");
      if (bad_nonneg(link.avg_event_size))
        report(subject,
               "event size " + fmt(link.avg_event_size) + " is invalid",
               "set a non-negative average event size in KB");
    }
  }
}

void check_location(Ctx& ctx) {
  if (ctx.k == 0) {
    if (ctx.n > 0)
      ctx.report.add({Rule::kLocationUnsat,
                      Severity::kError,
                      {"model"},
                      "the model has components but no hosts",
                      "add at least one host"});
    return;
  }
  for (std::size_t c = 0; c < ctx.n; ++c) {
    if (ctx.a.allowed_count(c) > 0) continue;
    ctx.report.add(
        {Rule::kLocationUnsat,
         Severity::kError,
         {ctx.a.component_subject(c)},
         "the allow-list minus the forbidden hosts leaves no legal host",
         "widen the allow-list or drop a forbid rule"});
  }
}

void check_colocation(Ctx& ctx) {
  for (const auto& [a, b] : ctx.set.anti_colocation_pairs()) {
    if (a >= ctx.n || b >= ctx.n) continue;  // dangling rule reports these
    if (ctx.a.group_root(a) != ctx.a.group_root(b)) continue;
    ctx.report.add({Rule::kColocationConflict,
                    Severity::kError,
                    {ctx.a.component_subject(a), ctx.a.component_subject(b)},
                    "the must-collocate closure forces them onto one host "
                    "but a separation constraint forbids sharing one",
                    "break the collocation chain or drop the separation"});
  }
}

std::string group_subjects(const Ctx& ctx,
                           const std::vector<std::size_t>& group) {
  std::string out = "group {";
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ", ";
    out += ctx.m.component(static_cast<ComponentId>(group[i])).name;
  }
  return out + "}";
}

void check_groups(Ctx& ctx, bool location_satisfiability,
                  bool capacity_bounds) {
  if (ctx.k == 0) return;
  // Global pigeonhole first: total footprint vs total capacity.
  if (capacity_bounds && ctx.n > 0) {
    double total_mem = 0.0, total_cap = 0.0;
    for (std::size_t c = 0; c < ctx.n; ++c)
      total_mem += ctx.m.component(static_cast<ComponentId>(c)).memory_size;
    for (std::size_t h = 0; h < ctx.k; ++h)
      total_cap += ctx.m.host(static_cast<HostId>(h)).memory_capacity;
    if (total_mem > total_cap)
      ctx.report.add({Rule::kCapacityPigeonhole,
                      Severity::kError,
                      {"model"},
                      "total component memory " + fmt(total_mem) +
                          " KB exceeds total host memory " + fmt(total_cap) +
                          " KB",
                      "grow the hosts or shrink the components"});
  }

  for (const auto& group : ctx.a.groups()) {
    // Skip groups with an individually-unsatisfiable member: location-unsat
    // already reported the root cause.
    bool member_unsat = false;
    for (const std::size_t c : group)
      member_unsat |= ctx.a.allowed_count(c) == 0;
    if (member_unsat) continue;

    const std::vector<std::uint64_t> common = ctx.a.allowed_intersection(group);
    const std::size_t legal_hosts = mask_count(common);
    if (legal_hosts == 0) {
      if (location_satisfiability && group.size() > 1)
        ctx.report.add({Rule::kGroupLocationUnsat,
                        Severity::kError,
                        {group_subjects(ctx, group)},
                        "the collocated components' allow-lists have an "
                        "empty intersection: no common legal host",
                        "align the group's location constraints"});
      continue;
    }
    if (!capacity_bounds) continue;

    double group_mem = 0.0, group_cpu = 0.0;
    for (const std::size_t c : group) {
      group_mem += ctx.m.component(static_cast<ComponentId>(c)).memory_size;
      group_cpu += ctx.m.component(static_cast<ComponentId>(c)).cpu_load;
    }
    double best_mem = 0.0, best_cpu = 0.0;
    bool all_model_cpu = true;
    for (std::size_t h = 0; h < ctx.k; ++h) {
      if (!mask_bit(common, h)) continue;
      const model::Host& host = ctx.m.host(static_cast<HostId>(h));
      best_mem = std::max(best_mem, host.memory_capacity);
      best_cpu = std::max(best_cpu, host.cpu_capacity);
      all_model_cpu &= host.cpu_capacity > 0.0;
    }
    const std::string subject = group.size() == 1
                                    ? ctx.a.component_subject(group[0])
                                    : group_subjects(ctx, group);
    if (group_mem > best_mem)
      ctx.report.add(
          {Rule::kCapacityPigeonhole,
           Severity::kError,
           {subject},
           (group.size() == 1 ? "memory footprint "
                              : "combined memory footprint ") +
               fmt(group_mem) + " KB exceeds the best legal host's " +
               fmt(best_mem) + " KB",
           "grow a legal host, shrink the components, or relax the "
           "constraints"});
    if (all_model_cpu && group_cpu > best_cpu)
      ctx.report.add(
          {Rule::kCapacityPigeonhole,
           Severity::kError,
           {subject},
           (group.size() == 1 ? "CPU load " : "combined CPU load ") +
               fmt(group_cpu) + " exceeds the best legal host's capacity " +
               fmt(best_cpu),
           "grow a legal host's CPU capacity or relax the constraints"});
  }
}

/// Connected components of the physical network (links with bandwidth > 0).
std::vector<std::size_t> network_components(const DeploymentModel& m) {
  const std::size_t k = m.host_count();
  std::vector<std::size_t> label(k, k);  // k == unvisited
  std::size_t next = 0;
  std::vector<std::size_t> stack;
  for (std::size_t root = 0; root < k; ++root) {
    if (label[root] != k) continue;
    label[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const std::size_t h = stack.back();
      stack.pop_back();
      for (std::size_t other = 0; other < k; ++other) {
        if (label[other] != k) continue;
        if (m.connected(static_cast<HostId>(h), static_cast<HostId>(other))) {
          label[other] = next;
          stack.push_back(other);
        }
      }
    }
    ++next;
  }
  return label;
}

void check_network(Ctx& ctx) {
  if (ctx.k == 0) return;
  const std::vector<std::size_t> label = network_components(ctx.m);
  std::size_t partitions = 0;
  for (const std::size_t l : label) partitions = std::max(partitions, l + 1);

  for (const model::Interaction& ix : ctx.m.interactions()) {
    if (ix.a >= ctx.n || ix.b >= ctx.n) continue;
    // Direct separation constraint between the endpoints?
    bool separated = false;
    for (const auto& [a, b] : ctx.set.anti_colocation_pairs())
      separated |= (a == std::min(ix.a, ix.b) && b == std::max(ix.a, ix.b));

    bool reachable = false;
    for (std::size_t part = 0; part < partitions && !reachable; ++part) {
      std::size_t a_here = 0, b_here = 0, a_host = 0, b_host = 0;
      for (std::size_t h = 0; h < ctx.k; ++h) {
        if (label[h] != part) continue;
        if (ctx.a.allowed(ix.a, h)) {
          ++a_here;
          a_host = h;
        }
        if (ctx.a.allowed(ix.b, h)) {
          ++b_here;
          b_host = h;
        }
      }
      if (a_here == 0 || b_here == 0) continue;
      // With a separation constraint the endpoints need two distinct hosts
      // in the same partition; without one, collocation always works.
      if (!separated || a_here > 1 || b_here > 1 || a_host != b_host)
        reachable = true;
    }
    if (reachable) continue;
    ctx.report.add(
        {Rule::kNetworkPartition,
         Severity::kError,
         {ctx.a.component_subject(ix.a), ctx.a.component_subject(ix.b)},
         "no allowed host pair for this interaction lies in one connected "
         "network partition: the interaction can never be carried",
         "add a physical link between the partitions or relax the "
         "location/separation constraints"});
  }
}

void check_regions(Ctx& ctx) {
  // Region constraints only bind models that actually declare regions.
  if (ctx.m.region_count() < 2) return;
  for (std::size_t c = 0; c < ctx.n; ++c) {
    if (ctx.a.allowed_count(c) == 0) continue;  // location-unsat owns these
    std::size_t first_region = 0;
    bool seen = false, spread = false;
    for (std::size_t h = 0; h < ctx.k && !spread; ++h) {
      if (!ctx.a.allowed(c, h)) continue;
      const std::size_t region = ctx.m.host_region(static_cast<HostId>(h));
      if (!seen) {
        first_region = region;
        seen = true;
      } else {
        spread = region != first_region;
      }
    }
    if (spread) continue;
    ctx.report.add(
        {Rule::kRegionSpof,
         Severity::kWarning,
         {ctx.a.component_subject(c)},
         "every legal host lies in region " + std::to_string(first_region) +
             ": one correlated region failure removes all placement "
             "candidates",
         "allow a host in another region or re-zone the hosts"});
  }
}

void check_lints(Ctx& ctx) {
  if (ctx.k > 1) {
    for (std::size_t h = 0; h < ctx.k; ++h) {
      bool linked = false;
      for (std::size_t other = 0; other < ctx.k && !linked; ++other)
        linked = other != h && ctx.m.connected(static_cast<HostId>(h),
                                               static_cast<HostId>(other));
      if (!linked)
        ctx.report.add({Rule::kIsolatedHost,
                        Severity::kWarning,
                        {ctx.a.host_subject(h)},
                        "no physical link connects this host to the rest of "
                        "the network",
                        "add a physical link or drop the host"});
    }
  }
  if (ctx.n > 0 && ctx.k > 0) {
    double min_mem = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < ctx.n; ++c)
      min_mem = std::min(
          min_mem, ctx.m.component(static_cast<ComponentId>(c)).memory_size);
    for (std::size_t h = 0; h < ctx.k; ++h) {
      const model::Host& host = ctx.m.host(static_cast<HostId>(h));
      if (min_mem > host.memory_capacity)
        ctx.report.add({Rule::kUselessHost,
                        Severity::kWarning,
                        {ctx.a.host_subject(h)},
                        "memory capacity " + fmt(host.memory_capacity) +
                            " KB is below every component's footprint "
                            "(smallest: " +
                            fmt(min_mem) + " KB)",
                        "grow the host or drop it from the model"});
    }
  }
}

}  // namespace

AnalysisContext::AnalysisContext(const DeploymentModel& model,
                                 const ConstraintSet& set)
    : model_(&model),
      set_(&set),
      n_(model.component_count()),
      k_(model.host_count()),
      words_((k_ + 63) / 64) {
  // Allow-mask rows: like ConstraintChecker's compiled masks but built
  // rule-level so the analyzer works on models the checker's constructor
  // would reject (e.g. zero hosts).
  rows_.assign(n_ * words_, 0);
  for (std::size_t c = 0; c < n_; ++c)
    for (std::size_t h = 0; h < k_; ++h)
      if (set.host_allowed(static_cast<ComponentId>(c),
                           static_cast<HostId>(h)))
        rows_[c * words_ + h / 64] |= std::uint64_t{1} << (h % 64);

  // Must-collocate closure, flattened to per-component roots.
  UnionFind uf(n_);
  for (const auto& [a, b] : set.colocation_pairs())
    if (a < n_ && b < n_) uf.unite(a, b);
  root_.resize(n_);
  std::vector<std::vector<std::size_t>> members(n_);
  for (std::size_t c = 0; c < n_; ++c) {
    root_[c] = uf.find(c);
    members[root_[c]].push_back(c);
  }
  for (auto& g : members)
    if (!g.empty()) groups_.push_back(std::move(g));
}

std::size_t AnalysisContext::allowed_count(std::size_t c) const {
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_; ++w)
    total += static_cast<std::size_t>(std::popcount(rows_[c * words_ + w]));
  return total;
}

std::vector<std::uint64_t> AnalysisContext::allowed_intersection(
    const std::vector<std::size_t>& members) const {
  std::vector<std::uint64_t> out(words_, ~std::uint64_t{0});
  for (const std::size_t c : members)
    for (std::size_t w = 0; w < words_; ++w) out[w] &= rows_[c * words_ + w];
  // Mask off the bits beyond the host count.
  if (words_ > 0 && k_ % 64 != 0)
    out[words_ - 1] &= (std::uint64_t{1} << (k_ % 64)) - 1;
  return out;
}

std::string AnalysisContext::component_subject(std::size_t c) const {
  if (c < model_->component_count())
    return "component " + model_->component(static_cast<ComponentId>(c)).name;
  return "component #" + std::to_string(c);
}

std::string AnalysisContext::host_subject(std::size_t h) const {
  if (h < model_->host_count())
    return "host " + model_->host(static_cast<HostId>(h)).name;
  return "host #" + std::to_string(h);
}

CheckReport StaticAnalyzer::analyze(const AnalysisContext& context) const {
  CheckReport report;
  Ctx ctx{context,           context.model(), context.constraints(),
          report,            context.components(),
          context.hosts()};

  if (options_.dangling_references) check_dangling(ctx);
  if (options_.parameter_ranges) check_param_ranges(ctx);
  if (options_.location_satisfiability) check_location(ctx);
  if (options_.colocation_consistency) check_colocation(ctx);

  if ((options_.location_satisfiability || options_.capacity_bounds) &&
      ctx.k > 0)
    check_groups(ctx, options_.location_satisfiability,
                 options_.capacity_bounds);

  if (options_.network_reachability) check_network(ctx);
  if (options_.region_awareness) check_regions(ctx);
  if (options_.lints) check_lints(ctx);
  return report;
}

CheckReport StaticAnalyzer::analyze(const DeploymentModel& model,
                                    const ConstraintSet& set) const {
  return analyze(AnalysisContext(model, set));
}

CheckReport run_checks(const DeploymentModel& model, const ConstraintSet& set,
                       const CheckOptions& options) {
  return StaticAnalyzer(options).analyze(model, set);
}

}  // namespace dif::check
