#include "check/plan_check.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "model/constraints.h"
#include "model/deployment.h"
#include "model/deployment_model.h"

namespace dif::check {

namespace {

using model::ComponentId;
using model::HostId;

// Capacity comparisons tolerate accumulated floating-point noise.
constexpr double kEpsilon = 1e-9;

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string host_subject(const PlanContext& ctx, HostId h) {
  if (h < ctx.host_names.size()) return "host " + ctx.host_names[h];
  return "host #" + std::to_string(h);
}

double lookup(const std::map<std::string, double>& map,
              const std::string& key) {
  const auto it = map.find(key);
  return it == map.end() ? 0.0 : it->second;
}

double lookup(const std::map<HostId, double>& map, HostId key) {
  const auto it = map.find(key);
  return it == map.end() ? 0.0 : it->second;
}

}  // namespace

CheckReport MigrationPlanChecker::check(const std::vector<PlanTask>& plan,
                                        const PlanContext& ctx) const {
  CheckReport report;

  // Structural pass: duplicates/conflicts, dangling hosts, no-ops, custody.
  std::map<std::string, const PlanTask*> first_task;
  std::set<std::string> conflict_reported;
  std::vector<const PlanTask*> admitted;  // first occurrence, in-range hosts
  for (const PlanTask& task : plan) {
    const auto [it, fresh] = first_task.emplace(task.component, &task);
    if (!fresh) {
      if (conflict_reported.insert(task.component).second) {
        const PlanTask& prior = *it->second;
        const bool same = prior.from == task.from && prior.to == task.to;
        report.add({Rule::kPlanConflict,
                    Severity::kError,
                    {"component " + task.component},
                    same ? "the plan lists this migration twice"
                         : "the plan gives this component conflicting "
                           "migrations (" +
                               host_subject(ctx, prior.from) + "->" +
                               host_subject(ctx, prior.to) + " vs " +
                               host_subject(ctx, task.from) + "->" +
                               host_subject(ctx, task.to) + ")",
                    "collapse the duplicate tasks into one"});
      }
      continue;
    }

    bool in_range = true;
    if (ctx.host_count > 0) {
      for (const HostId h : {task.from, task.to}) {
        if (h < ctx.host_count) continue;
        in_range = false;
        report.add({Rule::kDanglingReference,
                    Severity::kError,
                    {"component " + task.component, host_subject(ctx, h)},
                    "the plan references host id " + std::to_string(h) +
                        " but the fleet has " +
                        std::to_string(ctx.host_count) + " hosts",
                    "point the task at an existing host"});
      }
    }

    if (task.from == task.to)
      report.add({Rule::kPlanNoop,
                  Severity::kWarning,
                  {"component " + task.component},
                  "source and destination are both " +
                      host_subject(ctx, task.from),
                  "drop the no-op task from the plan"});

    if (!ctx.locations.empty()) {
      const auto loc = ctx.locations.find(task.component);
      if (loc == ctx.locations.end()) {
        report.add({Rule::kPlanCustody,
                    Severity::kError,
                    {"component " + task.component},
                    "no believed location exists for this component: custody "
                    "is unknown",
                    "wait for a monitor report or drop the task"});
      } else if (loc->second != task.from) {
        report.add({Rule::kPlanCustody,
                    Severity::kError,
                    {"component " + task.component},
                    "the plan migrates it from " +
                        host_subject(ctx, task.from) +
                        " but custody places it on " +
                        host_subject(ctx, loc->second) +
                        ": a stale source would tear the transfer",
                    "re-plan from the believed location"});
      }
    }

    if (in_range) admitted.push_back(&task);
  }

  // Capacity pass over the admitted tasks, only for hosts with a modelled
  // capacity. The steady state matches the admins' prepare vote (outbound
  // credited); the transient peak does not credit outbound, modelling
  // source+destination double occupancy during the transfer window.
  if (!ctx.host_capacity_kb.empty()) {
    std::map<HostId, double> inbound;
    std::map<HostId, double> outbound;
    std::map<HostId, std::vector<std::string>> arrivals;
    for (const PlanTask* task : admitted) {
      if (task->from == task->to) continue;
      const double kb = lookup(ctx.component_memory_kb, task->component);
      inbound[task->to] += kb;
      outbound[task->from] += kb;
      arrivals[task->to].push_back(task->component);
    }
    for (const auto& [h, capacity] : ctx.host_capacity_kb) {
      if (capacity <= 0.0) continue;  // unmodelled, like the admin vote
      const auto arriving = arrivals.find(h);
      if (arriving == arrivals.end()) continue;  // nothing lands here
      const double used = lookup(ctx.host_used_memory_kb, h);
      const double in_kb = inbound[h];
      const double steady = used - outbound[h] + in_kb;
      const double transient = used + in_kb;
      if (steady > capacity + kEpsilon) {
        report.add({Rule::kPlanOverload,
                    Severity::kError,
                    {host_subject(ctx, h)},
                    "steady-state memory " + fmt(steady) +
                        " KB exceeds capacity " + fmt(capacity) +
                        " KB: the admins' prepare vote is certain to veto",
                    "shrink the plan or free the host first",
                    arriving->second});
      } else if (transient > capacity + kEpsilon) {
        report.add({Rule::kPlanTransientOverload,
                    Severity::kWarning,
                    {host_subject(ctx, h)},
                    "source+destination double occupancy peaks at " +
                        fmt(transient) + " KB against capacity " +
                        fmt(capacity) +
                        " KB during the transfer window (steady state " +
                        fmt(steady) + " KB fits)",
                    "stage the plan in smaller rounds",
                    arriving->second});
      }
    }
  }

  return report;
}

CheckReport check_plan(const model::DeploymentModel& m,
                       const model::ConstraintSet& set,
                       const model::Deployment& current,
                       const std::vector<PlanTask>& plan,
                       const AuditOptions& audit_options) {
  const std::size_t n = m.component_count();
  const std::size_t k = m.host_count();

  PlanContext ctx;
  ctx.host_count = k;
  ctx.host_names.reserve(k);
  for (std::size_t h = 0; h < k; ++h) {
    ctx.host_names.push_back(m.host(static_cast<HostId>(h)).name);
    ctx.host_capacity_kb[static_cast<HostId>(h)] =
        m.host(static_cast<HostId>(h)).memory_capacity;
  }
  for (std::size_t c = 0; c < std::min(current.size(), n); ++c) {
    const auto cid = static_cast<ComponentId>(c);
    const std::string& name = m.component(cid).name;
    ctx.component_memory_kb[name] = m.component(cid).memory_size;
    if (!current.is_assigned(cid) || current.host_of(cid) >= k) continue;
    ctx.locations[name] = current.host_of(cid);
    ctx.host_used_memory_kb[current.host_of(cid)] += m.component(cid).memory_size;
  }

  // Unknown component names are model defects, and their tasks are not
  // applied to the post-plan placement.
  CheckReport report;
  std::vector<PlanTask> known;
  known.reserve(plan.size());
  for (const PlanTask& task : plan) {
    if (ctx.component_memory_kb.count(task.component) == 0) {
      report.add({Rule::kDanglingReference,
                  Severity::kError,
                  {"component " + task.component},
                  "the plan names a component the model does not contain",
                  "fix the component name or add it to the model"});
      continue;
    }
    known.push_back(task);
  }

  const CheckReport checked = MigrationPlanChecker().check(known, ctx);
  for (const Diagnostic& d : checked.diagnostics()) report.add(d);

  // Post-plan placement validity: apply the admitted tasks to a copy and
  // run the placement auditor over the result.
  model::Deployment post = current;
  std::set<std::string> applied;
  std::map<std::string, ComponentId> by_name;
  for (std::size_t c = 0; c < n; ++c)
    by_name.emplace(m.component(static_cast<ComponentId>(c)).name,
                    static_cast<ComponentId>(c));
  for (const PlanTask& task : known) {
    if (task.to >= k || !applied.insert(task.component).second) continue;
    const auto it = by_name.find(task.component);
    if (it != by_name.end() && it->second < post.size())
      post.assign(it->second, task.to);
  }
  const CheckReport after =
      PlacementAuditor(audit_options).audit(m, set, post);
  for (const Diagnostic& d : after.diagnostics()) {
    Diagnostic copy = d;
    copy.message = "post-plan: " + copy.message;
    report.add(std::move(copy));
  }
  return report;
}

}  // namespace dif::check
