// Phi-accrual failure detection over the monitor heartbeat stream.
//
// Every AdminComponent ships a __monitor_report on a fixed cadence; the
// deployer sees one per host per report interval unless the host is dead or
// unreachable. Instead of a fixed timeout ("no report for T ms => dead"),
// the phi-accrual detector (Hayashibara et al., SRDS'04 — the detector Akka
// and Cassandra ship) keeps a sliding window of observed inter-arrival
// times per host and outputs a *suspicion level*:
//
//   phi(now) = -log10( P(next heartbeat arrives later than now) )
//
// under a normal model of the inter-arrival distribution. The continuous
// score separates two thresholds cleanly: a low one (*suspect* — stop
// placing new components there) and a high one (*condemn* — declare the
// host lost and start recovery). Because the window adapts to the observed
// cadence, a host whose reports ride a lossy link accrues suspicion slower
// than one on a clean link, replacing the fixed-timeout liveness
// assumption the analyzer/deployer paths used to imply.
//
// Everything is deterministic in simulated time: same heartbeat sequence,
// same phi trajectory, byte-identical reports.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "model/ids.h"

namespace dif::heal {

struct DetectorConfig {
  /// Suspicion threshold for the *suspect* state: the host stops being a
  /// valid placement target but no recovery starts. phi = 2 means "the
  /// chance this silence is ordinary is below 1%".
  double phi_suspect = 2.0;
  /// Threshold for *condemned*: the host is declared lost and the
  /// RecoveryPlanner re-places its components. phi = 8 is a 1e-8 chance of
  /// a false positive under the fitted inter-arrival model.
  double phi_condemn = 8.0;
  /// Sliding window of inter-arrival samples kept per host.
  std::size_t window = 32;
  /// Until this many real samples arrive, the window is padded with
  /// `bootstrap_interval_ms` so the detector is usable from the first
  /// report (and strictly conservative before it has evidence).
  std::size_t min_samples = 3;
  /// Expected heartbeat cadence (the admins' report_interval_ms).
  double bootstrap_interval_ms = 1'000.0;
  /// Variance floor: simulated timers are exact, so an undisturbed window
  /// collapses to zero variance and a single lost report would otherwise
  /// spike phi to infinity. The floor models scheduling/report jitter.
  double min_std_ms = 250.0;
  /// Grace subtracted from the observed silence before scoring — absorbs
  /// short message-delay/reorder bursts (the protocol fuzzer's territory)
  /// without accruing suspicion.
  double acceptable_pause_ms = 2'000.0;
};

enum class HostState { kAlive, kSuspect, kCondemned };

[[nodiscard]] const char* to_string(HostState state) noexcept;

class PhiAccrualDetector {
 public:
  explicit PhiAccrualDetector(DetectorConfig config = {});

  /// Records a heartbeat (a __monitor_report) from `host` at sim time
  /// `now_ms`. Out-of-order timestamps (delayed/reordered delivery) are
  /// tolerated: a timestamp at or before the last recorded one is ignored
  /// rather than producing a negative interval.
  void heartbeat(model::HostId host, double now_ms);

  /// Current suspicion level for `host`. Hosts never heard from score 0
  /// until `bootstrap_from` (see below) has been set, so silence before the
  /// first report does not read as death during startup.
  [[nodiscard]] double phi(model::HostId host, double now_ms) const;

  /// phi mapped through the two thresholds.
  [[nodiscard]] HostState state(model::HostId host, double now_ms) const;

  /// Starts the clock for hosts that have never reported: after this call a
  /// host with zero heartbeats accrues suspicion as if its last heartbeat
  /// was at `now_ms` (bootstrap cadence). Call once when monitoring starts.
  void bootstrap_from(double now_ms);

  /// Drops `host`'s history (a condemned host that provably restarted gets
  /// a fresh window instead of dragging its outage into the estimate).
  void forget(model::HostId host);

  [[nodiscard]] bool seen(model::HostId host) const;
  [[nodiscard]] std::size_t sample_count(model::HostId host) const;
  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  struct History {
    std::vector<double> intervals;  // ring buffer, size <= config_.window
    std::size_t next = 0;           // ring cursor
    double last_ms = -1.0;          // last heartbeat timestamp
  };

  [[nodiscard]] double phi_of(const History& h, double now_ms) const;

  DetectorConfig config_;
  std::map<model::HostId, History> hosts_;
  double bootstrap_at_ms_ = -1.0;  // <0: never-seen hosts score 0
};

}  // namespace dif::heal
