#include "heal/recovery.h"

#include <algorithm>
#include <utility>

#include "algo/registry.h"
#include "model/constraints.h"
#include "model/incremental.h"
#include "model/objective.h"
#include "prism/bytes.h"

namespace dif::heal {

RecoveryPlanner::RecoveryPlanner(const desi::SystemData& pristine,
                                 Options options)
    : pristine_(pristine), options_(std::move(options)) {}

RecoveryPlan RecoveryPlanner::plan(
    const model::Deployment& current, model::HostId dead,
    const std::vector<model::HostId>& avoid) const {
  RecoveryPlan plan;
  const model::DeploymentModel& m = pristine_.model();
  const auto is_avoided = [&avoid](model::HostId h) {
    return std::find(avoid.begin(), avoid.end(), h) != avoid.end();
  };

  // Everything the runtime believes lives on the dead host is lost.
  model::Deployment work = current;
  std::vector<model::ComponentId> lost_ids;
  for (model::ComponentId c = 0; c < m.component_count(); ++c) {
    if (work.is_assigned(c) && work.host_of(c) == dead) {
      lost_ids.push_back(c);
      plan.lost.push_back(m.component(c).name);
      work.unassign(c);
    }
  }
  if (lost_ids.empty()) {
    plan.feasible = true;
    for (model::ComponentId c = 0; c < m.component_count(); ++c)
      if (work.is_assigned(c)) plan.target.emplace_back(m.component(c).name,
                                                        work.host_of(c));
    return plan;
  }

  // The repair constraint set: nothing may land on the dead host, and the
  // lost components additionally avoid suspects (live components already on
  // a merely-suspect host stay put — eviction is not recovery's job).
  model::ConstraintSet repaired = pristine_.constraints();
  for (model::ComponentId c = 0; c < m.component_count(); ++c) {
    repaired.forbid_host(c, dead);
    if (std::find(lost_ids.begin(), lost_ids.end(), c) != lost_ids.end())
      for (const model::HostId h : avoid) repaired.forbid_host(c, h);
  }
  const model::ConstraintChecker checker(m, repaired);
  model::AvailabilityObjective objective;

  // Greedy seed: place each lost component on the feasible live host that
  // maximizes the incrementally-scored objective.
  auto evaluator = model::IncrementalEvaluator::try_create(objective, m);
  if (evaluator) evaluator->reset(work);
  bool all_placed = true;
  for (const model::ComponentId c : lost_ids) {
    model::HostId best = model::kNoHost;
    double best_score = 0.0;
    for (model::HostId h = 0; h < m.host_count(); ++h) {
      if (h == dead || is_avoided(h)) continue;
      if (!checker.placement_ok(work, c, h)) continue;
      double score = 0.0;
      if (evaluator) {
        evaluator->apply(c, h);
        score = evaluator->score();
        evaluator->apply(c, model::kNoHost);
      }
      if (best == model::kNoHost || score > best_score) {
        best = h;
        best_score = score;
      }
    }
    if (best == model::kNoHost) {
      all_placed = false;
      continue;
    }
    work.assign(c, best);
    if (evaluator) evaluator->apply(c, best);
  }
  plan.feasible = all_placed;

  // Warm-start polish: bounded search over the lost components'
  // neighbourhood, seeded with the greedy repair. Promptness beats
  // optimality here — the improvement loop keeps refining afterwards.
  if (all_placed && work.complete() && options_.max_evaluations > 0) {
    algo::AlgorithmRegistry registry = algo::AlgorithmRegistry::with_defaults();
    if (auto algorithm = registry.create(options_.algorithm)) {
      algo::AlgoOptions opts;
      opts.initial = work;
      opts.warm_start = true;
      opts.dirty_components = lost_ids;
      opts.max_evaluations = options_.max_evaluations;
      opts.seed = options_.seed;
      const algo::AlgoResult result =
          algorithm->run(m, objective, checker, opts);
      if (result.feasible && result.deployment.complete()) {
        bool off_dead = true;
        for (model::ComponentId c = 0; c < m.component_count(); ++c)
          if (result.deployment.host_of(c) == dead) off_dead = false;
        if (off_dead) work = result.deployment;
      }
    }
  }

  for (model::ComponentId c = 0; c < m.component_count(); ++c)
    if (work.is_assigned(c))
      plan.target.emplace_back(m.component(c).name, work.host_of(c));
  return plan;
}

HealController::HealController(core::CentralizedInstantiation& instantiation,
                               const desi::SystemData& pristine,
                               HealConfig config)
    : inst_(instantiation),
      pristine_(pristine),
      config_(std::move(config)),
      detector_(config_.detector),
      planner_(pristine, [&] {
        RecoveryPlanner::Options opts = config_.planner;
        if (config_.seed != 0) opts.seed = config_.seed;
        return opts;
      }()) {
  // Default substitute state: a fresh WorkloadComponent wired with the
  // pristine model's logical links (counters reset; epoch 1 so the restored
  // instance auto-starts on attach — see WorkloadComponent::on_attached).
  state_provider_ = [this](const std::string& name)
      -> std::optional<prism::RecoveredComponent> {
    const model::DeploymentModel& m = pristine_.model();
    for (model::ComponentId c = 0; c < m.component_count(); ++c) {
      if (m.component(c).name != name) continue;
      prism::RecoveredComponent rc;
      rc.type = "workload";
      rc.memory_kb = m.component(c).memory_size;
      prism::ByteWriter writer;
      writer.f64(rc.memory_kb);
      writer.u64(0);  // sent
      writer.u64(0);  // received
      writer.u64(1);  // epoch: auto-start after attach
      std::vector<const model::Interaction*> links;
      for (const model::Interaction& ix : m.interactions())
        if (ix.a == c || ix.b == c) links.push_back(&ix);
      writer.u32(static_cast<std::uint32_t>(links.size()));
      for (const model::Interaction* ix : links) {
        writer.str(m.component(ix->a == c ? ix->b : ix->a).name);
        writer.f64(ix->frequency);
        writer.f64(ix->avg_event_size);
      }
      rc.state = writer.take();
      return rc;
    }
    return std::nullopt;
  };
}

void HealController::set_state_provider(StateProvider provider) {
  state_provider_ = std::move(provider);
}

void HealController::start() {
  running_ = true;
  prism::DeployerComponent& deployer = inst_.deployer();
  deployer.set_heartbeat_listener([this](model::HostId host, double now_ms) {
    detector_.heartbeat(host, now_ms);
  });
  deployer.set_liveness_probe([this](model::HostId host) {
    return detector_.state(host, inst_.simulator().now()) !=
           HostState::kAlive;
  });
  // Arm the recovery-era ownership rules fleet-wide: custody-versioned
  // location rebroadcasts and custody-precedence conflict resolution. Both
  // stay off on recovery-off runs so those remain byte-identical to
  // pre-heal builds.
  deployer.set_custody_rebroadcast(true);
  const model::DeploymentModel& fleet = pristine_.model();
  for (model::HostId h = 0; h < fleet.host_count(); ++h)
    inst_.admin(h).set_custody_precedence(true);
  detector_.bootstrap_from(inst_.simulator().now());
  schedule_tick();
}

void HealController::schedule_tick() {
  inst_.simulator().schedule_after(config_.check_interval_ms, [this] {
    if (!running_) return;
    tick();
    schedule_tick();
  });
}

void HealController::tick() {
  const double now = inst_.simulator().now();
  sweep_states(now);
  dispatch_pending(now);
}

void HealController::sweep_states(double now_ms) {
  const model::DeploymentModel& m = pristine_.model();
  const model::HostId master = inst_.config().master_host;
  for (model::HostId h = 0; h < m.host_count(); ++h) {
    if (h == master) continue;  // the deployer's own host judges no one dead
    const HostState state = detector_.state(h, now_ms);
    const auto it = states_.find(h);
    const HostState prev = it == states_.end() ? HostState::kAlive : it->second;
    if (state == prev) continue;
    transitions_.push_back({h, now_ms, prev, state});
    if (state == HostState::kSuspect && prev == HostState::kAlive)
      ++suspicions_;
    if (state == HostState::kCondemned) {
      ++condemnations_;
      on_condemned(h, now_ms);
    } else if (prev == HostState::kCondemned) {
      ++rejoins_;
      on_rejoined(h, now_ms);
    }
    states_[h] = state;
  }
}

void HealController::on_condemned(model::HostId host, double now_ms) {
  // Flapping guard: while a host's loss is already repaired (or queued),
  // re-condemning it must not re-place anything.
  if (pending_.count(host) > 0 || open_record_.count(host) > 0) return;
  if (repaired_.count(host) > 0) return;
  open_record_[host] = recoveries_.size();
  RecoveryRecord record;
  record.host = host;
  record.condemned_at_ms = now_ms;
  recoveries_.push_back(record);
  pending_.insert(host);
}

void HealController::on_rejoined(model::HostId host, double /*now_ms*/) {
  for (RecoveryRecord& record : recoveries_)
    if (record.host == host) record.rejoined = true;
  repaired_.erase(host);
  // Anti-entropy push: re-announce where the fleet placed the components
  // this host lost custody of. The announcements carry the repair's bumped
  // custody version, so the rejoining host sheds its stale copies (see
  // AdminComponent::handle_location_update custody precedence).
  prism::DeployerComponent& deployer = inst_.deployer();
  for (const std::string& component : recovered_components_)
    deployer.announce_location(component);
}

std::vector<model::HostId> HealController::unsafe_hosts(double now_ms) const {
  std::vector<model::HostId> unsafe;
  const model::DeploymentModel& m = pristine_.model();
  for (model::HostId h = 0; h < m.host_count(); ++h)
    if (detector_.state(h, now_ms) != HostState::kAlive) unsafe.push_back(h);
  return unsafe;
}

void HealController::dispatch_pending(double now_ms) {
  if (pending_.empty()) return;
  prism::DeployerComponent& deployer = inst_.deployer();
  if (deployer.redeployment_in_flight()) return;  // retry next tick

  const model::HostId host = *pending_.begin();
  pending_.erase(pending_.begin());
  const auto record_it = open_record_.find(host);
  const std::size_t record_index =
      record_it != open_record_.end() ? record_it->second : recoveries_.size();

  const model::Deployment current = inst_.runtime_deployment();
  const RecoveryPlan plan = planner_.plan(current, host, unsafe_hosts(now_ms));
  if (plan.lost.empty()) {
    // Nothing was on the host (or a previous repair already moved it all).
    open_record_.erase(host);
    repaired_.insert(host);
    return;
  }

  std::map<std::string, prism::RecoveredComponent> lost;
  for (const std::string& name : plan.lost)
    if (auto state = state_provider_(name)) lost.emplace(name, *state);

  if (record_index < recoveries_.size())
    recoveries_[record_index].components = plan.lost.size();

  const std::vector<std::string> lost_names = plan.lost;
  const bool accepted = deployer.effect_recovery(
      plan.target, lost,
      [this, host, record_index, lost_names](bool success, std::size_t) {
        if (success) {
          if (record_index < recoveries_.size()) {
            recoveries_[record_index].committed = true;
            recoveries_[record_index].committed_at_ms =
                inst_.simulator().now();
          }
          open_record_.erase(host);
          ++committed_;
          repaired_.insert(host);
          for (const std::string& name : lost_names)
            recovered_components_.insert(name);
        } else {
          ++failed_;
          pending_.insert(host);  // re-plan on a later tick
        }
      });
  if (accepted) {
    ++started_;
  } else {
    pending_.insert(host);  // effector raced us; retry next tick
  }
}

double HealController::mean_mttr_ms() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const RecoveryRecord& r : recoveries_) {
    if (!r.committed) continue;
    sum += r.committed_at_ms - r.condemned_at_ms;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double HealController::max_mttr_ms() const {
  double worst = 0.0;
  for (const RecoveryRecord& r : recoveries_)
    if (r.committed)
      worst = std::max(worst, r.committed_at_ms - r.condemned_at_ms);
  return worst;
}

util::json::Value HealController::to_json() const {
  util::json::Object recovery;
  recovery["enabled"] = true;
  recovery["suspicions"] = suspicions_;
  recovery["condemnations"] = condemnations_;
  recovery["rejoins"] = rejoins_;
  recovery["recoveries_started"] = started_;
  recovery["recoveries_committed"] = committed_;
  recovery["recoveries_failed"] = failed_;
  recovery["mean_mttr_ms"] = mean_mttr_ms();
  recovery["max_mttr_ms"] = max_mttr_ms();
  util::json::Array events;
  for (const RecoveryRecord& r : recoveries_) {
    util::json::Object event;
    event["host"] = static_cast<std::uint64_t>(r.host);
    event["condemned_at_ms"] = r.condemned_at_ms;
    event["committed_at_ms"] = r.committed_at_ms;
    event["components"] = static_cast<std::uint64_t>(r.components);
    event["committed"] = r.committed;
    event["rejoined"] = r.rejoined;
    events.push_back(util::json::Value(std::move(event)));
  }
  recovery["events"] = util::json::Value(std::move(events));
  return util::json::Value(std::move(recovery));
}

}  // namespace dif::heal
