#include "heal/failure_detector.h"

#include <algorithm>
#include <cmath>

namespace dif::heal {

const char* to_string(HostState state) noexcept {
  switch (state) {
    case HostState::kAlive:
      return "alive";
    case HostState::kSuspect:
      return "suspect";
    case HostState::kCondemned:
      return "condemned";
  }
  return "?";
}

PhiAccrualDetector::PhiAccrualDetector(DetectorConfig config)
    : config_(config) {
  config_.window = std::max<std::size_t>(config_.window, 1);
  config_.min_std_ms = std::max(config_.min_std_ms, 1.0);
}

void PhiAccrualDetector::bootstrap_from(double now_ms) {
  bootstrap_at_ms_ = now_ms;
}

void PhiAccrualDetector::forget(model::HostId host) { hosts_.erase(host); }

bool PhiAccrualDetector::seen(model::HostId host) const {
  return hosts_.count(host) > 0;
}

std::size_t PhiAccrualDetector::sample_count(model::HostId host) const {
  const auto it = hosts_.find(host);
  return it == hosts_.end() ? 0 : it->second.intervals.size();
}

void PhiAccrualDetector::heartbeat(model::HostId host, double now_ms) {
  History& h = hosts_[host];
  if (h.last_ms < 0.0) {
    // First heartbeat: no interval yet, just arm the clock.
    h.last_ms = now_ms;
    return;
  }
  // Delayed/reordered delivery can hand us a timestamp at or before the
  // last one; a non-positive interval is delivery noise, not cadence.
  if (now_ms <= h.last_ms) return;
  const double interval = now_ms - h.last_ms;
  h.last_ms = now_ms;
  if (h.intervals.size() < config_.window) {
    h.intervals.push_back(interval);
  } else {
    h.intervals[h.next] = interval;
    h.next = (h.next + 1) % config_.window;
  }
}

double PhiAccrualDetector::phi_of(const History& h, double now_ms) const {
  const double elapsed = now_ms - h.last_ms;
  if (elapsed <= 0.0) return 0.0;

  // Fit mean/std over the window, padded to min_samples with the bootstrap
  // cadence so a single early sample cannot dominate the estimate.
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = h.intervals.size();
  for (const double v : h.intervals) {
    sum += v;
    sum_sq += v * v;
  }
  while (n < config_.min_samples) {
    sum += config_.bootstrap_interval_ms;
    sum_sq += config_.bootstrap_interval_ms * config_.bootstrap_interval_ms;
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  const double variance =
      std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  const double std_dev = std::max(std::sqrt(variance), config_.min_std_ms);

  const double y =
      (elapsed - config_.acceptable_pause_ms - mean) / std_dev;
  if (y <= 0.0) return 0.0;
  // Tail probability of a normal inter-arrival: P(X > elapsed). erfc is
  // deterministic for a fixed build, which is all the byte-identical
  // reports need (reports never serialize phi itself, only states).
  const double tail = 0.5 * std::erfc(y / std::sqrt(2.0));
  // Floor the probability so phi stays finite (and monotone in `elapsed`
  // via y once the floor is hit the score saturates, which is fine: every
  // threshold worth configuring sits far below it).
  return -std::log10(std::max(tail, 1e-30));
}

double PhiAccrualDetector::phi(model::HostId host, double now_ms) const {
  const auto it = hosts_.find(host);
  if (it != hosts_.end() && it->second.last_ms >= 0.0)
    return phi_of(it->second, now_ms);
  // Never heard from: silent hosts only accrue suspicion once the caller
  // declared monitoring live (bootstrap_from); before that, score 0.
  if (bootstrap_at_ms_ < 0.0) return 0.0;
  History ghost;
  ghost.last_ms = bootstrap_at_ms_;
  return phi_of(ghost, now_ms);
}

HostState PhiAccrualDetector::state(model::HostId host, double now_ms) const {
  const double p = phi(host, now_ms);
  if (p >= config_.phi_condemn) return HostState::kCondemned;
  if (p >= config_.phi_suspect) return HostState::kSuspect;
  return HostState::kAlive;
}

}  // namespace dif::heal
