// Self-healing: recovery planning and the heal control loop.
//
// The missing piece of the paper's monitor → analyze → redeploy cycle: the
// runtime so far *survived* injected faults (transactional rounds,
// ownership resolution) but never closed the loop by detecting a dead host
// and autonomously restoring the audited placement. This module does:
//
//   PhiAccrualDetector (failure_detector.h) watches the monitor heartbeat
//   stream; when a host crosses the *condemn* threshold, the
//   RecoveryPlanner marks its components dirty and warm-starts the search
//   stack (algo/ warm_start + dirty_components) from the surviving
//   placement to produce a repair target. The HealController hands that to
//   DeployerComponent::effect_recovery — a regular transactional round
//   whose lost-source migrations ship factory-reconstructible substitute
//   state (__recover_component) instead of requesting the component from
//   its dead holder. The round is preflight-audited, capacity-voted, and
//   ratekeeper-throttled exactly like any other redeployment, so repair
//   traffic cannot violate user SLOs.
//
//   If the condemnation was false (a partition, not a death), the host
//   eventually reports again; the controller notices the rejoin and
//   re-announces the recovered components' locations with their bumped
//   custody versions, so the rejoining host sheds its stale copies
//   (anti-entropy by epoch+custody precedence — see
//   AdminComponent::handle_location_update).
//
// Deterministic in (seed, heartbeat sequence): reports never carry wall
// clock, so recovery-enabled campaign/traffic runs stay byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/centralized_instantiation.h"
#include "desi/system_data.h"
#include "heal/failure_detector.h"
#include "prism/deployer.h"
#include "util/json.h"

namespace dif::heal {

/// A repair target: the full desired placement plus which components had to
/// be re-placed because their host was condemned.
struct RecoveryPlan {
  prism::DeployerComponent::TargetDeployment target;
  std::vector<std::string> lost;  // components that were on the dead host
  bool feasible = false;          // every lost component found a live home
};

/// Plans the repair placement for a condemned host: greedy constraint-aware
/// re-placement of the lost components (ConstraintChecker::placement_ok +
/// incremental availability scoring), polished by a warm-started search
/// restricted to the lost components' neighbourhood.
class RecoveryPlanner {
 public:
  struct Options {
    /// Search used for the warm-start polish (algo registry name).
    std::string algorithm = "hillclimb";
    /// Evaluation budget for the polish; repair must be prompt, not
    /// optimal — the improvement loop keeps refining afterwards.
    std::uint64_t max_evaluations = 4'000;
    std::uint64_t seed = 1;
  };

  /// `pristine` supplies ground-truth topology and constraints for
  /// planning; it must outlive the planner.
  RecoveryPlanner(const desi::SystemData& pristine, Options options);

  /// Repair plan for losing `dead` under placement `current`. Hosts in
  /// `avoid` (suspects, other condemned hosts) are not valid targets.
  [[nodiscard]] RecoveryPlan plan(const model::Deployment& current,
                                  model::HostId dead,
                                  const std::vector<model::HostId>& avoid)
      const;

 private:
  const desi::SystemData& pristine_;
  Options options_;
};

/// One detector state change, for reports and tests.
struct StateTransition {
  model::HostId host = 0;
  double at_ms = 0.0;
  HostState from = HostState::kAlive;
  HostState to = HostState::kAlive;
};

/// One condemnation and what recovery did about it.
struct RecoveryRecord {
  model::HostId host = 0;
  double condemned_at_ms = 0.0;
  double committed_at_ms = -1.0;  // < 0 until the repair round commits
  std::size_t components = 0;     // lost components re-placed
  bool committed = false;
  bool rejoined = false;  // the host later reported again (false positive)
};

struct HealConfig {
  DetectorConfig detector;
  /// Detector evaluation cadence (sim ms).
  double check_interval_ms = 1'000.0;
  RecoveryPlanner::Options planner;
  /// Stamped into the planner seed so distinct runs stay reproducible.
  std::uint64_t seed = 1;
};

/// Owns the detector and the repair loop for one centralized instantiation.
/// Construction wires nothing; start() registers the heartbeat tap and the
/// liveness probe with the deployer and schedules detector ticks.
class HealController {
 public:
  /// Substitute state for components lost with their host, keyed by name.
  using StateProvider = std::function<
      std::optional<prism::RecoveredComponent>(const std::string& name)>;

  /// `instantiation` and `pristine` must outlive the controller. The
  /// default state provider reconstitutes lost components as fresh
  /// WorkloadComponents configured from the pristine model's logical links.
  HealController(core::CentralizedInstantiation& instantiation,
                 const desi::SystemData& pristine, HealConfig config);

  /// Replaces the default state provider (tests, non-workload components).
  void set_state_provider(StateProvider provider);

  void start();
  void stop() noexcept { running_ = false; }

  /// One detector sweep + recovery dispatch, at the current sim time.
  /// start() schedules this on check_interval_ms; tests may call directly.
  void tick();

  [[nodiscard]] const PhiAccrualDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] const std::vector<StateTransition>& transitions()
      const noexcept {
    return transitions_;
  }
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries()
      const noexcept {
    return recoveries_;
  }
  [[nodiscard]] std::uint64_t condemnations() const noexcept {
    return condemnations_;
  }
  [[nodiscard]] std::uint64_t suspicions() const noexcept {
    return suspicions_;
  }
  [[nodiscard]] std::uint64_t rejoins() const noexcept { return rejoins_; }
  /// True while a condemned host is awaiting or undergoing repair — the
  /// window whose SLO-violation seconds count as repair-attributable.
  [[nodiscard]] bool repair_in_flight() const noexcept {
    return !pending_.empty() || !open_record_.empty();
  }
  [[nodiscard]] std::uint64_t recoveries_started() const noexcept {
    return started_;
  }
  [[nodiscard]] std::uint64_t recoveries_committed() const noexcept {
    return committed_;
  }
  [[nodiscard]] std::uint64_t recoveries_failed() const noexcept {
    return failed_;
  }
  /// Mean condemnation→commit repair time over committed recoveries
  /// (0 when none committed).
  [[nodiscard]] double mean_mttr_ms() const;
  [[nodiscard]] double max_mttr_ms() const;

  /// The "recovery" object of dif-recovery-v1 payloads (also embedded in
  /// recovery-enabled campaign/traffic reports). Pure function of the run.
  [[nodiscard]] util::json::Value to_json() const;

 private:
  void schedule_tick();
  void sweep_states(double now_ms);
  void dispatch_pending(double now_ms);
  void on_condemned(model::HostId host, double now_ms);
  void on_rejoined(model::HostId host, double now_ms);
  [[nodiscard]] std::vector<model::HostId> unsafe_hosts(double now_ms) const;

  core::CentralizedInstantiation& inst_;
  const desi::SystemData& pristine_;
  HealConfig config_;
  PhiAccrualDetector detector_;
  RecoveryPlanner planner_;
  StateProvider state_provider_;
  bool running_ = false;

  std::map<model::HostId, HostState> states_;
  std::vector<StateTransition> transitions_;
  std::vector<RecoveryRecord> recoveries_;
  /// Condemned hosts awaiting a repair round (the effector may be busy).
  std::set<model::HostId> pending_;
  /// Hosts whose loss has been repaired and who have not rejoined yet —
  /// a re-condemnation of a still-absent host must not re-place anything
  /// (the flapping-host double-placement guard).
  std::set<model::HostId> repaired_;
  /// Components a committed repair re-placed; their locations (with bumped
  /// custody) are re-announced on rejoin so the returning host sheds its
  /// stale copies.
  std::set<std::string> recovered_components_;
  /// host -> index into recoveries_ of its open (un-committed) record.
  std::map<model::HostId, std::size_t> open_record_;

  std::uint64_t condemnations_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace dif::heal
