// DeSi's GraphView (paper Section 4.1, Figure 10).
//
// Renders the deployment architecture graphically: hosts as boxes containing
// their components, solid lines between hosts for physical links, thin lines
// between components for logical links. Headless: an ASCII rendering for
// terminals plus Graphviz DOT export for real diagrams.
#pragma once

#include <string>

#include "desi/graph_view_data.h"
#include "desi/system_data.h"

namespace dif::desi {

class GraphView {
 public:
  /// ASCII: one box per host listing its components, then the link lists.
  [[nodiscard]] static std::string render_ascii(const SystemData& system);

  /// Graphviz DOT with host clusters (components contained in host boxes),
  /// physical links as bold edges and logical links as thin edges —
  /// mirroring the paper's Figure 10 conventions.
  [[nodiscard]] static std::string to_dot(const SystemData& system,
                                          const GraphViewData& layout);
};

}  // namespace dif::desi
