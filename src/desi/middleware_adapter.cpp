#include "desi/middleware_adapter.h"

#include "util/logging.h"

namespace dif::desi {

MiddlewareAdapter::MiddlewareAdapter(SystemData& system,
                                     prism::DeployerComponent& deployer)
    : system_(system), deployer_(deployer) {}

void MiddlewareAdapter::attach_monitor() {
  deployer_.set_report_handler(
      [this](const prism::HostReport& report) { apply_report(report); });
}

namespace {

/// Resolves a component name, returning kNoHost-style nullopt for unknown
/// (e.g. meta) components rather than throwing.
std::optional<model::ComponentId> find_component(
    const model::DeploymentModel& m, const std::string& name) {
  try {
    return m.component_by_name(name);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace

void MiddlewareAdapter::apply_report(const prism::HostReport& report) {
  ++reports_;
  model::DeploymentModel& m = system_.model();
  if (report.host >= m.host_count()) {
    util::log_warn("desi.adapter", "report from unknown host ", report.host);
    return;
  }

  // Observed component locations update the deployment ground truth.
  system_.sync_deployment_size();
  for (const prism::HostReport::ComponentInfo& info : report.components) {
    if (const auto c = find_component(m, info.name)) {
      if (system_.deployment().host_of(*c) != report.host)
        system_.move_component(*c, report.host);
    }
  }

  // Monitored interaction frequencies -> logical links.
  for (const prism::HostReport::InteractionInfo& info : report.interactions) {
    const auto a = find_component(m, info.from);
    const auto b = find_component(m, info.to);
    if (!a || !b || *a == *b) continue;
    model::LogicalLink link = m.logical_link(*a, *b);
    link.frequency = info.frequency;
    if (info.avg_size_kb > 0.0) link.avg_event_size = info.avg_size_kb;
    m.set_logical_link(*a, *b, std::move(link));
  }

  // Monitored link reliabilities -> physical links.
  for (const prism::HostReport::ReliabilityInfo& info : report.reliabilities) {
    if (info.peer >= m.host_count() || info.peer == report.host) continue;
    if (!m.connected(report.host, info.peer)) continue;
    m.set_link_reliability(report.host, info.peer, info.reliability);
  }
}

bool MiddlewareAdapter::effect(
    const model::Deployment& target,
    prism::DeployerComponent::CompletionHandler done) {
  const model::DeploymentModel& m = system_.model();
  if (target.size() != m.component_count()) return false;
  prism::DeployerComponent::TargetDeployment names;
  names.reserve(target.size());
  for (std::size_t c = 0; c < target.size(); ++c) {
    const auto comp = static_cast<model::ComponentId>(c);
    if (target.host_of(comp) == model::kNoHost) continue;
    names.emplace_back(m.component(comp).name, target.host_of(comp));
  }
  return deployer_.effect_deployment(names, std::move(done));
}

}  // namespace dif::desi
