// DeSi's Modifier component (paper Section 4.1).
//
// "The Modifier component allows fine-grain tuning of the generated
// deployment architecture (e.g., by altering a single network link's
// reliability, a single component's required memory, and so on)" — the
// sensitivity-analysis tool behind DeSi's editable Parameters table.
#pragma once

#include <string>
#include <vector>

#include "desi/system_data.h"

namespace dif::desi {

class Modifier {
 public:
  /// The system must outlive the modifier.
  explicit Modifier(SystemData& system) : system_(system) {}

  // Single-parameter edits (each fires a model notification).
  void set_link_reliability(model::HostId a, model::HostId b, double value);
  void set_link_bandwidth(model::HostId a, model::HostId b, double value);
  void set_link_delay(model::HostId a, model::HostId b, double value);
  void set_host_memory(model::HostId h, double kb);
  void set_component_memory(model::ComponentId c, double kb);
  void set_interaction_frequency(model::ComponentId a, model::ComponentId b,
                                 double events_per_s);
  void set_interaction_event_size(model::ComponentId a, model::ComponentId b,
                                  double kb);

  /// Sets an extensible property on a host / component / physical link.
  void set_host_property(model::HostId h, std::string_view name,
                         double value);
  void set_component_property(model::ComponentId c, std::string_view name,
                              double value);

  /// Bulk what-if: multiply every link's reliability by `factor`
  /// (clamped to [0, 1]) — e.g. "what if the whole network degrades 20%?".
  void scale_all_reliabilities(double factor);

  /// Proactive evacuation: forbids every component from `host` (location
  /// constraints), so the next analyzer pass redeploys everything off it —
  /// the move an operator makes when a device reports a dying battery.
  /// Components pinned exclusively to that host would make the system
  /// unsatisfiable and are left alone; their names are returned.
  std::vector<std::string> drain_host(model::HostId host);

 private:
  SystemData& system_;
};

}  // namespace dif::desi
