#include "desi/generator.h"

#include <memory>
#include <numeric>
#include <stdexcept>

#include "algo/random_feasible.h"
#include "util/rng.h"

namespace dif::desi {

namespace {

double sample(util::Xoshiro256ss& rng, const Range& range) {
  if (range.hi <= range.lo) return range.lo;
  return rng.uniform(range.lo, range.hi);
}

}  // namespace

std::unique_ptr<SystemData> Generator::generate(const GeneratorSpec& spec,
                                                std::uint64_t seed) {
  if (spec.hosts == 0 || spec.components == 0)
    throw std::invalid_argument("Generator: need at least 1 host/component");
  util::Xoshiro256ss rng(seed);

  auto system_ptr = std::make_unique<SystemData>();
  SystemData& system = *system_ptr;
  model::DeploymentModel& m = system.model();

  // --- hosts -----------------------------------------------------------------
  for (std::size_t h = 0; h < spec.hosts; ++h) {
    m.add_host({.name = "host" + std::to_string(h),
                .memory_capacity = sample(rng, spec.host_memory),
                .cpu_capacity = sample(rng, spec.host_cpu),
                .properties = {}});
    // Round-robin region assignment (no RNG draw: adding regions must not
    // shift the generated topology for a given seed).
    if (spec.regions > 1)
      m.set_host_region(static_cast<model::HostId>(h), h % spec.regions);
  }

  // --- components --------------------------------------------------------------
  for (std::size_t c = 0; c < spec.components; ++c) {
    m.add_component({.name = "comp" + std::to_string(c),
                     .memory_size = sample(rng, spec.component_memory),
                     .cpu_load = sample(rng, spec.component_cpu),
                     .properties = {}});
  }

  // --- hardware topology: random spanning tree + density extras ----------------
  const auto make_link = [&](model::HostId a, model::HostId b) {
    m.set_physical_link(a, b,
                        {.reliability = sample(rng, spec.reliability),
                         .bandwidth = sample(rng, spec.bandwidth),
                         .delay_ms = sample(rng, spec.delay_ms),
                         .properties = {}});
  };
  std::vector<model::HostId> order(spec.hosts);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  for (std::size_t i = 1; i < spec.hosts; ++i) {
    // Attach each host to a random earlier one: a uniform random tree.
    make_link(order[i], order[rng.index(i)]);
  }
  for (std::size_t a = 0; a < spec.hosts; ++a)
    for (std::size_t b = a + 1; b < spec.hosts; ++b)
      if (!m.connected(static_cast<model::HostId>(a),
                       static_cast<model::HostId>(b)) &&
          rng.chance(spec.link_density))
        make_link(static_cast<model::HostId>(a),
                  static_cast<model::HostId>(b));

  // --- software topology ---------------------------------------------------------
  const auto make_interaction = [&](model::ComponentId a,
                                    model::ComponentId b) {
    m.set_logical_link(a, b,
                       {.frequency = sample(rng, spec.frequency),
                        .avg_event_size = sample(rng, spec.event_size),
                        .properties = {}});
  };
  for (std::size_t a = 0; a < spec.components; ++a)
    for (std::size_t b = a + 1; b < spec.components; ++b)
      if (rng.chance(spec.interaction_density))
        make_interaction(static_cast<model::ComponentId>(a),
                         static_cast<model::ComponentId>(b));
  // No isolated components: every component interacts with someone.
  if (spec.components > 1) {
    std::vector<bool> interacts(spec.components, false);
    for (const model::Interaction& ix : m.interactions()) {
      interacts[ix.a] = true;
      interacts[ix.b] = true;
    }
    for (std::size_t c = 0; c < spec.components; ++c) {
      if (interacts[c]) continue;
      auto other = static_cast<model::ComponentId>(
          rng.index(spec.components - 1));
      if (other >= c) ++other;
      make_interaction(static_cast<model::ComponentId>(c), other);
    }
  }

  // --- initial deployment (feasibility by construction) -----------------------
  model::ConstraintSet no_constraints;
  for (int attempt = 0;; ++attempt) {
    const model::ConstraintChecker checker(m, no_constraints);
    const algo::ColocationGroups groups =
        algo::ColocationGroups::build(m, no_constraints);
    // Scattered placement: an uncoordinated initial deployment spreads
    // components across hosts (a pack-first construction would often put
    // the whole system on one host, leaving nothing to improve).
    std::optional<model::Deployment> d;
    for (int i = 0; i < 16 && !d; ++i)
      d = algo::build_scattered_feasible(m, checker, groups, rng);
    if (d) {
      system.sync_deployment_size();
      system.set_deployment(*d);
      break;
    }
    if (!spec.ensure_feasible || attempt >= 16)
      throw std::runtime_error(
          "Generator: could not construct a feasible deployment");
    // Inflate host memories and retry.
    for (std::size_t h = 0; h < spec.hosts; ++h) {
      model::Host& host = m.host(static_cast<model::HostId>(h));
      host.memory_capacity *= 1.5;
    }
    m.notify_entity_changed();
  }

  // --- constraints consistent with the initial deployment ----------------------
  model::ConstraintSet& constraints = system.constraints();
  const model::Deployment& d = system.deployment();
  for (std::size_t i = 0;
       i < spec.location_constraints && spec.hosts > 1; ++i) {
    const auto c = static_cast<model::ComponentId>(
        rng.index(spec.components));
    // Allowed set: the current host plus a random sample of others.
    std::vector<model::HostId> allowed{d.host_of(c)};
    for (std::size_t h = 0; h < spec.hosts; ++h)
      if (static_cast<model::HostId>(h) != d.host_of(c) && rng.chance(0.4))
        allowed.push_back(static_cast<model::HostId>(h));
    constraints.allow_only(c, std::move(allowed));
  }
  for (std::size_t i = 0; i < spec.colocation_pairs; ++i) {
    // Sample a pair already sharing a host.
    const auto a = static_cast<model::ComponentId>(
        rng.index(spec.components));
    const std::vector<model::ComponentId> mates =
        d.components_on(d.host_of(a));
    if (mates.size() < 2) continue;
    const model::ComponentId b = mates[rng.index(mates.size())];
    if (a != b) constraints.require_colocation(a, b);
  }
  for (std::size_t i = 0; i < spec.anti_colocation_pairs; ++i) {
    const auto a = static_cast<model::ComponentId>(
        rng.index(spec.components));
    const auto b = static_cast<model::ComponentId>(
        rng.index(spec.components));
    if (a != b && d.host_of(a) != d.host_of(b))
      constraints.forbid_colocation(a, b);
  }
  system.notify_constraints_changed();
  return system_ptr;
}

}  // namespace dif::desi
