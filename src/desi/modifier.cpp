#include "desi/modifier.h"

#include <algorithm>

namespace dif::desi {

void Modifier::set_link_reliability(model::HostId a, model::HostId b,
                                    double value) {
  system_.model().set_link_reliability(a, b, value);
}

void Modifier::set_link_bandwidth(model::HostId a, model::HostId b,
                                  double value) {
  system_.model().set_link_bandwidth(a, b, value);
}

void Modifier::set_link_delay(model::HostId a, model::HostId b, double value) {
  system_.model().set_link_delay(a, b, value);
}

void Modifier::set_host_memory(model::HostId h, double kb) {
  system_.model().host(h).memory_capacity = kb;
  system_.model().notify_entity_changed();
}

void Modifier::set_component_memory(model::ComponentId c, double kb) {
  system_.model().component(c).memory_size = kb;
  system_.model().notify_entity_changed();
}

void Modifier::set_interaction_frequency(model::ComponentId a,
                                         model::ComponentId b,
                                         double events_per_s) {
  model::LogicalLink link = system_.model().logical_link(a, b);
  link.frequency = events_per_s;
  system_.model().set_logical_link(a, b, std::move(link));
}

void Modifier::set_interaction_event_size(model::ComponentId a,
                                          model::ComponentId b, double kb) {
  model::LogicalLink link = system_.model().logical_link(a, b);
  link.avg_event_size = kb;
  system_.model().set_logical_link(a, b, std::move(link));
}

void Modifier::set_host_property(model::HostId h, std::string_view name,
                                 double value) {
  system_.model().host(h).properties.set(name, value);
  system_.model().notify_entity_changed();
}

void Modifier::set_component_property(model::ComponentId c,
                                      std::string_view name, double value) {
  system_.model().component(c).properties.set(name, value);
  system_.model().notify_entity_changed();
}

std::vector<std::string> Modifier::drain_host(model::HostId host) {
  const model::DeploymentModel& m = system_.model();
  std::vector<std::string> unmovable;
  for (std::size_t c = 0; c < m.component_count(); ++c) {
    const auto comp = static_cast<model::ComponentId>(c);
    // A component whose allow-list collapses to {host} cannot leave.
    bool has_alternative = false;
    for (std::size_t h = 0; h < m.host_count(); ++h) {
      const auto other = static_cast<model::HostId>(h);
      if (other != host &&
          system_.constraints().host_allowed(comp, other)) {
        has_alternative = true;
        break;
      }
    }
    if (has_alternative) {
      system_.constraints().forbid_host(comp, host);
    } else {
      unmovable.push_back(m.component(comp).name);
    }
  }
  system_.notify_constraints_changed();
  return unmovable;
}

void Modifier::scale_all_reliabilities(double factor) {
  model::DeploymentModel& m = system_.model();
  const std::size_t k = m.host_count();
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      if (!m.connected(ha, hb)) continue;
      const double current = m.physical_link(ha, hb).reliability;
      m.set_link_reliability(ha, hb,
                             std::clamp(current * factor, 0.0, 1.0));
    }
  }
}

}  // namespace dif::desi
