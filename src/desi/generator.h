// DeSi's Generator component (paper Section 4.1).
//
// "The Generator component takes as its input the desired number of hardware
// hosts, software components, and a set of ranges for system parameters
// (e.g., minimum and maximum network reliability, component interaction
// frequency, available memory, and so on). Based on this information,
// Generator creates a specific deployment architecture that satisfies the
// given input" — used to produce the large numbers of hypothetical
// deployment architectures the benchmarks sweep over.
//
// Constraints are generated consistently with the initial deployment
// (location constraints always include the component's current host,
// collocation pairs are sampled from components that already share a host),
// so a generated system is feasible by construction.
#pragma once

#include <cstdint>
#include <memory>

#include "desi/system_data.h"

namespace dif::desi {

/// Inclusive parameter range.
struct Range {
  double lo = 0.0;
  double hi = 0.0;
};

struct GeneratorSpec {
  std::size_t hosts = 4;
  std::size_t components = 12;

  /// Failure regions/zones the hosts are spread over (round-robin, so every
  /// region is populated). 1 leaves the model untagged — generated
  /// descriptions stay byte-identical to pre-region ones.
  std::size_t regions = 1;

  Range host_memory{60.0, 120.0};       // KB
  Range host_cpu{0.0, 0.0};             // 0 = CPU not modelled
  Range component_memory{2.0, 10.0};    // KB
  Range component_cpu{0.0, 0.0};

  Range reliability{0.30, 0.99};
  Range bandwidth{20.0, 200.0};         // KB/s
  Range delay_ms{1.0, 20.0};

  Range frequency{0.5, 10.0};           // events/s
  Range event_size{0.1, 2.0};           // KB

  /// Probability two hosts get a (non-spanning-tree) link.
  double link_density = 0.7;
  /// Probability two components interact.
  double interaction_density = 0.25;

  /// Numbers of generated constraints (paper's location/collocation).
  std::size_t location_constraints = 0;
  std::size_t colocation_pairs = 0;
  std::size_t anti_colocation_pairs = 0;

  /// Scale host memory up until a feasible deployment exists.
  bool ensure_feasible = true;
};

class Generator {
 public:
  /// Generates a system per `spec`; deterministic in `seed`. The returned
  /// SystemData carries a feasible initial deployment. Throws
  /// std::runtime_error when no feasible deployment could be constructed
  /// (only possible with ensure_feasible == false and hostile ranges).
  [[nodiscard]] static std::unique_ptr<SystemData> generate(
      const GeneratorSpec& spec, std::uint64_t seed);
};

}  // namespace dif::desi
