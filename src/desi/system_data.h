// DeSi's Model subsystem, part 1: SystemData (paper Section 4.1).
//
// "SystemData is the key part of the Model and represents the software
// system itself in terms of the architectural constructs and parameters:
// numbers of components and hosts, distribution of components across hosts,
// software and hardware topologies, and so on." It is reactive: views and
// controllers subscribe for change notifications.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/constraints.h"
#include "model/deployment.h"
#include "model/deployment_model.h"

namespace dif::desi {

class SystemData {
 public:
  SystemData();
  /// Immovable: the model holds a change listener bound to this object
  /// (hand SystemData around by pointer/reference — see Generator).
  SystemData(const SystemData&) = delete;
  SystemData& operator=(const SystemData&) = delete;

  /// The architectural model (hosts, components, links, parameters).
  [[nodiscard]] model::DeploymentModel& model() noexcept { return model_; }
  [[nodiscard]] const model::DeploymentModel& model() const noexcept {
    return model_;
  }

  /// Architect-specified constraints (User Input).
  [[nodiscard]] model::ConstraintSet& constraints() noexcept {
    return constraints_;
  }
  [[nodiscard]] const model::ConstraintSet& constraints() const noexcept {
    return constraints_;
  }

  /// The system's current deployment (distribution of components across
  /// hosts). Kept sized to the model's component count.
  [[nodiscard]] const model::Deployment& deployment() const noexcept {
    return deployment_;
  }
  void set_deployment(model::Deployment d);
  /// Reassigns one component (drag-and-drop in the GraphView).
  void move_component(model::ComponentId c, model::HostId h);

  /// Synchronizes the deployment vector after components were added.
  void sync_deployment_size();

  // --- reactivity ------------------------------------------------------------

  enum class Change { kModel, kDeployment, kConstraints };
  using Listener = std::function<void(Change)>;
  std::size_t add_listener(Listener listener);
  void remove_listener(std::size_t id);
  /// Controllers call this after editing constraints (which are plain data).
  void notify_constraints_changed();

 private:
  void notify(Change change);

  model::DeploymentModel model_;
  model::ConstraintSet constraints_;
  model::Deployment deployment_;
  std::vector<std::pair<std::size_t, Listener>> listeners_;
  std::size_t next_listener_id_ = 0;
};

}  // namespace dif::desi
