// xADL-lite: architecture-description serialization (paper Section 4.3).
//
// "DeSi has been integrated with xADL 2.0, an extensible architecture
// description language", used to capture design-time properties — initial
// deployment, available memory per host, constraints. Substituted here with
// a JSON schema carrying the same information (see DESIGN.md §2); documents
// round-trip losslessly through SystemData.
#pragma once

#include <memory>
#include <string>

#include "desi/system_data.h"
#include "util/json.h"

namespace dif::desi {

class XadlLite {
 public:
  /// Serializes the full system description: hosts, components, physical
  /// and logical links (with extensible properties), constraints, and the
  /// current deployment.
  [[nodiscard]] static util::json::Value to_json(const SystemData& system);

  /// Pretty-printed document text.
  [[nodiscard]] static std::string to_text(const SystemData& system);

  /// Parses a document produced by to_json/to_text.
  /// Throws util::json::JsonError / std::out_of_range on malformed input.
  [[nodiscard]] static std::unique_ptr<SystemData> from_json(
      const util::json::Value& doc);
  [[nodiscard]] static std::unique_ptr<SystemData> from_text(
      std::string_view text);
};

}  // namespace dif::desi
