// DeSi's Model subsystem, part 2: AlgoResultData (paper Section 4.1).
//
// "AlgoResultData provides a set of facilities for capturing the outcomes of
// the different deployment estimation algorithms: estimated deployment
// architectures, achieved availability, algorithm's running time, estimated
// time to effect a redeployment, and so on."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "algo/algorithm.h"

namespace dif::desi {

/// One recorded algorithm outcome, as displayed in DeSi's Results panel.
struct ResultEntry {
  algo::AlgoResult result;
  std::string objective;
  /// Estimated time to effect the redeployment (ms), from migration count
  /// and measured link parameters.
  double estimated_redeploy_ms = 0.0;
};

class AlgoResultData {
 public:
  void add(ResultEntry entry);
  void clear();

  [[nodiscard]] const std::vector<ResultEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Best feasible entry for `objective` under `direction`, if any.
  [[nodiscard]] std::optional<std::size_t> best_index(
      const std::string& objective, model::Direction direction) const;

 private:
  std::vector<ResultEntry> entries_;
};

}  // namespace dif::desi
