#include "desi/graph_view_data.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dif::desi {

void GraphViewData::refresh(const SystemData& system) {
  const std::size_t k = system.model().host_count();
  const std::size_t n = system.model().component_count();
  hosts_.clear();
  components_.clear();

  // Deterministic circular layout, radius scaled by host count and zoom.
  const double radius = 10.0 * zoom_ * std::max<double>(1.0, std::sqrt(k));
  for (std::size_t h = 0; h < k; ++h) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(h) / std::max<std::size_t>(k, 1);
    hosts_.push_back({static_cast<model::HostId>(h),
                      radius * std::cos(angle), radius * std::sin(angle),
                      static_cast<int>(h % 8), true});
  }
  for (std::size_t c = 0; c < n; ++c) {
    const model::HostId host =
        c < system.deployment().size()
            ? system.deployment().host_of(static_cast<model::ComponentId>(c))
            : model::kNoHost;
    components_.push_back({static_cast<model::ComponentId>(c), host,
                           host == model::kNoHost
                               ? 0
                               : static_cast<int>(host % 8)});
  }
}

void GraphViewData::set_zoom(double zoom) {
  if (zoom <= 0.0) throw std::invalid_argument("GraphViewData: zoom <= 0");
  zoom_ = zoom;
}

}  // namespace dif::desi
