// DeSi's MiddlewareAdapter (paper Sections 4.1 and 4.3).
//
// "The MiddlewareAdapter component provides DeSi with the same information
// from a running, real system. MiddlewareAdapter's Monitor subcomponent
// captures the run-time data from the external MiddlewarePlatform and stores
// it inside the Model's SystemData component. MiddlewareAdapter's Effector
// subcomponent ... issues a set of commands to the MiddlewarePlatform to
// modify the running system's deployment architecture."
//
// The Monitor subcomponent subscribes to the Prism-MW DeployerComponent's
// aggregated HostReports and writes frequencies, reliabilities, and observed
// component locations into SystemData; the Effector subcomponent translates
// a model::Deployment into the deployer's name-based target configuration.
#pragma once

#include <cstdint>

#include "desi/system_data.h"
#include "prism/deployer.h"

namespace dif::desi {

class MiddlewareAdapter {
 public:
  /// Both objects must outlive the adapter. Subscribing replaces any
  /// previously registered report handler on the deployer.
  MiddlewareAdapter(SystemData& system, prism::DeployerComponent& deployer);

  // --- Monitor subcomponent ---------------------------------------------------

  /// Begins feeding monitoring reports into SystemData.
  void attach_monitor();

  [[nodiscard]] std::uint64_t reports_received() const noexcept {
    return reports_;
  }

  // --- Effector subcomponent ----------------------------------------------------

  /// Effects `target` on the running system. Completion (or timeout) is
  /// reported through `done`. Returns false when a redeployment is already
  /// in flight or the deployment size mismatches the model.
  bool effect(const model::Deployment& target,
              prism::DeployerComponent::CompletionHandler done);

 private:
  void apply_report(const prism::HostReport& report);

  SystemData& system_;
  prism::DeployerComponent& deployer_;
  std::uint64_t reports_ = 0;
};

}  // namespace dif::desi
