// Sensitivity analysis: DeSi's explorability utility (paper Section 4.3).
//
// "DeSi's visualisation of the deployment architecture and the exploratory
// utilities allow an engineer to rapidly investigate the space of possible
// deployments ... A user can easily assess a system's sensitivity to
// changes in specific parameters (e.g., the reliability of a network
// link)."
//
// Each sweep varies one parameter over a range on a private clone of the
// system (the original is never touched) and reports, per point, the
// objective value of the current deployment and of the deployment a chosen
// algorithm would pick instead — the gap is what redeployment would buy at
// that operating point.
#pragma once

#include <string>
#include <vector>

#include "desi/system_data.h"
#include "model/objective.h"

namespace dif::desi {

/// Sweep configuration (namespace scope: nested classes with default
/// member initializers cannot be default arguments of their own enclosing
/// class's member functions).
struct SweepOptions {
  std::string algorithm = "hillclimb";
  std::uint64_t seed = 1;
  int steps = 9;
};

class SensitivityAnalysis {
 public:
  /// The system is cloned per sweep; it must outlive the analysis object.
  explicit SensitivityAnalysis(const SystemData& system) : system_(system) {}

  struct Point {
    double parameter = 0.0;
    /// Objective on the unchanged (current) deployment.
    double current = 0.0;
    /// Objective after re-optimizing with the chosen algorithm.
    double reoptimized = 0.0;
  };

  using Options = SweepOptions;

  /// Sweeps the reliability of the a--b physical link across [lo, hi].
  [[nodiscard]] std::vector<Point> sweep_link_reliability(
      model::HostId a, model::HostId b, double lo, double hi,
      const model::Objective& objective, Options options = Options()) const;

  /// Sweeps the frequency of the a--b interaction across [lo, hi].
  [[nodiscard]] std::vector<Point> sweep_interaction_frequency(
      model::ComponentId a, model::ComponentId b, double lo, double hi,
      const model::Objective& objective, Options options = Options()) const;

  /// Sweeps one host's memory capacity across [lo, hi] (KB).
  [[nodiscard]] std::vector<Point> sweep_host_memory(
      model::HostId host, double lo, double hi,
      const model::Objective& objective, Options options = Options()) const;

  /// ASCII rendering of a sweep ("parameter / current / re-optimized").
  [[nodiscard]] static std::string render(const std::vector<Point>& points,
                                          const std::string& parameter_name);

 private:
  template <typename Apply>
  [[nodiscard]] std::vector<Point> sweep(double lo, double hi,
                                         const model::Objective& objective,
                                         const Options& options,
                                         Apply&& apply) const;

  const SystemData& system_;
};

}  // namespace dif::desi
