#include "desi/xadl.h"

namespace dif::desi {

namespace json = util::json;

json::Value XadlLite::to_json(const SystemData& system) {
  const model::DeploymentModel& m = system.model();
  json::Object doc;
  doc.emplace("schema", "dif-xadl-lite/1");

  json::Array hosts;
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    const model::Host& host = m.host(static_cast<model::HostId>(h));
    json::Object entry;
    entry.emplace("name", host.name);
    entry.emplace("memory", host.memory_capacity);
    entry.emplace("cpu", host.cpu_capacity);
    entry.emplace("properties", host.properties.to_json());
    hosts.emplace_back(std::move(entry));
  }
  doc.emplace("hosts", std::move(hosts));

  json::Array components;
  for (std::size_t c = 0; c < m.component_count(); ++c) {
    const model::SoftwareComponent& comp =
        m.component(static_cast<model::ComponentId>(c));
    json::Object entry;
    entry.emplace("name", comp.name);
    entry.emplace("memory", comp.memory_size);
    entry.emplace("cpu", comp.cpu_load);
    entry.emplace("properties", comp.properties.to_json());
    components.emplace_back(std::move(entry));
  }
  doc.emplace("components", std::move(components));

  json::Array links;
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      const model::PhysicalLink& link = m.physical_link(ha, hb);
      if (link.bandwidth <= 0.0 && link.reliability <= 0.0) continue;
      json::Object entry;
      entry.emplace("a", m.host(ha).name);
      entry.emplace("b", m.host(hb).name);
      entry.emplace("reliability", link.reliability);
      entry.emplace("bandwidth", link.bandwidth);
      entry.emplace("delay_ms", link.delay_ms);
      entry.emplace("properties", link.properties.to_json());
      links.emplace_back(std::move(entry));
    }
  }
  doc.emplace("physical_links", std::move(links));

  json::Array interactions;
  for (const model::Interaction& ix : m.interactions()) {
    json::Object entry;
    entry.emplace("a", m.component(ix.a).name);
    entry.emplace("b", m.component(ix.b).name);
    entry.emplace("frequency", ix.frequency);
    entry.emplace("event_size", ix.avg_event_size);
    entry.emplace("properties", m.logical_link(ix.a, ix.b).properties.to_json());
    interactions.emplace_back(std::move(entry));
  }
  doc.emplace("logical_links", std::move(interactions));

  json::Object constraints;
  {
    const model::ConstraintSet& cs = system.constraints();
    json::Array allows;
    for (const auto& [component, allowed] : cs.allow_lists()) {
      json::Object entry;
      entry.emplace("component", m.component(component).name);
      json::Array host_names;
      for (const model::HostId h : allowed)
        host_names.emplace_back(m.host(h).name);
      entry.emplace("hosts", std::move(host_names));
      allows.emplace_back(std::move(entry));
    }
    constraints.emplace("location_allow", std::move(allows));

    json::Array forbids;
    for (const auto& [component, host] : cs.forbidden_hosts()) {
      json::Object entry;
      entry.emplace("component", m.component(component).name);
      entry.emplace("host", m.host(host).name);
      forbids.emplace_back(std::move(entry));
    }
    constraints.emplace("location_forbid", std::move(forbids));

    const auto pair_array = [&](const auto& pairs) {
      json::Array out;
      for (const auto& [a, b] : pairs) {
        json::Object entry;
        entry.emplace("a", m.component(a).name);
        entry.emplace("b", m.component(b).name);
        out.emplace_back(std::move(entry));
      }
      return out;
    };
    constraints.emplace("colocate", pair_array(cs.colocation_pairs()));
    constraints.emplace("separate", pair_array(cs.anti_colocation_pairs()));
  }
  doc.emplace("constraints", std::move(constraints));

  json::Object deployment;
  if (system.deployment().size() == m.component_count()) {
    for (std::size_t c = 0; c < m.component_count(); ++c) {
      const auto comp = static_cast<model::ComponentId>(c);
      const model::HostId h = system.deployment().host_of(comp);
      if (h != model::kNoHost)
        deployment.emplace(m.component(comp).name, m.host(h).name);
    }
  }
  doc.emplace("deployment", std::move(deployment));

  return json::Value(std::move(doc));
}

std::string XadlLite::to_text(const SystemData& system) {
  return to_json(system).dump(2);
}

std::unique_ptr<SystemData> XadlLite::from_json(const json::Value& doc) {
  auto system = std::make_unique<SystemData>();
  model::DeploymentModel& m = system->model();

  for (const json::Value& entry : doc.at("hosts").as_array()) {
    model::Host host;
    host.name = entry.at("name").as_string();
    host.memory_capacity = entry.number_or("memory", 0.0);
    host.cpu_capacity = entry.number_or("cpu", 0.0);
    if (const auto props = entry.find("properties"))
      host.properties = model::PropertyMap::from_json(props->get());
    m.add_host(std::move(host));
  }
  for (const json::Value& entry : doc.at("components").as_array()) {
    model::SoftwareComponent comp;
    comp.name = entry.at("name").as_string();
    comp.memory_size = entry.number_or("memory", 0.0);
    comp.cpu_load = entry.number_or("cpu", 0.0);
    if (const auto props = entry.find("properties"))
      comp.properties = model::PropertyMap::from_json(props->get());
    m.add_component(std::move(comp));
  }
  for (const json::Value& entry : doc.at("physical_links").as_array()) {
    model::PhysicalLink link;
    link.reliability = entry.number_or("reliability", 0.0);
    link.bandwidth = entry.number_or("bandwidth", 0.0);
    link.delay_ms = entry.number_or("delay_ms", 0.0);
    if (const auto props = entry.find("properties"))
      link.properties = model::PropertyMap::from_json(props->get());
    m.set_physical_link(m.host_by_name(entry.at("a").as_string()),
                        m.host_by_name(entry.at("b").as_string()),
                        std::move(link));
  }
  for (const json::Value& entry : doc.at("logical_links").as_array()) {
    model::LogicalLink link;
    link.frequency = entry.number_or("frequency", 0.0);
    link.avg_event_size = entry.number_or("event_size", 0.0);
    if (const auto props = entry.find("properties"))
      link.properties = model::PropertyMap::from_json(props->get());
    m.set_logical_link(m.component_by_name(entry.at("a").as_string()),
                       m.component_by_name(entry.at("b").as_string()),
                       std::move(link));
  }

  if (const auto constraints = doc.find("constraints")) {
    model::ConstraintSet& cs = system->constraints();
    const json::Value& c = constraints->get();
    if (const auto allows = c.find("location_allow")) {
      for (const json::Value& entry : allows->get().as_array()) {
        std::vector<model::HostId> hosts;
        for (const json::Value& host : entry.at("hosts").as_array())
          hosts.push_back(m.host_by_name(host.as_string()));
        cs.allow_only(m.component_by_name(entry.at("component").as_string()),
                      std::move(hosts));
      }
    }
    if (const auto forbids = c.find("location_forbid")) {
      for (const json::Value& entry : forbids->get().as_array())
        cs.forbid_host(m.component_by_name(entry.at("component").as_string()),
                       m.host_by_name(entry.at("host").as_string()));
    }
    if (const auto pairs = c.find("colocate")) {
      for (const json::Value& entry : pairs->get().as_array())
        cs.require_colocation(
            m.component_by_name(entry.at("a").as_string()),
            m.component_by_name(entry.at("b").as_string()));
    }
    if (const auto pairs = c.find("separate")) {
      for (const json::Value& entry : pairs->get().as_array())
        cs.forbid_colocation(m.component_by_name(entry.at("a").as_string()),
                             m.component_by_name(entry.at("b").as_string()));
    }
  }

  system->sync_deployment_size();
  if (const auto deployment = doc.find("deployment")) {
    model::Deployment d(m.component_count());
    for (const auto& [component, host] : deployment->get().as_object())
      d.assign(m.component_by_name(component),
               m.host_by_name(host.as_string()));
    system->set_deployment(std::move(d));
  }
  return system;
}

std::unique_ptr<SystemData> XadlLite::from_text(std::string_view text) {
  return from_json(json::parse(text));
}

}  // namespace dif::desi
