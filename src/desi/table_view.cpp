#include "desi/table_view.h"

#include "util/table.h"

namespace dif::desi {

using util::Table;
using util::fmt;

std::string TableView::render_hosts(const SystemData& system) {
  Table table({"host", "memory (KB)", "cpu", "properties"});
  const model::DeploymentModel& m = system.model();
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    const model::Host& host = m.host(static_cast<model::HostId>(h));
    std::string props;
    for (const auto& [name, value] : host.properties) {
      if (!props.empty()) props += ", ";
      props += name + "=" + fmt(value, 2);
    }
    table.add_row({host.name, fmt(host.memory_capacity, 1),
                   fmt(host.cpu_capacity, 1), props});
  }
  return table.render();
}

std::string TableView::render_components(const SystemData& system) {
  Table table({"component", "memory (KB)", "host"});
  const model::DeploymentModel& m = system.model();
  for (std::size_t c = 0; c < m.component_count(); ++c) {
    const auto comp = static_cast<model::ComponentId>(c);
    const model::HostId h = c < system.deployment().size()
                                ? system.deployment().host_of(comp)
                                : model::kNoHost;
    table.add_row({m.component(comp).name, fmt(m.component(comp).memory_size, 1),
                   h == model::kNoHost ? "(unassigned)" : m.host(h).name});
  }
  return table.render();
}

std::string TableView::render_links(const SystemData& system) {
  Table table({"link", "reliability", "bandwidth (KB/s)", "delay (ms)"});
  const model::DeploymentModel& m = system.model();
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      if (!m.connected(ha, hb)) continue;
      const model::PhysicalLink& link = m.physical_link(ha, hb);
      table.add_row({m.host(ha).name + "--" + m.host(hb).name,
                     fmt(link.reliability, 3), fmt(link.bandwidth, 1),
                     fmt(link.delay_ms, 1)});
    }
  }
  return table.render();
}

std::string TableView::render_interactions(const SystemData& system) {
  Table table({"interaction", "frequency (evt/s)", "event size (KB)"});
  const model::DeploymentModel& m = system.model();
  for (const model::Interaction& ix : m.interactions()) {
    table.add_row({m.component(ix.a).name + "<->" + m.component(ix.b).name,
                   fmt(ix.frequency, 2), fmt(ix.avg_event_size, 2)});
  }
  return table.render();
}

std::string TableView::render_constraints(const SystemData& system) {
  Table table({"constraint", "subject", "detail"});
  const model::DeploymentModel& m = system.model();
  const model::ConstraintSet& cs = system.constraints();
  for (const auto& [component, hosts] : cs.allow_lists()) {
    std::string detail;
    for (const model::HostId h : hosts) {
      if (!detail.empty()) detail += ", ";
      detail += m.host(h).name;
    }
    table.add_row({"location", m.component(component).name,
                   "allowed on: " + detail});
  }
  for (const auto& [component, host] : cs.forbidden_hosts())
    table.add_row({"location", m.component(component).name,
                   "forbidden on: " + m.host(host).name});
  for (const auto& [a, b] : cs.colocation_pairs())
    table.add_row({"colocation", m.component(a).name,
                   "must share host with " + m.component(b).name});
  for (const auto& [a, b] : cs.anti_colocation_pairs())
    table.add_row({"anti-colocation", m.component(a).name,
                   "must not share host with " + m.component(b).name});
  return table.render();
}

std::string TableView::render_results(const AlgoResultData& results) {
  Table table({"algorithm", "objective", "value", "feasible", "evals",
               "time", "migrations", "est. redeploy"});
  for (const ResultEntry& entry : results.entries()) {
    table.add_row(
        {entry.result.algorithm, entry.objective,
         entry.result.feasible ? fmt(entry.result.value, 4) : "-",
         entry.result.feasible ? "yes" : "no",
         std::to_string(entry.result.evaluations),
         util::fmt_duration_ns(
             static_cast<double>(entry.result.elapsed.count())),
         std::to_string(entry.result.migrations),
         fmt(entry.estimated_redeploy_ms, 1) + " ms"});
  }
  return table.render();
}

}  // namespace dif::desi
