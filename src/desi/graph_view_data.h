// DeSi's Model subsystem, part 3: GraphViewData (paper Section 4.1).
//
// "GraphViewData captures the information needed for visualizing a system's
// deployment architecture: graphical (e.g., color, shape, border thickness)
// and layout (e.g., juxtaposition, movability, containment) properties of
// the depicted components, hosts, and their links." Headless here: hosts get
// deterministic layout positions (a circle) and a color index; components
// are contained in their host's box. GraphView renders this to DOT/ASCII.
#pragma once

#include <string>
#include <vector>

#include "desi/system_data.h"

namespace dif::desi {

struct HostVisual {
  model::HostId host = 0;
  double x = 0.0;
  double y = 0.0;
  /// Palette index (stable per host).
  int color = 0;
  bool movable = true;
};

struct ComponentVisual {
  model::ComponentId component = 0;
  /// Containment: which host box the component is drawn inside.
  model::HostId containing_host = model::kNoHost;
  int color = 0;
};

class GraphViewData {
 public:
  /// Recomputes layout and containment from the current system state.
  void refresh(const SystemData& system);

  [[nodiscard]] const std::vector<HostVisual>& hosts() const noexcept {
    return hosts_;
  }
  [[nodiscard]] const std::vector<ComponentVisual>& components()
      const noexcept {
    return components_;
  }

  /// Zoom factor (the paper's zoomable GraphView); purely multiplicative on
  /// layout coordinates.
  void set_zoom(double zoom);
  [[nodiscard]] double zoom() const noexcept { return zoom_; }

 private:
  std::vector<HostVisual> hosts_;
  std::vector<ComponentVisual> components_;
  double zoom_ = 1.0;
};

}  // namespace dif::desi
