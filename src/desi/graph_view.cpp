#include "desi/graph_view.h"

#include "util/table.h"

namespace dif::desi {

std::string GraphView::render_ascii(const SystemData& system) {
  const model::DeploymentModel& m = system.model();
  std::string out;
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    const auto host = static_cast<model::HostId>(h);
    out += "+-- " + m.host(host).name +
           " (mem " + util::fmt(m.host(host).memory_capacity, 0) + " KB)\n";
    if (system.deployment().size() == m.component_count()) {
      for (const model::ComponentId c :
           system.deployment().components_on(host)) {
        out += "|     [" + m.component(c).name + "]\n";
      }
    }
  }
  out += "physical links:\n";
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      if (!m.connected(ha, hb)) continue;
      const model::PhysicalLink& link = m.physical_link(ha, hb);
      out += "  " + m.host(ha).name + " === " + m.host(hb).name + "  (rel " +
             util::fmt(link.reliability, 2) + ", bw " +
             util::fmt(link.bandwidth, 0) + " KB/s)\n";
    }
  }
  out += "logical links:\n";
  for (const model::Interaction& ix : m.interactions()) {
    out += "  " + m.component(ix.a).name + " --- " + m.component(ix.b).name +
           "  (" + util::fmt(ix.frequency, 1) + " evt/s)\n";
  }
  return out;
}

std::string GraphView::to_dot(const SystemData& system,
                              const GraphViewData& layout) {
  const model::DeploymentModel& m = system.model();
  std::string out = "graph deployment {\n  compound=true;\n";
  static const char* kPalette[8] = {"lightblue",  "lightyellow", "lightpink",
                                    "lightgreen", "lavender",    "wheat",
                                    "honeydew",   "mistyrose"};
  for (const HostVisual& hv : layout.hosts()) {
    out += "  subgraph cluster_h" + std::to_string(hv.host) + " {\n";
    out += "    label=\"" + m.host(hv.host).name + "\";\n";
    out += "    style=filled; color=" +
           std::string(kPalette[hv.color % 8]) + ";\n";
    bool any = false;
    for (const ComponentVisual& cv : layout.components()) {
      if (cv.containing_host != hv.host) continue;
      out += "    c" + std::to_string(cv.component) + " [label=\"" +
             m.component(cv.component).name + "\", shape=box];\n";
      any = true;
    }
    if (!any) {
      out += "    placeholder_h" + std::to_string(hv.host) +
             " [style=invis, shape=point];\n";
    }
    out += "  }\n";
  }
  for (std::size_t a = 0; a < m.host_count(); ++a) {
    for (std::size_t b = a + 1; b < m.host_count(); ++b) {
      const auto ha = static_cast<model::HostId>(a);
      const auto hb = static_cast<model::HostId>(b);
      if (!m.connected(ha, hb)) continue;
      // Host-level edges need representative nodes; use clusters via lhead.
      out += "  // physical " + m.host(ha).name + " -- " + m.host(hb).name +
             "\n";
    }
  }
  for (const model::Interaction& ix : m.interactions()) {
    out += "  c" + std::to_string(ix.a) + " -- c" + std::to_string(ix.b) +
           " [penwidth=0.5];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace dif::desi
