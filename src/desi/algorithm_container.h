// DeSi's AlgorithmContainer (paper Section 4.1).
//
// "The AlgorithmContainer component invokes the selected redeployment
// algorithms and updates the Model's AlgoResultData." Algorithms come from
// the pluggable registry; each invocation runs against the SystemData's
// model, constraints, and current deployment, and the outcome — including
// the estimated time to effect the redeployment — is recorded.
#pragma once

#include <string>

#include "algo/registry.h"
#include "desi/algo_result_data.h"
#include "desi/system_data.h"

namespace dif::desi {

class AlgorithmContainer {
 public:
  /// `system` and `results` must outlive the container.
  AlgorithmContainer(SystemData& system, AlgoResultData& results);
  AlgorithmContainer(SystemData& system, AlgoResultData& results,
                     algo::AlgorithmRegistry registry);

  [[nodiscard]] algo::AlgorithmRegistry& registry() noexcept {
    return registry_;
  }

  /// Runs the named algorithm on the current system state and records the
  /// outcome. `options.initial` defaults to the system's deployment.
  const ResultEntry& invoke(const std::string& algorithm,
                            const model::Objective& objective,
                            algo::AlgoOptions options = {});

  /// Runs every registered algorithm that can run here (mincut is skipped
  /// unless the model has exactly two hosts; exact variants are skipped
  /// above `exact_limit` components). Returns how many ran.
  std::size_t invoke_all(const model::Objective& objective,
                         std::uint64_t seed = 1,
                         std::size_t exact_limit = 14);

  /// Estimated wall-clock to effect `result` from the current deployment:
  /// per-migration transfer time over the involved links, assuming
  /// sequential transfers (conservative; matches the effector protocol).
  [[nodiscard]] double estimate_redeploy_ms(
      const algo::AlgoResult& result) const;

 private:
  SystemData& system_;
  AlgoResultData& results_;
  algo::AlgorithmRegistry registry_;
};

}  // namespace dif::desi
