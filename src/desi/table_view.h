// DeSi's TableView (paper Section 4.1, Figure 9).
//
// "TableView is intended to support a detailed layout of system parameters
// and deployment estimation algorithms captured in the Model's SystemData
// and AlgoResultData components." Headless: each panel of the editor's
// table-oriented page renders to an ASCII table.
#pragma once

#include <string>

#include "desi/algo_result_data.h"
#include "desi/system_data.h"

namespace dif::desi {

class TableView {
 public:
  /// The Parameters table: hosts (memory, CPU, extensible properties).
  [[nodiscard]] static std::string render_hosts(const SystemData& system);

  /// The Parameters table: components (memory, current host).
  [[nodiscard]] static std::string render_components(
      const SystemData& system);

  /// Physical links (reliability / bandwidth / delay).
  [[nodiscard]] static std::string render_links(const SystemData& system);

  /// Logical links (frequency / event size).
  [[nodiscard]] static std::string render_interactions(
      const SystemData& system);

  /// The Constraints panel.
  [[nodiscard]] static std::string render_constraints(
      const SystemData& system);

  /// The Results panel (one row per algorithm invocation).
  [[nodiscard]] static std::string render_results(
      const AlgoResultData& results);
};

}  // namespace dif::desi
