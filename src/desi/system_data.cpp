#include "desi/system_data.h"

#include <stdexcept>

namespace dif::desi {

SystemData::SystemData() {
  model_.add_listener([this](model::ModelEvent) { notify(Change::kModel); });
}

void SystemData::set_deployment(model::Deployment d) {
  if (d.size() != model_.component_count())
    throw std::invalid_argument("SystemData: deployment size mismatch");
  deployment_ = std::move(d);
  notify(Change::kDeployment);
}

void SystemData::move_component(model::ComponentId c, model::HostId h) {
  sync_deployment_size();
  deployment_.assign(c, h);
  notify(Change::kDeployment);
}

void SystemData::sync_deployment_size() {
  while (deployment_.size() < model_.component_count()) {
    // Grow in place, keeping existing assignments.
    std::vector<model::HostId> assignment = deployment_.assignment();
    assignment.resize(model_.component_count(), model::kNoHost);
    deployment_ = model::Deployment(std::move(assignment));
  }
}

std::size_t SystemData::add_listener(Listener listener) {
  const std::size_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void SystemData::remove_listener(std::size_t id) {
  std::erase_if(listeners_, [id](const auto& p) { return p.first == id; });
}

void SystemData::notify_constraints_changed() { notify(Change::kConstraints); }

void SystemData::notify(Change change) {
  for (const auto& [id, listener] : listeners_) listener(change);
}

}  // namespace dif::desi
