#include "desi/algo_result_data.h"

namespace dif::desi {

void AlgoResultData::add(ResultEntry entry) {
  entries_.push_back(std::move(entry));
}

void AlgoResultData::clear() { entries_.clear(); }

std::optional<std::size_t> AlgoResultData::best_index(
    const std::string& objective, model::Direction direction) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const ResultEntry& entry = entries_[i];
    if (!entry.result.feasible || entry.objective != objective) continue;
    if (!best) {
      best = i;
      continue;
    }
    const double incumbent = entries_[*best].result.value;
    const bool better = direction == model::Direction::kMaximize
                            ? entry.result.value > incumbent
                            : entry.result.value < incumbent;
    if (better) best = i;
  }
  return best;
}

}  // namespace dif::desi
