#include "desi/algorithm_container.h"

#include "check/preflight.h"

namespace dif::desi {

AlgorithmContainer::AlgorithmContainer(SystemData& system,
                                       AlgoResultData& results)
    : AlgorithmContainer(system, results,
                         algo::AlgorithmRegistry::with_defaults()) {}

AlgorithmContainer::AlgorithmContainer(SystemData& system,
                                       AlgoResultData& results,
                                       algo::AlgorithmRegistry registry)
    : system_(system), results_(results), registry_(std::move(registry)) {}

const ResultEntry& AlgorithmContainer::invoke(const std::string& algorithm,
                                              const model::Objective& objective,
                                              algo::AlgoOptions options) {
  // Pre-flight: reject statically-broken models with diagnostics instead of
  // letting the algorithm search and report a bare "infeasible".
  check::preflight(system_.model(), system_.constraints());
  const model::ConstraintChecker checker(system_.model(),
                                         system_.constraints());
  if (!options.initial && system_.deployment().complete())
    options.initial = system_.deployment();

  const std::unique_ptr<algo::Algorithm> algo_instance =
      registry_.create(algorithm);
  algo::AlgoResult result =
      algo_instance->run(system_.model(), objective, checker, options);

  ResultEntry entry;
  entry.estimated_redeploy_ms = estimate_redeploy_ms(result);
  entry.result = std::move(result);
  entry.objective = std::string(objective.name());
  results_.add(std::move(entry));
  return results_.entries().back();
}

std::size_t AlgorithmContainer::invoke_all(const model::Objective& objective,
                                           std::uint64_t seed,
                                           std::size_t exact_limit) {
  std::size_t ran = 0;
  for (const std::string& name : registry_.names()) {
    if (name == "mincut" && system_.model().host_count() != 2) continue;
    if ((name == "exact" || name == "exact-unpruned" || name == "bip-i5") &&
        system_.model().component_count() > exact_limit)
      continue;
    algo::AlgoOptions options;
    options.seed = seed;
    invoke(name, objective, options);
    ++ran;
  }
  return ran;
}

double AlgorithmContainer::estimate_redeploy_ms(
    const algo::AlgoResult& result) const {
  if (!result.feasible || !system_.deployment().complete()) return 0.0;
  if (result.deployment.size() != system_.deployment().size()) return 0.0;
  const model::DeploymentModel& m = system_.model();
  double total = 0.0;
  for (const model::Deployment::Migration& move :
       model::Deployment::diff(system_.deployment(), result.deployment)) {
    const double size_kb = m.component(move.component).memory_size;
    if (m.connected(move.from, move.to)) {
      const model::PhysicalLink& link = m.physical_link(move.from, move.to);
      total += link.delay_ms + 1000.0 * size_kb / link.bandwidth;
    } else {
      // Mediated two-hop transfer through the deployer; estimate with the
      // slowest link the source and target have (pessimistic but bounded).
      double best_bw = 0.0;
      for (std::size_t h = 0; h < m.host_count(); ++h) {
        const auto hub = static_cast<model::HostId>(h);
        if (m.connected(move.from, hub) && m.connected(hub, move.to)) {
          const double bw =
              std::min(m.physical_link(move.from, hub).bandwidth,
                       m.physical_link(hub, move.to).bandwidth);
          best_bw = std::max(best_bw, bw);
        }
      }
      total += best_bw > 0.0 ? 2.0 * 1000.0 * size_kb / best_bw
                             : 10'000.0;  // unreachable: charge a timeout
    }
  }
  return total;
}

}  // namespace dif::desi
