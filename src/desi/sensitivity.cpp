#include "desi/sensitivity.h"

#include <stdexcept>

#include "algo/registry.h"
#include "desi/xadl.h"
#include "util/table.h"

namespace dif::desi {

template <typename Apply>
std::vector<SensitivityAnalysis::Point> SensitivityAnalysis::sweep(
    double lo, double hi, const model::Objective& objective,
    const Options& options, Apply&& apply) const {
  if (options.steps < 2)
    throw std::invalid_argument("SensitivityAnalysis: need >= 2 steps");
  if (!system_.deployment().complete())
    throw std::invalid_argument("SensitivityAnalysis: incomplete deployment");

  const algo::AlgorithmRegistry registry =
      algo::AlgorithmRegistry::with_defaults();
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(options.steps));

  for (int i = 0; i < options.steps; ++i) {
    const double value =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(options.steps - 1);
    // Private clone so the caller's system is never disturbed.
    const auto clone = XadlLite::from_json(XadlLite::to_json(system_));
    apply(*clone, value);

    Point point;
    point.parameter = value;
    point.current = objective.evaluate(clone->model(), clone->deployment());

    const model::ConstraintChecker checker(clone->model(),
                                           clone->constraints());
    algo::AlgoOptions algo_options;
    algo_options.seed = options.seed;
    algo_options.initial = clone->deployment();
    const algo::AlgoResult result = registry.create(options.algorithm)
                                        ->run(clone->model(), objective,
                                              checker, algo_options);
    point.reoptimized = result.feasible ? result.value : point.current;
    points.push_back(point);
  }
  return points;
}

std::vector<SensitivityAnalysis::Point>
SensitivityAnalysis::sweep_link_reliability(
    model::HostId a, model::HostId b, double lo, double hi,
    const model::Objective& objective, Options options) const {
  return sweep(lo, hi, objective, options,
               [a, b](SystemData& clone, double value) {
                 clone.model().set_link_reliability(a, b, value);
               });
}

std::vector<SensitivityAnalysis::Point>
SensitivityAnalysis::sweep_interaction_frequency(
    model::ComponentId a, model::ComponentId b, double lo, double hi,
    const model::Objective& objective, Options options) const {
  return sweep(lo, hi, objective, options,
               [a, b](SystemData& clone, double value) {
                 model::LogicalLink link = clone.model().logical_link(a, b);
                 link.frequency = value;
                 clone.model().set_logical_link(a, b, std::move(link));
               });
}

std::vector<SensitivityAnalysis::Point> SensitivityAnalysis::sweep_host_memory(
    model::HostId host, double lo, double hi,
    const model::Objective& objective, Options options) const {
  return sweep(lo, hi, objective, options,
               [host](SystemData& clone, double value) {
                 clone.model().host(host).memory_capacity = value;
                 clone.model().notify_entity_changed();
               });
}

std::string SensitivityAnalysis::render(const std::vector<Point>& points,
                                        const std::string& parameter_name) {
  util::Table table({parameter_name, "current deployment", "re-optimized"});
  for (const Point& point : points) {
    table.add_row({util::fmt(point.parameter, 3), util::fmt(point.current, 4),
                   util::fmt(point.reoptimized, 4)});
  }
  return table.render();
}

}  // namespace dif::desi
