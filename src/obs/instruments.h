// The instrumentation handle threaded through the adaptation loop.
//
// A cheap value type bundling the two observability sinks; every layer
// (SimNetwork, monitors, Admin/Deployer, ImprovementLoop, PortfolioRunner)
// accepts one via set_instruments()/options and treats null members as
// "observability off" — the default, so uninstrumented runs pay only a
// pointer test per hook.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dif::obs {

struct Instruments {
  Registry* metrics = nullptr;
  TraceLog* trace = nullptr;

  [[nodiscard]] explicit operator bool() const noexcept {
    return metrics != nullptr || trace != nullptr;
  }
};

}  // namespace dif::obs
