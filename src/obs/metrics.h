// Runtime metrics: counters, gauges, histograms behind a central Registry.
//
// The paper's management loop (Monitor -> Model -> Analyzer -> Effector) ran
// on physical devices with no record of its own behaviour; `src/obs` is the
// framework's flight recorder. Every layer of the adaptation loop registers
// named metrics here, and the Registry serializes them as one JSON document
// (util/json) so experiment runs and BENCH_*.json files share a single
// source of truth.
//
// Design constraints:
//   * deterministic — iteration and serialization order is the metric name
//     (std::map), so two identical seeded runs emit byte-identical JSON;
//   * allocation-stable — counter(), gauge(), and histogram() return
//     references that stay valid for the Registry's lifetime (node-based
//     map), so hot paths can cache them;
//   * single-threaded by design — everything above the simulator runs on
//     the sim thread. The one multi-threaded producer (PortfolioRunner)
//     records results after its worker pool joins.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace dif::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with count/sum/min/max. Buckets are cumulative
/// upper bounds ("le" semantics); samples above the last bound land in the
/// implicit +inf overflow bucket.
class Histogram {
 public:
  /// Default bounds suit millisecond-scale latencies (sub-ms to minutes).
  [[nodiscard]] static std::vector<double> default_bounds();

  explicit Histogram(std::vector<double> bounds = default_bounds());

  void observe(double sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// the final entry being the +inf overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Central metric namespace. Names are hierarchical by convention
/// ("net.sent", "deploy.timeouts", "loop.ticks").
class Registry {
 public:
  /// Returns the named metric, creating it on first use. References remain
  /// valid for the Registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds = {});

  /// Read-side lookups for tests and report generators (null when absent).
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One deterministic document:
  ///   {"schema": "dif-metrics-v1",
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count","sum","min","max","mean",
  ///                          "buckets": [{"le", "count"}, ...]}, ...}}
  /// The final bucket of each histogram has "le": null (+inf overflow).
  [[nodiscard]] util::json::Value to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dif::obs
