#include "obs/metrics.h"

#include <algorithm>

namespace dif::obs {

std::vector<double> Histogram::default_bounds() {
  return {0.1,   0.25,  0.5,   1.0,    2.5,    5.0,    10.0,
          25.0,  50.0,  100.0, 250.0,  500.0,  1000.0, 2500.0,
          5000.0, 10000.0, 30000.0, 60000.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double sample) noexcept {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(name, bounds.empty() ? Histogram()
                                    : Histogram(std::move(bounds)))
      .first->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

util::json::Value Registry::to_json() const {
  util::json::Object counters;
  for (const auto& [name, c] : counters_) counters.emplace(name, c.value());
  util::json::Object gauges;
  for (const auto& [name, g] : gauges_) gauges.emplace(name, g.value());
  util::json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    util::json::Array buckets;
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      util::json::Object bucket;
      bucket.emplace("le", i < h.bounds().size()
                               ? util::json::Value(h.bounds()[i])
                               : util::json::Value(nullptr));
      bucket.emplace("count", h.bucket_counts()[i]);
      buckets.push_back(std::move(bucket));
    }
    util::json::Object entry;
    entry.emplace("count", h.count());
    entry.emplace("sum", h.sum());
    entry.emplace("min", h.min());
    entry.emplace("max", h.max());
    entry.emplace("mean", h.mean());
    entry.emplace("buckets", std::move(buckets));
    histograms.emplace(name, std::move(entry));
  }
  util::json::Object doc;
  doc.emplace("schema", "dif-metrics-v1");
  doc.emplace("counters", std::move(counters));
  doc.emplace("gauges", std::move(gauges));
  doc.emplace("histograms", std::move(histograms));
  return doc;
}

}  // namespace dif::obs
