#include "obs/trace.h"

namespace dif::obs {

const FieldValue* TraceEvent::field(const std::string& key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

void TraceLog::add_event(double t_ms, std::string name, Fields fields) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(
      {t_ms, 0.0, false, std::move(name), std::move(fields)});
}

TraceLog::SpanId TraceLog::begin_span(double t_ms, std::string name,
                                      Fields fields) {
  if (full()) {
    ++dropped_;
    return kInvalidSpan;
  }
  events_.push_back({t_ms, 0.0, true, std::move(name), std::move(fields)});
  return events_.size() - 1;
}

void TraceLog::span_field(SpanId id, std::string key, FieldValue value) {
  if (id >= events_.size()) return;
  events_[id].fields.emplace_back(std::move(key), std::move(value));
}

void TraceLog::end_span(SpanId id, double t_ms) {
  if (id >= events_.size()) return;
  events_[id].dur_ms = t_ms - events_[id].t_ms;
}

void TraceLog::add_span(double t_ms, double dur_ms, std::string name,
                        Fields fields) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(
      {t_ms, dur_ms, true, std::move(name), std::move(fields)});
}

std::vector<const TraceEvent*> TraceLog::find(const std::string& name) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& event : events_)
    if (event.name == name) out.push_back(&event);
  return out;
}

util::json::Value TraceLog::to_json() const {
  util::json::Array events;
  events.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    util::json::Object fields;
    for (const auto& [key, value] : event.fields) {
      std::visit(
          [&fields, &key](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::int64_t>) {
              fields.emplace(key, static_cast<double>(v));
            } else {
              fields.emplace(key, v);
            }
          },
          value);
    }
    util::json::Object entry;
    entry.emplace("t_ms", event.t_ms);
    entry.emplace("dur_ms", event.dur_ms);
    entry.emplace("span", event.span);
    entry.emplace("name", event.name);
    entry.emplace("fields", std::move(fields));
    events.push_back(std::move(entry));
  }
  util::json::Object doc;
  doc.emplace("schema", "dif-trace-v1");
  doc.emplace("dropped", dropped_);
  doc.emplace("events", std::move(events));
  return doc;
}

}  // namespace dif::obs
