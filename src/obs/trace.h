// Adaptation tracing: a structured log of timestamped spans and events
// keyed to the simulation clock.
//
// Where the metrics Registry answers "how much / how often", the TraceLog
// answers "why": every redeployment epoch, analyzer tick, and portfolio race
// leaves a span carrying the inputs of the decision (objective value,
// algorithm chosen, epoch, migration count) and its outcome (applied,
// rejected, timed out) so a run can be replayed from its trace alone.
//
// Callers supply timestamps explicitly — instrumented code already holds a
// clock (the simulator, a scaffold, or a wall-clock delta) and the log must
// not guess which one applies. Spans record their start time at begin and
// their duration at end; instant events have zero duration. The log is
// bounded: past `capacity` entries, new records are counted as dropped
// rather than grown without limit.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/json.h"

namespace dif::obs {

/// Typed span/event field value.
using FieldValue = std::variant<bool, std::int64_t, double, std::string>;
using Fields = std::vector<std::pair<std::string, FieldValue>>;

struct TraceEvent {
  double t_ms = 0.0;    // start time on the caller's clock
  double dur_ms = 0.0;  // 0 for instant events and still-open spans
  bool span = false;
  std::string name;
  Fields fields;

  /// Field lookup for assertions/report code; null when absent.
  [[nodiscard]] const FieldValue* field(const std::string& key) const;
};

class TraceLog {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kInvalidSpan = static_cast<SpanId>(-1);

  explicit TraceLog(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  /// Records an instant event.
  void add_event(double t_ms, std::string name, Fields fields = {});

  /// Opens a span; close it with end_span. Returns kInvalidSpan when the
  /// log is full (all further operations on it are no-ops).
  [[nodiscard]] SpanId begin_span(double t_ms, std::string name,
                                  Fields fields = {});
  /// Attaches one more field to an open (or closed) span.
  void span_field(SpanId id, std::string key, FieldValue value);
  /// Closes the span, recording `t_ms - start` as its duration.
  void end_span(SpanId id, double t_ms);

  /// Records an already-measured span in one call (used by post-hoc
  /// recorders such as the portfolio runner).
  void add_span(double t_ms, double dur_ms, std::string name,
                Fields fields = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Every event with name == `name`, in record order.
  [[nodiscard]] std::vector<const TraceEvent*> find(
      const std::string& name) const;

  /// One deterministic document:
  ///   {"schema": "dif-trace-v1", "dropped": N,
  ///    "events": [{"t_ms","dur_ms","span","name","fields":{...}}, ...]}
  [[nodiscard]] util::json::Value to_json() const;

 private:
  [[nodiscard]] bool full() const noexcept {
    return events_.size() >= capacity_;
  }

  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dif::obs
