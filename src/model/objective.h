// Objective functions over deployment architectures.
//
// Per the paper, each objective is formally specified and is either an
// optimization problem (maximize availability, minimize latency) or part of a
// constraint-satisfaction problem (handled by ConstraintChecker). Objectives
// are pluggable: algorithms are written against the abstract interface, and
// new concerns (security, energy, ...) are added by subclassing — see
// SecurityObjective for a property-map-driven example.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/deployment.h"
#include "model/deployment_model.h"

namespace dif::model {

enum class Direction { kMaximize, kMinimize };

/// An objective that scores a complete deployment of a model.
class Objective {
 public:
  virtual ~Objective() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Direction direction() const = 0;

  /// Raw objective value (availability fraction, latency in ms/s, ...).
  [[nodiscard]] virtual double evaluate(const DeploymentModel& model,
                                        const Deployment& d) const = 0;

  /// Normalized value in [0, 1], higher-is-better regardless of direction.
  /// Lets WeightedObjective and analyzers compare unlike objectives.
  [[nodiscard]] virtual double score(const DeploymentModel& model,
                                     const Deployment& d) const;

  /// Direction-aware comparison: is raw value `candidate` strictly better
  /// than `incumbent`?
  [[nodiscard]] bool improves(double candidate, double incumbent) const {
    return direction() == Direction::kMaximize ? candidate > incumbent
                                               : candidate < incumbent;
  }

  /// The worst possible raw value for this direction (seed for searches).
  [[nodiscard]] double worst() const;
};

/// Availability (paper Section 5.1, definition from companion TR [12]):
///   A(d) = sum_ij freq(ci,cj) * rel(d(ci), d(cj)) / sum_ij freq(ci,cj)
/// Local interactions count with reliability 1; disconnected host pairs with
/// 0. A deployment placing frequent interactions locally or on reliable links
/// therefore scores higher. Result is in [0, 1]; an interaction-free model
/// scores 1 (nothing can fail).
class AvailabilityObjective final : public Objective {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "availability";
  }
  [[nodiscard]] Direction direction() const override {
    return Direction::kMaximize;
  }
  [[nodiscard]] double evaluate(const DeploymentModel& model,
                                const Deployment& d) const override;
};

/// Expected communication latency incurred per second of operation (ms/s):
///   L(d) = sum_ij freq * [ delay(ha,hb) + 1000 * size / bandwidth(ha,hb) ]
/// over remote pairs; local interactions contribute 0; interactions across
/// disconnected hosts are charged `disconnected_penalty_ms` each.
class LatencyObjective final : public Objective {
 public:
  explicit LatencyObjective(double disconnected_penalty_ms = 10'000.0,
                            double reference_scale = 1'000.0)
      : penalty_ms_(disconnected_penalty_ms), scale_(reference_scale) {}

  [[nodiscard]] std::string_view name() const override { return "latency"; }
  [[nodiscard]] Direction direction() const override {
    return Direction::kMinimize;
  }
  [[nodiscard]] double evaluate(const DeploymentModel& model,
                                const Deployment& d) const override;
  /// 1 / (1 + L / reference_scale) — monotonically decreasing in latency.
  [[nodiscard]] double score(const DeploymentModel& model,
                             const Deployment& d) const override;

  [[nodiscard]] double disconnected_penalty_ms() const noexcept {
    return penalty_ms_;
  }
  /// Normalization scale used by score() — exposed so the incremental
  /// evaluator can reproduce the score transform from a raw value.
  [[nodiscard]] double reference_scale() const noexcept { return scale_; }

 private:
  double penalty_ms_;
  double scale_;
};

/// Total remote traffic volume (KB/s) — the criterion minimized by I5 [1]
/// and Coign [7]:  C(d) = sum over remote pairs of freq * size.
class CommunicationCostObjective final : public Objective {
 public:
  explicit CommunicationCostObjective(double reference_scale = 1'000.0)
      : scale_(reference_scale) {}

  [[nodiscard]] std::string_view name() const override { return "comm-cost"; }
  [[nodiscard]] Direction direction() const override {
    return Direction::kMinimize;
  }
  [[nodiscard]] double evaluate(const DeploymentModel& model,
                                const Deployment& d) const override;
  [[nodiscard]] double score(const DeploymentModel& model,
                             const Deployment& d) const override;
  [[nodiscard]] double reference_scale() const noexcept { return scale_; }

 private:
  double scale_;
};

/// Extensibility demonstration (the paper's "improve a distributed system's
/// security" example): the frequency-weighted fraction of interactions whose
/// carrying link meets the interaction's required security level.
///
/// Reads the extensible properties "security" (on physical links, default 0;
/// local interactions are fully secure) and "required_security" (on logical
/// links, default 0).
class SecurityObjective final : public Objective {
 public:
  [[nodiscard]] std::string_view name() const override { return "security"; }
  [[nodiscard]] Direction direction() const override {
    return Direction::kMaximize;
  }
  [[nodiscard]] double evaluate(const DeploymentModel& model,
                                const Deployment& d) const override;
};

/// Weighted combination of normalized objective scores; the analyzer's tool
/// for multi-objective trade-offs. evaluate() returns
/// sum_i weight_i * score_i(d) / sum_i weight_i, in [0, 1].
class WeightedObjective final : public Objective {
 public:
  struct Term {
    std::shared_ptr<const Objective> objective;
    double weight = 1.0;
  };

  explicit WeightedObjective(std::vector<Term> terms);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] Direction direction() const override {
    return Direction::kMaximize;
  }
  [[nodiscard]] double evaluate(const DeploymentModel& model,
                                const Deployment& d) const override;

  [[nodiscard]] const std::vector<Term>& terms() const noexcept {
    return terms_;
  }

 private:
  std::vector<Term> terms_;
  std::string name_;
  double total_weight_;
};

}  // namespace dif::model
