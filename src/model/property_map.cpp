#include "model/property_map.h"

#include <stdexcept>

namespace dif::model {

void PropertyMap::set(std::string_view name, double value) {
  auto it = values_.find(name);
  if (it != values_.end()) {
    it->second = value;
  } else {
    values_.emplace(std::string(name), value);
  }
}

std::optional<double> PropertyMap::get(std::string_view name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double PropertyMap::get_or(std::string_view name, double dflt) const {
  return get(name).value_or(dflt);
}

double PropertyMap::at(std::string_view name) const {
  const auto v = get(name);
  if (!v)
    throw std::out_of_range("PropertyMap: missing property '" +
                            std::string(name) + "'");
  return *v;
}

bool PropertyMap::contains(std::string_view name) const {
  return values_.find(name) != values_.end();
}

bool PropertyMap::erase(std::string_view name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  values_.erase(it);
  return true;
}

util::json::Value PropertyMap::to_json() const {
  util::json::Object obj;
  for (const auto& [name, value] : values_) obj.emplace(name, value);
  return util::json::Value(std::move(obj));
}

PropertyMap PropertyMap::from_json(const util::json::Value& v) {
  PropertyMap map;
  for (const auto& [name, value] : v.as_object())
    map.set(name, value.as_number());
  return map;
}

}  // namespace dif::model
