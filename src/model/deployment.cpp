#include "model/deployment.h"

#include <algorithm>
#include <stdexcept>

#include "model/deployment_model.h"

namespace dif::model {

Deployment::Deployment(std::size_t component_count)
    : assignment_(component_count, kNoHost) {}

Deployment::Deployment(std::vector<HostId> assignment)
    : assignment_(std::move(assignment)) {}

bool Deployment::complete() const noexcept {
  return std::none_of(assignment_.begin(), assignment_.end(),
                      [](HostId h) { return h == kNoHost; });
}

std::vector<ComponentId> Deployment::components_on(HostId h) const {
  std::vector<ComponentId> result;
  for (std::size_t c = 0; c < assignment_.size(); ++c)
    if (assignment_[c] == h) result.push_back(static_cast<ComponentId>(c));
  return result;
}

std::size_t Deployment::diff_count(const Deployment& from,
                                   const Deployment& to) {
  if (from.size() != to.size())
    throw std::invalid_argument("Deployment::diff_count: size mismatch");
  std::size_t count = 0;
  for (std::size_t c = 0; c < from.size(); ++c)
    if (from.assignment_[c] != to.assignment_[c]) ++count;
  return count;
}

std::vector<Deployment::Migration> Deployment::diff(const Deployment& from,
                                                    const Deployment& to) {
  if (from.size() != to.size())
    throw std::invalid_argument("Deployment::diff: size mismatch");
  std::vector<Migration> migrations;
  for (std::size_t c = 0; c < from.size(); ++c) {
    if (from.assignment_[c] != to.assignment_[c]) {
      migrations.push_back({static_cast<ComponentId>(c), from.assignment_[c],
                            to.assignment_[c]});
    }
  }
  return migrations;
}

std::string Deployment::describe(const DeploymentModel& model) const {
  std::string out;
  for (std::size_t c = 0; c < assignment_.size(); ++c) {
    out += model.component(static_cast<ComponentId>(c)).name;
    out += " -> ";
    out += assignment_[c] == kNoHost ? "(unassigned)"
                                     : model.host(assignment_[c]).name;
    out += '\n';
  }
  return out;
}

}  // namespace dif::model
