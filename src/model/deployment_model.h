// The framework's Model component: the representation of a distributed
// system's deployment architecture.
//
// Per the paper (Section 3.1), the model has four kinds of parts — hosts,
// components, physical links between hosts, and logical links between
// components — each carrying an arbitrary set of parameters. First-class
// fields cover the parameters used by the paper's availability/latency
// scenario (Section 5.1); everything else goes in per-entity PropertyMaps.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/ids.h"
#include "model/property_map.h"

namespace dif::model {

/// A hardware host (PC, PDA, ...).
struct Host {
  std::string name;
  /// Memory available for hosting components (KB).
  double memory_capacity = 0.0;
  /// Relative CPU capacity (arbitrary units); 0 means "not modelled".
  double cpu_capacity = 0.0;
  /// Extensible parameters (battery power, installed software, ...).
  PropertyMap properties;
};

/// A software component.
struct SoftwareComponent {
  std::string name;
  /// Memory the component requires on its host (KB).
  double memory_size = 0.0;
  /// CPU load the component induces (same units as Host::cpu_capacity).
  double cpu_load = 0.0;
  /// Extensible parameters (criticality, version, ...).
  PropertyMap properties;
};

/// A physical network link between two hosts. Absent link == disconnected.
struct PhysicalLink {
  /// Probability that the link is up / a message survives it, in [0, 1].
  double reliability = 0.0;
  /// Effective bandwidth (KB/s). 0 means disconnected.
  double bandwidth = 0.0;
  /// One-way transmission delay (ms).
  double delay_ms = 0.0;
  /// Extensible parameters (security level, monetary cost, ...).
  PropertyMap properties;
};

/// A logical interaction between two components.
struct LogicalLink {
  /// Interaction frequency (events per second).
  double frequency = 0.0;
  /// Average event size (KB).
  double avg_event_size = 0.0;
  /// Extensible parameters (criticality, required security, ...).
  PropertyMap properties;
};

/// A flattened, cached view of one interacting component pair; algorithms
/// iterate these instead of scanning the full n-by-n matrix.
struct Interaction {
  ComponentId a = 0;
  ComponentId b = 0;
  double frequency = 0.0;
  double avg_event_size = 0.0;
};

/// Coarse change notification, used by DeSi's reactive Model and by monitors
/// feeding runtime values into the model.
enum class ModelEvent {
  kTopologyChanged,       // host/component added
  kPhysicalLinkChanged,   // reliability/bandwidth/delay updated
  kLogicalLinkChanged,    // frequency/event size updated
  kEntityParamChanged,    // host/component field or property updated
};

/// Fine-grained change notification: the coarse event plus the entities it
/// touched, when known. Warm-started re-optimization keys on this — the
/// ImprovementLoop turns "link (a,b) changed" into a dirty-component set so
/// the next analysis scales with the delta, not the fleet. Sentinel ids
/// (kNoHost / kNoComponent) mean "not attributable to specific entities";
/// consumers must then treat the whole model as dirty.
struct ModelChange {
  ModelEvent event = ModelEvent::kEntityParamChanged;
  HostId host_a = kNoHost;
  HostId host_b = kNoHost;
  ComponentId component_a = kNoComponent;
  ComponentId component_b = kNoComponent;
};

/// Read-only view of the dense physical-link matrix for hot loops (the
/// incremental evaluator's per-move term updates). `at(a, b)` matches
/// physical_link(a, b) for a != b without the range checks or the
/// disconnected-link canonicalization (absent links are stored all-zero, so
/// reliability/bandwidth/delay read the same either way). Invalidated by
/// add_host; callers hold it only across a model-stable hot section.
struct PhysicalLinkTable {
  const PhysicalLink* data = nullptr;
  std::size_t dim = 0;  // row stride (matrix capacity, >= host count)

  [[nodiscard]] const PhysicalLink& at(HostId a, HostId b) const {
    const auto lo = a < b ? a : b;
    const auto hi = a < b ? b : a;
    return data[static_cast<std::size_t>(lo) * dim + hi];
  }
};

/// The deployment-architecture model.
///
/// Invariants:
///  * physical and logical links are symmetric (stored canonically, a <= b);
///  * self links are rejected (a local interaction needs no link; a host
///    is always perfectly connected to itself);
///  * the physical matrix is kept sized to the current host count (with
///    geometric spare capacity); logical links are stored sparsely.
///
/// Not thread-safe; the framework owns it from a single (simulated) thread.
class DeploymentModel {
 public:
  DeploymentModel() = default;

  // --- topology -----------------------------------------------------------

  HostId add_host(Host host);
  ComponentId add_component(SoftwareComponent component);

  [[nodiscard]] std::size_t host_count() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }

  [[nodiscard]] const Host& host(HostId id) const { return hosts_.at(id); }
  [[nodiscard]] Host& host(HostId id) { return hosts_.at(id); }
  [[nodiscard]] const SoftwareComponent& component(ComponentId id) const {
    return components_.at(id);
  }
  [[nodiscard]] SoftwareComponent& component(ComponentId id) {
    return components_.at(id);
  }

  /// Finds a host/component by name; throws std::out_of_range when absent.
  [[nodiscard]] HostId host_by_name(std::string_view name) const;
  [[nodiscard]] ComponentId component_by_name(std::string_view name) const;

  // --- regions ------------------------------------------------------------

  /// Region/zone topology: hosts sharing a region id are assumed to fail
  /// together under correlated (zone-level) faults, which is what the
  /// chaos layer's KillRegion workload exercises. The assignment is stored
  /// as the "region" entry of the host's PropertyMap, so xADL descriptions
  /// round-trip it like any other extensible parameter; untagged hosts
  /// default to region 0.
  static constexpr std::string_view kRegionProperty = "region";

  void set_host_region(HostId id, std::size_t region);
  [[nodiscard]] std::size_t host_region(HostId id) const;
  /// 1 + the largest region id in use (1 for an untagged model).
  [[nodiscard]] std::size_t region_count() const;
  [[nodiscard]] std::vector<HostId> hosts_in_region(std::size_t region) const;

  // --- physical links -----------------------------------------------------

  /// Sets the (symmetric) link between two distinct hosts.
  void set_physical_link(HostId a, HostId b, PhysicalLink link);
  /// Removes the link (hosts become disconnected).
  void clear_physical_link(HostId a, HostId b);

  /// Link parameters between two hosts. For a == b returns the implicit
  /// perfect local link (reliability 1, infinite bandwidth, zero delay).
  /// For unconnected pairs returns the all-zero disconnected link.
  [[nodiscard]] const PhysicalLink& physical_link(HostId a, HostId b) const;

  /// True when a != b and a physical link with bandwidth > 0 exists.
  [[nodiscard]] bool connected(HostId a, HostId b) const;

  /// Raw dense-matrix view for hot loops; see PhysicalLinkTable.
  [[nodiscard]] PhysicalLinkTable physical_link_table() const noexcept {
    return {physical_.data(), phys_dim_};
  }

  /// Mutates a single field of an existing link (monitor update path).
  void set_link_reliability(HostId a, HostId b, double reliability);
  void set_link_bandwidth(HostId a, HostId b, double bandwidth);
  void set_link_delay(HostId a, HostId b, double delay_ms);

  // --- logical links ------------------------------------------------------

  void set_logical_link(ComponentId a, ComponentId b, LogicalLink link);
  void clear_logical_link(ComponentId a, ComponentId b);
  [[nodiscard]] const LogicalLink& logical_link(ComponentId a,
                                                ComponentId b) const;

  /// All component pairs with frequency > 0. Cached; invalidated on change.
  [[nodiscard]] std::span<const Interaction> interactions() const;

  /// Sum of frequencies over all interactions (denominator of availability).
  [[nodiscard]] double total_interaction_frequency() const;

  // --- extensibility ------------------------------------------------------

  /// Model-level extensible parameters (e.g. global monitoring window).
  [[nodiscard]] PropertyMap& properties() noexcept { return properties_; }
  [[nodiscard]] const PropertyMap& properties() const noexcept {
    return properties_;
  }

  /// Registers a change listener (DeSi view refresh, analyzer profile, ...).
  /// Listeners must outlive the model or be removed via the returned id.
  using Listener = std::function<void(ModelEvent)>;
  std::size_t add_listener(Listener listener);
  void remove_listener(std::size_t id);

  /// Registers a fine-grained change listener (see ModelChange). Coarse and
  /// detail listeners fire on the same notifications; detail listeners
  /// additionally learn which entities changed. Same lifetime rules as
  /// add_listener.
  using DetailListener = std::function<void(const ModelChange&)>;
  std::size_t add_detail_listener(DetailListener listener);
  void remove_detail_listener(std::size_t id);

  /// Notifies listeners that an entity field/property was edited directly
  /// (Host/SoftwareComponent references are mutable for Modifier's benefit).
  void notify_entity_changed();

  // --- validation ---------------------------------------------------------

  /// Throws std::invalid_argument when any stored parameter is out of range
  /// (reliability outside [0,1], negative memory/frequency/bandwidth, ...).
  void validate() const;

 private:
  [[nodiscard]] std::size_t phys_index(HostId a, HostId b) const;
  [[nodiscard]] static std::uint64_t logi_key(ComponentId a, ComponentId b);
  void check_host(HostId id) const;
  void check_component(ComponentId id) const;
  void notify(const ModelChange& change);
  PhysicalLink& phys_ref(HostId a, HostId b);

  std::vector<Host> hosts_;
  std::vector<SoftwareComponent> components_;
  /// Dense canonical-pair (a < b) storage, row-major with stride phys_dim_.
  /// The capacity dimension grows geometrically so that adding k hosts one
  /// by one costs amortized O(k^2) total, not O(k^3).
  std::vector<PhysicalLink> physical_;
  std::size_t phys_dim_ = 0;
  /// Sparse logical links keyed by canonical pair (lo << 32 | hi). Dense
  /// n-by-n storage was quadratic in components — multiple GB at the 10k+
  /// component fleet sizes bench_scalability sweeps — while real interaction
  /// graphs are sparse.
  std::unordered_map<std::uint64_t, LogicalLink> logical_;
  PropertyMap properties_;

  mutable std::vector<Interaction> interactions_cache_;
  mutable bool interactions_dirty_ = true;

  std::vector<std::pair<std::size_t, Listener>> listeners_;
  std::vector<std::pair<std::size_t, DetailListener>> detail_listeners_;
  std::size_t next_listener_id_ = 0;
};

}  // namespace dif::model
