// Incremental (delta) objective evaluation.
//
// Availability, latency, and communication cost are sums of independent
// per-interaction terms that depend only on the hosts carrying the two
// endpoints. PairwiseDecomposition captures that term structure once per
// (objective, model) pair; IncrementalEvaluator builds on it to re-score a
// deployment after a single-component move in O(degree(component)) instead
// of O(interactions) — the enabling optimization for the move-based searches
// and the portfolio runner's throughput.
//
// Objectives that do not decompose pairwise (SecurityObjective's property
// lookups, WeightedObjective's score mixing) are rejected by try_create();
// callers fall back to full Objective::evaluate.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "model/deployment.h"
#include "model/deployment_model.h"
#include "model/objective.h"

namespace dif::model {

/// The per-interaction term structure of one decomposable objective.
/// Cheap to copy; the model must outlive it.
class PairwiseDecomposition {
 public:
  /// Returns a decomposition when `objective` is AvailabilityObjective,
  /// LatencyObjective, or CommunicationCostObjective; nullopt otherwise.
  static std::optional<PairwiseDecomposition> try_create(
      const Objective& objective, const DeploymentModel& m);

  [[nodiscard]] Direction direction() const noexcept { return direction_; }

  /// Contribution of interaction `ix` when its endpoints sit on `ha` and
  /// `hb`. Either endpoint may be kNoHost (unassigned): availability counts
  /// the interaction as unavailable, latency charges the disconnection
  /// penalty, and communication cost treats it as remote.
  [[nodiscard]] double pair_term(const Interaction& ix, HostId ha,
                                 HostId hb) const;

  /// Best achievable contribution of interaction `ix` over any host pair
  /// (freq for availability; 0 for latency / communication cost).
  [[nodiscard]] double optimistic_term(const Interaction& ix) const;

  /// Converts a completed term sum into the objective's raw value (e.g.
  /// divides by total frequency for availability). Monotone in the sum.
  [[nodiscard]] double finalize(double term_sum) const;

  /// The objective's normalized score for a raw value — matches
  /// Objective::score for the decomposed objective.
  [[nodiscard]] double score_of(double raw_value) const;

 private:
  friend class IncrementalEvaluator;  // hoists the kind switch out of loops

  enum class Kind { kAvailability, kLatency, kCommCost };

  PairwiseDecomposition(Kind kind, const DeploymentModel& m,
                        double penalty_ms, double scale);

  Kind kind_;
  Direction direction_;
  const DeploymentModel* model_;
  double penalty_ms_ = 0.0;
  double scale_ = 1.0;
  double total_frequency_ = 0.0;
};

/// Maintains a deployment assignment plus the objective's term sum, updating
/// both in O(degree) per single-component move. Internally structure-of-
/// arrays: flat component->host assignment, CSR interaction adjacency, and
/// per-interaction parameter columns, so a move streams through contiguous
/// arrays with the objective-kind dispatch hoisted out of the loop.
///
/// Contract: the model's topology and link/interaction parameters must not
/// change between reset() and the last apply()/value() call (the evaluator
/// caches the interaction list and per-interaction terms). Not thread-safe;
/// each search owns its evaluator.
class IncrementalEvaluator {
 public:
  /// Returns an evaluator when the objective decomposes pairwise (see
  /// PairwiseDecomposition::try_create), nullopt otherwise.
  static std::optional<IncrementalEvaluator> try_create(
      const Objective& objective, const DeploymentModel& m);

  /// Loads `d` and recomputes all terms — O(interactions). Must be called
  /// before the first apply(); may be called again to re-sync.
  void reset(const Deployment& d);

  /// Moves component `c` to host `h` (or kNoHost to unassign) and updates
  /// the affected terms — O(degree(c)). A group move is a sequence of
  /// apply() calls; intra-group terms settle once all members have moved.
  void apply(ComponentId c, HostId h);

  /// Raw objective value of the current assignment.
  [[nodiscard]] double value() const { return decomposition_.finalize(sum_); }

  /// Normalized score of the current assignment (== Objective::score).
  [[nodiscard]] double score() const {
    return decomposition_.score_of(value());
  }

  [[nodiscard]] Direction direction() const noexcept {
    return decomposition_.direction();
  }

  [[nodiscard]] HostId host_of(ComponentId c) const {
    return assignment_.at(c);
  }

  /// Materializes the tracked assignment as a Deployment.
  [[nodiscard]] Deployment to_deployment() const {
    return Deployment(assignment_);
  }

  /// Moves applied since construction (reset() does not count).
  [[nodiscard]] std::uint64_t moves_applied() const noexcept { return moves_; }

 private:
  IncrementalEvaluator(PairwiseDecomposition decomposition,
                       const DeploymentModel& m);

  /// Recomputes the term of interaction `index` given both endpoints'
  /// current hosts; the kind switch is hoisted to the call sites' loops.
  template <PairwiseDecomposition::Kind kKind>
  [[nodiscard]] double term_of(std::uint32_t index, HostId ha,
                               HostId hb) const;
  template <PairwiseDecomposition::Kind kKind>
  void apply_terms(ComponentId c, HostId h);
  template <PairwiseDecomposition::Kind kKind>
  void reset_terms();

  PairwiseDecomposition decomposition_;
  const DeploymentModel* model_;
  PhysicalLinkTable links_;
  /// Structure-of-arrays copy of the interaction list: endpoint, frequency,
  /// and size columns stay in separate flat arrays so the hot loops stream
  /// through contiguous memory instead of chasing per-component vectors.
  std::vector<ComponentId> ix_a_, ix_b_;
  std::vector<double> ix_freq_, ix_size_;
  /// CSR interaction adjacency: interactions touching component c are
  /// adj_ix_[adj_offsets_[c] .. adj_offsets_[c + 1]); adj_other_ carries the
  /// opposite endpoint so a move never re-derives it from the pair.
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<std::uint32_t> adj_ix_;
  std::vector<ComponentId> adj_other_;
  /// Flat component -> host assignment (the deployment's hot mirror).
  std::vector<HostId> assignment_;
  std::vector<double> term_;
  double sum_ = 0.0;
  std::uint64_t moves_ = 0;
};

}  // namespace dif::model
