// Identifier types shared across the framework.
#pragma once

#include <cstdint>
#include <limits>

namespace dif::model {

/// Index of a hardware host within a DeploymentModel.
using HostId = std::uint32_t;

/// Index of a software component within a DeploymentModel.
using ComponentId = std::uint32_t;

/// Sentinel meaning "component not (yet) assigned to any host".
inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();

/// Sentinel meaning "no component" (absent field of a change notification).
inline constexpr ComponentId kNoComponent =
    std::numeric_limits<ComponentId>::max();

}  // namespace dif::model
