#include "model/constraints.h"

#include <algorithm>
#include <stdexcept>

#include "model/deployment_model.h"

namespace dif::model {

void ConstraintSet::allow_only(ComponentId c, std::vector<HostId> hosts) {
  if (hosts.empty())
    throw std::invalid_argument("ConstraintSet: empty allow-list");
  const auto it =
      std::find_if(allowed_.begin(), allowed_.end(),
                   [c](const auto& entry) { return entry.first == c; });
  if (it != allowed_.end()) {
    it->second = std::move(hosts);
  } else {
    allowed_.emplace_back(c, std::move(hosts));
  }
}

void ConstraintSet::forbid_host(ComponentId c, HostId h) {
  if (!std::count(forbidden_.begin(), forbidden_.end(), std::pair{c, h}))
    forbidden_.emplace_back(c, h);
}

void ConstraintSet::pin(ComponentId c, HostId h) { allow_only(c, {h}); }

void ConstraintSet::require_colocation(ComponentId a, ComponentId b) {
  if (a == b) throw std::invalid_argument("ConstraintSet: self colocation");
  must_pairs_.emplace_back(std::min(a, b), std::max(a, b));
}

void ConstraintSet::forbid_colocation(ComponentId a, ComponentId b) {
  if (a == b)
    throw std::invalid_argument("ConstraintSet: self anti-colocation");
  anti_pairs_.emplace_back(std::min(a, b), std::max(a, b));
}

bool ConstraintSet::host_allowed(ComponentId c, HostId h) const {
  for (const auto& [comp, host] : forbidden_)
    if (comp == c && host == h) return false;
  const auto it =
      std::find_if(allowed_.begin(), allowed_.end(),
                   [c](const auto& entry) { return entry.first == c; });
  if (it == allowed_.end()) return true;
  return std::count(it->second.begin(), it->second.end(), h) > 0;
}

std::string_view to_string(Violation::Kind kind) noexcept {
  switch (kind) {
    case Violation::Kind::kUnassigned: return "unassigned";
    case Violation::Kind::kLocation: return "location";
    case Violation::Kind::kMemory: return "memory";
    case Violation::Kind::kCpu: return "cpu";
    case Violation::Kind::kColocationRequired: return "colocation-required";
    case Violation::Kind::kColocationForbidden: return "colocation-forbidden";
    case Violation::Kind::kBandwidth: return "bandwidth";
  }
  return "?";
}

ConstraintChecker::ConstraintChecker(const DeploymentModel& model,
                                     const ConstraintSet& set, Options options)
    : model_(model),
      set_(set),
      options_(options),
      words_per_row_((model.host_count() + 63) / 64) {
  const std::size_t n = model.component_count();
  const std::size_t k = model.host_count();
  if (k == 0) throw std::invalid_argument("ConstraintChecker: no hosts");
  // Default-allow fill, then direct rule application: O(n * k / 64 + rules)
  // instead of n * k calls into the O(rules) ConstraintSet::host_allowed —
  // the difference between milliseconds and minutes at fleet scale
  // (10k components x 1k hosts x dozens of location rules).
  allowed_masks_.assign(n * words_per_row_, ~0ULL);
  if (k % 64 != 0) {
    // Mask off the bits past the last host so popcount-style consumers and
    // host_allowed(h >= k) queries see "not allowed".
    const std::uint64_t last_word = (1ULL << (k % 64)) - 1;
    for (std::size_t c = 0; c < n; ++c)
      allowed_masks_[c * words_per_row_ + words_per_row_ - 1] = last_word;
  }
  for (const auto& [c, hosts] : set.allowed_) {
    if (c >= n) continue;
    std::fill_n(allowed_masks_.begin() +
                    static_cast<std::ptrdiff_t>(c * words_per_row_),
                words_per_row_, 0ULL);
    for (const HostId h : hosts)
      if (h < k) allowed_masks_[c * words_per_row_ + h / 64] |= 1ULL << (h % 64);
  }
  // Forbidden pairs win over allow-lists, matching ConstraintSet semantics.
  for (const auto& [c, h] : set.forbidden_)
    if (c < n && h < k)
      allowed_masks_[c * words_per_row_ + h / 64] &= ~(1ULL << (h % 64));
}

double ConstraintChecker::host_free_memory(const Deployment& d,
                                           HostId h) const {
  double used = 0.0;
  for (std::size_t c = 0; c < d.size(); ++c)
    if (d.host_of(static_cast<ComponentId>(c)) == h)
      used += model_.component(static_cast<ComponentId>(c)).memory_size;
  return model_.host(h).memory_capacity - used;
}

bool ConstraintChecker::placement_ok(const Deployment& d, ComponentId c,
                                     HostId h) const {
  if (!host_allowed(c, h)) return false;
  if (options_.check_memory &&
      model_.component(c).memory_size > host_free_memory(d, h))
    return false;
  if (options_.check_cpu && model_.host(h).cpu_capacity > 0.0) {
    double load = model_.component(c).cpu_load;
    for (std::size_t other = 0; other < d.size(); ++other)
      if (d.host_of(static_cast<ComponentId>(other)) == h)
        load += model_.component(static_cast<ComponentId>(other)).cpu_load;
    if (load > model_.host(h).cpu_capacity) return false;
  }
  for (const auto& [a, b] : set_.colocation_pairs()) {
    const ComponentId other = (a == c) ? b : (b == c) ? a : c;
    if (other == c) continue;
    if (d.is_assigned(other) && d.host_of(other) != h) return false;
  }
  for (const auto& [a, b] : set_.anti_colocation_pairs()) {
    const ComponentId other = (a == c) ? b : (b == c) ? a : c;
    if (other == c) continue;
    if (d.is_assigned(other) && d.host_of(other) == h) return false;
  }
  if (options_.check_bandwidth) {
    // Traffic the placement adds per remote host, then per affected link:
    // already-routed traffic (excluding c's own interactions — c is the
    // one being (re)placed) plus the new demand must fit the bandwidth.
    const std::span<const Interaction> interactions = model_.interactions();
    std::vector<double> added(model_.host_count(), 0.0);
    for (const Interaction& ix : interactions) {
      if (ix.a != c && ix.b != c) continue;
      const ComponentId other = (ix.a == c) ? ix.b : ix.a;
      if (!d.is_assigned(other)) continue;
      const HostId oh = d.host_of(other);
      if (oh != h && oh < added.size())
        added[oh] += ix.frequency * ix.avg_event_size;
    }
    for (HostId oh = 0; oh < added.size(); ++oh) {
      if (added[oh] <= 0.0) continue;
      double load = added[oh];
      for (const Interaction& ix : interactions) {
        if (ix.a == c || ix.b == c) continue;
        if (!d.is_assigned(ix.a) || !d.is_assigned(ix.b)) continue;
        const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
        if ((ha == h && hb == oh) || (ha == oh && hb == h))
          load += ix.frequency * ix.avg_event_size;
      }
      if (load > model_.physical_link(h, oh).bandwidth) return false;
    }
  }
  return true;
}

void ConstraintChecker::collect(const Deployment& d,
                                std::vector<Violation>* out,
                                bool stop_at_first, bool* ok) const {
  *ok = true;
  const auto report = [&](Violation::Kind kind, std::string detail) {
    *ok = false;
    if (out) out->push_back({kind, std::move(detail)});
  };
  const std::size_t n = model_.component_count();
  const std::size_t k = model_.host_count();
  if (d.size() != n) {
    report(Violation::Kind::kUnassigned, "deployment size mismatch");
    return;
  }

  for (std::size_t c = 0; c < n; ++c) {
    const auto comp = static_cast<ComponentId>(c);
    const HostId h = d.host_of(comp);
    if (h == kNoHost) {
      report(Violation::Kind::kUnassigned,
             "component " + model_.component(comp).name + " unassigned");
      if (stop_at_first) return;
      continue;
    }
    if (h >= k) {
      report(Violation::Kind::kLocation,
             "component " + model_.component(comp).name + " on invalid host");
      if (stop_at_first) return;
      continue;
    }
    if (!host_allowed(comp, h)) {
      report(Violation::Kind::kLocation,
             "component " + model_.component(comp).name +
                 " not allowed on host " + model_.host(h).name);
      if (stop_at_first) return;
    }
  }

  if (options_.check_memory || options_.check_cpu) {
    std::vector<double> mem(k, 0.0), cpu(k, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      const HostId h = d.host_of(static_cast<ComponentId>(c));
      if (h == kNoHost || h >= k) continue;
      mem[h] += model_.component(static_cast<ComponentId>(c)).memory_size;
      cpu[h] += model_.component(static_cast<ComponentId>(c)).cpu_load;
    }
    for (std::size_t h = 0; h < k; ++h) {
      const Host& host = model_.host(static_cast<HostId>(h));
      if (options_.check_memory && mem[h] > host.memory_capacity) {
        report(Violation::Kind::kMemory,
               "host " + host.name + " memory exceeded");
        if (stop_at_first) return;
      }
      if (options_.check_cpu && host.cpu_capacity > 0.0 &&
          cpu[h] > host.cpu_capacity) {
        report(Violation::Kind::kCpu, "host " + host.name + " CPU exceeded");
        if (stop_at_first) return;
      }
    }
  }

  for (const auto& [a, b] : set_.colocation_pairs()) {
    if (d.is_assigned(a) && d.is_assigned(b) && d.host_of(a) != d.host_of(b)) {
      report(Violation::Kind::kColocationRequired,
             model_.component(a).name + " and " + model_.component(b).name +
                 " must be collocated");
      if (stop_at_first) return;
    }
  }
  for (const auto& [a, b] : set_.anti_colocation_pairs()) {
    if (d.is_assigned(a) && d.is_assigned(b) && d.host_of(a) == d.host_of(b)) {
      report(Violation::Kind::kColocationForbidden,
             model_.component(a).name + " and " + model_.component(b).name +
                 " must not be collocated");
      if (stop_at_first) return;
    }
  }

  if (options_.check_bandwidth) {
    // Aggregate interaction traffic per physical link and compare with its
    // bandwidth (KB/s of events vs KB/s capacity).
    std::vector<double> traffic(k * k, 0.0);
    for (const Interaction& ix : model_.interactions()) {
      const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
      if (ha == kNoHost || hb == kNoHost || ha == hb) continue;
      const auto [lo, hi] = std::minmax(ha, hb);
      traffic[static_cast<std::size_t>(lo) * k + hi] +=
          ix.frequency * ix.avg_event_size;
    }
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        const double load = traffic[a * k + b];
        if (load <= 0.0) continue;
        const PhysicalLink& link = model_.physical_link(
            static_cast<HostId>(a), static_cast<HostId>(b));
        if (load > link.bandwidth) {
          report(Violation::Kind::kBandwidth,
                 "link " + model_.host(static_cast<HostId>(a)).name + "--" +
                     model_.host(static_cast<HostId>(b)).name +
                     " bandwidth exceeded");
          if (stop_at_first) return;
        }
      }
    }
  }
}

bool ConstraintChecker::feasible(const Deployment& d) const {
  bool ok = false;
  collect(d, nullptr, /*stop_at_first=*/true, &ok);
  return ok;
}

std::vector<Violation> ConstraintChecker::violations(
    const Deployment& d) const {
  std::vector<Violation> out;
  bool ok = false;
  collect(d, &out, /*stop_at_first=*/false, &ok);
  return out;
}

}  // namespace dif::model
