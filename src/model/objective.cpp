#include "model/objective.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dif::model {

double Objective::score(const DeploymentModel& model,
                        const Deployment& d) const {
  // Default for maximize objectives whose raw value already lives in [0, 1]
  // (availability, security, weighted). Minimize objectives override.
  return std::clamp(evaluate(model, d), 0.0, 1.0);
}

double Objective::worst() const {
  return direction() == Direction::kMaximize
             ? -std::numeric_limits<double>::infinity()
             : std::numeric_limits<double>::infinity();
}

double AvailabilityObjective::evaluate(const DeploymentModel& model,
                                       const Deployment& d) const {
  double weighted = 0.0;
  double total = 0.0;
  for (const Interaction& ix : model.interactions()) {
    total += ix.frequency;
    const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
    if (ha == kNoHost || hb == kNoHost) continue;  // unassigned: unavailable
    weighted += ix.frequency * model.physical_link(ha, hb).reliability;
  }
  return total > 0.0 ? weighted / total : 1.0;
}

double LatencyObjective::evaluate(const DeploymentModel& model,
                                  const Deployment& d) const {
  double latency = 0.0;
  for (const Interaction& ix : model.interactions()) {
    const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
    if (ha == kNoHost || hb == kNoHost) {
      latency += ix.frequency * penalty_ms_;
      continue;
    }
    if (ha == hb) continue;
    const PhysicalLink& link = model.physical_link(ha, hb);
    if (link.bandwidth <= 0.0) {
      latency += ix.frequency * penalty_ms_;
    } else {
      latency += ix.frequency *
                 (link.delay_ms + 1000.0 * ix.avg_event_size / link.bandwidth);
    }
  }
  return latency;
}

double LatencyObjective::score(const DeploymentModel& model,
                               const Deployment& d) const {
  return 1.0 / (1.0 + evaluate(model, d) / scale_);
}

double CommunicationCostObjective::evaluate(const DeploymentModel& model,
                                            const Deployment& d) const {
  double cost = 0.0;
  for (const Interaction& ix : model.interactions()) {
    const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
    if (ha == kNoHost || hb == kNoHost || ha != hb)
      cost += ix.frequency * ix.avg_event_size;
  }
  return cost;
}

double CommunicationCostObjective::score(const DeploymentModel& model,
                                         const Deployment& d) const {
  return 1.0 / (1.0 + evaluate(model, d) / scale_);
}

double SecurityObjective::evaluate(const DeploymentModel& model,
                                   const Deployment& d) const {
  double satisfied = 0.0;
  double total = 0.0;
  for (const Interaction& ix : model.interactions()) {
    const double required =
        model.logical_link(ix.a, ix.b).properties.get_or("required_security",
                                                         0.0);
    total += ix.frequency;
    const HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
    if (ha == kNoHost || hb == kNoHost) continue;
    const double provided =
        ha == hb ? std::numeric_limits<double>::infinity()
                 : model.physical_link(ha, hb).properties.get_or("security",
                                                                 0.0);
    if (provided >= required) satisfied += ix.frequency;
  }
  return total > 0.0 ? satisfied / total : 1.0;
}

WeightedObjective::WeightedObjective(std::vector<Term> terms)
    : terms_(std::move(terms)) {
  if (terms_.empty())
    throw std::invalid_argument("WeightedObjective: no terms");
  total_weight_ = 0.0;
  name_ = "weighted(";
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    const Term& term = terms_[i];
    if (!term.objective)
      throw std::invalid_argument("WeightedObjective: null objective");
    if (term.weight < 0.0)
      throw std::invalid_argument("WeightedObjective: negative weight");
    total_weight_ += term.weight;
    if (i) name_ += '+';
    name_ += term.objective->name();
  }
  name_ += ')';
  if (total_weight_ <= 0.0)
    throw std::invalid_argument("WeightedObjective: zero total weight");
}

double WeightedObjective::evaluate(const DeploymentModel& model,
                                   const Deployment& d) const {
  double sum = 0.0;
  for (const Term& term : terms_)
    sum += term.weight * term.objective->score(model, d);
  return sum / total_weight_;
}

}  // namespace dif::model
