// A deployment: the assignment of software components to hardware hosts.
#pragma once

#include <string>
#include <vector>

#include "model/ids.h"

namespace dif::model {

class DeploymentModel;

/// Maps every component (by index) to a host, or kNoHost when unassigned.
class Deployment {
 public:
  Deployment() = default;
  /// Creates an all-unassigned deployment for `component_count` components.
  explicit Deployment(std::size_t component_count);
  /// Wraps an explicit assignment vector.
  explicit Deployment(std::vector<HostId> assignment);

  [[nodiscard]] std::size_t size() const noexcept {
    return assignment_.size();
  }

  [[nodiscard]] HostId host_of(ComponentId c) const {
    return assignment_.at(c);
  }
  void assign(ComponentId c, HostId h) { assignment_.at(c) = h; }
  void unassign(ComponentId c) { assignment_.at(c) = kNoHost; }

  [[nodiscard]] bool is_assigned(ComponentId c) const {
    return assignment_.at(c) != kNoHost;
  }
  /// True when every component has a host.
  [[nodiscard]] bool complete() const noexcept;

  [[nodiscard]] const std::vector<HostId>& assignment() const noexcept {
    return assignment_;
  }

  /// Components currently deployed on `h`.
  [[nodiscard]] std::vector<ComponentId> components_on(HostId h) const;

  /// Number of components whose host differs between the two deployments
  /// (the migration count a redeployment from `from` to `to` would need).
  [[nodiscard]] static std::size_t diff_count(const Deployment& from,
                                              const Deployment& to);

  /// The components that must migrate to turn `from` into `to`.
  struct Migration {
    ComponentId component;
    HostId from;
    HostId to;
  };
  [[nodiscard]] static std::vector<Migration> diff(const Deployment& from,
                                                   const Deployment& to);

  /// Human-readable "comp -> host" listing using model names.
  [[nodiscard]] std::string describe(const DeploymentModel& model) const;

  friend bool operator==(const Deployment&, const Deployment&) = default;

 private:
  std::vector<HostId> assignment_;
};

}  // namespace dif::model
