#include "model/deployment_model.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/assert.h"

namespace dif::model {

namespace {

const PhysicalLink& local_link() {
  static const PhysicalLink link{
      .reliability = 1.0,
      .bandwidth = std::numeric_limits<double>::infinity(),
      .delay_ms = 0.0,
      .properties = {}};
  return link;
}

const PhysicalLink& disconnected_link() {
  static const PhysicalLink link{};
  return link;
}

const LogicalLink& no_interaction() {
  static const LogicalLink link{};
  return link;
}

}  // namespace

HostId DeploymentModel::add_host(Host host) {
  // Names are identifiers (xADL documents and the middleware's event
  // routing key on them); duplicates would silently corrupt both.
  for (const Host& existing : hosts_)
    if (existing.name == host.name)
      throw std::invalid_argument("DeploymentModel: duplicate host name '" +
                                  host.name + "'");
  const auto id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::move(host));
  if (hosts_.size() > phys_dim_) {
    // Geometric regrowth keeps one-host-at-a-time construction amortized
    // O(k^2) over the whole build instead of O(k^3).
    const std::size_t new_dim = std::max<std::size_t>(hosts_.size(),
                                                      phys_dim_ * 2);
    std::vector<PhysicalLink> grown(new_dim * new_dim);
    for (std::size_t i = 0; i < phys_dim_; ++i)
      for (std::size_t j = i + 1; j < phys_dim_; ++j)
        grown[i * new_dim + j] = std::move(physical_[i * phys_dim_ + j]);
    physical_ = std::move(grown);
    phys_dim_ = new_dim;
  }
  DIF_ASSERT(physical_.size() == phys_dim_ * phys_dim_ &&
                 phys_dim_ >= hosts_.size(),
             "link matrix must cover the host count");
  notify({.event = ModelEvent::kTopologyChanged, .host_a = id});
  return id;
}

ComponentId DeploymentModel::add_component(SoftwareComponent component) {
  for (const SoftwareComponent& existing : components_)
    if (existing.name == component.name)
      throw std::invalid_argument(
          "DeploymentModel: duplicate component name '" + component.name +
          "'");
  const auto id = static_cast<ComponentId>(components_.size());
  components_.push_back(std::move(component));
  interactions_dirty_ = true;
  notify({.event = ModelEvent::kTopologyChanged, .component_a = id});
  return id;
}

HostId DeploymentModel::host_by_name(std::string_view name) const {
  const auto it = std::find_if(hosts_.begin(), hosts_.end(),
                               [&](const Host& h) { return h.name == name; });
  if (it == hosts_.end())
    throw std::out_of_range("DeploymentModel: no host named '" +
                            std::string(name) + "'");
  return static_cast<HostId>(it - hosts_.begin());
}

ComponentId DeploymentModel::component_by_name(std::string_view name) const {
  const auto it = std::find_if(
      components_.begin(), components_.end(),
      [&](const SoftwareComponent& c) { return c.name == name; });
  if (it == components_.end())
    throw std::out_of_range("DeploymentModel: no component named '" +
                            std::string(name) + "'");
  return static_cast<ComponentId>(it - components_.begin());
}

void DeploymentModel::set_host_region(HostId id, std::size_t region) {
  check_host(id);
  hosts_[id].properties.set(kRegionProperty, static_cast<double>(region));
  notify({.event = ModelEvent::kEntityParamChanged, .host_a = id});
}

std::size_t DeploymentModel::host_region(HostId id) const {
  check_host(id);
  return static_cast<std::size_t>(
      hosts_[id].properties.get_or(kRegionProperty, 0.0));
}

std::size_t DeploymentModel::region_count() const {
  std::size_t highest = 0;
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    highest = std::max(highest, host_region(static_cast<HostId>(h)));
  return hosts_.empty() ? 1 : highest + 1;
}

std::vector<HostId> DeploymentModel::hosts_in_region(
    std::size_t region) const {
  std::vector<HostId> members;
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    if (host_region(static_cast<HostId>(h)) == region)
      members.push_back(static_cast<HostId>(h));
  return members;
}

void DeploymentModel::check_host(HostId id) const {
  if (id >= hosts_.size())
    throw std::out_of_range("DeploymentModel: bad host id");
}

void DeploymentModel::check_component(ComponentId id) const {
  if (id >= components_.size())
    throw std::out_of_range("DeploymentModel: bad component id");
}

std::size_t DeploymentModel::phys_index(HostId a, HostId b) const {
  check_host(a);
  check_host(b);
  const auto [lo, hi] = std::minmax(a, b);
  const std::size_t index = static_cast<std::size_t>(lo) * phys_dim_ + hi;
  DIF_ASSERT(index < physical_.size(),
             "canonical host pair must index into the physical matrix");
  return index;
}

std::uint64_t DeploymentModel::logi_key(ComponentId a, ComponentId b) {
  const auto [lo, hi] = std::minmax(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void DeploymentModel::set_physical_link(HostId a, HostId b,
                                        PhysicalLink link) {
  if (a == b)
    throw std::invalid_argument("DeploymentModel: self physical link");
  physical_[phys_index(a, b)] = std::move(link);
  notify({.event = ModelEvent::kPhysicalLinkChanged, .host_a = a,
          .host_b = b});
}

void DeploymentModel::clear_physical_link(HostId a, HostId b) {
  if (a == b) return;
  physical_[phys_index(a, b)] = PhysicalLink{};
  notify({.event = ModelEvent::kPhysicalLinkChanged, .host_a = a,
          .host_b = b});
}

const PhysicalLink& DeploymentModel::physical_link(HostId a, HostId b) const {
  check_host(a);
  check_host(b);
  if (a == b) return local_link();
  const PhysicalLink& link = physical_[phys_index(a, b)];
  if (link.bandwidth <= 0.0 && link.reliability <= 0.0)
    return disconnected_link();
  return link;
}

bool DeploymentModel::connected(HostId a, HostId b) const {
  if (a == b) return false;
  return physical_[phys_index(a, b)].bandwidth > 0.0;
}

PhysicalLink& DeploymentModel::phys_ref(HostId a, HostId b) {
  if (a == b)
    throw std::invalid_argument("DeploymentModel: self physical link");
  return physical_[phys_index(a, b)];
}

void DeploymentModel::set_link_reliability(HostId a, HostId b,
                                           double reliability) {
  phys_ref(a, b).reliability = reliability;
  notify({.event = ModelEvent::kPhysicalLinkChanged, .host_a = a,
          .host_b = b});
}

void DeploymentModel::set_link_bandwidth(HostId a, HostId b,
                                         double bandwidth) {
  phys_ref(a, b).bandwidth = bandwidth;
  notify({.event = ModelEvent::kPhysicalLinkChanged, .host_a = a,
          .host_b = b});
}

void DeploymentModel::set_link_delay(HostId a, HostId b, double delay_ms) {
  phys_ref(a, b).delay_ms = delay_ms;
  notify({.event = ModelEvent::kPhysicalLinkChanged, .host_a = a,
          .host_b = b});
}

void DeploymentModel::set_logical_link(ComponentId a, ComponentId b,
                                       LogicalLink link) {
  if (a == b)
    throw std::invalid_argument("DeploymentModel: self logical link");
  check_component(a);
  check_component(b);
  logical_[logi_key(a, b)] = std::move(link);
  interactions_dirty_ = true;
  notify({.event = ModelEvent::kLogicalLinkChanged, .component_a = a,
          .component_b = b});
}

void DeploymentModel::clear_logical_link(ComponentId a, ComponentId b) {
  if (a == b) return;
  check_component(a);
  check_component(b);
  logical_.erase(logi_key(a, b));
  interactions_dirty_ = true;
  notify({.event = ModelEvent::kLogicalLinkChanged, .component_a = a,
          .component_b = b});
}

const LogicalLink& DeploymentModel::logical_link(ComponentId a,
                                                 ComponentId b) const {
  check_component(a);
  check_component(b);
  if (a == b) return no_interaction();
  const auto it = logical_.find(logi_key(a, b));
  return it == logical_.end() ? no_interaction() : it->second;
}

std::span<const Interaction> DeploymentModel::interactions() const {
  if (interactions_dirty_) {
    interactions_cache_.clear();
    interactions_cache_.reserve(logical_.size());
    for (const auto& [key, link] : logical_) {
      if (link.frequency > 0.0) {
        interactions_cache_.push_back(
            {static_cast<ComponentId>(key >> 32),
             static_cast<ComponentId>(key & 0xffffffffu), link.frequency,
             link.avg_event_size});
      }
    }
    // Canonical (a, b) order: the sparse map iterates in hash order, but
    // every consumer (incremental adjacency, xADL serialization, DecAp's
    // auction indexing) relies on a deterministic interaction sequence.
    std::sort(interactions_cache_.begin(), interactions_cache_.end(),
              [](const Interaction& x, const Interaction& y) {
                return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    interactions_dirty_ = false;
  }
  DIF_ASSERT(interactions_cache_.size() <= logical_.size(),
             "interaction cache cannot exceed the stored link count");
  return interactions_cache_;
}

double DeploymentModel::total_interaction_frequency() const {
  double total = 0.0;
  for (const Interaction& ix : interactions()) total += ix.frequency;
  return total;
}

std::size_t DeploymentModel::add_listener(Listener listener) {
  const std::size_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void DeploymentModel::remove_listener(std::size_t id) {
  std::erase_if(listeners_, [id](const auto& p) { return p.first == id; });
}

std::size_t DeploymentModel::add_detail_listener(DetailListener listener) {
  const std::size_t id = next_listener_id_++;
  detail_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void DeploymentModel::remove_detail_listener(std::size_t id) {
  std::erase_if(detail_listeners_,
                [id](const auto& p) { return p.first == id; });
}

void DeploymentModel::notify_entity_changed() {
  notify({.event = ModelEvent::kEntityParamChanged});
}

void DeploymentModel::notify(const ModelChange& change) {
  for (const auto& [id, listener] : listeners_) listener(change.event);
  for (const auto& [id, listener] : detail_listeners_) listener(change);
}

void DeploymentModel::validate() const {
  for (const Host& h : hosts_) {
    if (h.memory_capacity < 0.0 || h.cpu_capacity < 0.0)
      throw std::invalid_argument("DeploymentModel: negative host capacity (" +
                                  h.name + ")");
  }
  for (const SoftwareComponent& c : components_) {
    if (c.memory_size < 0.0 || c.cpu_load < 0.0)
      throw std::invalid_argument(
          "DeploymentModel: negative component requirement (" + c.name + ")");
  }
  const std::size_t k = hosts_.size();
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const PhysicalLink& link = physical_[a * phys_dim_ + b];
      if (link.reliability < 0.0 || link.reliability > 1.0)
        throw std::invalid_argument(
            "DeploymentModel: link reliability outside [0,1]");
      if (link.bandwidth < 0.0 || link.delay_ms < 0.0)
        throw std::invalid_argument(
            "DeploymentModel: negative link bandwidth/delay");
    }
  }
  for (const auto& [key, link] : logical_) {
    if (link.frequency < 0.0 || link.avg_event_size < 0.0)
      throw std::invalid_argument(
          "DeploymentModel: negative logical link parameter");
  }
}

}  // namespace dif::model
