// Extensible named parameters.
//
// The paper's Model "could be associated with an arbitrary set of parameters"
// (host battery power, link security, ...). Hosts, components, and links each
// carry a PropertyMap so new concerns plug in without changing any type, and
// objectives/algorithms can be written against named properties.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/json.h"

namespace dif::model {

/// An ordered string -> double dictionary of extensible parameters.
/// Ordered so that serialization and iteration are deterministic.
class PropertyMap {
 public:
  /// Sets (or overwrites) a property value.
  void set(std::string_view name, double value);

  /// Returns the value, or nullopt when the property is absent.
  [[nodiscard]] std::optional<double> get(std::string_view name) const;

  /// Returns the value, or `dflt` when absent.
  [[nodiscard]] double get_or(std::string_view name, double dflt) const;

  /// Returns the value; throws std::out_of_range when absent.
  [[nodiscard]] double at(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  bool erase(std::string_view name);
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return values_.begin(); }
  [[nodiscard]] auto end() const noexcept { return values_.end(); }

  /// JSON round-trip (an object of name -> number).
  [[nodiscard]] util::json::Value to_json() const;
  [[nodiscard]] static PropertyMap from_json(const util::json::Value& v);

  friend bool operator==(const PropertyMap&, const PropertyMap&) = default;

 private:
  std::map<std::string, double, std::less<>> values_;
};

}  // namespace dif::model
