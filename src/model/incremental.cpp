#include "model/incremental.h"

#include <algorithm>

namespace dif::model {

std::optional<PairwiseDecomposition> PairwiseDecomposition::try_create(
    const Objective& objective, const DeploymentModel& m) {
  if (dynamic_cast<const AvailabilityObjective*>(&objective))
    return PairwiseDecomposition(Kind::kAvailability, m, 0.0, 1.0);
  if (const auto* latency = dynamic_cast<const LatencyObjective*>(&objective))
    return PairwiseDecomposition(Kind::kLatency, m,
                                 latency->disconnected_penalty_ms(),
                                 latency->reference_scale());
  if (const auto* comm =
          dynamic_cast<const CommunicationCostObjective*>(&objective))
    return PairwiseDecomposition(Kind::kCommCost, m, 0.0,
                                 comm->reference_scale());
  return std::nullopt;
}

PairwiseDecomposition::PairwiseDecomposition(Kind kind,
                                             const DeploymentModel& m,
                                             double penalty_ms, double scale)
    : kind_(kind),
      direction_(kind == Kind::kAvailability ? Direction::kMaximize
                                             : Direction::kMinimize),
      model_(&m),
      penalty_ms_(penalty_ms),
      scale_(scale),
      total_frequency_(m.total_interaction_frequency()) {}

double PairwiseDecomposition::pair_term(const Interaction& ix, HostId ha,
                                        HostId hb) const {
  const bool unassigned = ha == kNoHost || hb == kNoHost;
  switch (kind_) {
    case Kind::kAvailability:
      if (unassigned) return 0.0;  // unassigned: unavailable
      return ix.frequency * model_->physical_link(ha, hb).reliability;
    case Kind::kLatency: {
      if (unassigned) return ix.frequency * penalty_ms_;
      if (ha == hb) return 0.0;
      const PhysicalLink& link = model_->physical_link(ha, hb);
      if (link.bandwidth <= 0.0) return ix.frequency * penalty_ms_;
      return ix.frequency *
             (link.delay_ms + 1000.0 * ix.avg_event_size / link.bandwidth);
    }
    case Kind::kCommCost:
      return (unassigned || ha != hb) ? ix.frequency * ix.avg_event_size : 0.0;
  }
  return 0.0;
}

double PairwiseDecomposition::optimistic_term(const Interaction& ix) const {
  switch (kind_) {
    case Kind::kAvailability:
      // Best case: the interaction becomes local (reliability 1).
      return ix.frequency;
    case Kind::kLatency:
    case Kind::kCommCost:
      return 0.0;
  }
  return 0.0;
}

double PairwiseDecomposition::finalize(double term_sum) const {
  switch (kind_) {
    case Kind::kAvailability:
      return total_frequency_ > 0.0 ? term_sum / total_frequency_ : 1.0;
    case Kind::kLatency:
    case Kind::kCommCost:
      return term_sum;
  }
  return term_sum;
}

double PairwiseDecomposition::score_of(double raw_value) const {
  switch (kind_) {
    case Kind::kAvailability:
      return std::clamp(raw_value, 0.0, 1.0);
    case Kind::kLatency:
    case Kind::kCommCost:
      return 1.0 / (1.0 + raw_value / scale_);
  }
  return raw_value;
}

std::optional<IncrementalEvaluator> IncrementalEvaluator::try_create(
    const Objective& objective, const DeploymentModel& m) {
  auto decomposition = PairwiseDecomposition::try_create(objective, m);
  if (!decomposition) return std::nullopt;
  return IncrementalEvaluator(*decomposition, m);
}

IncrementalEvaluator::IncrementalEvaluator(PairwiseDecomposition decomposition,
                                           const DeploymentModel& m)
    : decomposition_(decomposition),
      model_(&m),
      links_(m.physical_link_table()),
      assignment_(m.component_count(), kNoHost) {
  const std::span<const Interaction> interactions = m.interactions();
  const auto ix_count = static_cast<std::uint32_t>(interactions.size());
  ix_a_.resize(ix_count);
  ix_b_.resize(ix_count);
  ix_freq_.resize(ix_count);
  ix_size_.resize(ix_count);
  term_.assign(ix_count, 0.0);
  for (std::uint32_t index = 0; index < ix_count; ++index) {
    ix_a_[index] = interactions[index].a;
    ix_b_[index] = interactions[index].b;
    ix_freq_[index] = interactions[index].frequency;
    ix_size_[index] = interactions[index].avg_event_size;
  }

  // CSR adjacency build: counting pass, prefix sums, fill pass. Rows end up
  // sorted by interaction index (the order the old per-component vectors
  // had), keeping apply()'s floating-point summation order unchanged.
  const std::size_t n = m.component_count();
  adj_offsets_.assign(n + 1, 0);
  for (std::uint32_t index = 0; index < ix_count; ++index) {
    ++adj_offsets_[ix_a_[index] + 1];
    ++adj_offsets_[ix_b_[index] + 1];
  }
  for (std::size_t c = 0; c < n; ++c) adj_offsets_[c + 1] += adj_offsets_[c];
  adj_ix_.resize(adj_offsets_[n]);
  adj_other_.resize(adj_offsets_[n]);
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  for (std::uint32_t index = 0; index < ix_count; ++index) {
    const ComponentId a = ix_a_[index], b = ix_b_[index];
    adj_ix_[cursor[a]] = index;
    adj_other_[cursor[a]++] = b;
    adj_ix_[cursor[b]] = index;
    adj_other_[cursor[b]++] = a;
  }
}

template <PairwiseDecomposition::Kind kKind>
double IncrementalEvaluator::term_of(std::uint32_t index, HostId ha,
                                     HostId hb) const {
  const bool unassigned = ha == kNoHost || hb == kNoHost;
  if constexpr (kKind == PairwiseDecomposition::Kind::kAvailability) {
    if (unassigned) return 0.0;
    if (ha == hb) return ix_freq_[index];  // local: reliability 1
    return ix_freq_[index] * links_.at(ha, hb).reliability;
  } else if constexpr (kKind == PairwiseDecomposition::Kind::kLatency) {
    if (unassigned) return ix_freq_[index] * decomposition_.penalty_ms_;
    if (ha == hb) return 0.0;
    const PhysicalLink& link = links_.at(ha, hb);
    if (link.bandwidth <= 0.0)
      return ix_freq_[index] * decomposition_.penalty_ms_;
    return ix_freq_[index] *
           (link.delay_ms + 1000.0 * ix_size_[index] / link.bandwidth);
  } else {
    return (unassigned || ha != hb) ? ix_freq_[index] * ix_size_[index] : 0.0;
  }
}

template <PairwiseDecomposition::Kind kKind>
void IncrementalEvaluator::reset_terms() {
  sum_ = 0.0;
  for (std::uint32_t index = 0; index < term_.size(); ++index) {
    term_[index] =
        term_of<kKind>(index, assignment_[ix_a_[index]],
                       assignment_[ix_b_[index]]);
    sum_ += term_[index];
  }
}

template <PairwiseDecomposition::Kind kKind>
void IncrementalEvaluator::apply_terms(ComponentId c, HostId h) {
  const std::uint32_t begin = adj_offsets_[c];
  const std::uint32_t end = adj_offsets_[c + 1];
  for (std::uint32_t j = begin; j < end; ++j) {
    const std::uint32_t index = adj_ix_[j];
    const double updated = term_of<kKind>(index, h, assignment_[adj_other_[j]]);
    sum_ += updated - term_[index];
    term_[index] = updated;
  }
}

void IncrementalEvaluator::reset(const Deployment& d) {
  for (ComponentId c = 0; c < assignment_.size(); ++c)
    assignment_[c] = c < d.size() ? d.host_of(c) : kNoHost;
  // Refresh the link table: reset() is the documented re-sync point after
  // model changes (add_host invalidates the previous view).
  links_ = model_->physical_link_table();
  switch (decomposition_.kind_) {
    case PairwiseDecomposition::Kind::kAvailability:
      reset_terms<PairwiseDecomposition::Kind::kAvailability>();
      break;
    case PairwiseDecomposition::Kind::kLatency:
      reset_terms<PairwiseDecomposition::Kind::kLatency>();
      break;
    case PairwiseDecomposition::Kind::kCommCost:
      reset_terms<PairwiseDecomposition::Kind::kCommCost>();
      break;
  }
}

void IncrementalEvaluator::apply(ComponentId c, HostId h) {
  if (assignment_.at(c) == h) return;
  assignment_[c] = h;
  ++moves_;
  switch (decomposition_.kind_) {
    case PairwiseDecomposition::Kind::kAvailability:
      apply_terms<PairwiseDecomposition::Kind::kAvailability>(c, h);
      break;
    case PairwiseDecomposition::Kind::kLatency:
      apply_terms<PairwiseDecomposition::Kind::kLatency>(c, h);
      break;
    case PairwiseDecomposition::Kind::kCommCost:
      apply_terms<PairwiseDecomposition::Kind::kCommCost>(c, h);
      break;
  }
}

}  // namespace dif::model
