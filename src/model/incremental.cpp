#include "model/incremental.h"

#include <algorithm>

namespace dif::model {

std::optional<PairwiseDecomposition> PairwiseDecomposition::try_create(
    const Objective& objective, const DeploymentModel& m) {
  if (dynamic_cast<const AvailabilityObjective*>(&objective))
    return PairwiseDecomposition(Kind::kAvailability, m, 0.0, 1.0);
  if (const auto* latency = dynamic_cast<const LatencyObjective*>(&objective))
    return PairwiseDecomposition(Kind::kLatency, m,
                                 latency->disconnected_penalty_ms(),
                                 latency->reference_scale());
  if (const auto* comm =
          dynamic_cast<const CommunicationCostObjective*>(&objective))
    return PairwiseDecomposition(Kind::kCommCost, m, 0.0,
                                 comm->reference_scale());
  return std::nullopt;
}

PairwiseDecomposition::PairwiseDecomposition(Kind kind,
                                             const DeploymentModel& m,
                                             double penalty_ms, double scale)
    : kind_(kind),
      direction_(kind == Kind::kAvailability ? Direction::kMaximize
                                             : Direction::kMinimize),
      model_(&m),
      penalty_ms_(penalty_ms),
      scale_(scale),
      total_frequency_(m.total_interaction_frequency()) {}

double PairwiseDecomposition::pair_term(const Interaction& ix, HostId ha,
                                        HostId hb) const {
  const bool unassigned = ha == kNoHost || hb == kNoHost;
  switch (kind_) {
    case Kind::kAvailability:
      if (unassigned) return 0.0;  // unassigned: unavailable
      return ix.frequency * model_->physical_link(ha, hb).reliability;
    case Kind::kLatency: {
      if (unassigned) return ix.frequency * penalty_ms_;
      if (ha == hb) return 0.0;
      const PhysicalLink& link = model_->physical_link(ha, hb);
      if (link.bandwidth <= 0.0) return ix.frequency * penalty_ms_;
      return ix.frequency *
             (link.delay_ms + 1000.0 * ix.avg_event_size / link.bandwidth);
    }
    case Kind::kCommCost:
      return (unassigned || ha != hb) ? ix.frequency * ix.avg_event_size : 0.0;
  }
  return 0.0;
}

double PairwiseDecomposition::optimistic_term(const Interaction& ix) const {
  switch (kind_) {
    case Kind::kAvailability:
      // Best case: the interaction becomes local (reliability 1).
      return ix.frequency;
    case Kind::kLatency:
    case Kind::kCommCost:
      return 0.0;
  }
  return 0.0;
}

double PairwiseDecomposition::finalize(double term_sum) const {
  switch (kind_) {
    case Kind::kAvailability:
      return total_frequency_ > 0.0 ? term_sum / total_frequency_ : 1.0;
    case Kind::kLatency:
    case Kind::kCommCost:
      return term_sum;
  }
  return term_sum;
}

double PairwiseDecomposition::score_of(double raw_value) const {
  switch (kind_) {
    case Kind::kAvailability:
      return std::clamp(raw_value, 0.0, 1.0);
    case Kind::kLatency:
    case Kind::kCommCost:
      return 1.0 / (1.0 + raw_value / scale_);
  }
  return raw_value;
}

std::optional<IncrementalEvaluator> IncrementalEvaluator::try_create(
    const Objective& objective, const DeploymentModel& m) {
  auto decomposition = PairwiseDecomposition::try_create(objective, m);
  if (!decomposition) return std::nullopt;
  return IncrementalEvaluator(*decomposition, m);
}

IncrementalEvaluator::IncrementalEvaluator(PairwiseDecomposition decomposition,
                                           const DeploymentModel& m)
    : decomposition_(decomposition),
      model_(&m),
      interactions_(m.interactions()),
      adjacency_(m.component_count()),
      assignment_(m.component_count(), kNoHost),
      term_(interactions_.size(), 0.0) {
  for (std::uint32_t index = 0; index < interactions_.size(); ++index) {
    adjacency_[interactions_[index].a].push_back(index);
    adjacency_[interactions_[index].b].push_back(index);
  }
}

void IncrementalEvaluator::reset(const Deployment& d) {
  for (ComponentId c = 0; c < assignment_.size(); ++c)
    assignment_[c] = c < d.size() ? d.host_of(c) : kNoHost;
  sum_ = 0.0;
  for (std::size_t index = 0; index < interactions_.size(); ++index) {
    const Interaction& ix = interactions_[index];
    term_[index] =
        decomposition_.pair_term(ix, assignment_[ix.a], assignment_[ix.b]);
    sum_ += term_[index];
  }
}

void IncrementalEvaluator::apply(ComponentId c, HostId h) {
  if (assignment_.at(c) == h) return;
  assignment_[c] = h;
  ++moves_;
  for (const std::uint32_t index : adjacency_[c]) {
    const Interaction& ix = interactions_[index];
    const double updated =
        decomposition_.pair_term(ix, assignment_[ix.a], assignment_[ix.b]);
    sum_ += updated - term_[index];
    term_[index] = updated;
  }
}

}  // namespace dif::model
