// Deployment constraints: the framework's User Input component supplies
// these at design time (Section 3.1): location constraints (which hosts a
// component may be deployed on) and collocation constraints (components that
// must / must not share a host); the checker additionally enforces resource
// constraints (host memory/CPU, link bandwidth) from the model.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "model/deployment.h"
#include "model/ids.h"

namespace dif::model {

class DeploymentModel;

/// Architect-specified constraints, independent of any model instance.
class ConstraintSet {
 public:
  /// Location: restricts `c` to exactly the given hosts (replaces any prior
  /// allow-list for `c`).
  void allow_only(ComponentId c, std::vector<HostId> hosts);

  /// Location: forbids deploying `c` on `h`.
  void forbid_host(ComponentId c, HostId h);

  /// Pins `c` to `h` (an allow-list of one).
  void pin(ComponentId c, HostId h);

  /// Collocation: `a` and `b` must share a host.
  void require_colocation(ComponentId a, ComponentId b);

  /// Collocation: `a` and `b` must be on different hosts.
  void forbid_colocation(ComponentId a, ComponentId b);

  /// True iff location rules permit `c` on `h`.
  [[nodiscard]] bool host_allowed(ComponentId c, HostId h) const;

  [[nodiscard]] const std::vector<std::pair<ComponentId, ComponentId>>&
  colocation_pairs() const noexcept {
    return must_pairs_;
  }
  [[nodiscard]] const std::vector<std::pair<ComponentId, ComponentId>>&
  anti_colocation_pairs() const noexcept {
    return anti_pairs_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return allowed_.empty() && forbidden_.empty() && must_pairs_.empty() &&
           anti_pairs_.empty();
  }

  /// Raw rule accessors (serialization, views).
  [[nodiscard]] const std::vector<std::pair<ComponentId, std::vector<HostId>>>&
  allow_lists() const noexcept {
    return allowed_;
  }
  [[nodiscard]] const std::vector<std::pair<ComponentId, HostId>>&
  forbidden_hosts() const noexcept {
    return forbidden_;
  }

 private:
  friend class ConstraintChecker;
  /// component -> explicit allow-list (absent = all hosts allowed)
  std::vector<std::pair<ComponentId, std::vector<HostId>>> allowed_;
  /// (component, host) forbidden pairs
  std::vector<std::pair<ComponentId, HostId>> forbidden_;
  std::vector<std::pair<ComponentId, ComponentId>> must_pairs_;
  std::vector<std::pair<ComponentId, ComponentId>> anti_pairs_;
};

/// A single constraint violation, for diagnostics and DeSi display.
struct Violation {
  enum class Kind {
    kUnassigned,
    kLocation,
    kMemory,
    kCpu,
    kColocationRequired,
    kColocationForbidden,
    kBandwidth,
  };
  Kind kind;
  std::string detail;
};

[[nodiscard]] std::string_view to_string(Violation::Kind kind) noexcept;

/// Compiled, model-bound constraint evaluator used by all algorithms.
///
/// Compilation flattens the ConstraintSet into per-component host bitmasks so
/// the hot path (`host_allowed`) is O(1). The checker also enforces resource
/// constraints derived from the model: component memory vs host memory, CPU
/// load vs CPU capacity (only for hosts that model CPU), and, optionally,
/// interaction traffic vs physical link bandwidth.
struct CheckerOptions {
  bool check_memory = true;
  bool check_cpu = true;
  /// Off by default: the paper's Section 5 scenario constrains memory and
  /// location/collocation only. When enabled, summed logical-link demand
  /// (frequency * event size) per physical link is checked against the
  /// link's bandwidth, both in full checks and in placement_ok.
  bool check_bandwidth = false;
};

class ConstraintChecker {
 public:
  using Options = CheckerOptions;

  /// The model and set must outlive the checker.
  ConstraintChecker(const DeploymentModel& model, const ConstraintSet& set,
                    Options options = Options());

  /// O(1): do location rules allow component `c` on host `h`?
  [[nodiscard]] bool host_allowed(ComponentId c, HostId h) const {
    return (allowed_masks_[c * words_per_row_ + h / 64] >> (h % 64)) & 1u;
  }

  /// Full feasibility test for a complete deployment.
  [[nodiscard]] bool feasible(const Deployment& d) const;

  /// All violations (possibly empty) with human-readable details.
  [[nodiscard]] std::vector<Violation> violations(const Deployment& d) const;

  /// Memory left on `h` under deployment `d` (may be negative if violated).
  [[nodiscard]] double host_free_memory(const Deployment& d, HostId h) const;

  /// Incremental check used by constructive algorithms: may `c` be placed on
  /// `h` given the (possibly partial) deployment `d`? Checks location,
  /// memory/CPU headroom, collocation against already-placed components,
  /// and (with check_bandwidth) link headroom for c's placed interactions.
  [[nodiscard]] bool placement_ok(const Deployment& d, ComponentId c,
                                  HostId h) const;

  [[nodiscard]] const DeploymentModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] const ConstraintSet& constraint_set() const noexcept {
    return set_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  void collect(const Deployment& d, std::vector<Violation>* out,
               bool stop_at_first, bool* ok) const;

  const DeploymentModel& model_;
  const ConstraintSet& set_;
  Options options_;
  std::size_t words_per_row_;
  /// component-major bitmask matrix: bit h of row c == host h allowed for c.
  std::vector<std::uint64_t> allowed_masks_;
};

}  // namespace dif::model
