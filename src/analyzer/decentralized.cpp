#include "analyzer/decentralized.h"

#include "algo/pairwise.h"

namespace dif::analyzer {

bool VotingProtocol::decide(std::size_t host_count,
                            const LocalUtility& utility) const {
  last_votes_.assign(host_count, false);
  std::size_t ayes = 0;
  for (std::size_t h = 0; h < host_count; ++h) {
    const bool aye = utility(static_cast<model::HostId>(h)) >= -tolerance_;
    last_votes_[h] = aye;
    if (aye) ++ayes;
  }
  return ayes * 2 > host_count;
}

bool PollingProtocol::decide(std::size_t host_count,
                             const LocalUtility& utility) const {
  last_total_ = 0.0;
  for (std::size_t h = 0; h < host_count; ++h)
    last_total_ += utility(static_cast<model::HostId>(h));
  return last_total_ > min_total_gain_;
}

double local_utility(const model::DeploymentModel& m,
                     const model::Objective& objective,
                     const model::Deployment& d,
                     const algo::AwarenessGraph& awareness,
                     model::HostId host) {
  const auto view = algo::PairwiseObjectiveView::try_create(objective, m);
  double total = 0.0;
  const auto interactions = m.interactions();
  for (std::size_t index = 0; index < interactions.size(); ++index) {
    const model::Interaction& ix = interactions[index];
    const model::HostId ha = d.host_of(ix.a), hb = d.host_of(ix.b);
    if (ha == model::kNoHost || hb == model::kNoHost) continue;
    if (ha != host && hb != host) continue;
    const model::HostId partner = ha == host ? hb : ha;
    if (!awareness.aware(host, partner)) continue;
    if (view) {
      const double term = view->pair_term(index, ha, hb);
      total += view->direction() == model::Direction::kMaximize ? term : -term;
    } else {
      total += ix.frequency * m.physical_link(ha, hb).reliability;
    }
  }
  return total;
}

Decision DecentralizedAnalyzer::analyze(const model::DeploymentModel& m,
                                        const model::Objective& objective,
                                        const model::ConstraintChecker& checker,
                                        const model::Deployment& current,
                                        const algo::AwarenessGraph& awareness,
                                        std::uint64_t seed) const {
  Decision decision;
  decision.algorithm = "decap";
  decision.value_before = objective.evaluate(m, current);

  algo::DecApAlgorithm decap(config_.decap, awareness);
  algo::AlgoOptions options;
  options.initial = current;
  options.seed = seed;
  const algo::AlgoResult result = decap.run(m, objective, checker, options);
  if (!result.feasible) {
    decision.reason = "DecAp found no feasible deployment";
    return decision;
  }
  decision.value_after = result.value;
  decision.target = result.deployment;
  decision.migrations = result.migrations;
  if (decision.migrations == 0) {
    decision.reason = "DecAp proposes no change";
    return decision;
  }

  const LocalUtility delta = [&](model::HostId host) {
    return local_utility(m, objective, result.deployment, awareness, host) -
           local_utility(m, objective, current, awareness, host);
  };

  bool accepted = false;
  if (config_.protocol == Protocol::kVoting) {
    accepted = VotingProtocol(config_.threshold)
                   .decide(m.host_count(), delta);
    decision.reason = accepted ? "accepted by majority vote"
                               : "rejected by majority vote";
  } else {
    accepted = PollingProtocol(config_.threshold)
                   .decide(m.host_count(), delta);
    decision.reason = accepted ? "accepted by poll (positive total gain)"
                               : "rejected by poll";
  }
  if (accepted) decision.action = Decision::Action::kRedeploy;
  return decision;
}

}  // namespace dif::analyzer
