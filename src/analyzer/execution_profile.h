// Execution-history profile kept by analyzers (paper Section 3.1):
// "Analyzers may also hold the history of the system's execution by logging
// fluctuations of the desired objectives and the parameters of interest.
// [The] execution profile allows the analyzer to fine-tune the framework's
// behavior by providing information such as system's stability, work load
// patterns, and the results of previous redeployments."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/statistics.h"

namespace dif::analyzer {

/// Outcome of one past redeployment, for the profile's log.
struct RedeploymentRecord {
  double time_ms = 0.0;
  std::string algorithm;
  double value_before = 0.0;
  /// The algorithm's *predicted* objective value.
  double value_after = 0.0;
  std::size_t migrations = 0;
  bool applied = false;   // false when the analyzer vetoed the result
  std::string reason;
  /// The objective value actually *measured* after the redeployment took
  /// effect (the profile's "results of previous redeployments").
  double realized = 0.0;
  bool has_realized = false;
};

class ExecutionProfile {
 public:
  /// `window`: number of recent objective samples stability is judged over.
  explicit ExecutionProfile(std::size_t window = 8);

  /// Logs one observation of the tracked objective (e.g. availability).
  void add_sample(double time_ms, double value);

  /// Spread (max - min) of the recent window; small spread == stable system.
  [[nodiscard]] double recent_spread() const;

  /// True once the window is full and its spread is below `epsilon`
  /// ("the analyzer selects a more expensive algorithm to run if the system
  /// is stable").
  [[nodiscard]] bool is_stable(double epsilon) const;

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] double latest() const;
  [[nodiscard]] double mean() const { return window_.mean(); }

  void log_redeployment(RedeploymentRecord record);
  [[nodiscard]] const std::vector<RedeploymentRecord>& redeployments()
      const noexcept {
    return log_;
  }
  /// Of the logged redeployments, how many were actually applied?
  [[nodiscard]] std::size_t applied_count() const;

  /// Attaches the measured post-redeployment value to the most recent
  /// applied record (no-op when there is none). Lets the analyzer judge how
  /// trustworthy its model's predictions are.
  void record_realized(double measured_value);

  /// Mean |predicted - realized| over applied redeployments with a
  /// realization; 0 when none exist yet.
  [[nodiscard]] double mean_prediction_error() const;

 private:
  util::SlidingWindow window_;
  std::size_t samples_ = 0;
  std::vector<RedeploymentRecord> log_;
};

}  // namespace dif::analyzer
