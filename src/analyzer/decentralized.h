// Decentralized analyzer coordination (paper Sections 3.2 and 5.2).
//
// "The Decentralized Analyzer on each host synchronizes with its remote
// counterparts to determine an improved deployment architecture and effect
// it" — "the analyzer uses either the voting or the polling protocol to
// decide on the appropriate course of action". Both cooperation protocols
// from the paper are provided as pluggable components; DecentralizedAnalyzer
// runs one per-host evaluation function and applies the chosen protocol.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "algo/decap.h"
#include "analyzer/centralized.h"
#include "model/constraints.h"
#include "model/objective.h"

namespace dif::analyzer {

/// How a host judges a proposed deployment change from its own, partial
/// point of view: its local utility delta (positive = improvement for it).
using LocalUtility = std::function<double(model::HostId host)>;

/// Majority voting [8]: each host casts an accept/reject vote; the proposal
/// passes with more than half of the votes in favor.
class VotingProtocol {
 public:
  /// A host votes to accept when its local utility delta is at least
  /// `-tolerance` (it accepts small local losses for the common good).
  explicit VotingProtocol(double tolerance = 0.0) : tolerance_(tolerance) {}

  [[nodiscard]] bool decide(std::size_t host_count,
                            const LocalUtility& utility) const;

  /// Votes of the last decide() call, for inspection/tests.
  [[nodiscard]] const std::vector<bool>& last_votes() const noexcept {
    return last_votes_;
  }

 private:
  double tolerance_;
  mutable std::vector<bool> last_votes_;
};

/// Polling: a coordinator collects every host's utility delta and accepts
/// when the aggregate benefit is positive — hosts report magnitudes, not
/// just yes/no, so a large gain on one host can outweigh small losses.
class PollingProtocol {
 public:
  explicit PollingProtocol(double min_total_gain = 0.0)
      : min_total_gain_(min_total_gain) {}

  [[nodiscard]] bool decide(std::size_t host_count,
                            const LocalUtility& utility) const;

  [[nodiscard]] double last_total() const noexcept { return last_total_; }

 private:
  double min_total_gain_;
  mutable double last_total_ = 0.0;
};

/// Per-host analyzer for the decentralized instantiation: runs DecAp over
/// the hosts' awareness-restricted views, then ratifies the outcome with
/// voting or polling before it may be effected.
class DecentralizedAnalyzer {
 public:
  enum class Protocol { kVoting, kPolling };

  struct Config {
    Protocol protocol = Protocol::kVoting;
    /// Tolerance / minimum-gain threshold fed to the chosen protocol.
    double threshold = 0.0;
    algo::DecApAlgorithm::Params decap;
  };

  explicit DecentralizedAnalyzer(Config config) : config_(config) {}

  /// Runs DecAp from `current`, computes each host's local utility delta of
  /// the result, and applies the cooperation protocol.
  [[nodiscard]] Decision analyze(const model::DeploymentModel& m,
                                 const model::Objective& objective,
                                 const model::ConstraintChecker& checker,
                                 const model::Deployment& current,
                                 const algo::AwarenessGraph& awareness,
                                 std::uint64_t seed = 1) const;

 private:
  Config config_;
};

/// A host's local utility under `objective`: the summed per-interaction
/// score of interactions touching components on `host`, computed only over
/// partners on hosts it is aware of. Shared by the analyzer and tests.
[[nodiscard]] double local_utility(const model::DeploymentModel& m,
                                   const model::Objective& objective,
                                   const model::Deployment& d,
                                   const algo::AwarenessGraph& awareness,
                                   model::HostId host);

}  // namespace dif::analyzer
