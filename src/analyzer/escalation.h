// Escalation meta-policy (paper Section 3.1): "once an analyzer determines
// that the system's parameters have changed significantly, it may choose to
// add a new low-level algorithm component that computes better results for
// the new operational scenario."
//
// Concretely: the analyzer climbs a ladder of increasingly expensive
// algorithms when the current one stalls (consecutive analyses that find no
// worthwhile improvement while the system is visibly sub-optimal), and
// drops back to the cheap rung after a successful redeployment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyzer/centralized.h"

namespace dif::analyzer {

class EscalationPolicy {
 public:
  struct Config {
    /// Cheapest to strongest; the first entry is the resting state.
    std::vector<std::string> ladder = {"avala", "hillclimb", "annealing"};
    /// Consecutive improvement-free analyses before climbing a rung.
    std::size_t stall_threshold = 3;

    /// The default ladder with the parallel portfolio as its final rung —
    /// when every single algorithm stalls, race them all. The analyzer's
    /// Policy resolves the name "portfolio" (see CentralizedAnalyzer).
    static Config with_portfolio_rung() {
      Config config;
      config.ladder.push_back("portfolio");
      return config;
    }
  };

  explicit EscalationPolicy(Config config);
  EscalationPolicy() : EscalationPolicy(Config{}) {}

  /// Algorithm the analyzer should currently use for the stable slot.
  [[nodiscard]] const std::string& current() const {
    return config_.ladder[rung_];
  }

  /// Feeds one analyzer decision; may escalate or reset the ladder.
  void observe(const Decision& decision);

  [[nodiscard]] std::size_t escalations() const noexcept {
    return escalations_;
  }
  [[nodiscard]] std::size_t rung() const noexcept { return rung_; }
  void reset() noexcept {
    rung_ = 0;
    stall_ = 0;
  }

 private:
  Config config_;
  std::size_t rung_ = 0;
  std::size_t stall_ = 0;
  std::size_t escalations_ = 0;
};

}  // namespace dif::analyzer
