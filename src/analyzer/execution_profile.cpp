#include "analyzer/execution_profile.h"

#include <algorithm>
#include <cmath>

namespace dif::analyzer {

ExecutionProfile::ExecutionProfile(std::size_t window) : window_(window) {}

void ExecutionProfile::add_sample(double time_ms, double value) {
  (void)time_ms;  // kept in the signature for future time-aware patterns
  window_.add(value);
  ++samples_;
}

double ExecutionProfile::recent_spread() const { return window_.spread(); }

bool ExecutionProfile::is_stable(double epsilon) const {
  return window_.full() && window_.spread() < epsilon;
}

double ExecutionProfile::latest() const { return window_.latest(); }

void ExecutionProfile::log_redeployment(RedeploymentRecord record) {
  log_.push_back(std::move(record));
}

std::size_t ExecutionProfile::applied_count() const {
  return static_cast<std::size_t>(
      std::count_if(log_.begin(), log_.end(),
                    [](const RedeploymentRecord& r) { return r.applied; }));
}

void ExecutionProfile::record_realized(double measured_value) {
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->applied) {
      if (!it->has_realized) {
        it->realized = measured_value;
        it->has_realized = true;
      }
      return;
    }
  }
}

double ExecutionProfile::mean_prediction_error() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const RedeploymentRecord& record : log_) {
    if (!record.applied || !record.has_realized) continue;
    total += std::abs(record.value_after - record.realized);
    ++count;
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace dif::analyzer
