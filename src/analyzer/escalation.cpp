#include "analyzer/escalation.h"

#include <stdexcept>

namespace dif::analyzer {

EscalationPolicy::EscalationPolicy(Config config)
    : config_(std::move(config)) {
  if (config_.ladder.empty())
    throw std::invalid_argument("EscalationPolicy: empty ladder");
  if (config_.stall_threshold == 0)
    throw std::invalid_argument("EscalationPolicy: zero stall threshold");
}

void EscalationPolicy::observe(const Decision& decision) {
  if (decision.action == Decision::Action::kRedeploy) {
    // The current rung delivered; rest back at the cheap end.
    reset();
    return;
  }
  if (++stall_ >= config_.stall_threshold) {
    stall_ = 0;
    if (rung_ + 1 < config_.ladder.size()) {
      ++rung_;
      ++escalations_;
    }
  }
}

}  // namespace dif::analyzer
