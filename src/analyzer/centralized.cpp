#include "analyzer/centralized.h"

#include <chrono>

#include "algo/portfolio.h"
#include "check/preflight.h"
#include "util/logging.h"

namespace dif::analyzer {

CentralizedAnalyzer::CentralizedAnalyzer(
    const algo::AlgorithmRegistry& registry, Policy policy)
    : registry_(registry), policy_(policy) {}

std::string CentralizedAnalyzer::select_algorithm(
    const model::DeploymentModel& m, const ExecutionProfile& profile) const {
  if (m.host_count() <= policy_.exact_max_hosts &&
      m.component_count() <= policy_.exact_max_components)
    return "exact";
  if (profile.is_stable(policy_.stability_epsilon))
    return policy_.stable_algorithm;
  return policy_.unstable_algorithm;
}

Decision CentralizedAnalyzer::analyze(
    const model::DeploymentModel& m, const model::Objective& objective,
    const model::ConstraintChecker& checker, const model::Deployment& current,
    ExecutionProfile& profile, std::uint64_t seed,
    const std::vector<model::ComponentId>* dirty) const {
  Decision decision;
  decision.value_before = objective.evaluate(m, current);
  decision.algorithm = select_algorithm(m, profile);
  if (obs_.metrics) obs_.metrics->counter("analyzer.analyses").add(1);

  // Pre-flight: a statically-broken model (contradictory constraints,
  // pigeonhole violation, dangling references) cannot be improved by any
  // algorithm; keep the current deployment and surface the diagnostics
  // instead of burning the evaluation budget. Unlike the solver entry
  // points this does not throw — the periodic improvement loop must
  // survive a transiently-inconsistent model.
  if (const check::CheckReport report = check::preflight_report(
          m, checker.constraint_set());
      !report.ok()) {
    decision.reason = "pre-flight rejected the model: " +
                      std::to_string(report.error_count()) + " defect(s)\n" +
                      report.render_text();
    util::log_warn("analyzer", decision.reason);
    if (obs_.metrics)
      obs_.metrics->counter("analyzer.preflight_rejects").add(1);
    RedeploymentRecord record;
    record.algorithm = decision.algorithm;
    record.value_before = decision.value_before;
    record.reason = decision.reason;
    profile.log_redeployment(std::move(record));
    return decision;
  }

  algo::AlgoOptions options;
  options.initial = current;
  options.seed = seed;
  options.max_evaluations = policy_.max_evaluations;
  if (policy_.warm_start && dirty != nullptr) {
    options.warm_start = true;
    options.dirty_components = *dirty;
    if (obs_.metrics) obs_.metrics->counter("analyzer.warm_analyses").add(1);
  }
  std::unique_ptr<algo::Algorithm> algorithm;
  if (decision.algorithm == "portfolio" && !registry_.contains("portfolio")) {
    // Not a registry entry (the default registry stays portfolio-free so
    // invoke_all-style sweeps do not recurse); resolved here instead.
    algorithm = std::make_unique<algo::PortfolioAlgorithm>(
        registry_, policy_.portfolio_lineup, policy_.portfolio_threads);
    options.time_budget_seconds = policy_.portfolio_deadline_seconds;
  } else {
    algorithm = registry_.create(decision.algorithm);
  }
  const auto algo_start = std::chrono::steady_clock::now();
  const algo::AlgoResult result =
      algorithm->run(m, objective, checker, options);
  if (obs_.metrics) {
    const std::chrono::duration<double, std::milli> algo_elapsed =
        std::chrono::steady_clock::now() - algo_start;
    obs_.metrics->histogram("analyzer.algo_wall_ms")
        .observe(algo_elapsed.count());
  }

  RedeploymentRecord record;
  record.algorithm = decision.algorithm;
  record.value_before = decision.value_before;

  if (!result.feasible) {
    if (obs_.metrics) obs_.metrics->counter("analyzer.infeasible").add(1);
    decision.reason = "algorithm found no feasible deployment";
    record.reason = decision.reason;
    profile.log_redeployment(std::move(record));
    return decision;
  }

  decision.value_after = result.value;
  decision.target = result.deployment;
  decision.migrations = result.migrations;
  record.value_after = result.value;
  record.migrations = result.migrations;

  // Improvement gate: is the gain worth moving components for?
  const double gain = objective.direction() == model::Direction::kMaximize
                          ? result.value - decision.value_before
                          : decision.value_before - result.value;
  if (gain < policy_.min_improvement || decision.migrations == 0) {
    if (obs_.metrics)
      obs_.metrics->counter("analyzer.below_threshold").add(1);
    decision.reason = "improvement below threshold";
    record.reason = decision.reason;
    profile.log_redeployment(std::move(record));
    return decision;
  }

  // Latency guard (multi-objective conflict resolution): the availability
  // algorithms "typically decrease the system's overall latency [12]" — veto
  // the rare deployment that would significantly increase it instead.
  if (policy_.enable_latency_guard &&
      std::string_view(objective.name()) != "latency") {
    const model::LatencyObjective latency;
    const double latency_before = latency.evaluate(m, current);
    const double latency_after = latency.evaluate(m, result.deployment);
    if (latency_after > latency_before * policy_.latency_tolerance &&
        latency_after - latency_before > 1.0) {
      if (obs_.metrics)
        obs_.metrics->counter("analyzer.latency_vetoes").add(1);
      decision.reason = "vetoed: latency regression (" +
                        std::to_string(latency_before) + " -> " +
                        std::to_string(latency_after) + " ms/s)";
      record.reason = decision.reason;
      profile.log_redeployment(std::move(record));
      util::log_info("analyzer", decision.reason);
      return decision;
    }
  }

  decision.action = Decision::Action::kRedeploy;
  if (obs_.metrics)
    obs_.metrics->counter("analyzer.redeploy_decisions").add(1);
  decision.reason = "improvement " + std::to_string(gain) + " via " +
                    decision.algorithm;
  record.applied = true;
  record.reason = decision.reason;
  profile.log_redeployment(std::move(record));
  return decision;
}

}  // namespace dif::analyzer
