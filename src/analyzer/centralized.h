// The Centralized Analyzer (paper Sections 3.1 and 5.1).
//
// A meta-level algorithm that leverages the results obtained from the
// algorithm(s) and the model to determine a course of action:
//
//  * algorithm selection by architecture size — Exact only "for
//    architectures with very small numbers of hosts (~5) and components
//    (~15)" — and by the system's stability profile — "a more expensive
//    algorithm ... if the system is stable", "a less expensive algorithm
//    that could produce faster results" when unstable;
//  * the latency guard — "in rare situations where [the algorithms do not
//    also decrease latency], the analyzer either disallows the results of
//    the algorithms to take effect or modifies the solution";
//  * a minimum-improvement gate, because effecting a redeployment is not
//    free (migrations cost time and bandwidth).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "algo/registry.h"
#include "analyzer/execution_profile.h"
#include "model/constraints.h"
#include "model/objective.h"
#include "obs/instruments.h"

namespace dif::analyzer {

/// What the analyzer decided to do about the current deployment.
struct Decision {
  enum class Action { kKeep, kRedeploy };
  Action action = Action::kKeep;
  /// Chosen algorithm's name (also set when the result was vetoed).
  std::string algorithm;
  /// The improved deployment (meaningful only for kRedeploy).
  model::Deployment target;
  double value_before = 0.0;
  double value_after = 0.0;
  std::size_t migrations = 0;
  std::string reason;
};

class CentralizedAnalyzer {
 public:
  struct Policy {
    /// Exact-algorithm feasibility envelope (paper's ~5 hosts/~15 comps).
    std::size_t exact_max_hosts = 5;
    std::size_t exact_max_components = 15;
    /// Availability spread below which the system counts as stable.
    double stability_epsilon = 0.02;
    /// Algorithm for stable large systems (expensive, better results) and
    /// for unstable ones (cheap, fast) — both resolved via the registry.
    std::string stable_algorithm = "hillclimb";
    std::string unstable_algorithm = "avala";
    /// Required objective improvement before a redeployment is worth it.
    double min_improvement = 0.01;
    /// Latency guard: veto deployments that worsen latency by more than
    /// this factor relative to the current deployment.
    double latency_tolerance = 1.10;
    bool enable_latency_guard = true;
    /// Evaluation cap handed to whichever algorithm runs (0 = unlimited).
    std::uint64_t max_evaluations = 0;
    /// The name "portfolio" is accepted wherever an algorithm name goes
    /// (stable/unstable slot, escalation rungs) even when the registry has
    /// no such entry: the analyzer then races `portfolio_lineup` (empty =
    /// algo::default_portfolio_lineup) on `portfolio_threads` workers
    /// (0 = hardware concurrency) under `portfolio_deadline_seconds`
    /// (0 = no deadline) and uses the best feasible result.
    std::vector<std::string> portfolio_lineup;
    std::size_t portfolio_threads = 0;
    double portfolio_deadline_seconds = 0.0;
    /// Warm-start the algorithm run when the caller supplies a dirty set:
    /// the search then only revisits the neighbourhood of the changed
    /// components (AlgoOptions::warm_start). Without a dirty set the run is
    /// cold regardless of this flag.
    bool warm_start = false;
  };

  /// The registry must outlive the analyzer.
  CentralizedAnalyzer(const algo::AlgorithmRegistry& registry, Policy policy);

  /// Picks the algorithm name the policy prescribes for this model/profile
  /// (exposed separately for the E7 bench and for logging).
  [[nodiscard]] std::string select_algorithm(
      const model::DeploymentModel& m, const ExecutionProfile& profile) const;

  /// Runs the selected algorithm and applies the improvement gate and
  /// latency guard. `current` must be the system's present deployment.
  /// `dirty` (optional) lists the components whose model context changed
  /// since `current` was chosen; with Policy::warm_start set, the algorithm
  /// then re-optimizes only that neighbourhood (an empty list degenerates
  /// to "evaluate current once").
  [[nodiscard]] Decision analyze(
      const model::DeploymentModel& m, const model::Objective& objective,
      const model::ConstraintChecker& checker,
      const model::Deployment& current, ExecutionProfile& profile,
      std::uint64_t seed = 1,
      const std::vector<model::ComponentId>* dirty = nullptr) const;

  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  /// Runtime policy adjustment — how a meta-level EscalationPolicy swaps
  /// the algorithm the analyzer runs on large stable systems (paper §3.1:
  /// analyzers "modify the framework's behavior by adding or removing"
  /// algorithm components).
  void set_stable_algorithm(std::string name) {
    policy_.stable_algorithm = std::move(name);
  }

  /// Counts analyses and their verdicts under "analyzer.*"; algorithm
  /// wall-clock runtime feeds the "analyzer.algo_wall_ms" histogram (the
  /// analyzer itself has no simulated clock — sim-time tick spans are the
  /// ImprovementLoop's job).
  void set_instruments(obs::Instruments instruments) noexcept {
    obs_ = instruments;
  }

 private:
  const algo::AlgorithmRegistry& registry_;
  Policy policy_;
  obs::Instruments obs_;
};

}  // namespace dif::analyzer
