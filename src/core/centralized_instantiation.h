// The framework's centralized instantiation (paper Figure 2).
//
// Builds a complete running system from a SystemData description:
//
//   Master Host: Centralized Model (the SystemData), Master Monitor +
//     Centralized User Input feeding it, DeployerComponent (Master
//     Effector), the DeSi MiddlewareAdapter, and the Centralized
//     Analyzer/Algorithm (via ImprovementLoop).
//   Slave Hosts: one Prism-MW Architecture each, with a
//     DistributionConnector (peers per physical links, deployer-mediated
//     otherwise), a Slave Monitor pair (EvtFrequencyMonitor +
//     NetworkReliabilityMonitor), a Slave Effector (AdminComponent), and
//     the application's WorkloadComponents per the initial deployment.
//
// Everything runs on the discrete-event simulator; the caller owns the
// clock: start(), then simulator().run_until(t), interleaved with
// ImprovementLoop ticks or manual improve/effect calls.
#pragma once

#include <memory>

#include "core/workload.h"
#include "desi/middleware_adapter.h"
#include "desi/system_data.h"
#include "prism/deployer.h"
#include "sim/fluctuation.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace dif::core {

struct FrameworkConfig {
  /// The Master Host runs the DeployerComponent and mediates component
  /// transfers between hosts that are not directly connected — it should
  /// therefore be network-adjacent to every other host (the paper's
  /// Headquarters role). In a sparse topology pick a hub.
  model::HostId master_host = 0;
  bool enable_monitoring = true;
  /// When false, admins keep their monitors but never push reports (the
  /// decentralized instantiation polls monitors locally instead).
  bool enable_admin_reporting = true;
  /// When false, no DeployerComponent (and no mediator) is created — the
  /// substrate for the decentralized instantiation, which has no master.
  bool create_deployer = true;
  /// Store-and-forward queuing of remote events during disconnection
  /// (paper §6 future work, "queuing of remote calls"). Off = paper's base
  /// behaviour (events toward a severed link are lost).
  bool enable_store_and_forward = false;
  double store_and_forward_retry_ms = 1'000.0;
  /// Admin monitoring/report cadence, stability filter, and (when
  /// memory_capacity_kb is set) the prepare-phase capacity vote.
  prism::AdminComponent::Params admin;
  /// Transactional-redeployment budgets: deadlines, retry caps/backoff,
  /// and allow_partial (admin_hosts is filled in by the instantiation).
  prism::DeployerComponent::DeployerParams deployer;
  /// Reliability pinging cadence.
  prism::NetworkReliabilityMonitor::Params reliability;
  std::uint64_t seed = 1;
};

class CentralizedInstantiation {
 public:
  /// `system` is both the design-time model (User Input / xADL) and the
  /// runtime Centralized Model the monitors update; it must outlive the
  /// instantiation. Requires a complete initial deployment.
  CentralizedInstantiation(desi::SystemData& system, FrameworkConfig config);
  ~CentralizedInstantiation();

  CentralizedInstantiation(const CentralizedInstantiation&) = delete;
  CentralizedInstantiation& operator=(const CentralizedInstantiation&) =
      delete;

  /// Starts workloads, monitors, and admin reporting.
  void start();

  /// Fans the observability handle out to every layer already built:
  /// network, frequency/reliability monitors, admins, and the deployer.
  /// Call before start() to capture the run from t=0; the ImprovementLoop
  /// carries its own handle (see ImprovementLoop::set_instruments).
  void set_instruments(obs::Instruments instruments);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] sim::SimNetwork& network() noexcept { return *network_; }
  [[nodiscard]] desi::SystemData& system() noexcept { return system_; }
  [[nodiscard]] prism::DeployerComponent& deployer() noexcept {
    return *deployer_;
  }
  [[nodiscard]] desi::MiddlewareAdapter& adapter() noexcept {
    return *adapter_;
  }
  [[nodiscard]] prism::Architecture& architecture(model::HostId host) {
    return *architectures_.at(host);
  }
  [[nodiscard]] prism::AdminComponent& admin(model::HostId host);
  [[nodiscard]] prism::DistributionConnector& connector(model::HostId host) {
    return *connectors_.at(host);
  }
  /// Per-host monitors (null when monitoring is disabled). The decentralized
  /// instantiation polls these directly instead of admin reporting.
  [[nodiscard]] prism::EvtFrequencyMonitor* freq_monitor(model::HostId host) {
    return freq_monitors_.at(host).get();
  }
  [[nodiscard]] prism::NetworkReliabilityMonitor* reliability_monitor(
      model::HostId host) {
    return host < rel_monitors_.size() ? rel_monitors_.at(host).get()
                                       : nullptr;
  }

  /// Host crash + restart (chaos hooks; the paper's device-reboot
  /// dependability event). crash_host takes the host's network down and
  /// crashes its admin — and the deployer, when `host` is the master — so
  /// volatile middleware state is lost exactly as a reboot would lose it.
  /// restart_host brings the network back and re-registers the host with
  /// the rest of the system (see AdminComponent::restart); monitoring
  /// reports resume per the framework config. Both are idempotent.
  void crash_host(model::HostId host);
  void restart_host(model::HostId host);

  /// The deployment as the running system currently has it (from the
  /// deployer's location table; kNoHost for components it has not seen).
  [[nodiscard]] model::Deployment runtime_deployment() const;

  /// Total application events sent / received across all workloads.
  struct WorkloadStats {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };
  [[nodiscard]] WorkloadStats workload_stats() const;

  [[nodiscard]] const FrameworkConfig& config() const noexcept {
    return config_;
  }

 private:
  desi::SystemData& system_;
  FrameworkConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<prism::SimScaffold> scaffold_;
  prism::ComponentFactory factory_;
  std::vector<std::unique_ptr<prism::Architecture>> architectures_;
  std::vector<prism::DistributionConnector*> connectors_;  // owned by archs
  std::vector<std::shared_ptr<prism::EvtFrequencyMonitor>> freq_monitors_;
  std::vector<std::unique_ptr<prism::NetworkReliabilityMonitor>>
      rel_monitors_;
  std::vector<prism::AdminComponent*> admins_;  // owned by archs
  prism::DeployerComponent* deployer_ = nullptr;
  std::unique_ptr<desi::MiddlewareAdapter> adapter_;
};

}  // namespace dif::core
