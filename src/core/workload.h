// WorkloadComponent: the simulated application component.
//
// The paper's experiments run real applications (e.g. the crisis-response
// system) on Prism-MW; here the application is synthesized from the model's
// logical links: each WorkloadComponent periodically sends application
// events to its interaction partners at the modelled frequency and size, so
// the EvtFrequencyMonitors observe exactly the workload the model describes
// (and keep observing it correctly after the component migrates — its
// sending schedule and configuration travel with its serialized state).
#pragma once

#include <vector>

#include "prism/admin.h"
#include "prism/architecture.h"

namespace dif::core {

class WorkloadComponent final : public prism::Component {
 public:
  struct Link {
    std::string peer;        // destination component name
    double frequency = 0.0;  // events per second
    double size_kb = 0.0;    // payload size per event
  };

  /// `memory_kb` is what the component reports to monitoring (mirrors the
  /// model's component memory size).
  WorkloadComponent(std::string name, double memory_kb,
                    std::vector<Link> links);
  /// Factory form: configuration arrives via restore_state.
  explicit WorkloadComponent(std::string name);

  [[nodiscard]] std::string type_name() const override { return "workload"; }
  [[nodiscard]] double memory_kb() const override { return memory_kb_; }

  void handle(const prism::Event& event) override;

  void serialize_state(prism::ByteWriter& writer) const override;
  void restore_state(prism::ByteReader& reader) override;

  /// Begins the periodic sending schedule; re-invoked automatically after
  /// migration (on_attached). Idempotent per attachment.
  void start();

  void on_attached() override;
  void on_detached() override;

  [[nodiscard]] std::uint64_t events_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t events_received() const noexcept {
    return received_;
  }

  /// Registers this type with a migration factory.
  static void register_with(prism::ComponentFactory& factory);

 private:
  void schedule_link(std::size_t index);

  double memory_kb_ = 1.0;
  std::vector<Link> links_;
  bool running_ = false;
  /// Invalidates scheduled sends from a previous attachment epoch.
  std::uint64_t epoch_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace dif::core
