// The autonomic improvement loop: monitor -> model -> algorithm -> analyzer
// -> effector, repeated for the life of the system (the framework's whole
// point — paper Section 3's three-step methodology run continuously).
#pragma once

#include <vector>

#include "analyzer/centralized.h"
#include "analyzer/escalation.h"
#include "core/centralized_instantiation.h"
#include "obs/instruments.h"

namespace dif::core {

class ImprovementLoop {
 public:
  struct Config {
    /// Time between analyzer invocations (simulated ms).
    double interval_ms = 5'000.0;
    analyzer::CentralizedAnalyzer::Policy policy;
    /// When set, an EscalationPolicy climbs this ladder after repeated
    /// improvement-free analyses (and rests after a success), overriding
    /// policy.stable_algorithm at each tick.
    bool enable_escalation = false;
    analyzer::EscalationPolicy::Config escalation;
    /// Adaptive re-examination scheduling (paper §4.3: "scheduling the
    /// time to (re)examine the deployment architecture"): every tick that
    /// keeps the deployment stretches the next interval by
    /// `backoff_factor` (up to `max_interval_ms`); a redeployment resets
    /// it to `interval_ms`. Saves analysis work on quiescent systems while
    /// staying responsive after changes.
    bool adaptive_interval = false;
    double backoff_factor = 1.5;
    double max_interval_ms = 60'000.0;
    /// Warm-started re-optimization (paper §4.3's incremental re-analysis
    /// at fleet scale): the loop listens for fine-grained model changes,
    /// accumulates the affected components between ticks, and hands the
    /// analyzer that dirty set so the search cost scales with the delta.
    /// Un-attributable changes (topology edits, anonymous entity updates)
    /// fall back to a cold analysis. The first tick is always cold.
    bool warm_start = false;
    std::uint64_t seed = 1;
  };

  /// One record per analyzer tick, for experiment reporting.
  struct TickRecord {
    double time_ms = 0.0;
    double objective_value = 0.0;
    analyzer::Decision::Action action = analyzer::Decision::Action::kKeep;
    std::string algorithm;
    std::string reason;
    std::size_t migrations = 0;
    /// True when a kRedeploy decision was actually handed to the effector;
    /// false records a rejection (the effector was already busy).
    bool effected = false;
  };

  /// All references must outlive the loop.
  ImprovementLoop(CentralizedInstantiation& instantiation,
                  const model::Objective& objective, Config config);
  ~ImprovementLoop();

  /// Schedules periodic analyzer ticks on the instantiation's simulator.
  void start();
  void stop() noexcept { running_ = false; }

  /// Runs a single analyze-and-maybe-redeploy cycle immediately.
  analyzer::Decision tick();

  [[nodiscard]] const analyzer::ExecutionProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::vector<TickRecord>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] std::size_t redeployments_applied() const noexcept {
    return applied_;
  }
  /// kRedeploy decisions the effector refused (a redeployment someone else
  /// started was still in flight).
  [[nodiscard]] std::size_t effector_rejections() const noexcept {
    return rejected_;
  }

  void set_instruments(obs::Instruments instruments) noexcept {
    obs_ = instruments;
    analyzer_.set_instruments(instruments);
  }
  [[nodiscard]] const analyzer::EscalationPolicy& escalation() const noexcept {
    return escalation_;
  }
  /// The interval the next tick will be scheduled with.
  [[nodiscard]] double current_interval_ms() const noexcept {
    return current_interval_ms_;
  }

  /// Components accumulated as dirty since the last analysis (warm_start
  /// only; exposed for tests and diagnostics). Unordered, may contain
  /// duplicates until the next tick dedupes it.
  [[nodiscard]] const std::vector<model::ComponentId>& dirty_components()
      const noexcept {
    return dirty_;
  }
  /// True when an un-attributable change forces the next tick cold.
  [[nodiscard]] bool all_dirty() const noexcept { return all_dirty_; }

 private:
  void schedule_next();
  void on_model_change(const model::ModelChange& change);
  void mark_host_dirty(model::HostId host);

  CentralizedInstantiation& instantiation_;
  const model::Objective& objective_;
  Config config_;
  algo::AlgorithmRegistry registry_;
  analyzer::CentralizedAnalyzer analyzer_;
  analyzer::EscalationPolicy escalation_;
  analyzer::ExecutionProfile profile_;
  std::vector<TickRecord> history_;
  bool running_ = false;
  std::size_t applied_ = 0;
  std::size_t rejected_ = 0;
  std::uint64_t tick_count_ = 0;
  double current_interval_ms_ = 0.0;
  bool pending_realization_ = false;
  /// True between this loop's accepted effect() call and its completion.
  /// The tick guard keys on this — the loop's *own* outstanding
  /// redeployment — not on the deployer's global busy state, so that a
  /// redeployment started by someone else surfaces as an explicit effector
  /// rejection instead of silently suppressing analysis.
  bool effect_outstanding_ = false;
  /// Warm-start bookkeeping (see Config::warm_start).
  std::vector<model::ComponentId> dirty_;
  bool all_dirty_ = false;
  bool warm_primed_ = false;  // one cold analysis has happened
  std::size_t detail_listener_id_ = 0;
  bool has_detail_listener_ = false;
  obs::Instruments obs_;
};

}  // namespace dif::core
