// The framework's decentralized instantiation (paper Figure 3, Section 5.2).
//
// No master host and no global model: every host keeps a Decentralized
// Model — its own replica of the design-time description, refined only by
// what it can observe itself (reliability of its adjacent links, frequencies
// of events its components receive) — plus a Local Monitor, a Local
// Effector (its AdminComponent), a Decentralized Algorithm (its DecAp
// auction agent), and a Decentralized Analyzer.
//
// Auction sweeps are the paper's DecAp protocol: each host in turn auctions
// its local components to its directly connected neighbors, bids are
// computed from the bidder's partial knowledge, and the winning host's
// admin pulls the component through the ordinary migration protocol. A host
// never uses information about hosts it is not aware of.
#pragma once

#include "algo/decap.h"
#include "core/centralized_instantiation.h"

namespace dif::core {

class DecentralizedInstantiation {
 public:
  struct Config {
    FrameworkConfig base;
    /// A migration must beat staying put by this utility margin.
    double min_gain = 1e-6;
    /// Decentralized Analyzer ratification (paper §5.2: "the analyzer uses
    /// either the voting or the polling protocol"): when enabled, every
    /// auction outcome is put to a vote among the auction's participants,
    /// each judging the move from its own partial model; a majority must
    /// accept before the migration is effected.
    bool ratify_moves = false;
    /// A participant accepts when its local utility delta >= -tolerance.
    double vote_tolerance = 0.0;
  };

  /// `design` is the design-time description (User Input); it must outlive
  /// the instantiation and must carry a complete initial deployment.
  DecentralizedInstantiation(desi::SystemData& design, Config config);
  ~DecentralizedInstantiation();

  DecentralizedInstantiation(const DecentralizedInstantiation&) = delete;
  DecentralizedInstantiation& operator=(const DecentralizedInstantiation&) =
      delete;

  void start();

  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return substrate_->simulator();
  }
  [[nodiscard]] CentralizedInstantiation& substrate() noexcept {
    return *substrate_;
  }

  /// A host's local model replica (Decentralized Model).
  [[nodiscard]] const desi::SystemData& local_model(model::HostId host) const {
    return *local_models_.at(host);
  }

  /// Drains each host's monitors into its own local model (Local Monitor ->
  /// Decentralized Model). Call between simulator runs.
  void refresh_local_models();

  /// Decentralized Model synchronization (paper §5.2: each host
  /// "synchronizes its local model with the remote hosts of which it is
  /// aware ... by sending streams of data whenever the model is
  /// modified"): every host sends its own measurements — adjacent link
  /// reliabilities and the interaction frequencies its components observed
  /// — to its direct neighbors as __model_sync events over the real
  /// (lossy) network. Receivers merge only origin-owned data, and only
  /// about hosts they are themselves aware of, preserving the paper's
  /// awareness semantics. Returns the number of sync messages sent.
  std::size_t gossip_sync();

  /// One DecAp auction sweep over all hosts using only local knowledge.
  /// Returns the number of migrations initiated (transfers then complete
  /// asynchronously in simulated time).
  std::size_t auction_sweep(std::uint64_t seed = 1);

  /// Cumulative auction statistics.
  [[nodiscard]] const algo::DecApAlgorithm::Stats& stats() const noexcept {
    return stats_;
  }
  /// Ratification statistics (only counted when Config::ratify_moves).
  [[nodiscard]] std::size_t votes_held() const noexcept { return votes_held_; }
  [[nodiscard]] std::size_t votes_rejected() const noexcept {
    return votes_rejected_;
  }

  /// The deployment as actually running (ground truth from architectures).
  [[nodiscard]] model::Deployment runtime_deployment() const {
    return substrate_->runtime_deployment();
  }

 private:
  /// Bid of `bidder` for hosting `component`, from bidder's local knowledge.
  [[nodiscard]] double bid(model::HostId bidder, model::ComponentId component,
                           model::HostId believed_current) const;
  [[nodiscard]] bool fits(model::HostId host,
                          model::ComponentId component) const;
  /// One participant's view of moving `component` from -> to: the utility
  /// delta for interactions between the component and the voter's own
  /// components, judged with the voter's local model.
  [[nodiscard]] double voter_delta(model::HostId voter,
                                   model::ComponentId component,
                                   model::HostId from, model::HostId to) const;
  /// Majority vote among {auctioneer} + participants.
  [[nodiscard]] bool ratify(model::HostId auctioneer,
                            const std::vector<model::HostId>& participants,
                            model::ComponentId component, model::HostId from,
                            model::HostId to);

  void apply_sync(model::HostId receiver, const prism::Event& event);

  desi::SystemData& design_;
  Config config_;
  std::unique_ptr<CentralizedInstantiation> substrate_;
  std::vector<std::unique_ptr<desi::SystemData>> local_models_;
  std::vector<prism::Component*> sync_components_;  // owned by architectures
  algo::DecApAlgorithm::Stats stats_;
  std::size_t votes_held_ = 0;
  std::size_t votes_rejected_ = 0;
};

/// Canonical name of the model-sync endpoint on host `h`.
[[nodiscard]] std::string model_sync_name(model::HostId host);

}  // namespace dif::core
