#include "core/decentralized_instantiation.h"

#include <numeric>

#include "desi/xadl.h"
#include "util/rng.h"

namespace dif::core {

std::string model_sync_name(model::HostId host) {
  return "__modelsync@" + std::to_string(host);
}

namespace {

/// Per-host endpoint receiving __model_sync gossip; hands the payload to
/// the instantiation, which owns the local models.
class ModelSyncComponent final : public prism::Component {
 public:
  using Handler = std::function<void(const prism::Event&)>;
  ModelSyncComponent(model::HostId host, Handler handler)
      : prism::Component(model_sync_name(host)),
        handler_(std::move(handler)) {}
  void handle(const prism::Event& event) override {
    if (event.name() == "__model_sync") handler_(event);
  }
  [[nodiscard]] std::string type_name() const override {
    return "__modelsync";
  }

 private:
  Handler handler_;
};

}  // namespace

DecentralizedInstantiation::DecentralizedInstantiation(
    desi::SystemData& design, Config config)
    : design_(design), config_(config) {
  config_.base.create_deployer = false;
  config_.base.enable_admin_reporting = false;
  config_.base.enable_monitoring = true;
  substrate_ =
      std::make_unique<CentralizedInstantiation>(design_, config_.base);

  // Decentralized Model: each host starts from the design-time description
  // (distributed as User Input / xADL) and refines it with local
  // observations only.
  const util::json::Value description = desi::XadlLite::to_json(design_);
  const std::size_t k = design_.model().host_count();
  for (std::size_t h = 0; h < k; ++h)
    local_models_.push_back(desi::XadlLite::from_json(description));

  // Model-sync endpoints (gossip receivers), one per host.
  for (std::size_t h = 0; h < k; ++h) {
    const auto host = static_cast<model::HostId>(h);
    auto sync = std::make_unique<ModelSyncComponent>(
        host,
        [this, host](const prism::Event& event) { apply_sync(host, event); });
    prism::Component& attached =
        substrate_->architecture(host).add_component(std::move(sync));
    substrate_->architecture(host).weld(attached,
                                        substrate_->connector(host));
    sync_components_.push_back(&attached);
  }
  for (std::size_t h = 0; h < k; ++h)
    for (std::size_t g = 0; g < k; ++g)
      substrate_->connector(static_cast<model::HostId>(h))
          .set_location(model_sync_name(static_cast<model::HostId>(g)),
                        static_cast<model::HostId>(g));
}

DecentralizedInstantiation::~DecentralizedInstantiation() = default;

void DecentralizedInstantiation::start() { substrate_->start(); }

void DecentralizedInstantiation::refresh_local_models() {
  const std::size_t k = design_.model().host_count();
  for (std::size_t h = 0; h < k; ++h) {
    const auto host = static_cast<model::HostId>(h);
    desi::SystemData& local = *local_models_[h];
    model::DeploymentModel& lm = local.model();

    if (prism::EvtFrequencyMonitor* freq = substrate_->freq_monitor(host)) {
      for (const prism::EvtFrequencyMonitor::PairFrequency& pf :
           freq->collect()) {
        try {
          const model::ComponentId a = lm.component_by_name(pf.from);
          const model::ComponentId b = lm.component_by_name(pf.to);
          model::LogicalLink link = lm.logical_link(a, b);
          link.frequency = pf.frequency;
          if (pf.avg_event_size_kb > 0.0)
            link.avg_event_size = pf.avg_event_size_kb;
          lm.set_logical_link(a, b, std::move(link));
        } catch (const std::out_of_range&) {
          // Meta components are not part of the model.
        }
      }
    }
    if (prism::NetworkReliabilityMonitor* rel =
            substrate_->reliability_monitor(host)) {
      for (const prism::NetworkReliabilityMonitor::PeerReliability& pr :
           rel->collect()) {
        if (pr.peer >= k || !lm.connected(host, pr.peer)) continue;
        lm.set_link_reliability(host, pr.peer, pr.reliability);
      }
    }
  }
}

std::size_t DecentralizedInstantiation::gossip_sync() {
  const std::size_t k = design_.model().host_count();
  std::size_t sent = 0;
  for (std::size_t h = 0; h < k; ++h) {
    const auto origin = static_cast<model::HostId>(h);
    const desi::SystemData& local = *local_models_[origin];
    const model::DeploymentModel& lm = local.model();

    // Origin-owned measurements: reliabilities of adjacent links...
    prism::ByteWriter rels;
    std::uint32_t rel_count = 0;
    prism::ByteWriter rel_body;
    for (std::size_t g = 0; g < k; ++g) {
      const auto peer = static_cast<model::HostId>(g);
      if (peer == origin || !lm.connected(origin, peer)) continue;
      rel_body.u32(peer);
      rel_body.f64(lm.physical_link(origin, peer).reliability);
      ++rel_count;
    }
    rels.u32(rel_count);
    const std::vector<std::uint8_t> rel_tail = rel_body.take();
    rels.raw(rel_tail);

    // ...and the interaction frequencies its own components observed.
    prism::Architecture& arch = substrate_->architecture(origin);
    prism::ByteWriter freqs;
    std::uint32_t freq_count = 0;
    prism::ByteWriter freq_body;
    for (const model::Interaction& ix : lm.interactions()) {
      const bool owns_endpoint =
          arch.find_component(lm.component(ix.a).name) ||
          arch.find_component(lm.component(ix.b).name);
      if (!owns_endpoint) continue;
      freq_body.str(lm.component(ix.a).name);
      freq_body.str(lm.component(ix.b).name);
      freq_body.f64(ix.frequency);
      freq_body.f64(ix.avg_event_size);
      ++freq_count;
    }
    freqs.u32(freq_count);
    const std::vector<std::uint8_t> freq_tail = freq_body.take();
    freqs.raw(freq_tail);

    const std::vector<std::uint8_t> rels_blob = rels.take();
    const std::vector<std::uint8_t> freqs_blob = freqs.take();
    for (const model::HostId peer :
         substrate_->connector(origin).peers()) {
      prism::Event sync("__model_sync");
      sync.set_to(model_sync_name(peer));
      sync.set("origin", static_cast<double>(origin));
      sync.set("rels", rels_blob);
      sync.set("freqs", freqs_blob);
      sync_components_[origin]->send(std::move(sync));
      ++sent;
    }
  }
  return sent;
}

void DecentralizedInstantiation::apply_sync(model::HostId receiver,
                                            const prism::Event& event) {
  const std::optional<double> origin_raw = event.get_double("origin");
  if (!origin_raw) return;
  const auto origin = static_cast<model::HostId>(*origin_raw);
  desi::SystemData& local = *local_models_[receiver];
  model::DeploymentModel& lm = local.model();

  if (const auto* blob = event.get_bytes("rels")) {
    prism::ByteReader r(*blob);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const model::HostId peer = r.u32();
      const double reliability = r.f64();
      // Awareness: only merge data about host pairs the receiver knows —
      // i.e. links whose endpoints the receiver's model is connected to.
      if (peer >= lm.host_count() || !lm.connected(origin, peer)) continue;
      const bool aware_of_origin =
          origin == receiver || lm.connected(receiver, origin);
      const bool aware_of_peer =
          peer == receiver || lm.connected(receiver, peer);
      if (!aware_of_origin || !aware_of_peer) continue;
      lm.set_link_reliability(origin, peer, reliability);
    }
  }
  if (const auto* blob = event.get_bytes("freqs")) {
    prism::ByteReader r(*blob);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string a = r.str();
      const std::string b = r.str();
      const double frequency = r.f64();
      const double size = r.f64();
      try {
        const model::ComponentId ca = lm.component_by_name(a);
        const model::ComponentId cb = lm.component_by_name(b);
        model::LogicalLink link = lm.logical_link(ca, cb);
        link.frequency = frequency;
        if (size > 0.0) link.avg_event_size = size;
        lm.set_logical_link(ca, cb, std::move(link));
      } catch (const std::out_of_range&) {
      }
    }
  }
}

bool DecentralizedInstantiation::fits(model::HostId host,
                                      model::ComponentId component) const {
  const model::DeploymentModel& m = design_.model();
  const model::ConstraintSet& constraints = design_.constraints();
  if (!constraints.host_allowed(component, host)) return false;

  // The candidate host knows its own load exactly (ground truth).
  prism::Architecture& arch =
      const_cast<CentralizedInstantiation&>(*substrate_).architecture(host);
  double used = 0.0;
  for (const std::string& name : arch.component_names()) {
    if (name.rfind("__", 0) == 0) continue;
    if (const prism::Component* c = arch.find_component(name))
      used += c->memory_kb();
  }
  if (used + m.component(component).memory_size >
      m.host(host).memory_capacity)
    return false;

  // Collocation constraints against components actually on the host.
  for (const auto& [a, b] : constraints.anti_colocation_pairs()) {
    const model::ComponentId other =
        a == component ? b : (b == component ? a : component);
    if (other == component) continue;
    if (arch.find_component(m.component(other).name)) return false;
  }
  for (const auto& [a, b] : constraints.colocation_pairs()) {
    if (a != component && b != component) continue;
    const model::ComponentId partner = a == component ? b : a;
    // Moving one half of a must-pair is only legal onto the partner's host.
    if (!arch.find_component(m.component(partner).name)) return false;
  }
  return true;
}

double DecentralizedInstantiation::bid(model::HostId bidder,
                                       model::ComponentId component,
                                       model::HostId believed_current) const {
  (void)believed_current;
  const desi::SystemData& local = *local_models_[bidder];
  const model::DeploymentModel& lm = local.model();
  const prism::DistributionConnector& connector =
      const_cast<CentralizedInstantiation&>(*substrate_).connector(bidder);

  double utility = 0.0;
  for (const model::Interaction& ix : lm.interactions()) {
    if (ix.a != component && ix.b != component) continue;
    const model::ComponentId partner = ix.a == component ? ix.b : ix.a;
    const std::optional<model::HostId> partner_host =
        connector.location(lm.component(partner).name);
    if (!partner_host) continue;  // unknown to this host: no information
    // Awareness: a host only reasons about hosts it is connected to.
    if (*partner_host != bidder && !lm.connected(bidder, *partner_host))
      continue;
    utility += ix.frequency *
               lm.physical_link(bidder, *partner_host).reliability;
  }
  return utility;
}

double DecentralizedInstantiation::voter_delta(model::HostId voter,
                                               model::ComponentId component,
                                               model::HostId from,
                                               model::HostId to) const {
  const desi::SystemData& local = *local_models_[voter];
  const model::DeploymentModel& lm = local.model();
  // The voter's own components, from ground truth (it knows its own host).
  prism::Architecture& arch =
      const_cast<CentralizedInstantiation&>(*substrate_).architecture(voter);
  double delta = 0.0;
  for (const model::Interaction& ix : lm.interactions()) {
    if (ix.a != component && ix.b != component) continue;
    const model::ComponentId partner = ix.a == component ? ix.b : ix.a;
    if (!arch.find_component(lm.component(partner).name)) continue;
    const double before =
        lm.physical_link(from, voter).reliability * ix.frequency;
    const double after =
        lm.physical_link(to, voter).reliability * ix.frequency;
    delta += after - before;
  }
  return delta;
}

bool DecentralizedInstantiation::ratify(
    model::HostId auctioneer, const std::vector<model::HostId>& participants,
    model::ComponentId component, model::HostId from, model::HostId to) {
  ++votes_held_;
  std::size_t ayes = 0, voters = 0;
  const auto cast = [&](model::HostId voter) {
    ++voters;
    stats_.messages += 2;  // ballot out, vote back
    if (voter_delta(voter, component, from, to) >= -config_.vote_tolerance)
      ++ayes;
  };
  cast(auctioneer);
  for (const model::HostId participant : participants) cast(participant);
  const bool accepted = ayes * 2 > voters;
  if (!accepted) ++votes_rejected_;
  return accepted;
}

std::size_t DecentralizedInstantiation::auction_sweep(std::uint64_t seed) {
  const model::DeploymentModel& m = design_.model();
  const std::size_t k = m.host_count();
  util::Xoshiro256ss rng(seed);

  std::vector<model::HostId> order(k);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);

  std::vector<bool> busy(k, false);
  std::size_t migrations = 0;

  for (const model::HostId auctioneer : order) {
    if (busy[auctioneer]) continue;
    prism::DistributionConnector& connector =
        substrate_->connector(auctioneer);
    const std::vector<model::HostId>& peers = connector.peers();
    if (peers.empty()) continue;

    // Snapshot: the host's own application components (ground truth).
    std::vector<model::ComponentId> local_components;
    for (const std::string& name :
         substrate_->architecture(auctioneer).component_names()) {
      if (name.rfind("__", 0) == 0) continue;
      try {
        local_components.push_back(m.component_by_name(name));
      } catch (const std::out_of_range&) {
      }
    }
    if (local_components.empty()) continue;

    bool conducted = false;
    for (const model::ComponentId component : local_components) {
      ++stats_.auctions;
      conducted = true;
      stats_.messages += peers.size();  // announcements

      const double keep =
          bid(auctioneer, component, auctioneer);
      double best = keep;
      model::HostId winner = auctioneer;
      for (const model::HostId bidder : peers) {
        ++stats_.messages;  // bid reply
        if (!fits(bidder, component)) continue;
        const double value = bid(bidder, component, auctioneer);
        if (value > best + config_.min_gain) {
          best = value;
          winner = bidder;
        }
      }
      if (winner == auctioneer) continue;

      // Decentralized Analyzer ratification: participants vote with their
      // own partial knowledge before the move is effected.
      if (config_.ratify_moves &&
          !ratify(auctioneer, peers, component, auctioneer, winner))
        continue;

      // Effect: hand the winning host's Local Effector a new configuration
      // for this component; it pulls it via the migration protocol.
      prism::Event new_config("__new_config");
      new_config.set_to(prism::admin_name(winner));
      prism::ByteWriter config;
      config.u32(1);
      config.str(m.component(component).name);
      config.u32(winner);
      new_config.set("config", config.take());
      prism::ByteWriter locations;
      locations.u32(1);
      locations.str(m.component(component).name);
      locations.u32(auctioneer);
      new_config.set("locations", locations.take());
      substrate_->architecture(winner).post_to(prism::admin_name(winner),
                                               new_config);
      ++stats_.messages;
      ++migrations;
    }

    if (conducted) {
      busy[auctioneer] = true;
      for (const model::HostId peer : peers)
        if (peer < k) busy[peer] = true;
    }
  }

  ++stats_.rounds;
  stats_.migrations += migrations;
  return migrations;
}

}  // namespace dif::core
