#include "core/improvement_loop.h"

#include <algorithm>

#include "util/logging.h"

namespace dif::core {

namespace {

/// The loop-level warm_start switch implies the analyzer-level one.
analyzer::CentralizedAnalyzer::Policy effective_policy(
    const ImprovementLoop::Config& config) {
  analyzer::CentralizedAnalyzer::Policy policy = config.policy;
  policy.warm_start = policy.warm_start || config.warm_start;
  return policy;
}

}  // namespace

ImprovementLoop::ImprovementLoop(CentralizedInstantiation& instantiation,
                                 const model::Objective& objective,
                                 Config config)
    : instantiation_(instantiation),
      objective_(objective),
      config_(config),
      registry_(algo::AlgorithmRegistry::with_defaults()),
      analyzer_(registry_, effective_policy(config)),
      escalation_(config.escalation),
      current_interval_ms_(config.interval_ms) {
  if (config_.warm_start) {
    detail_listener_id_ =
        instantiation_.system().model().add_detail_listener(
            [this](const model::ModelChange& change) {
              on_model_change(change);
            });
    has_detail_listener_ = true;
  }
}

ImprovementLoop::~ImprovementLoop() {
  if (has_detail_listener_)
    instantiation_.system().model().remove_detail_listener(
        detail_listener_id_);
}

void ImprovementLoop::mark_host_dirty(model::HostId host) {
  const model::Deployment& d = instantiation_.system().deployment();
  for (std::size_t c = 0; c < d.size(); ++c)
    if (d.host_of(static_cast<model::ComponentId>(c)) == host)
      dirty_.push_back(static_cast<model::ComponentId>(c));
}

void ImprovementLoop::on_model_change(const model::ModelChange& change) {
  switch (change.event) {
    case model::ModelEvent::kTopologyChanged:
      // A new host/component invalidates the previous optimization wholesale.
      all_dirty_ = true;
      break;
    case model::ModelEvent::kPhysicalLinkChanged:
      if (change.host_a == model::kNoHost || change.host_b == model::kNoHost) {
        all_dirty_ = true;
      } else {
        // A fluctuated link affects every component placed on either end.
        mark_host_dirty(change.host_a);
        mark_host_dirty(change.host_b);
      }
      break;
    case model::ModelEvent::kLogicalLinkChanged:
      if (change.component_a == model::kNoComponent ||
          change.component_b == model::kNoComponent) {
        all_dirty_ = true;
      } else {
        dirty_.push_back(change.component_a);
        dirty_.push_back(change.component_b);
      }
      break;
    case model::ModelEvent::kEntityParamChanged:
      if (change.component_a != model::kNoComponent) {
        dirty_.push_back(change.component_a);
      } else if (change.host_a != model::kNoHost) {
        mark_host_dirty(change.host_a);
      } else {
        // Anonymous notify_entity_changed(): not attributable.
        all_dirty_ = true;
      }
      break;
  }
}

void ImprovementLoop::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void ImprovementLoop::schedule_next() {
  instantiation_.simulator().schedule_after(current_interval_ms_, [this] {
    if (!running_) return;
    tick();
    schedule_next();
  });
}

analyzer::Decision ImprovementLoop::tick() {
  ++tick_count_;
  desi::SystemData& system = instantiation_.system();
  const model::ConstraintChecker checker(system.model(),
                                         system.constraints());
  const double now = instantiation_.simulator().now();
  const double value =
      objective_.evaluate(system.model(), system.deployment());
  profile_.add_sample(now, value);
  if (pending_realization_ &&
      !instantiation_.deployer().redeployment_in_flight()) {
    // First quiescent measurement after an applied redeployment: this is
    // the "result of the previous redeployment" the profile logs.
    profile_.record_realized(value);
    pending_realization_ = false;
  }

  analyzer::Decision decision;
  bool effected = false;
  // Guard on *our own* outstanding redeployment only. The deployer may be
  // busy for other reasons (an externally-effected redeployment); analysis
  // then proceeds and the effector's rejection is recorded explicitly
  // below, instead of being misfiled as an applied redeployment.
  if (effect_outstanding_) {
    decision.reason = "redeployment in flight; skipping analysis";
    decision.value_before = value;
  } else {
    if (config_.enable_escalation)
      analyzer_.set_stable_algorithm(escalation_.current());
    // Warm analysis: hand over the deduped delta accumulated since the
    // last analysis. First tick and un-attributable changes stay cold.
    std::vector<model::ComponentId> dirty_now;
    const std::vector<model::ComponentId>* dirty_ptr = nullptr;
    if (config_.warm_start && warm_primed_ && !all_dirty_) {
      dirty_now = dirty_;
      std::sort(dirty_now.begin(), dirty_now.end());
      dirty_now.erase(std::unique(dirty_now.begin(), dirty_now.end()),
                      dirty_now.end());
      dirty_ptr = &dirty_now;
    }
    decision = analyzer_.analyze(system.model(), objective_, checker,
                                 system.deployment(), profile_,
                                 config_.seed + tick_count_, dirty_ptr);
    if (config_.warm_start) {
      // This analysis consumed the delta (cold runs consume everything).
      dirty_.clear();
      all_dirty_ = false;
      warm_primed_ = true;
    }
    if (config_.enable_escalation) escalation_.observe(decision);
    if (decision.action == analyzer::Decision::Action::kRedeploy) {
      effect_outstanding_ = true;
      const std::size_t tick_index = history_.size();
      const bool accepted = instantiation_.adapter().effect(
          decision.target,
          [this, tick_index](bool success, std::size_t migrations) {
            effect_outstanding_ = false;
            if (success) {
              ++applied_;
              pending_realization_ = true;
            } else {
              // The round aborted, timed out, or rolled back: the old
              // placement stands (or was restored), so the paper's ledger
              // must show an effector rejection, not an applied
              // redeployment. Amend the tick that launched the round — it
              // was recorded as effected before the outcome was known.
              ++rejected_;
              if (obs_.metrics)
                obs_.metrics->counter("loop.effector_rejected").add(1);
              const char* outcome =
                  prism::to_string(instantiation_.deployer().last_outcome());
              if (tick_index < history_.size()) {
                TickRecord& launched = history_[tick_index];
                launched.effected = false;
                launched.reason +=
                    std::string(" (effector: round ") + outcome + ")";
              }
            }
            util::log_info("loop", "redeployment finished, success=",
                           success, " migrations=", migrations);
          });
      if (accepted) {
        effected = true;
      } else {
        effect_outstanding_ = false;
        ++rejected_;
        decision.reason += " (effector rejected: redeployment in flight)";
        if (obs_.metrics)
          obs_.metrics->counter("loop.effector_rejected").add(1);
      }
    }
  }

  if (config_.adaptive_interval) {
    // Only an *effected* redeployment resets the cadence: a rejected one
    // changed nothing, so re-examining sooner would just re-reject.
    if (effected) {
      current_interval_ms_ = config_.interval_ms;
    } else {
      current_interval_ms_ = std::min(
          current_interval_ms_ * config_.backoff_factor,
          config_.max_interval_ms);
    }
  }

  if (obs_.metrics) {
    obs_.metrics->counter("loop.ticks").add(1);
    obs_.metrics->gauge("loop.objective").set(value);
    obs_.metrics->gauge("loop.interval_ms").set(current_interval_ms_);
    if (effected)
      obs_.metrics->counter("loop.redeployments_effected").add(1);
  }
  if (obs_.trace) {
    const char* action = "keep";
    if (decision.action == analyzer::Decision::Action::kRedeploy)
      action = effected ? "redeploy" : "redeploy_rejected";
    else if (decision.reason.rfind("redeployment in flight", 0) == 0)
      action = "skip_in_flight";
    obs_.trace->add_span(
        now, 0.0, "loop.tick",
        {{"objective", value},
         {"action", std::string(action)},
         {"algorithm", decision.algorithm},
         {"migrations", static_cast<std::int64_t>(decision.migrations)}});
  }

  history_.push_back({now, value, decision.action, decision.algorithm,
                      decision.reason, decision.migrations, effected});
  return decision;
}

}  // namespace dif::core
