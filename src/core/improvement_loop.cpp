#include "core/improvement_loop.h"

#include <algorithm>

#include "util/logging.h"

namespace dif::core {

ImprovementLoop::ImprovementLoop(CentralizedInstantiation& instantiation,
                                 const model::Objective& objective,
                                 Config config)
    : instantiation_(instantiation),
      objective_(objective),
      config_(config),
      registry_(algo::AlgorithmRegistry::with_defaults()),
      analyzer_(registry_, config.policy),
      escalation_(config.escalation),
      current_interval_ms_(config.interval_ms) {}

void ImprovementLoop::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void ImprovementLoop::schedule_next() {
  instantiation_.simulator().schedule_after(current_interval_ms_, [this] {
    if (!running_) return;
    tick();
    schedule_next();
  });
}

analyzer::Decision ImprovementLoop::tick() {
  ++tick_count_;
  desi::SystemData& system = instantiation_.system();
  const model::ConstraintChecker checker(system.model(),
                                         system.constraints());
  const double now = instantiation_.simulator().now();
  const double value =
      objective_.evaluate(system.model(), system.deployment());
  profile_.add_sample(now, value);
  if (pending_realization_ &&
      !instantiation_.deployer().redeployment_in_flight()) {
    // First quiescent measurement after an applied redeployment: this is
    // the "result of the previous redeployment" the profile logs.
    profile_.record_realized(value);
    pending_realization_ = false;
  }

  analyzer::Decision decision;
  bool effected = false;
  // Guard on *our own* outstanding redeployment only. The deployer may be
  // busy for other reasons (an externally-effected redeployment); analysis
  // then proceeds and the effector's rejection is recorded explicitly
  // below, instead of being misfiled as an applied redeployment.
  if (effect_outstanding_) {
    decision.reason = "redeployment in flight; skipping analysis";
    decision.value_before = value;
  } else {
    if (config_.enable_escalation)
      analyzer_.set_stable_algorithm(escalation_.current());
    decision = analyzer_.analyze(system.model(), objective_, checker,
                                 system.deployment(), profile_,
                                 config_.seed + tick_count_);
    if (config_.enable_escalation) escalation_.observe(decision);
    if (decision.action == analyzer::Decision::Action::kRedeploy) {
      effect_outstanding_ = true;
      const std::size_t tick_index = history_.size();
      const bool accepted = instantiation_.adapter().effect(
          decision.target,
          [this, tick_index](bool success, std::size_t migrations) {
            effect_outstanding_ = false;
            if (success) {
              ++applied_;
              pending_realization_ = true;
            } else {
              // The round aborted, timed out, or rolled back: the old
              // placement stands (or was restored), so the paper's ledger
              // must show an effector rejection, not an applied
              // redeployment. Amend the tick that launched the round — it
              // was recorded as effected before the outcome was known.
              ++rejected_;
              if (obs_.metrics)
                obs_.metrics->counter("loop.effector_rejected").add(1);
              const char* outcome =
                  prism::to_string(instantiation_.deployer().last_outcome());
              if (tick_index < history_.size()) {
                TickRecord& launched = history_[tick_index];
                launched.effected = false;
                launched.reason +=
                    std::string(" (effector: round ") + outcome + ")";
              }
            }
            util::log_info("loop", "redeployment finished, success=",
                           success, " migrations=", migrations);
          });
      if (accepted) {
        effected = true;
      } else {
        effect_outstanding_ = false;
        ++rejected_;
        decision.reason += " (effector rejected: redeployment in flight)";
        if (obs_.metrics)
          obs_.metrics->counter("loop.effector_rejected").add(1);
      }
    }
  }

  if (config_.adaptive_interval) {
    // Only an *effected* redeployment resets the cadence: a rejected one
    // changed nothing, so re-examining sooner would just re-reject.
    if (effected) {
      current_interval_ms_ = config_.interval_ms;
    } else {
      current_interval_ms_ = std::min(
          current_interval_ms_ * config_.backoff_factor,
          config_.max_interval_ms);
    }
  }

  if (obs_.metrics) {
    obs_.metrics->counter("loop.ticks").add(1);
    obs_.metrics->gauge("loop.objective").set(value);
    obs_.metrics->gauge("loop.interval_ms").set(current_interval_ms_);
    if (effected)
      obs_.metrics->counter("loop.redeployments_effected").add(1);
  }
  if (obs_.trace) {
    const char* action = "keep";
    if (decision.action == analyzer::Decision::Action::kRedeploy)
      action = effected ? "redeploy" : "redeploy_rejected";
    else if (decision.reason.rfind("redeployment in flight", 0) == 0)
      action = "skip_in_flight";
    obs_.trace->add_span(
        now, 0.0, "loop.tick",
        {{"objective", value},
         {"action", std::string(action)},
         {"algorithm", decision.algorithm},
         {"migrations", static_cast<std::int64_t>(decision.migrations)}});
  }

  history_.push_back({now, value, decision.action, decision.algorithm,
                      decision.reason, decision.migrations, effected});
  return decision;
}

}  // namespace dif::core
