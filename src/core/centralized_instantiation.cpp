#include "core/centralized_instantiation.h"

#include <stdexcept>

namespace dif::core {

CentralizedInstantiation::CentralizedInstantiation(desi::SystemData& system,
                                                   FrameworkConfig config)
    : system_(system), config_(config) {
  const model::DeploymentModel& m = system.model();
  const std::size_t k = m.host_count();
  if (k == 0) throw std::invalid_argument("instantiation: no hosts");
  if (config_.master_host >= k)
    throw std::invalid_argument("instantiation: bad master host");
  if (!system.deployment().complete())
    throw std::invalid_argument("instantiation: incomplete deployment");

  network_ = std::make_unique<sim::SimNetwork>(
      sim::SimNetwork::from_model(sim_, m, config_.seed));
  scaffold_ = std::make_unique<prism::SimScaffold>(sim_);
  WorkloadComponent::register_with(factory_);

  // --- per-host architectures and connectors -------------------------------
  for (std::size_t h = 0; h < k; ++h) {
    const auto host = static_cast<model::HostId>(h);
    auto arch = std::make_unique<prism::Architecture>(
        "arch@" + m.host(host).name, *scaffold_, host);
    auto connector = std::make_unique<prism::DistributionConnector>(
        "dist@" + m.host(host).name, *network_, host);
    for (std::size_t g = 0; g < k; ++g)
      if (g != h && m.connected(host, static_cast<model::HostId>(g)))
        connector->add_peer(static_cast<model::HostId>(g));
    if (config_.create_deployer) connector->set_mediator(config_.master_host);
    if (config_.enable_store_and_forward)
      connector->enable_store_and_forward(config_.store_and_forward_retry_ms);
    connectors_.push_back(
        &static_cast<prism::DistributionConnector&>(
            arch->add_connector(std::move(connector))));
    architectures_.push_back(std::move(arch));
  }

  // --- static multi-hop routes -------------------------------------------------
  // The mediator covers non-adjacent host pairs only while the master is a
  // hub. For every pair without a direct link, compute the first hop of a
  // shortest path (BFS over the design-time topology) so events can be
  // relayed host-by-host: each intermediate admin's undeliverable handler
  // re-routes the event onward. Unreachable pairs simply get no route.
  for (std::size_t h = 0; h < k; ++h) {
    const auto origin = static_cast<model::HostId>(h);
    std::vector<model::HostId> parent(k, origin);
    std::vector<bool> seen(k, false);
    seen[h] = true;
    std::vector<model::HostId> frontier{origin};
    while (!frontier.empty()) {
      std::vector<model::HostId> next;
      for (const model::HostId at : frontier)
        for (std::size_t g = 0; g < k; ++g) {
          const auto peer = static_cast<model::HostId>(g);
          if (seen[g] || !m.connected(at, peer)) continue;
          seen[g] = true;
          parent[g] = at;
          next.push_back(peer);
        }
      frontier = std::move(next);
    }
    for (std::size_t g = 0; g < k; ++g) {
      const auto destination = static_cast<model::HostId>(g);
      if (g == h || !seen[g] || m.connected(origin, destination)) continue;
      model::HostId hop = destination;
      while (parent[hop] != origin) hop = parent[hop];
      connectors_[h]->set_next_hop(destination, hop);
    }
  }

  // --- location tables: initial deployment + meta components -----------------
  for (std::size_t h = 0; h < k; ++h) {
    prism::DistributionConnector& connector = *connectors_[h];
    for (std::size_t c = 0; c < m.component_count(); ++c) {
      const auto comp = static_cast<model::ComponentId>(c);
      connector.set_location(m.component(comp).name,
                             system.deployment().host_of(comp));
    }
    for (std::size_t g = 0; g < k; ++g)
      connector.set_location(prism::admin_name(static_cast<model::HostId>(g)),
                             static_cast<model::HostId>(g));
    if (config_.create_deployer)
      connector.set_location(prism::deployer_name(), config_.master_host);
  }

  // --- monitors, admins, deployer --------------------------------------------
  std::vector<model::HostId> all_hosts;
  for (std::size_t h = 0; h < k; ++h)
    all_hosts.push_back(static_cast<model::HostId>(h));
  prism::AdminComponent::Params admin_params = config_.admin;
  admin_params.fleet = all_hosts;

  for (std::size_t h = 0; h < k; ++h) {
    const auto host = static_cast<model::HostId>(h);
    std::shared_ptr<prism::EvtFrequencyMonitor> freq;
    prism::NetworkReliabilityMonitor* rel = nullptr;
    if (config_.enable_monitoring) {
      freq = std::make_shared<prism::EvtFrequencyMonitor>(*scaffold_);
      rel_monitors_.push_back(
          std::make_unique<prism::NetworkReliabilityMonitor>(
              *connectors_[h], sim_, config_.reliability));
      rel = rel_monitors_.back().get();
    }
    freq_monitors_.push_back(freq);

    auto admin = std::make_unique<prism::AdminComponent>(
        host, *connectors_[h], factory_, freq, rel, admin_params);
    admins_.push_back(&static_cast<prism::AdminComponent&>(
        architectures_[h]->add_component(std::move(admin))));
    architectures_[h]->weld(*admins_[h], *connectors_[h]);

    if (config_.create_deployer && host == config_.master_host) {
      // The deployer runs beside the master's regular admin, under its own
      // "__deployer" identity (monitoring stays with the admin).
      prism::DeployerComponent::DeployerParams deployer_params =
          config_.deployer;
      deployer_params.admin_hosts = all_hosts;
      auto deployer = std::make_unique<prism::DeployerComponent>(
          host, *connectors_[h], factory_, nullptr, nullptr, admin_params,
          deployer_params);
      deployer_ = &static_cast<prism::DeployerComponent&>(
          architectures_[h]->add_component(std::move(deployer)));
      architectures_[h]->weld(*deployer_, *connectors_[h]);
    }
  }

  // --- application components per the initial deployment -----------------------
  for (std::size_t c = 0; c < m.component_count(); ++c) {
    const auto comp = static_cast<model::ComponentId>(c);
    const model::HostId host = system.deployment().host_of(comp);
    std::vector<WorkloadComponent::Link> links;
    for (const model::Interaction& ix : m.interactions()) {
      // Send the full modelled frequency in one canonical direction so the
      // monitored (from, to) pair maps 1:1 onto the symmetric logical link.
      if (ix.a != comp) continue;
      links.push_back({m.component(ix.b).name, ix.frequency,
                       ix.avg_event_size});
    }
    auto workload = std::make_unique<WorkloadComponent>(
        m.component(comp).name, m.component(comp).memory_size,
        std::move(links));
    prism::Component& attached =
        architectures_[host]->add_component(std::move(workload));
    architectures_[host]->weld(attached, *connectors_[host]);
    if (config_.enable_monitoring && freq_monitors_[host])
      attached.add_monitor(freq_monitors_[host]);
  }

  if (deployer_) {
    adapter_ = std::make_unique<desi::MiddlewareAdapter>(system_, *deployer_);
    adapter_->attach_monitor();
  }
}

CentralizedInstantiation::~CentralizedInstantiation() = default;

void CentralizedInstantiation::start() {
  for (const auto& arch : architectures_) {
    for (const std::string& name : arch->component_names()) {
      if (auto* workload =
              dynamic_cast<WorkloadComponent*>(arch->find_component(name)))
        workload->start();
    }
  }
  if (config_.enable_monitoring) {
    for (const auto& rel : rel_monitors_) rel->start();
    if (config_.enable_admin_reporting)
      for (prism::AdminComponent* admin : admins_) admin->start_reporting();
  }
}

void CentralizedInstantiation::set_instruments(obs::Instruments instruments) {
  network_->set_instruments(instruments);
  for (const auto& freq : freq_monitors_)
    if (freq) freq->set_instruments(instruments);
  for (const auto& rel : rel_monitors_) rel->set_instruments(instruments);
  for (prism::AdminComponent* admin : admins_)
    admin->set_instruments(instruments);
  if (deployer_) deployer_->set_instruments(instruments);
}

prism::AdminComponent& CentralizedInstantiation::admin(model::HostId host) {
  return *admins_.at(host);
}

void CentralizedInstantiation::crash_host(model::HostId host) {
  network_->fail_host(host);
  admins_.at(host)->crash();
  if (deployer_ && host == config_.master_host) deployer_->crash();
}

void CentralizedInstantiation::restart_host(model::HostId host) {
  network_->recover_host(host);
  if (deployer_ && host == config_.master_host)
    deployer_->restart(/*resume_reporting=*/false);
  admins_.at(host)->restart(config_.enable_monitoring &&
                            config_.enable_admin_reporting);
}

model::Deployment CentralizedInstantiation::runtime_deployment() const {
  const model::DeploymentModel& m = system_.model();
  model::Deployment d(m.component_count());
  for (std::size_t h = 0; h < architectures_.size(); ++h) {
    for (const std::string& name : architectures_[h]->component_names()) {
      if (name.rfind("__", 0) == 0) continue;
      try {
        d.assign(m.component_by_name(name), static_cast<model::HostId>(h));
      } catch (const std::out_of_range&) {
        // A component unknown to the model (shouldn't happen in practice).
      }
    }
  }
  return d;
}

CentralizedInstantiation::WorkloadStats
CentralizedInstantiation::workload_stats() const {
  WorkloadStats stats;
  for (const auto& arch : architectures_) {
    for (const std::string& name : arch->component_names()) {
      if (const auto* workload =
              dynamic_cast<const WorkloadComponent*>(
                  arch->find_component(name))) {
        stats.sent += workload->events_sent();
        stats.received += workload->events_received();
      }
    }
  }
  return stats;
}

}  // namespace dif::core
