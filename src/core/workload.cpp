#include "core/workload.h"

namespace dif::core {

WorkloadComponent::WorkloadComponent(std::string name, double memory_kb,
                                     std::vector<Link> links)
    : prism::Component(std::move(name)),
      memory_kb_(memory_kb),
      links_(std::move(links)) {}

WorkloadComponent::WorkloadComponent(std::string name)
    : prism::Component(std::move(name)) {}

void WorkloadComponent::handle(const prism::Event& event) {
  if (event.name() == "app.msg") ++received_;
}

void WorkloadComponent::serialize_state(prism::ByteWriter& writer) const {
  writer.f64(memory_kb_);
  writer.u64(sent_);
  writer.u64(received_);
  writer.u64(epoch_);
  writer.u32(static_cast<std::uint32_t>(links_.size()));
  for (const Link& link : links_) {
    writer.str(link.peer);
    writer.f64(link.frequency);
    writer.f64(link.size_kb);
  }
}

void WorkloadComponent::restore_state(prism::ByteReader& reader) {
  memory_kb_ = reader.f64();
  sent_ = reader.u64();
  received_ = reader.u64();
  epoch_ = reader.u64();  // start() will advance it past the old schedule
  const std::uint32_t count = reader.u32();
  links_.clear();
  links_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Link link;
    link.peer = reader.str();
    link.frequency = reader.f64();
    link.size_kb = reader.f64();
    links_.push_back(std::move(link));
  }
}

void WorkloadComponent::start() {
  if (!architecture()) return;
  running_ = true;
  ++epoch_;  // kills any schedule chain belonging to a previous attachment
  for (std::size_t i = 0; i < links_.size(); ++i) schedule_link(i);
}

void WorkloadComponent::on_attached() {
  // Restart the sending schedule automatically after a migration (the
  // original instance was started explicitly; a migrant restores running_
  // only implicitly via this hook — it was running when it was detached).
  if (!links_.empty() && epoch_ > 0) start();
}

void WorkloadComponent::on_detached() { running_ = false; }

void WorkloadComponent::schedule_link(std::size_t index) {
  const Link& link = links_[index];
  if (link.frequency <= 0.0) return;
  const double interval_ms = 1000.0 / link.frequency;
  // The callback re-resolves the component by name: after a migration this
  // instance is destroyed, and the chain must die (the migrant restarts its
  // own chain with a newer epoch).
  prism::Architecture* arch = architecture();
  const std::string self = name();
  const std::uint64_t epoch = epoch_;
  arch->scaffold().schedule(interval_ms, [arch, self, epoch, index] {
    auto* component = dynamic_cast<WorkloadComponent*>(
        arch->find_component(self));
    if (!component || !component->running_ || component->epoch_ != epoch)
      return;
    const Link& l = component->links_[index];
    prism::Event event("app.msg");
    event.set_to(l.peer);
    // Materialize the payload so event.size_kb() reflects the modelled
    // event size and bandwidth accounting is faithful.
    event.set("payload", std::vector<std::uint8_t>(
                             static_cast<std::size_t>(l.size_kb * 1024.0)));
    component->send(std::move(event));
    ++component->sent_;
    component->schedule_link(index);
  });
}

void WorkloadComponent::register_with(prism::ComponentFactory& factory) {
  factory.register_type("workload", [](std::string name) {
    return std::make_unique<WorkloadComponent>(std::move(name));
  });
}

}  // namespace dif::core
