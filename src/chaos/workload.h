// Composable adversarial workloads.
//
// A WorkloadSpec stacks independent fault *layers* on top of one shared
// timeline: classic ScenarioSpec draws (partitions, loss bursts, ...),
// correlated region kills, process suspensions (host unreachable but state
// preserved), and rolling restarts. Layers are authored independently and
// composed by `compile`, which draws every layer from its own forked RNG
// stream against one shared OverlapLedger — so adding a layer never
// perturbs the faults an earlier layer draws for a given seed, and two
// layers can never fight over the same link field or host liveness lane.
//
// compile() is a pure function of (spec, model, master, seed), exactly like
// FaultSchedule::compile — the workload library inherits the campaign
// engine's byte-replayability for free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "chaos/scenario.h"
#include "model/deployment_model.h"

namespace dif::chaos {

enum class WorkloadLayerKind {
  kScenario,          // a full ScenarioSpec draw (existing fault families)
  kKillRegion,        // every host of one region crashes in one window
  kSuspendProcesses,  // kSuspend faults: unreachable, state preserved
  kRollingRestart,    // staggered one-host-at-a-time crashes
};

[[nodiscard]] std::string_view to_string(WorkloadLayerKind kind) noexcept;

struct WorkloadLayer {
  WorkloadLayerKind kind = WorkloadLayerKind::kScenario;

  /// kScenario: the full spec to draw (its own window/counts/magnitudes).
  ScenarioSpec scenario;

  /// kKillRegion: which region dies. When `draw_region` the region index is
  /// drawn from the layer's RNG stream instead (among regions that contain
  /// at least one killable host).
  std::size_t region = 0;
  bool draw_region = true;

  /// kSuspendProcesses: how many suspensions to draw.
  std::size_t count = 2;

  /// kKillRegion / kSuspendProcesses: outage length drawn uniformly from
  /// [min_down_ms, max_down_ms]. kRollingRestart: every host is down for
  /// exactly min_down_ms.
  double min_down_ms = 6'000.0;
  double max_down_ms = 12'000.0;

  /// kRollingRestart: gap between one host's restart and the next host's
  /// crash.
  double stagger_ms = 2'000.0;
};

class WorkloadSpec {
 public:
  explicit WorkloadSpec(std::string name = "workload") {
    base_.name = std::move(name);
    // The base spec contributes magnitudes and the fault window only; its
    // fault counts are zeroed so faults come exclusively from layers.
    base_.partitions = base_.loss_bursts = base_.degradations = 0;
    base_.crashes = base_.noise_bursts = 0;
  }

  /// Shared timeline + injector magnitudes (window, burst reliability,
  /// degrade factors, crash_master). Fault counts on it are ignored.
  [[nodiscard]] ScenarioSpec& base() noexcept { return base_; }
  [[nodiscard]] const ScenarioSpec& base() const noexcept { return base_; }

  WorkloadSpec& add_scenario(ScenarioSpec spec) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayerKind::kScenario;
    layer.scenario = std::move(spec);
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Correlated zone failure: every killable host of one region crashes at
  /// the same instant and restarts together.
  WorkloadSpec& kill_region() {
    WorkloadLayer layer;
    layer.kind = WorkloadLayerKind::kKillRegion;
    layers_.push_back(layer);
    return *this;
  }
  WorkloadSpec& kill_region(std::size_t region) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayerKind::kKillRegion;
    layer.region = region;
    layer.draw_region = false;
    layers_.push_back(layer);
    return *this;
  }

  /// `count` suspensions (host unreachable, process state preserved —
  /// long GC pauses / SIGSTOP, not crashes).
  WorkloadSpec& suspend_processes(std::size_t count) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayerKind::kSuspendProcesses;
    layer.count = count;
    layers_.push_back(layer);
    return *this;
  }

  /// Staggered restart sweep over every killable host, one at a time.
  WorkloadSpec& rolling_restart(double down_ms = 6'000.0,
                                double stagger_ms = 2'000.0) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayerKind::kRollingRestart;
    layer.min_down_ms = layer.max_down_ms = down_ms;
    layer.stagger_ms = stagger_ms;
    layers_.push_back(layer);
    return *this;
  }

  WorkloadSpec& add_layer(WorkloadLayer layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  [[nodiscard]] const std::vector<WorkloadLayer>& layers() const noexcept {
    return layers_;
  }

  /// Draws every layer against `m` from its own `seed`-derived stream into
  /// one FaultSchedule. Layer i's actions depend only on (layer i, model,
  /// master, seed) — appending a layer never changes what the earlier
  /// layers drew.
  [[nodiscard]] FaultSchedule compile(const model::DeploymentModel& m,
                                      model::HostId master_host,
                                      std::uint64_t seed) const;

 private:
  ScenarioSpec base_;
  std::vector<WorkloadLayer> layers_;
};

}  // namespace dif::chaos
