// Scenario specifications for the fault-injection campaign engine.
//
// A ScenarioSpec is the *shape* of a perturbation campaign — how many of
// each fault family to inject, into which time window, and how hard. The
// spec deliberately contains no concrete hosts, links, or times: those are
// drawn deterministically from a seed when FaultSchedule::compile turns a
// spec into a timed action list, so one spec replayed over N seeds yields N
// distinct but exactly reproducible runs (the campaign methodology of the
// Rainbow / DecAp self-adaptation evaluations: systematic perturbation, not
// hand-picked outages).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dif::chaos {

struct ScenarioSpec {
  std::string name = "mixed";

  /// Total simulated run length; the improvement loop keeps ticking for the
  /// whole stretch.
  double duration_ms = 120'000.0;

  /// Faults strike inside [fault_from_ms, fault_until_ms] and every one of
  /// them heals by fault_until_ms, so the remainder of the run is a
  /// guaranteed convergence window (the campaign's availability invariant
  /// is judged after it).
  double fault_from_ms = 5'000.0;
  double fault_until_ms = 70'000.0;

  /// How many faults of each family to inject.
  std::size_t partitions = 2;     // hard link severs
  std::size_t loss_bursts = 2;    // reliability collapses on a link
  std::size_t degradations = 2;   // bandwidth/latency squeeze on a link
  std::size_t crashes = 1;        // host crash + restart (state loss)
  std::size_t noise_bursts = 1;   // rapid reliability oscillation

  /// Individual fault durations are drawn uniformly from this range
  /// (clamped so healing never slips past fault_until_ms).
  double min_fault_ms = 4'000.0;
  double max_fault_ms = 15'000.0;

  /// Reliability a link collapses to during a loss burst.
  double burst_reliability = 0.15;
  /// Bandwidth multiplier / delay multiplier during a degradation.
  double degrade_bandwidth_factor = 0.25;
  double degrade_delay_factor = 4.0;
  /// Monitor-noise injection: the link's reliability flips between
  /// base*(1-amplitude) and base*(1+amplitude) every period — fluctuation
  /// faster than any real drift, which the admins' stability filters
  /// (paper §3.1) are supposed to swallow without triggering adaptation.
  double noise_amplitude = 0.3;
  double noise_period_ms = 400.0;

  /// Whether the master host (deployer) may be crash targeted. Off by
  /// default: the centralized instantiation's master is the paper's
  /// always-reachable Headquarters.
  bool crash_master = false;
};

/// Built-in presets: "mixed" (the default above), one single-family
/// scenario per fault kind ("partitions", "loss", "degrade", "crashes",
/// "noise"), "midmigration" (faults aimed at the redeployment window),
/// "killhost" (one long host outage — the recovery reference scenario),
/// and "quiet" (no faults — the control run).
[[nodiscard]] ScenarioSpec scenario_by_name(const std::string& name);
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace dif::chaos
