// The fault-injection campaign engine (the "chaos" layer's public face).
//
// A campaign runs the full improvement stack — generated system, Prism-MW
// instantiation, monitors, analyzer/auction, effectors — under a compiled
// FaultSchedule, once per (seed, mode) pair, and checks dependability
// invariants after every run:
//
//   conservation   delivered + dropped + unroutable never exceeds sent, and
//                  per-link drop shares never exceed the global drop count
//   epoch          the deployer's redeployment epoch is monotonic for the
//                  whole run (sampled periodically), including across master
//                  crashes, and at least one epoch exists per completed round
//   census         after the convergence window every application component
//                  is hosted exactly once — nothing lost by a crash, nothing
//                  duplicated by a recovered transfer
//   atomicity      the last redeployment round left every component it
//                  *resolved* where the round declared it — the proposed
//                  deployment, the checkpoint, or a declared partial
//                  commit — never an undeclared mix (components the round
//                  explicitly declared unresolved are bound only by the
//                  census invariant)
//   availability   the converged deployment, scored on a pristine copy of
//                  the generated model, is no worse than the initial
//                  deployment (within CampaignConfig::availability_tolerance)
//   preflight      the run-time-mutated model still passes the static
//                  checker's pre-flight rule set
//   audit          after a cleanly committed round with a complete runtime
//                  placement, the placement-auditor (check/audit.h) finds
//                  no location/capacity/collocation error against the
//                  pristine model (bandwidth advisories excluded — the sim
//                  mediates unconnected hosts)
//
// Everything is deterministic in the seed: generation, fault times and
// targets, protocol interleavings, and therefore the whole report —
// identical seeds yield byte-identical JSON (schema "dif-campaign-v1").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "chaos/scenario.h"
#include "desi/generator.h"
#include "obs/instruments.h"
#include "util/json.h"

namespace dif::chaos {

struct CampaignConfig {
  ScenarioSpec scenario;
  /// One run per seed (per enabled mode).
  std::vector<std::uint64_t> seeds = {0, 1, 2, 3};
  /// Which framework instantiations to drive.
  bool centralized = true;
  bool decentralized = true;
  /// The system under test, regenerated per seed.
  desi::GeneratorSpec generator;
  /// Improvement-loop cadence (centralized mode).
  double improve_interval_ms = 5'000.0;
  /// Extra post-scenario time for in-flight transfers to finish before the
  /// census / availability / atomicity invariants are judged. Must exceed
  /// redeploy_timeout_ms + rollback_timeout_ms so a round launched at the
  /// very end of the run is guaranteed closed at judgment time.
  double settle_ms = 30'000.0;
  /// Transactional-effector budgets for the centralized runs: tight enough
  /// that every round (including its rollback) resolves inside settle_ms.
  double redeploy_timeout_ms = 10'000.0;
  double rollback_timeout_ms = 15'000.0;
  /// Graceful degradation: let rolled-back rounds keep their completed
  /// migrations (rounds then close as "partial" instead of "rolled_back").
  bool allow_partial = false;
  /// Slack allowed on the availability invariant: transient faults steer
  /// the adaptation through states optimized against *observed* (degraded)
  /// reliabilities, and hill-climbing back after the heal may stop within
  /// the analyzer's min_improvement of the initial score.
  double availability_tolerance = 0.0;
  /// Epoch-monotonicity sampling period.
  double epoch_probe_ms = 5'000.0;

  CampaignConfig() {
    generator.hosts = 5;
    generator.components = 14;
    generator.reliability = {0.60, 0.99};
    generator.bandwidth = {50.0, 400.0};
    generator.link_density = 0.5;
    generator.interaction_density = 0.25;
  }
};

struct InvariantViolation {
  std::string invariant;  // "conservation", "epoch", "census", ...
  std::string detail;
};

/// Everything observed in one (seed, mode) run. All fields are pure
/// functions of the seed — no wall-clock values.
struct RunReport {
  std::uint64_t seed = 0;
  std::string mode;      // "centralized" | "decentralized"
  std::string scenario;
  std::size_t actions_scheduled = 0;
  std::map<std::string, std::uint64_t> faults;  // injected, per kind

  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
  std::uint64_t net_unroutable = 0;
  std::vector<sim::LinkDrops> dropped_links;

  double initial_availability = 0.0;
  double final_availability = 0.0;

  /// Centralized: analyzer redeployments applied / deployer rounds
  /// completed / final epoch / stale acks. Decentralized: auction
  /// migrations under "migrations", the rest stay zero.
  std::uint64_t redeployments = 0;
  std::uint64_t migrations = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t stale_acks = 0;
  /// Transactional-round outcomes (centralized only), keyed by
  /// prism::TxnOutcome name: committed / aborted / rolled_back / partial /
  /// rollback_failed / crashed.
  std::map<std::string, std::uint64_t> txn_outcomes;

  std::vector<InvariantViolation> violations;

  [[nodiscard]] util::json::Value to_json() const;
};

struct CampaignReport {
  CampaignConfig config;
  std::vector<RunReport> runs;

  [[nodiscard]] std::size_t total_violations() const;
  [[nodiscard]] bool ok() const { return total_violations() == 0; }

  /// {"schema": "dif-campaign-v1", ...} — deterministic for a given
  /// (config, seeds): std::map-backed objects serialize in key order and
  /// no field derives from wall clock.
  [[nodiscard]] util::json::Value to_json() const;
};

class CampaignRunner {
 public:
  /// `instruments` members may be null; when set, fault counters/spans and
  /// the full per-run network/admin instrumentation accumulate there
  /// across all runs.
  explicit CampaignRunner(CampaignConfig config,
                          obs::Instruments instruments = {})
      : config_(std::move(config)), obs_(instruments) {}

  /// Runs every (seed, enabled mode) combination and returns the report.
  [[nodiscard]] CampaignReport run();

  /// Called with the fully wired instantiation after the fault schedule is
  /// armed and before the simulation starts — the protocol fuzzer's hook
  /// point (it attaches a network interceptor here). May be null.
  using PrepareHook = std::function<void(core::CentralizedInstantiation&)>;

  /// One centralized run, with `prepare` invoked pre-start. The report and
  /// its seven invariant verdicts are exactly what run() would produce for
  /// this seed — which is what makes them usable as a fuzzing oracle.
  [[nodiscard]] RunReport run_centralized_once(std::uint64_t seed,
                                               const PrepareHook& prepare);

 private:
  [[nodiscard]] RunReport run_centralized(std::uint64_t seed) {
    return run_centralized_once(seed, nullptr);
  }
  [[nodiscard]] RunReport run_decentralized(std::uint64_t seed);

  CampaignConfig config_;
  obs::Instruments obs_;
};

}  // namespace dif::chaos
