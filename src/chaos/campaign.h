// The fault-injection campaign engine (the "chaos" layer's public face).
//
// A campaign runs the full improvement stack — generated system, Prism-MW
// instantiation, monitors, analyzer/auction, effectors — under a compiled
// FaultSchedule, once per (seed, mode) pair, and checks dependability
// invariants after every run:
//
//   conservation   delivered + dropped + unroutable never exceeds sent, and
//                  per-link drop shares never exceed the global drop count
//   epoch          the deployer's redeployment epoch is monotonic for the
//                  whole run (sampled periodically), including across master
//                  crashes, and at least one epoch exists per completed round
//   census         after the convergence window every application component
//                  is hosted exactly once — nothing lost by a crash, nothing
//                  duplicated by a recovered transfer
//   atomicity      the last redeployment round left every component it
//                  *resolved* where the round declared it — the proposed
//                  deployment, the checkpoint, or a declared partial
//                  commit — never an undeclared mix (components the round
//                  explicitly declared unresolved are bound only by the
//                  census invariant)
//   availability   the converged deployment, scored on a pristine copy of
//                  the generated model, is no worse than the initial
//                  deployment (within CampaignConfig::availability_tolerance)
//   preflight      the run-time-mutated model still passes the static
//                  checker's pre-flight rule set
//   audit          after a cleanly committed round with a complete runtime
//                  placement, the placement-auditor (check/audit.h) finds
//                  no location/capacity/collocation error against the
//                  pristine model (bandwidth advisories excluded — the sim
//                  mediates unconnected hosts)
//   convergence    (recovery-enabled runs only) within a bounded window
//                  after the last fault heals, the fleet re-reaches a
//                  complete placement that re-audits clean and is no less
//                  k-resilient than the initial placement — the
//                  self-healing loop not only repairs but *converges*
//
// Everything is deterministic in the seed: generation, fault times and
// targets, protocol interleavings, and therefore the whole report —
// identical seeds yield byte-identical JSON (schema "dif-campaign-v1").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "chaos/scenario.h"
#include "desi/generator.h"
#include "heal/recovery.h"
#include "obs/instruments.h"
#include "util/json.h"

namespace dif::chaos {

struct CampaignConfig {
  ScenarioSpec scenario;
  /// One run per seed (per enabled mode).
  std::vector<std::uint64_t> seeds = {0, 1, 2, 3};
  /// Which framework instantiations to drive.
  bool centralized = true;
  bool decentralized = true;
  /// The system under test, regenerated per seed.
  desi::GeneratorSpec generator;
  /// Improvement-loop cadence (centralized mode).
  double improve_interval_ms = 5'000.0;
  /// Extra post-scenario time for in-flight transfers to finish before the
  /// census / availability / atomicity invariants are judged. Must exceed
  /// redeploy_timeout_ms + rollback_timeout_ms so a round launched at the
  /// very end of the run is guaranteed closed at judgment time.
  double settle_ms = 30'000.0;
  /// Transactional-effector budgets for the centralized runs: tight enough
  /// that every round (including its rollback) resolves inside settle_ms.
  double redeploy_timeout_ms = 10'000.0;
  double rollback_timeout_ms = 15'000.0;
  /// Graceful degradation: let rolled-back rounds keep their completed
  /// migrations (rounds then close as "partial" instead of "rolled_back").
  bool allow_partial = false;
  /// Slack allowed on the availability invariant: transient faults steer
  /// the adaptation through states optimized against *observed* (degraded)
  /// reliabilities, and hill-climbing back after the heal may stop within
  /// the analyzer's min_improvement of the initial score.
  double availability_tolerance = 0.0;
  /// Epoch-monotonicity sampling period.
  double epoch_probe_ms = 5'000.0;
  /// Self-healing (centralized runs): attach a heal::HealController —
  /// phi-accrual detection over the monitor heartbeats, automatic recovery
  /// re-placement on condemnation — and judge the eighth (convergence)
  /// invariant. Off by default, so recovery-free campaigns are bit-for-bit
  /// what they were before the heal layer existed.
  bool recovery = false;
  heal::HealConfig heal;
  /// Convergence deadline: the placement must re-audit clean within this
  /// many sim ms after scenario.fault_until_ms (recovery runs only).
  double convergence_window_ms = 60'000.0;

  CampaignConfig() {
    generator.hosts = 5;
    generator.components = 14;
    generator.reliability = {0.60, 0.99};
    generator.bandwidth = {50.0, 400.0};
    generator.link_density = 0.5;
    generator.interaction_density = 0.25;
  }
};

/// Campaign configuration for the recovery reference runs (`difctl heal`,
/// bench_recovery, the CI recovery smoke): killhost scenario, centralized
/// only, recovery enabled, and a generator with genuine capacity pressure.
/// The default campaign generator leaves hosts roomy enough that the exact
/// solver collocates the entire system on one host (availability 1.0) at
/// the first improvement tick — any host killed after that is empty and
/// recovery is vacuously idle. Squeezing host memory below half the total
/// component footprint forces a spread placement, so the killed host
/// always holds components worth repairing.
[[nodiscard]] CampaignConfig recovery_campaign_config();

struct InvariantViolation {
  std::string invariant;  // "conservation", "epoch", "census", ...
  std::string detail;
};

/// Everything observed in one (seed, mode) run. All fields are pure
/// functions of the seed — no wall-clock values.
struct RunReport {
  std::uint64_t seed = 0;
  std::string mode;      // "centralized" | "decentralized"
  std::string scenario;
  std::size_t actions_scheduled = 0;
  std::map<std::string, std::uint64_t> faults;  // injected, per kind

  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
  std::uint64_t net_unroutable = 0;
  std::vector<sim::LinkDrops> dropped_links;

  double initial_availability = 0.0;
  double final_availability = 0.0;

  /// Centralized: analyzer redeployments applied / deployer rounds
  /// completed / final epoch / stale acks. Decentralized: auction
  /// migrations under "migrations", the rest stay zero.
  std::uint64_t redeployments = 0;
  std::uint64_t migrations = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t stale_acks = 0;
  /// Transactional-round outcomes (centralized only), keyed by
  /// prism::TxnOutcome name: committed / aborted / rolled_back / partial /
  /// rollback_failed / crashed.
  std::map<std::string, std::uint64_t> txn_outcomes;

  /// Self-healing observations (recovery-enabled centralized runs only;
  /// all zero / absent otherwise). `recovery` holds the full
  /// dif-recovery-v1 "recovery" object from heal::HealController::to_json.
  bool recovery_enabled = false;
  double converged_at_ms = -1.0;  // first audit-clean probe; <0 = never
  double mean_mttr_ms = 0.0;
  std::uint64_t condemnations = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t recoveries_committed = 0;
  std::optional<util::json::Value> recovery;

  std::vector<InvariantViolation> violations;

  [[nodiscard]] util::json::Value to_json() const;
};

struct CampaignReport {
  CampaignConfig config;
  std::vector<RunReport> runs;

  [[nodiscard]] std::size_t total_violations() const;
  [[nodiscard]] bool ok() const { return total_violations() == 0; }

  /// {"schema": "dif-campaign-v1", ...} — deterministic for a given
  /// (config, seeds): std::map-backed objects serialize in key order and
  /// no field derives from wall clock.
  [[nodiscard]] util::json::Value to_json() const;
};

/// Appends the post-run invariant verdicts (conservation, census,
/// atomicity, availability, preflight, audit) for a finished centralized
/// run to `report.violations`. Factored out of run_centralized_once so
/// bench_campaign can time the invariant judge in isolation; the epoch and
/// convergence invariants live in the runner (they need mid-run samples).
void judge_centralized_invariants(core::CentralizedInstantiation& inst,
                                  const desi::SystemData& system,
                                  const desi::SystemData& pristine,
                                  double availability_tolerance,
                                  RunReport& report);

class CampaignRunner {
 public:
  /// `instruments` members may be null; when set, fault counters/spans and
  /// the full per-run network/admin instrumentation accumulate there
  /// across all runs.
  explicit CampaignRunner(CampaignConfig config,
                          obs::Instruments instruments = {})
      : config_(std::move(config)), obs_(instruments) {}

  /// Runs every (seed, enabled mode) combination and returns the report.
  [[nodiscard]] CampaignReport run();

  /// Called with the fully wired instantiation after the fault schedule is
  /// armed and before the simulation starts — the protocol fuzzer's hook
  /// point (it attaches a network interceptor here). May be null.
  using PrepareHook = std::function<void(core::CentralizedInstantiation&)>;

  /// One centralized run, with `prepare` invoked pre-start. The report and
  /// its seven invariant verdicts are exactly what run() would produce for
  /// this seed — which is what makes them usable as a fuzzing oracle.
  [[nodiscard]] RunReport run_centralized_once(std::uint64_t seed,
                                               const PrepareHook& prepare);

 private:
  [[nodiscard]] RunReport run_centralized(std::uint64_t seed) {
    return run_centralized_once(seed, nullptr);
  }
  [[nodiscard]] RunReport run_decentralized(std::uint64_t seed);

  CampaignConfig config_;
  obs::Instruments obs_;
};

}  // namespace dif::chaos
