#include "chaos/fault_schedule.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/rng.h"

namespace dif::chaos {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossBurst:
      return "loss_burst";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kNoise:
      return "noise";
  }
  return "unknown";
}

namespace {

/// Overlap ledger: two faults fighting over the same link field (or the
/// same host's liveness) would make heal-time state restoration ambiguous
/// — the second heal would resurrect the first fault's degraded values. A
/// fault is only emitted when its [at, at+duration) window is free on its
/// (field-group, target) lane; compile retries a few draws, then skips.
class OverlapLedger {
 public:
  bool reserve(int group, std::size_t target, double at, double duration) {
    auto& lanes = busy_[{group, target}];
    const double hi = at + duration;
    for (const auto& [lo, existing_hi] : lanes)
      if (at < existing_hi && lo < hi) return false;
    lanes.emplace_back(at, hi);
    return true;
  }

 private:
  std::map<std::pair<int, std::size_t>, std::vector<std::pair<double, double>>>
      busy_;
};

/// Field groups for the ledger: partitions own the severed flag,
/// loss/noise own reliability, degradations own bandwidth+delay, crashes
/// own host liveness.
constexpr int kGroupSevered = 0;
constexpr int kGroupReliability = 1;
constexpr int kGroupThroughput = 2;
constexpr int kGroupLiveness = 3;

int field_group(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return kGroupSevered;
    case FaultKind::kLossBurst:
    case FaultKind::kNoise:
      return kGroupReliability;
    case FaultKind::kDegrade:
      return kGroupThroughput;
    case FaultKind::kCrash:
      return kGroupLiveness;
  }
  return kGroupSevered;
}

}  // namespace

FaultSchedule FaultSchedule::compile(const ScenarioSpec& spec,
                                     const model::DeploymentModel& m,
                                     model::HostId master_host,
                                     std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.spec_ = spec;

  // Independent chaos stream: campaigns share their seed with the system
  // generator and the framework, and must not perturb those streams.
  util::Xoshiro256ss rng =
      util::Xoshiro256ss(seed).fork(/*stream_id=*/0xc4a05u);

  std::vector<std::pair<model::HostId, model::HostId>> links;
  const std::size_t k = m.host_count();
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = a + 1; b < k; ++b)
      if (m.physical_link(static_cast<model::HostId>(a),
                          static_cast<model::HostId>(b))
              .bandwidth > 0.0)
        links.emplace_back(static_cast<model::HostId>(a),
                           static_cast<model::HostId>(b));

  std::vector<model::HostId> crashable;
  for (std::size_t h = 0; h < k; ++h)
    if (spec.crash_master || static_cast<model::HostId>(h) != master_host)
      crashable.push_back(static_cast<model::HostId>(h));

  const double window_lo = spec.fault_from_ms;
  const double window_hi = std::max(spec.fault_until_ms, window_lo);
  OverlapLedger ledger;

  const auto draw_window = [&](double& at, double& duration) {
    duration = rng.uniform(spec.min_fault_ms,
                           std::max(spec.min_fault_ms, spec.max_fault_ms));
    duration = std::min(duration, window_hi - window_lo);
    at = rng.uniform(window_lo, std::max(window_lo, window_hi - duration));
  };

  const auto emit = [&](FaultKind kind, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        FaultAction action;
        action.kind = kind;
        std::size_t lane_target = 0;
        if (kind == FaultKind::kCrash) {
          if (crashable.empty()) return;
          action.a = action.b = crashable[rng.index(crashable.size())];
          lane_target = action.a;
        } else {
          if (links.empty()) return;
          const auto& [a, b] = links[rng.index(links.size())];
          action.a = a;
          action.b = b;
          lane_target = static_cast<std::size_t>(a) * k + b;
        }
        draw_window(action.at_ms, action.duration_ms);
        if (action.duration_ms <= 0.0) break;
        if (!ledger.reserve(field_group(kind), lane_target, action.at_ms,
                            action.duration_ms))
          continue;  // redraw
        schedule.actions_.push_back(action);
        break;
      }
    }
  };

  emit(FaultKind::kPartition, spec.partitions);
  emit(FaultKind::kLossBurst, spec.loss_bursts);
  emit(FaultKind::kDegrade, spec.degradations);
  emit(FaultKind::kCrash, spec.crashes);
  emit(FaultKind::kNoise, spec.noise_bursts);

  std::sort(schedule.actions_.begin(), schedule.actions_.end(),
            [](const FaultAction& x, const FaultAction& y) {
              return std::tie(x.at_ms, x.kind, x.a, x.b, x.duration_ms) <
                     std::tie(y.at_ms, y.kind, y.a, y.b, y.duration_ms);
            });
  return schedule;
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  spec_ = schedule.spec();
  for (const FaultAction& action : schedule.actions())
    inst_.simulator().schedule_at(action.at_ms,
                                  [this, action] { inject(action); });
}

void FaultInjector::inject(const FaultAction& action) {
  ++injected_[std::string(to_string(action.kind))];
  const double now = inst_.simulator().now();
  if (obs_.metrics)
    obs_.metrics
        ->counter("chaos.fault." + std::string(to_string(action.kind)))
        .add(1);
  obs::TraceLog::SpanId span = obs::TraceLog::kInvalidSpan;
  if (obs_.trace)
    span = obs_.trace->begin_span(
        now, "chaos.fault",
        {{"kind", std::string(to_string(action.kind))},
         {"a", static_cast<std::int64_t>(action.a)},
         {"b", static_cast<std::int64_t>(action.b)},
         {"duration_ms", action.duration_ms}});

  sim::SimNetwork& net = inst_.network();
  sim::LinkState saved{};
  switch (action.kind) {
    case FaultKind::kPartition:
      net.sever(action.a, action.b);
      break;
    case FaultKind::kLossBurst: {
      saved = net.link(action.a, action.b);
      sim::LinkState burst = saved;
      burst.reliability = spec_.burst_reliability;
      net.set_link(action.a, action.b, burst);
      break;
    }
    case FaultKind::kDegrade: {
      saved = net.link(action.a, action.b);
      sim::LinkState degraded = saved;
      degraded.bandwidth *= spec_.degrade_bandwidth_factor;
      degraded.delay_ms *= spec_.degrade_delay_factor;
      net.set_link(action.a, action.b, degraded);
      break;
    }
    case FaultKind::kCrash:
      inst_.crash_host(action.a);
      break;
    case FaultKind::kNoise:
      saved = net.link(action.a, action.b);
      oscillate(action, saved, action.at_ms + action.duration_ms,
                /*high=*/false);
      break;
  }
  inst_.simulator().schedule_at(
      action.at_ms + action.duration_ms,
      [this, action, saved, span] { heal(action, saved, span); });
}

void FaultInjector::heal(const FaultAction& action,
                         const sim::LinkState& saved,
                         obs::TraceLog::SpanId span) {
  sim::SimNetwork& net = inst_.network();
  switch (action.kind) {
    case FaultKind::kPartition:
      net.restore(action.a, action.b);
      break;
    case FaultKind::kLossBurst:
    case FaultKind::kDegrade:
    case FaultKind::kNoise: {
      // Restore the saved parameters but keep whatever the severed flag is
      // now — a concurrently armed partition owns that field.
      sim::LinkState healed = saved;
      healed.severed = net.link(action.a, action.b).severed;
      net.set_link(action.a, action.b, healed);
      break;
    }
    case FaultKind::kCrash:
      inst_.restart_host(action.a);
      break;
  }
  if (obs_.trace && span != obs::TraceLog::kInvalidSpan)
    obs_.trace->end_span(span, inst_.simulator().now());
}

void FaultInjector::oscillate(const FaultAction& action, sim::LinkState base,
                              double until_ms, bool high) {
  sim::SimNetwork& net = inst_.network();
  sim::LinkState noisy = net.link(action.a, action.b);
  const double factor =
      high ? 1.0 + spec_.noise_amplitude : 1.0 - spec_.noise_amplitude;
  noisy.reliability = std::clamp(base.reliability * factor, 0.01, 1.0);
  net.set_link(action.a, action.b, noisy);
  const double next = inst_.simulator().now() + spec_.noise_period_ms;
  if (next >= until_ms) return;  // the heal event restores `base`
  inst_.simulator().schedule_at(next, [this, action, base, until_ms, high] {
    if (inst_.simulator().now() >= until_ms) return;
    oscillate(action, base, until_ms, !high);
  });
}

}  // namespace dif::chaos
