#include "chaos/fault_schedule.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "chaos/overlap_ledger.h"

namespace dif::chaos {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossBurst:
      return "loss_burst";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kNoise:
      return "noise";
    case FaultKind::kSuspend:
      return "suspend";
  }
  return "unknown";
}

namespace detail {

void draw_scenario_actions(const ScenarioSpec& spec,
                           const model::DeploymentModel& m,
                           model::HostId master_host, util::Xoshiro256ss& rng,
                           OverlapLedger& ledger,
                           std::vector<FaultAction>& out) {
  std::vector<std::pair<model::HostId, model::HostId>> links;
  const std::size_t k = m.host_count();
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = a + 1; b < k; ++b)
      if (m.physical_link(static_cast<model::HostId>(a),
                          static_cast<model::HostId>(b))
              .bandwidth > 0.0)
        links.emplace_back(static_cast<model::HostId>(a),
                           static_cast<model::HostId>(b));

  std::vector<model::HostId> crashable;
  for (std::size_t h = 0; h < k; ++h)
    if (spec.crash_master || static_cast<model::HostId>(h) != master_host)
      crashable.push_back(static_cast<model::HostId>(h));

  const double window_lo = spec.fault_from_ms;
  const double window_hi = std::max(spec.fault_until_ms, window_lo);

  const auto draw_window = [&](double& at, double& duration) {
    duration = rng.uniform(spec.min_fault_ms,
                           std::max(spec.min_fault_ms, spec.max_fault_ms));
    duration = std::min(duration, window_hi - window_lo);
    at = rng.uniform(window_lo, std::max(window_lo, window_hi - duration));
  };

  const auto emit = [&](FaultKind kind, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        FaultAction action;
        action.kind = kind;
        std::size_t lane_target = 0;
        if (kind == FaultKind::kCrash || kind == FaultKind::kSuspend) {
          if (crashable.empty()) return;
          action.a = action.b = crashable[rng.index(crashable.size())];
          lane_target = action.a;
        } else {
          if (links.empty()) return;
          const auto& [a, b] = links[rng.index(links.size())];
          action.a = a;
          action.b = b;
          lane_target = static_cast<std::size_t>(a) * k + b;
        }
        draw_window(action.at_ms, action.duration_ms);
        if (action.duration_ms <= 0.0) break;
        if (!ledger.reserve(field_group(kind), lane_target, action.at_ms,
                            action.duration_ms))
          continue;  // redraw
        out.push_back(action);
        break;
      }
    }
  };

  emit(FaultKind::kPartition, spec.partitions);
  emit(FaultKind::kLossBurst, spec.loss_bursts);
  emit(FaultKind::kDegrade, spec.degradations);
  emit(FaultKind::kCrash, spec.crashes);
  emit(FaultKind::kNoise, spec.noise_bursts);
}

}  // namespace detail

namespace {

void sort_actions(std::vector<FaultAction>& actions) {
  std::sort(actions.begin(), actions.end(),
            [](const FaultAction& x, const FaultAction& y) {
              return std::tie(x.at_ms, x.kind, x.a, x.b, x.duration_ms) <
                     std::tie(y.at_ms, y.kind, y.a, y.b, y.duration_ms);
            });
}

}  // namespace

FaultSchedule FaultSchedule::compile(const ScenarioSpec& spec,
                                     const model::DeploymentModel& m,
                                     model::HostId master_host,
                                     std::uint64_t seed) {
  FaultSchedule schedule;
  schedule.spec_ = spec;

  // Independent chaos stream: campaigns share their seed with the system
  // generator and the framework, and must not perturb those streams.
  util::Xoshiro256ss rng =
      util::Xoshiro256ss(seed).fork(/*stream_id=*/0xc4a05u);

  OverlapLedger ledger;
  detail::draw_scenario_actions(spec, m, master_host, rng, ledger,
                                schedule.actions_);
  sort_actions(schedule.actions_);
  return schedule;
}

FaultSchedule FaultSchedule::assemble(ScenarioSpec spec,
                                      std::vector<FaultAction> actions) {
  FaultSchedule schedule;
  schedule.spec_ = std::move(spec);
  schedule.actions_ = std::move(actions);
  sort_actions(schedule.actions_);
  return schedule;
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  spec_ = schedule.spec();
  for (const FaultAction& action : schedule.actions())
    inst_.simulator().schedule_at(action.at_ms,
                                  [this, action] { inject(action); });
}

void FaultInjector::inject(const FaultAction& action) {
  ++injected_[std::string(to_string(action.kind))];
  const double now = inst_.simulator().now();
  if (obs_.metrics)
    obs_.metrics
        ->counter("chaos.fault." + std::string(to_string(action.kind)))
        .add(1);
  obs::TraceLog::SpanId span = obs::TraceLog::kInvalidSpan;
  if (obs_.trace)
    span = obs_.trace->begin_span(
        now, "chaos.fault",
        {{"kind", std::string(to_string(action.kind))},
         {"a", static_cast<std::int64_t>(action.a)},
         {"b", static_cast<std::int64_t>(action.b)},
         {"duration_ms", action.duration_ms}});

  sim::SimNetwork& net = inst_.network();
  sim::LinkState saved{};
  switch (action.kind) {
    case FaultKind::kPartition:
      net.sever(action.a, action.b);
      break;
    case FaultKind::kLossBurst: {
      saved = net.link(action.a, action.b);
      sim::LinkState burst = saved;
      burst.reliability = spec_.burst_reliability;
      net.set_link(action.a, action.b, burst);
      break;
    }
    case FaultKind::kDegrade: {
      saved = net.link(action.a, action.b);
      sim::LinkState degraded = saved;
      degraded.bandwidth *= spec_.degrade_bandwidth_factor;
      degraded.delay_ms *= spec_.degrade_delay_factor;
      net.set_link(action.a, action.b, degraded);
      break;
    }
    case FaultKind::kCrash:
      inst_.crash_host(action.a);
      break;
    case FaultKind::kSuspend:
      // Network-only outage: the host drops off the wire but its admin and
      // components keep their state (GC pause / SIGSTOP), so heal needs no
      // administrative restart.
      net.fail_host(action.a);
      break;
    case FaultKind::kNoise:
      saved = net.link(action.a, action.b);
      oscillate(action, saved, action.at_ms + action.duration_ms,
                /*high=*/false);
      break;
  }
  inst_.simulator().schedule_at(
      action.at_ms + action.duration_ms,
      [this, action, saved, span] { heal(action, saved, span); });
}

void FaultInjector::heal(const FaultAction& action,
                         const sim::LinkState& saved,
                         obs::TraceLog::SpanId span) {
  sim::SimNetwork& net = inst_.network();
  switch (action.kind) {
    case FaultKind::kPartition:
      net.restore(action.a, action.b);
      break;
    case FaultKind::kLossBurst:
    case FaultKind::kDegrade:
    case FaultKind::kNoise: {
      // Restore the saved parameters but keep whatever the severed flag is
      // now — a concurrently armed partition owns that field.
      sim::LinkState healed = saved;
      healed.severed = net.link(action.a, action.b).severed;
      net.set_link(action.a, action.b, healed);
      break;
    }
    case FaultKind::kCrash:
      inst_.restart_host(action.a);
      break;
    case FaultKind::kSuspend:
      net.recover_host(action.a);
      break;
  }
  if (obs_.trace && span != obs::TraceLog::kInvalidSpan)
    obs_.trace->end_span(span, inst_.simulator().now());
}

void FaultInjector::oscillate(const FaultAction& action, sim::LinkState base,
                              double until_ms, bool high) {
  sim::SimNetwork& net = inst_.network();
  sim::LinkState noisy = net.link(action.a, action.b);
  const double factor =
      high ? 1.0 + spec_.noise_amplitude : 1.0 - spec_.noise_amplitude;
  noisy.reliability = std::clamp(base.reliability * factor, 0.01, 1.0);
  net.set_link(action.a, action.b, noisy);
  const double next = inst_.simulator().now() + spec_.noise_period_ms;
  if (next >= until_ms) return;  // the heal event restores `base`
  inst_.simulator().schedule_at(next, [this, action, base, until_ms, high] {
    if (inst_.simulator().now() >= until_ms) return;
    oscillate(action, base, until_ms, !high);
  });
}

}  // namespace dif::chaos
